"""Bench E4 — claim (ii): fresh discards after a receiver reset <= 2Kq and
zero replays accepted under a full-history replay at wake-up, across a Kq
sweep.
"""

from repro.experiments import e04_receiver_discard


def bench_claim_ii_receiver_discard(run_experiment):
    result = run_experiment(
        e04_receiver_discard.run, ks=[5, 10, 25, 50, 100], offsets_per_k=6
    )
    assert all(row["within_bound"] for row in result.rows)
    assert all(row["replays_accepted"] == 0 for row in result.rows)
    assert sum(result.column("replays_injected")) > 1000
