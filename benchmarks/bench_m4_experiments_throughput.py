"""Bench M4 — experiment-suite throughput: sessions/second, serial vs pool.

The fourteen paper experiments now execute through the fleet runner, so
the whole suite parallelises.  This benchmark runs a reduced-size (but
structurally complete) slice of the :data:`EXPERIMENTS` registry at
``jobs=1`` and ``jobs=cpu_count`` and reports wall time and
sessions/second for each.  On a multi-core host the pool wins roughly
linearly (experiment sessions are independent and CPU-bound); on a
single core the two are within pool-overhead of each other.

Also runnable standalone, printing the comparison directly::

    PYTHONPATH=src python benchmarks/bench_m4_experiments_throughput.py
"""

from __future__ import annotations

import multiprocessing

from repro import perf
from repro.experiments import e01_sender_gap, e03_sender_loss, e10_reorder
from repro.experiments.sweep import ExperimentDriver, SweepSpec

POOL_JOBS = max(2, multiprocessing.cpu_count())


def _bench_specs() -> list[SweepSpec]:
    """A cross-section of the suite: single-call rows, grouped rows, and
    a two-axis grid — enough sessions that per-session compute dominates
    pool/fork overhead."""
    return [
        e01_sender_gap.sweep(k=50, offsets=list(range(0, 50, 5))),
        e03_sender_loss.sweep(ks=[10, 25, 50], offsets_per_k=4),
        e10_reorder.sweep(window_sizes=[32, 64], degrees=[1, 31, 32, 64],
                          messages=1000),
    ]


def _run_suite(jobs: int) -> tuple[int, float]:
    """Run the benchmark slice; returns (sessions, wall_seconds)."""
    sessions = 0
    with perf.Stopwatch() as clock:
        for spec in _bench_specs():
            driver = ExperimentDriver(spec, jobs=jobs)
            driver.run()
            assert driver.outcome is not None
            sessions += len(driver.outcome.executed)
    return sessions, clock.elapsed


def bench_experiments_serial(benchmark, report_rate):
    sessions, _ = benchmark.pedantic(
        lambda: _run_suite(1), rounds=3, iterations=1, warmup_rounds=1
    )
    report_rate("sessions/s", sessions)


def bench_experiments_pool(benchmark, report_rate):
    sessions, _ = benchmark.pedantic(
        lambda: _run_suite(POOL_JOBS), rounds=3, iterations=1, warmup_rounds=1
    )
    report_rate("sessions/s", sessions)


def main() -> None:
    print(f"experiment-suite throughput "
          f"(cpu_count={multiprocessing.cpu_count()})")
    rates: dict[int, float] = {}
    for jobs in (1, POOL_JOBS):
        sessions, elapsed = _run_suite(jobs)
        report = perf.measure_rate(
            f"experiments jobs={jobs}", "sessions/s", sessions, elapsed
        )
        rates[jobs] = report.rate
        print(f"  {report.format()}  ({sessions} sessions)")
    print(f"  pool speedup over serial: {rates[POOL_JOBS] / rates[1]:.2f}x")


if __name__ == "__main__":
    main()
