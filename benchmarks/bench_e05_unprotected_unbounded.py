"""Bench E5 — the headline: Section 3's unbounded failures vs the
SAVE/FETCH constants, swept over pre-reset traffic volume.

Paper shape: the unprotected protocol's replay acceptance and fresh-message
discards grow linearly (unboundedly) with traffic; SAVE/FETCH holds both at
0 / <= 2K regardless.
"""

from repro.experiments import e05_unbounded


def bench_unprotected_unbounded(run_experiment):
    result = run_experiment(
        e05_unbounded.run, traffic_volumes=[100, 250, 500, 1000, 2500]
    )
    unprot = result.column("unprot_replays_accepted")
    volumes = result.column("x_pre_reset")
    # Linear growth: acceptance tracks traffic exactly.
    assert unprot == volumes
    assert result.column("sf_replays_accepted") == [0] * len(volumes)
    discards = result.column("unprot_fresh_discarded")
    assert discards[-1] / discards[0] >= 20  # unbounded growth
    assert all(v <= 50 for v in result.column("sf_fresh_discarded"))
