"""Bench M1 — microbenchmark: replay-window operations per second.

Compares the paper-literal boolean-array window against the RFC-style
integer-bitmap window on three access patterns.  Expected: the bitmap wins
on sliding-heavy workloads (shifting an int beats shifting a list) while
both are O(1)-ish on in-window checks.
"""

import random

import pytest

from repro.ipsec.replay_window import ArrayReplayWindow, BitmapReplayWindow
from repro.ipsec.replay_window_blocked import BlockedReplayWindow

IMPLS = [ArrayReplayWindow, BitmapReplayWindow, BlockedReplayWindow]
IDS = ["array", "bitmap", "blocked"]


def in_order_workload(window, count: int = 20_000) -> int:
    accepted = 0
    for seq in range(1, count + 1):
        if window.update(seq).accepted:
            accepted += 1
    return accepted


def jittered_workload(window, count: int = 20_000, seed: int = 7) -> int:
    rng = random.Random(seed)
    accepted = 0
    seq = 0
    for _ in range(count):
        seq += 1
        probe = max(1, seq - rng.randrange(0, 48))
        if window.update(probe).accepted:
            accepted += 1
    return accepted


def replay_heavy_workload(window, count: int = 20_000) -> int:
    accepted = 0
    for seq in range(1, count + 1):
        if window.update(seq).accepted:
            accepted += 1
        window.update(max(1, seq - 3))  # constant replay pressure
    return accepted


@pytest.mark.parametrize("impl", IMPLS, ids=IDS)
def bench_window_in_order(benchmark, impl, report_rate):
    result = benchmark(lambda: in_order_workload(impl(64)))
    assert result == 20_000
    report_rate("updates/s", 20_000)


@pytest.mark.parametrize("impl", IMPLS, ids=IDS)
def bench_window_jittered(benchmark, impl, report_rate):
    result = benchmark(lambda: jittered_workload(impl(64)))
    assert result > 0
    report_rate("updates/s", 20_000)


@pytest.mark.parametrize("impl", IMPLS, ids=IDS)
def bench_window_replay_heavy(benchmark, impl, report_rate):
    result = benchmark(lambda: replay_heavy_workload(impl(64)))
    assert result == 20_000
    report_rate("updates/s", 40_000)
