"""Bench E1 — regenerates Figure 1: sender-reset gap across the SAVE cycle.

Paper shape: gap = Kp + t while the struck SAVE is in flight, gap = t after
it commits; never reaching 2Kp.
"""

from repro.experiments import e01_sender_gap


def bench_fig1_sender_gap(run_experiment):
    result = run_experiment(
        e01_sender_gap.run, k=50, offsets=list(range(0, 50, 2))
    )
    assert all(row["within_bound"] for row in result.rows)
    assert all(row["replays_accepted"] == 0 for row in result.rows)
    in_flight = [row["gap"] for row in result.rows if row["save_in_flight"]]
    committed = [row["gap"] for row in result.rows if not row["save_in_flight"]]
    # Two regimes, in-flight strictly the worse one (Fig. 1).
    assert min(in_flight) > max(committed)
