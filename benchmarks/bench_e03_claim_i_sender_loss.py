"""Bench E3 — claim (i): lost sequence numbers after a sender reset <= 2Kp,
zero fresh discards on an in-order channel, across a Kp sweep.
"""

from repro.experiments import e03_sender_loss


def bench_claim_i_sender_loss(run_experiment):
    result = run_experiment(
        e03_sender_loss.run, ks=[5, 10, 25, 50, 100], offsets_per_k=6
    )
    assert all(row["within_bound"] for row in result.rows)
    assert all(row["fresh_discarded"] == 0 for row in result.rows)
    assert all(row["converged"] for row in result.rows)
    losses = result.column("max_lost")
    assert losses == sorted(losses)  # grows with Kp
