"""Bench E14 — empirical exposure of the loss-hole counterexample
(extension ablation): vulnerable checkpoint windows appear under bursty
loss and SAVE/FETCH admits replays there; the write-ahead ceiling variant
admits none under the identical trigger and attack."""

from repro.experiments import e14_loss_robustness


def bench_loss_robustness(run_experiment):
    result = run_experiment(
        e14_loss_robustness.run, burst_levels=[0.0, 0.01, 0.03], seeds=6
    )
    rows = {row["burst_g2b"]: row for row in result.rows}
    assert rows[0.0]["vulnerable_windows"] == 0
    assert rows[0.0]["sf_runs_with_replays"] == 0
    assert rows[0.03]["vulnerable_windows"] > 0
    assert rows[0.03]["sf_runs_with_replays"] > 0
    assert all(row["ceiling_runs_with_replays"] == 0 for row in result.rows)
