"""Bench E6 — the SAVE-interval sizing rule and the count-vs-time policy.

Paper shape: the knee is exactly at K = T_save/T_send = 25 — below it
saves overlap and the 2K analysis no longer covers the protocol; above it
overhead falls as 1/K while worst-case loss grows as 2K.  Under bursty
traffic a time-based SAVE policy wastes most of its writes.
"""

from repro.experiments import e06_save_interval


def bench_save_interval_sizing(run_experiment):
    result = run_experiment(
        e06_save_interval.run, ks=[5, 10, 15, 20, 25, 50, 100, 200]
    )
    rows = {row["k"]: row for row in result.rows}
    assert rows[5]["max_concurrent_saves"] > 1  # rule violated: overlap
    assert rows[50]["max_concurrent_saves"] == 1
    assert rows[200]["overhead_fraction"] < rows[25]["overhead_fraction"]
    assert rows[50]["gap_bound_ok"] and rows[100]["gap_bound_ok"]


def bench_save_policy_comparison(run_experiment):
    result = run_experiment(e06_save_interval.run_policy_table, ks=[25, 50, 100])
    for row in result.rows:
        assert row["time_saves"] > row["count_saves"]
        assert row["waste_fraction"] > 0.5
