"""Bench E9 — Section 6 prolonged-reset recovery.

Paper shape: ICMP-based detection, keep-alive instead of teardown, secured
resync message accepted on wake (recovery time tracks the outage), replays
injected during the outage all rejected, keep-alive expiry past the budget.
"""

from repro.experiments import e09_prolonged_reset


def bench_prolonged_reset(run_experiment):
    result = run_experiment(
        e09_prolonged_reset.run,
        outages=[0.05, 0.2, 0.5, 2.0],
        keep_alive_timeout=1.0,
    )
    assert all(row["detected"] for row in result.rows)
    assert all(row["replays_accepted"] == 0 for row in result.rows)
    within = [row for row in result.rows if row["outage_s"] < 1.0]
    assert all(not row["keepalive_expired"] for row in within)
    assert all(row["resync_accepted"] for row in within)
    beyond = [row for row in result.rows if row["outage_s"] > 1.0]
    assert all(row["keepalive_expired"] for row in beyond)
