"""Bench E7 — recovery cost: IETF delete-and-rekey vs SAVE/FETCH.

Paper shape: rekey cost grows linearly in the number of SAs and with the
RTT (sequential IKE negotiations, ~4.5 round trips each, DH-dominated
compute); SAVE/FETCH recovery is local disk IO, flat in RTT, and wins by
orders of magnitude.
"""

from repro.experiments import e07_rekey_cost


def bench_rekey_vs_savefetch(run_experiment):
    result = run_experiment(
        e07_rekey_cost.run, sa_counts=[1, 4, 16, 64], rtts=[0.001, 0.010, 0.050]
    )
    assert all(row["speedup"] > 100 for row in result.rows)
    # Linear in SA count at fixed RTT.
    at_10ms = [row for row in result.rows if row["rtt_ms"] == 10]
    times = [row["rekey_time_s"] for row in at_10ms]
    assert times[-1] > 30 * times[0]
    # SAVE/FETCH flat in RTT.
    sf_times = {row["savefetch_time_s"] for row in result.rows if row["n_sas"] == 1}
    assert len(sf_times) == 1
