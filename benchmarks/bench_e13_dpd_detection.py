"""Bench E13 — dead-peer detection time vs probe cadence (the detection
term of the E7 total-recovery comparison)."""

from repro.experiments import e13_dpd


def bench_dpd_detection(run_experiment):
    result = run_experiment(e13_dpd.run, cadences=[0.1, 0.5, 2.0])
    assert all(row["detected"] for row in result.rows)
    heartbeat = [r for r in result.rows if r["mechanism"] == "heartbeat"]
    detections = [row["detection_s"] for row in heartbeat]
    assert detections == sorted(detections)  # scales with cadence
    # Traffic-based DPD is quiet while the conversation is healthy.
    traffic = [r for r in result.rows if r["mechanism"] == "traffic"]
    assert all(row["probes_while_healthy"] == 0 for row in traffic)
