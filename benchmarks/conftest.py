"""Shared benchmark plumbing.

Every benchmark runs its experiment through :func:`run_experiment`, which
executes exactly once per benchmark round, prints the paper-style table
after the run, and hands the :class:`ExperimentResult` back so the bench
can assert the reproduced shape.  Use ``pytest benchmarks/
--benchmark-only -s`` to see the rendered tables.
"""

from __future__ import annotations

from typing import Any, Callable

import pytest

from repro.experiments.common import ExperimentResult


@pytest.fixture
def run_experiment(benchmark) -> Callable[..., ExperimentResult]:
    """Run ``fn(**kwargs)`` once under the benchmark timer, print the
    resulting table, and return the result."""

    def runner(fn: Callable[..., ExperimentResult], **kwargs: Any) -> ExperimentResult:
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(result.render())
        return result

    return runner
