"""Shared benchmark plumbing.

Every benchmark runs its experiment through :func:`run_experiment`, which
executes exactly once per benchmark round, prints the paper-style table
after the run, and hands the :class:`ExperimentResult` back so the bench
can assert the reproduced shape.  Use ``pytest benchmarks/
--benchmark-only -s`` to see the rendered tables.
"""

from __future__ import annotations

from typing import Any, Callable

import pytest

from repro import perf
from repro.experiments.common import ExperimentResult
from repro.perf import RateReport


def pytest_addoption(parser: pytest.Parser) -> None:
    # Benchmarks run from their own rootdir in CI, where
    # tests/conftest.py (the canonical home of --runslow) is not
    # loaded; guard the registration so a combined
    # `pytest tests benchmarks` invocation does not define it twice.
    try:
        parser.addoption(
            "--runslow",
            action="store_true",
            default=False,
            help="run benchmarks marked `slow` (full 1M-session campaigns)",
        )
    except ValueError:
        pass


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow full-scale bench; use --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def run_experiment(benchmark) -> Callable[..., ExperimentResult]:
    """Run ``fn(**kwargs)`` once under the benchmark timer, print the
    resulting table, and return the result."""

    def runner(fn: Callable[..., ExperimentResult], **kwargs: Any) -> ExperimentResult:
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(result.render())
        return result

    return runner


@pytest.fixture
def report_rate(benchmark) -> Callable[[str, int], RateReport]:
    """Print the shared machine-normalized rate line for a finished bench.

    Call *after* ``benchmark(...)``: reads the best round's time, reports
    ``count`` items at that pace via :mod:`repro.perf` (the same numbers
    the CI gate recomputes from the saved JSON), and attaches them to the
    benchmark's ``extra_info`` so they land in ``--benchmark-json`` output.
    """

    def reporter(metric: str, count: int) -> RateReport:
        stats = benchmark.stats
        report = perf.measure_rate(stats.name, metric, count, stats.stats.min)
        benchmark.extra_info.update(report.as_dict())
        print()
        print(report.format())
        return report

    return reporter
