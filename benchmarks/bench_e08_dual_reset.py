"""Bench E8 — dual resets: the Section 5 third case, the Section 3
window-jump attack, and the staggered boundary found by model checking.

Paper shape: simultaneous dual reset converges under SAVE/FETCH and
desynchronises the unprotected pair.  Reproduction finding: a staggered
receiver reset inside the post-leap checkpoint lets one replay through
SAVE/FETCH; the write-ahead ceiling repair rejects it.
"""

from repro.experiments import e08_dual_reset


def bench_dual_reset(run_experiment):
    result = run_experiment(e08_dual_reset.run, k=25)
    rows = {(row["case"], row["protocol"]): row for row in result.rows}
    assert rows[("simultaneous", "save/fetch")]["converged"]
    assert not rows[("simultaneous", "unprotected")]["converged"]
    assert rows[("staggered-vulnerable", "savefetch")]["replays_accepted"] >= 1
    assert rows[("staggered-vulnerable", "ceiling")]["replays_accepted"] == 0
