"""Bench E11 — ablating the Section 4 recovery design under double resets.

Paper shape: only the paper's configuration (2K leap + synchronous wake
SAVE) is safe under both single and double resets; a 1K/0K leap reuses
sequence numbers immediately, and skipping the wake SAVE survives a single
reset but reuses under the second-reset hazard.
"""

from repro.experiments import e11_double_reset


def bench_double_reset_ablation(run_experiment):
    result = run_experiment(e11_double_reset.run, k=25)
    by_variant: dict[str, list] = {}
    for row in result.rows:
        by_variant.setdefault(row["variant"], []).append(row)
    assert all(row["safe"] for row in by_variant["paper (leap 2K, wake save)"])
    assert any(row["min_lost"] < 0 for row in by_variant["leap 1K"])
    assert any(row["min_lost"] < 0 for row in by_variant["leap 0"])
    skip = {row["double_reset"]: row for row in by_variant["skip wake save"]}
    assert skip[False]["safe"] and not skip[True]["safe"]
