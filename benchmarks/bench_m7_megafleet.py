"""Bench M7 — megafleet scale: 1M-task expansion and O(shard) aggregation.

Three claims behind the million-session roadmap item, measured:

* **Expansion** — the 1M-task campaign spec streams through
  ``CampaignSpec.iter_tasks`` at six-figure tasks/second without ever
  materialising the task list.
* **Aggregation** — ``summarize_store`` over a sharded store folds one
  shard at a time: peak traced memory is a *budget in records-per-shard*,
  not records-per-campaign.  The budget lives in
  ``benchmarks/baselines/fleet_aggregate.json``; an accidental
  materialize-everything regression (which measures ~240x higher) fails
  the assertion, and CI runs it on every push.
* **Full scale** (``--runslow`` only) — the complete 1M-session campaign
  executed end to end on the sharded store, reporting sessions/second
  and peak RSS.  Hours of CPU; run it on a quiet machine, not in CI.

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_m7_megafleet.py
"""

from __future__ import annotations

import json
import resource
import tempfile
import tracemalloc
from pathlib import Path
from typing import Iterator

import pytest

from repro import perf
from repro.fleet import (
    FleetRunner,
    ShardedResultStore,
    TaskRecord,
    megafleet_spec,
    summarize_store,
)
from repro.util.rng import make_rng

#: Synthetic record count for the CI-sized aggregation bench (the full
#: 1M-record variant behaves identically per shard; 20k keeps the bench
#: job fast while leaving the materialize-all failure mode ~240x over
#: budget).
AGG_RECORDS = 20_000
AGG_SHARD_BITS = 4

BASELINE_PATH = Path(__file__).parent / "baselines" / "fleet_aggregate.json"


def synthetic_records(count: int, seed: int = 9) -> Iterator[TaskRecord]:
    """Deterministic fleet-shaped records, no scenario execution."""
    rng = make_rng(seed)
    for index in range(count):
        yield TaskRecord(
            task_id=f"g{index % 4}/synth/s{index:06d}",
            scenario="sender_reset",
            params={
                "k": 25,
                "reset_after_sends": 40 + index % 20,
                "messages_after_reset": 60,
            },
            seed=1000 + index,
            status="ok",
            metrics={
                "converged": True,
                "sender_resets": 1,
                "receiver_resets": 0,
                "replays_accepted": 0,
                "fresh_discarded": rng.randrange(3),
                "lost_seqnums_per_reset": [rng.randrange(30)],
                "gaps_sender": [rng.randrange(10)],
                "gaps_receiver": [],
                "time_to_converge": [rng.uniform(1e-4, 8e-4)],
                "bound_violations": [],
                "fresh_sent": 100,
                "delivered_uids": 98,
                "never_arrived": 0,
            },
            wall_time=0.25,
        )


def build_store(workdir: str, count: int = AGG_RECORDS) -> ShardedResultStore:
    store = ShardedResultStore(
        Path(workdir) / "shards", bits=AGG_SHARD_BITS
    )
    for record in synthetic_records(count):
        store.append(record)
    return store


def memory_budget_bytes(records: int, shards: int) -> int:
    """The O(shard) budget from the checked-in baseline entry."""
    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    entry = baseline["benchmarks"]["bench_megafleet_aggregation"]
    return int(
        entry["fixed_bytes"]
        + entry["bytes_per_shard_record"] * (records / shards)
    )


def check_aggregation_memory(store: ShardedResultStore, records: int) -> int:
    """Assert peak traced memory of one aggregation pass is O(shard)."""
    tracemalloc.start()
    try:
        summarize_store(store, exact_cap=0)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    budget = memory_budget_bytes(records, len(store.shards))
    assert peak <= budget, (
        f"aggregation peak memory {peak:,} B exceeds the O(shard) budget "
        f"{budget:,} B — did something start materialising the campaign?"
    )
    return peak


def peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def bench_megafleet_expansion(benchmark, report_rate):
    spec = megafleet_spec()
    total = spec.session_count()

    def expand() -> int:
        count = sum(1 for _ in spec.iter_tasks())
        assert count == total
        return count

    benchmark.pedantic(expand, rounds=1, iterations=1, warmup_rounds=0)
    report_rate("tasks/s", total)


def bench_megafleet_aggregation(benchmark, report_rate):
    with tempfile.TemporaryDirectory() as workdir:
        store = build_store(workdir)
        summary = benchmark.pedantic(
            lambda: summarize_store(store, exact_cap=0),
            rounds=3, iterations=1, warmup_rounds=1,
        )
        assert summary.tasks == AGG_RECORDS
        assert summary.percentile_mode == "sketch"
        peak = check_aggregation_memory(store, AGG_RECORDS)
    report = report_rate("records/s", AGG_RECORDS)
    benchmark.extra_info["aggregation_peak_bytes"] = peak
    benchmark.extra_info["peak_rss_bytes"] = peak_rss_bytes()
    assert report.rate > 0


@pytest.mark.slow
def bench_megafleet_full_run(benchmark, report_rate):
    import multiprocessing

    spec = megafleet_spec()
    total = spec.session_count()
    jobs = max(2, multiprocessing.cpu_count())

    def run_full() -> int:
        with tempfile.TemporaryDirectory() as workdir:
            store = ShardedResultStore(Path(workdir) / "shards", bits=8)
            outcome = FleetRunner(spec, store, jobs=jobs).run()
            assert len(outcome.executed) == total
            summary = summarize_store(store)
            assert summary.tasks == total
            check_aggregation_memory(store, total)
            return total

    benchmark.pedantic(run_full, rounds=1, iterations=1, warmup_rounds=0)
    report_rate("sessions/s", total)
    benchmark.extra_info["peak_rss_bytes"] = peak_rss_bytes()


def main() -> None:
    spec = megafleet_spec()
    total = spec.session_count()
    with perf.Stopwatch() as clock:
        count = sum(1 for _ in spec.iter_tasks())
    assert count == total
    print(perf.measure_rate(
        "megafleet expansion", "tasks/s", total, clock.elapsed
    ).format())
    with tempfile.TemporaryDirectory() as workdir:
        store = build_store(workdir)
        with perf.Stopwatch() as clock:
            summary = summarize_store(store, exact_cap=0)
        assert summary.tasks == AGG_RECORDS
        print(perf.measure_rate(
            "megafleet aggregation", "records/s", AGG_RECORDS, clock.elapsed
        ).format())
        peak = check_aggregation_memory(store, AGG_RECORDS)
        budget = memory_budget_bytes(AGG_RECORDS, len(store.shards))
        print(f"  aggregation peak memory: {peak:,} B "
              f"(O(shard) budget {budget:,} B)")
        print(f"  peak RSS: {peak_rss_bytes() / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
