"""Bench M6 — netpath overhead: regime switching vs the static link.

The same reference workload (one protected pair, a clocked stream, no
faults) three ways:

* ``bench_static_link`` — the pre-netpath fixed channel (``path=None``):
  the baseline hot path.
* ``bench_static_profile`` — a single-phase static
  :class:`~repro.netpath.PathProfile`.  Resolved at link construction,
  so it must run the *same* hot path; any gap here is pure regression.
* ``bench_regime_switching`` — a two-phase cycling profile whose
  boundaries land every ``k`` messages, forcing hundreds of regime
  transitions (model swap + timeline step) across the stream.  The
  acceptance bar is <= 10% overhead vs the static link.

Also runnable standalone, printing the comparison directly::

    PYTHONPATH=src python benchmarks/bench_m6_netpath.py
"""

from __future__ import annotations

from repro import perf
from repro.core.protocol import build_protocol
from repro.ipsec.costs import PAPER_COSTS
from repro.net.delay import FixedDelay
from repro.netpath import PathPhase, PathProfile
from repro.sim.trace import NULL_TRACE

MESSAGES = 20_000
HORIZON = (MESSAGES + 10) * PAPER_COSTS.t_send + 10 * PAPER_COSTS.t_save

#: Phase length: 50 messages of stream time, so the switching profile
#: takes ~MESSAGES/50 = 400 transitions over the run.
PHASE_SECONDS = 50 * PAPER_COSTS.t_send

STATIC_PROFILE = PathProfile.static()

SWITCHING_PROFILE = PathProfile(
    cycle=True,
    phases=(
        PathPhase("calm", duration=PHASE_SECONDS),
        PathPhase("jittery", duration=PHASE_SECONDS, delay=FixedDelay(0.0)),
    ),
)


def _run(path: PathProfile | None) -> None:
    harness = build_protocol(trace=NULL_TRACE, path=path)
    harness.sender.start_traffic(count=MESSAGES)
    harness.run(until=HORIZON)
    report = harness.score()
    assert report.audit.delivered_uids == MESSAGES, report.summary()


def bench_static_link(benchmark, report_rate):
    benchmark.pedantic(lambda: _run(None), rounds=3, iterations=1, warmup_rounds=1)
    report_rate("msgs/s", MESSAGES)


def bench_static_profile(benchmark, report_rate):
    benchmark.pedantic(
        lambda: _run(STATIC_PROFILE), rounds=3, iterations=1, warmup_rounds=1
    )
    report_rate("msgs/s", MESSAGES)


def bench_regime_switching(benchmark, report_rate):
    benchmark.pedantic(
        lambda: _run(SWITCHING_PROFILE), rounds=3, iterations=1, warmup_rounds=1
    )
    report_rate("msgs/s", MESSAGES)


def main() -> None:
    print(f"netpath overhead, {MESSAGES} messages per run "
          f"(switching profile transitions every 50 messages)")
    results: dict[str, float] = {}
    for name, path in (
        ("static link (no profile)", None),
        ("static single-phase profile", STATIC_PROFILE),
        ("regime switching (cycling)", SWITCHING_PROFILE),
    ):
        _run(path)  # warmup
        with perf.Stopwatch() as clock:
            _run(path)
        report = perf.measure_rate(name, "msgs/s", MESSAGES, clock.elapsed)
        results[name] = report.rate
        print(f"  {report.format()}")
    base = results["static link (no profile)"]
    for name, rate in results.items():
        if name == "static link (no profile)":
            continue
        overhead = (base - rate) / base * 100.0
        print(f"  {name}: {overhead:+.1f}% vs static link")


if __name__ == "__main__":
    main()
