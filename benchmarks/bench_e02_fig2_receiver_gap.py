"""Bench E2 — regenerates Figure 2: receiver-reset gap across the SAVE cycle.

Paper shape: same two regimes as Fig. 1 with Kq; fresh discards within the
claim (ii) budget and zero replays accepted.
"""

from repro.experiments import e02_receiver_gap


def bench_fig2_receiver_gap(run_experiment):
    result = run_experiment(
        e02_receiver_gap.run, k=50, offsets=list(range(0, 50, 2))
    )
    assert all(row["within_bound"] for row in result.rows)
    assert all(row["replays_accepted"] == 0 for row in result.rows)
    assert all(row["fresh_discarded"] <= row["discard_bound_2k"] for row in result.rows)
