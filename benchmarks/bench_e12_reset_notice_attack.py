"""Bench E12 — the Section 6 strawman: a replayable "I was reset" notice.

Paper shape: the notice protocol recovers from the genuine reset but is
broken wholesale by replaying the notice + history; SAVE/FETCH, having no
trusted-on-receipt control message, rejects the same barrage entirely.
"""

from repro.experiments import e12_reset_notice


def bench_reset_notice_attack(run_experiment):
    result = run_experiment(
        e12_reset_notice.run, pre_reset_messages=500, post_reset_messages=200
    )
    strawman, savefetch = result.rows
    assert strawman["genuine_recovery_ok"]
    assert strawman["broken_by_replay"]
    assert strawman["replays_accepted"] >= 500
    assert not savefetch["broken_by_replay"]
    assert savefetch["replays_accepted"] == 0
