"""Bench M8 — live-telemetry overhead: streamed vs stream-off campaigns.

Runs the same serial campaign through :class:`FleetRunner` twice — once
with the v2 streaming plane on (progress ledger, worker heartbeats,
resource snapshots) and once stream-off — and gates the fractional
slowdown at the documented budget (DESIGN.md "Observability": <= 5%).
Stream-off must also stay byte-identical to the pre-streaming runner,
which ``tests/obs/test_obs_parity.py`` pins; this bench owns the
throughput side of the same contract.

Both variants use best-of-N wall time (min is the noise-robust
estimator the perf gate uses elsewhere), and the budget can be widened
for noisy runners via ``OBS_OVERHEAD_BUDGET``.

Also runnable standalone, printing the comparison directly::

    PYTHONPATH=src python benchmarks/bench_m8_obs_overhead.py
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro import perf
from repro.fleet import CampaignSpec, FleetRunner, ResultStore, ScenarioGrid
from repro.obs.stream import StreamConfig

SESSIONS = 32
ROUNDS = 3

#: Max fractional slowdown the streaming plane may cost per campaign.
OVERHEAD_BUDGET = float(os.environ.get("OBS_OVERHEAD_BUDGET", "0.05"))


def _bench_spec(sessions: int) -> CampaignSpec:
    """Long enough streams that per-session compute dominates process
    startup, so the per-task emit/flush cost is measured against real
    work rather than against fixed overhead."""
    half = sessions // 2
    return CampaignSpec(
        name="bench-m8",
        base_seed=31337,
        grids=(
            ScenarioGrid(
                scenario="sender_reset",
                params={
                    "k": 25,
                    "reset_after_sends": [200, 300, 400],
                    "messages_after_reset": 400,
                },
                sessions=sessions - half,
            ),
            ScenarioGrid(
                scenario="loss_reset",
                params={
                    "k": 25,
                    "loss_rate": [0.0, 0.02, 0.05],
                    "reset_after_sends": 300,
                    "messages_after_reset": 400,
                },
                sessions=half,
            ),
        ),
    )


def _run_campaign(streamed: bool, workdir: str) -> None:
    spec = _bench_spec(SESSIONS)
    store = ResultStore(Path(workdir) / "results.jsonl")
    stream = (
        StreamConfig(ledger_path=Path(workdir) / "progress.jsonl")
        if streamed
        else None
    )
    outcome = FleetRunner(spec, store, jobs=1, stream=stream).run()
    assert len(outcome.executed) == SESSIONS
    assert all(record.status == "ok" for record in outcome.executed)


def _best_of(streamed: bool, workdir: str, rounds: int = ROUNDS) -> float:
    _run_campaign(streamed, tempfile.mkdtemp(dir=workdir))  # warmup
    best = float("inf")
    for _ in range(rounds):
        with perf.Stopwatch() as clock:
            _run_campaign(streamed, tempfile.mkdtemp(dir=workdir))
        best = min(best, clock.elapsed)
    return best


def bench_obs_stream_overhead(benchmark, report_rate):
    """Stream-on campaign under the timer; stream-off measured inline
    and the on/off delta gated at :data:`OVERHEAD_BUDGET`."""
    with tempfile.TemporaryDirectory() as workdir:
        off_best = _best_of(False, workdir)
        benchmark.pedantic(
            lambda: _run_campaign(True, tempfile.mkdtemp(dir=workdir)),
            rounds=ROUNDS, iterations=1, warmup_rounds=1,
        )
    on_best = benchmark.stats.stats.min
    overhead = on_best / off_best - 1.0
    benchmark.extra_info.update({
        "stream_off_s": off_best,
        "stream_on_s": on_best,
        "overhead_fraction": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
    })
    report_rate("sessions/s", SESSIONS)
    print(f"stream-off best {off_best:.3f}s, stream-on best {on_best:.3f}s "
          f"-> overhead {overhead * 100:+.2f}% (budget "
          f"{OVERHEAD_BUDGET * 100:.0f}%)")
    assert overhead <= OVERHEAD_BUDGET, (
        f"streaming telemetry costs {overhead * 100:.2f}% "
        f"(> {OVERHEAD_BUDGET * 100:.0f}% budget): "
        f"stream-off {off_best:.3f}s vs stream-on {on_best:.3f}s"
    )


def main() -> None:
    print(f"obs streaming overhead, {SESSIONS}-session serial campaign "
          f"(best of {ROUNDS})")
    with tempfile.TemporaryDirectory() as workdir:
        results: dict[bool, float] = {}
        for streamed in (False, True):
            elapsed = _best_of(streamed, workdir)
            results[streamed] = elapsed
            label = "stream-on " if streamed else "stream-off"
            report = perf.measure_rate(
                f"fleet {label}", "sessions/s", SESSIONS, elapsed
            )
            print(f"  {report.format()}")
        overhead = results[True] / results[False] - 1.0
        verdict = "OK" if overhead <= OVERHEAD_BUDGET else "OVER BUDGET"
        print(f"  streaming overhead: {overhead * 100:+.2f}% "
              f"(budget {OVERHEAD_BUDGET * 100:.0f}%) {verdict}")


if __name__ == "__main__":
    main()
