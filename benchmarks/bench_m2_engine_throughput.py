"""Bench M2 — microbenchmarks of the substrates: DES engine event rate,
cancellation-heavy, timer-churn and timer-wheel schedules, ESP seal/open
throughput, end-to-end simulated messages per second, and model-checker
state rate.

``bench_engine_event_rate`` is the pinned reference workload for the CI
perf gate: 50k self-rescheduling events through an otherwise idle engine,
nothing but the scheduler hot path.  Since the zero-alloc post API became
the library's own hot path (link deliveries ride ``post_at``), the
reference clocks ``post_later``; ``bench_engine_cancellable_rate`` keeps
the handle-returning ``call_later`` flavour honest.  The cancel-heavy and
timer-churn benches exercise the cancellation paths (live-entry
accounting, compaction, dead-entry reclaim), and the sparse-horizon and
cascade-heavy benches hit the timer wheel where it differs from a heap —
far timers parked in wheel levels and windows that advance constantly.

Every engine bench reports the shared machine-normalized events/s line
from :mod:`repro.perf`; ``benchmarks/baselines/engine_events.json`` holds
the checked-in normalized floors the CI gate enforces (see DESIGN.md
"Performance" for how to refresh them).
"""

from repro.core.protocol import build_protocol
from repro.ipsec.esp import esp_open, esp_seal
from repro.ipsec.sa import make_sa
from repro.sim.engine import Engine
from repro.sim.process import Timer
from repro.sim.trace import NULL_TRACE


def bench_engine_event_rate(benchmark, report_rate):
    """The reference workload: 50k self-rescheduling zero-alloc posts.

    This is the shape of the library's hottest real schedule (a link
    delivering a packet stream): fire-and-forget events that are never
    cancelled, scheduled one ahead of the clock.
    """

    def run_events(count: int = 50_000) -> int:
        engine = Engine()
        engine.trace.enabled = False
        fired = [0]

        def tick() -> None:
            fired[0] += 1
            if fired[0] < count:
                engine.post_later(1e-6, tick)

        engine.post_later(1e-6, tick)
        engine.run()
        return fired[0]

    assert benchmark(run_events) == 50_000
    report_rate("events/s", 50_000)


def bench_engine_cancellable_rate(benchmark, report_rate):
    """The ``call_later`` flavour of the reference workload.

    Same schedule, but every event returns a cancellable handle — the
    price of handles (pool draw, refcount-gated recycling) relative to
    the zero-alloc reference is exactly the gap between these two lines.
    """

    def run_events(count: int = 50_000) -> int:
        engine = Engine()
        engine.trace.enabled = False
        fired = [0]

        def tick() -> None:
            fired[0] += 1
            if fired[0] < count:
                engine.call_later(1e-6, tick)

        engine.call_later(1e-6, tick)
        engine.run()
        return fired[0]

    assert benchmark(run_events) == 50_000
    report_rate("events/s", 50_000)


def bench_engine_cancel_heavy(benchmark, report_rate):
    """Schedule 50k timers, cancel 80% before any fire.

    This is the shape of a long reset schedule full of re-armed
    inactivity timers: the queue must absorb the cancellations (live
    counter, compaction) without the survivors paying pop-skip costs for
    the dead weight.
    """

    def run_cancels(count: int = 50_000) -> int:
        engine = Engine(trace=NULL_TRACE)
        fired = [0]

        def bump() -> None:
            fired[0] += 1

        events = [
            engine.call_later(1e-3 + i * 1e-6, bump) for i in range(count)
        ]
        for i, event in enumerate(events):
            if i % 5:
                event.cancel()
        engine.run()
        return fired[0]

    assert benchmark(run_cancels) == 10_000
    report_rate("events/s", 50_000)


def bench_engine_timer_churn(benchmark, report_rate):
    """DPD-style inactivity timer under steady traffic.

    Every simulated packet resets the timer, so each tick is scheduled,
    cancelled and re-armed — the worst case for lazy cancellation, where
    the heap continuously accumulates dead entries interleaved with live
    ones.  The timer only expires once, after the stream ends.
    """

    def run_churn(packets: int = 20_000) -> int:
        engine = Engine(trace=NULL_TRACE)
        expirations = [0]

        def on_expire() -> None:
            expirations[0] += 1
            timer.stop()

        timer = Timer(engine, interval=1.0, callback=on_expire)
        timer.start()
        for i in range(1, packets + 1):
            engine.call_later(i * 0.5, timer.reset)
        engine.run()
        return expirations[0]

    assert benchmark(run_churn) == 1
    report_rate("events/s", 20_000)


def bench_engine_sparse_horizon(benchmark, report_rate):
    """Long-horizon sparse timers: 20k events spread over 20,000 s.

    Every event lands far beyond the wheel's 8 s front window, so the
    queue parks them in the coarse wheel levels and pays a window
    advance (plus cascade) to reach each one.  A heap pays log n on
    every push instead; this is the schedule where the two cores differ
    the most structurally.
    """

    def run_sparse(count: int = 20_000) -> int:
        engine = Engine(trace=NULL_TRACE)
        fired = [0]

        def bump() -> None:
            fired[0] += 1

        for i in range(count):
            engine.post_at(1.0 + i * 1.0, bump)
        engine.run()
        return fired[0]

    assert benchmark(run_sparse) == 20_000
    report_rate("events/s", 20_000)


def bench_engine_cascade_heavy(benchmark, report_rate):
    """Self-rescheduling tick stepping just past the front window.

    Each event re-arms 10 s ahead — past the 8 s front span — so every
    single pop forces the wheel to advance its window and cascade the
    next event down from a coarse level.  This is the worst case for
    the hybrid layout: zero events are absorbed by the front heap.
    """

    def run_cascades(count: int = 20_000) -> int:
        engine = Engine(trace=NULL_TRACE)
        fired = [0]

        def tick() -> None:
            fired[0] += 1
            if fired[0] < count:
                engine.post_later(10.0, tick)

        engine.post_later(10.0, tick)
        engine.run()
        return fired[0]

    assert benchmark(run_cascades) == 20_000
    report_rate("events/s", 20_000)


def bench_esp_seal_open(benchmark):
    sa = make_sa("p", "q", seed_or_rng=1)
    payload = bytes(256)

    def seal_open(count: int = 2_000) -> int:
        ok = 0
        for seq in range(1, count + 1):
            packet = esp_seal(sa, seq, payload)
            if esp_open(sa, packet) == payload:
                ok += 1
        return ok

    assert benchmark(seal_open) == 2_000


def bench_end_to_end_message_rate(benchmark, report_rate):
    def run_protocol(count: int = 10_000) -> int:
        harness = build_protocol(trace=NULL_TRACE)
        harness.sender.start_traffic(count=count)
        harness.run(until=1.0)
        return harness.receiver.delivered_total

    assert benchmark(run_protocol) == 10_000
    report_rate("messages/s", 10_000)


def bench_model_checker_state_rate(benchmark):
    from repro.apn.specs import SpecConfig, make_savefetch_system
    from repro.verify.explorer import StateExplorer

    config = SpecConfig(
        w=2, k=1, max_seq=4, chan_cap=2, max_resets_p=1, max_resets_q=0,
        max_replays=1,
    )

    def explore() -> int:
        result = StateExplorer(make_savefetch_system(config)).explore()
        assert result.ok
        return result.states_explored

    assert benchmark(explore) > 1_000
