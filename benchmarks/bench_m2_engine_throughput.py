"""Bench M2 — microbenchmarks of the substrates: DES engine event rate,
ESP seal/open throughput, end-to-end simulated messages per second, and
model-checker state rate.
"""

from repro.core.protocol import build_protocol
from repro.ipsec.esp import esp_open, esp_seal
from repro.ipsec.sa import make_sa
from repro.sim.engine import Engine


def bench_engine_event_rate(benchmark):
    def run_events(count: int = 50_000) -> int:
        engine = Engine()
        engine.trace.enabled = False
        fired = [0]

        def tick() -> None:
            fired[0] += 1
            if fired[0] < count:
                engine.call_later(1e-6, tick)

        engine.call_later(1e-6, tick)
        engine.run()
        return fired[0]

    assert benchmark(run_events) == 50_000


def bench_esp_seal_open(benchmark):
    sa = make_sa("p", "q", seed_or_rng=1)
    payload = bytes(256)

    def seal_open(count: int = 2_000) -> int:
        ok = 0
        for seq in range(1, count + 1):
            packet = esp_seal(sa, seq, payload)
            if esp_open(sa, packet) == payload:
                ok += 1
        return ok

    assert benchmark(seal_open) == 2_000


def bench_end_to_end_message_rate(benchmark):
    def run_protocol(count: int = 10_000) -> int:
        harness = build_protocol()
        harness.engine.trace.enabled = False
        harness.sender.start_traffic(count=count)
        harness.run(until=1.0)
        return harness.receiver.delivered_total

    assert benchmark(run_protocol) == 10_000


def bench_model_checker_state_rate(benchmark):
    from repro.apn.specs import SpecConfig, make_savefetch_system
    from repro.verify.explorer import StateExplorer

    config = SpecConfig(
        w=2, k=1, max_seq=4, chan_cap=2, max_resets_p=1, max_resets_q=0,
        max_replays=1,
    )

    def explore() -> int:
        result = StateExplorer(make_savefetch_system(config)).explore()
        assert result.ok
        return result.states_explored

    assert benchmark(explore) > 1_000
