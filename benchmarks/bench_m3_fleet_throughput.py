"""Bench M3 — fleet campaign throughput: sessions/second, serial vs pool.

Runs the same mixed-scenario campaign through :class:`FleetRunner` at
``jobs=1`` (in-process) and ``jobs=cpu_count`` (worker pool) and reports
sessions/second for each.  On a multi-core host the pool wins roughly
linearly (tasks are independent and CPU-bound); on a single core the two
are within pool-overhead of each other.

Also runnable standalone, printing the comparison directly::

    PYTHONPATH=src python benchmarks/bench_m3_fleet_throughput.py
"""

from __future__ import annotations

import multiprocessing
import tempfile
from pathlib import Path

from repro import perf
from repro.fleet import (
    CampaignSpec,
    FleetOutcome,
    FleetRunner,
    ResultStore,
    ScenarioGrid,
)

SESSIONS = 48
POOL_JOBS = max(2, multiprocessing.cpu_count())


def _bench_spec(sessions: int) -> CampaignSpec:
    """Longer streams than ``example_spec`` so per-session compute
    dominates pool/fork overhead and the parallel speedup is visible."""
    half = sessions // 2
    return CampaignSpec(
        name="bench-m3",
        base_seed=31337,
        grids=(
            ScenarioGrid(
                scenario="sender_reset",
                params={
                    "k": 25,
                    "reset_after_sends": [200, 300, 400],
                    "messages_after_reset": 400,
                },
                sessions=sessions - half,
            ),
            ScenarioGrid(
                scenario="loss_reset",
                params={
                    "k": 25,
                    "loss_rate": [0.0, 0.02, 0.05],
                    "reset_after_sends": 300,
                    "messages_after_reset": 400,
                },
                sessions=half,
            ),
        ),
    )


def _run_campaign(jobs: int, workdir: str) -> FleetOutcome:
    spec = _bench_spec(SESSIONS)
    store = ResultStore(Path(workdir) / f"jobs{jobs}" / "results.jsonl")
    outcome = FleetRunner(spec, store, jobs=jobs).run()
    assert len(outcome.executed) == SESSIONS
    assert all(record.status == "ok" for record in outcome.executed)
    return outcome


def bench_fleet_serial(benchmark, report_rate):
    with tempfile.TemporaryDirectory() as workdir:
        outcome = benchmark.pedantic(
            lambda: _run_campaign(1, tempfile.mkdtemp(dir=workdir)),
            rounds=3, iterations=1, warmup_rounds=1,
        )
    assert outcome is not None
    report_rate("sessions/s", SESSIONS)


def bench_fleet_pool(benchmark, report_rate):
    with tempfile.TemporaryDirectory() as workdir:
        outcome = benchmark.pedantic(
            lambda: _run_campaign(POOL_JOBS, tempfile.mkdtemp(dir=workdir)),
            rounds=3, iterations=1, warmup_rounds=1,
        )
    assert outcome is not None
    report_rate("sessions/s", SESSIONS)


def main() -> None:
    print(f"fleet throughput, {SESSIONS}-session mixed campaign "
          f"(cpu_count={multiprocessing.cpu_count()})")
    with tempfile.TemporaryDirectory() as workdir:
        results: dict[int, float] = {}
        for jobs in (1, POOL_JOBS):
            with perf.Stopwatch() as clock:
                _run_campaign(jobs, workdir)
            report = perf.measure_rate(
                f"fleet jobs={jobs}", "sessions/s", SESSIONS, clock.elapsed
            )
            results[jobs] = report.rate
            print(f"  {report.format()}")
        speedup = results[POOL_JOBS] / results[1]
        print(f"  pool speedup over serial: {speedup:.2f}x")


if __name__ == "__main__":
    main()
