"""Bench M5 — gateway multiplexing throughput: SAs/second.

The same N-SA crash-recovery workload two ways:

* ``bench_gateway_multiplexed`` — one :class:`~repro.gateway.Gateway`,
  one engine, one event heap for all N SAs (plus the shared-store
  contention model — the recovery FETCH storm is simulated, not free).
* ``bench_separate_engines`` — N independent single-SA simulations,
  each its own engine and private store: the only way to get N SAs
  before the gateway subsystem existed.

Both sides run the identical per-SA schedule (same K, same attempt
budget, same reset instant, same horizon) so the comparison measures
the multiplexing overhead/amortization — shared heap and setup vs N
cold engines — not workload differences.

Also runnable standalone, printing the comparison directly::

    PYTHONPATH=src python benchmarks/bench_m5_gateway.py
"""

from __future__ import annotations

from repro import perf
from repro.core.protocol import build_protocol
from repro.core.reset import reset_at_count
from repro.gateway import Gateway, GatewayCrash
from repro.ipsec.costs import PAPER_COSTS
from repro.sim.trace import NULL_TRACE

N_SAS = 32
K = 50  # the batched gateway sizing (safe for every N; same pinned for both)
CRASH_AFTER = 200
ATTEMPTS = 1600  # covers the post-crash stream + the 32-SA recovery queue
HORIZON = (ATTEMPTS + 10) * PAPER_COSTS.t_send + 20 * PAPER_COSTS.t_save
DOWN = 2 * PAPER_COSTS.t_save


def _run_multiplexed() -> None:
    gateway = Gateway(n_sas=N_SAS, k=K, store_policy="batched")
    GatewayCrash(after_sends=CRASH_AFTER, down_time=DOWN).apply(gateway)
    gateway.start_traffic(count=ATTEMPTS)
    gateway.run(until=HORIZON)
    report = gateway.score()
    assert report.converged, report.bound_violations
    assert report.gateway_crashes == 1


def _run_separate() -> None:
    for sa in range(N_SAS):
        harness = build_protocol(trace=NULL_TRACE, k_p=K, k_q=K, seed=sa)
        reset_at_count(harness.sender, CRASH_AFTER, down_for=DOWN)
        harness.sender.start_traffic(count=ATTEMPTS)
        harness.run(until=HORIZON)
        assert harness.score().converged


def bench_gateway_multiplexed(benchmark, report_rate):
    benchmark.pedantic(_run_multiplexed, rounds=3, iterations=1, warmup_rounds=1)
    report_rate("SAs/s", N_SAS)


def bench_separate_engines(benchmark, report_rate):
    benchmark.pedantic(_run_separate, rounds=3, iterations=1, warmup_rounds=1)
    report_rate("SAs/s", N_SAS)


def main() -> None:
    print(f"gateway multiplexing, {N_SAS} SAs x {ATTEMPTS} attempts, "
          f"crash after {CRASH_AFTER} sends")
    results: dict[str, float] = {}
    for name, fn in (("gateway (1 engine)", _run_multiplexed),
                     ("separate engines", _run_separate)):
        with perf.Stopwatch() as clock:
            fn()
        report = perf.measure_rate(name, "SAs/s", N_SAS, clock.elapsed)
        results[name] = report.rate
        print(f"  {report.format()}")
    ratio = results["gateway (1 engine)"] / results["separate engines"]
    print(f"  gateway vs separate engines: {ratio:.2f}x")


if __name__ == "__main__":
    main()
