"""Bench E10 — w-Delivery under controlled reorder.

Paper shape: a cliff at reorder degree = w; below it every reordered
message is delivered, at or above it reordered messages are discarded
despite being fresh (the observation motivating the paper's reference [2]).
Discrimination (no duplicates) holds throughout.
"""

from repro.experiments import e10_reorder


def bench_reorder_delivery(run_experiment):
    result = run_experiment(
        e10_reorder.run,
        window_sizes=[32, 64],
        degrees=[1, 8, 31, 32, 33, 63, 64, 65, 128],
        messages=2000,
    )
    for row in result.rows:
        if row["degree"] < row["w"]:
            assert row["fresh_discarded"] == 0, row
        else:
            assert row["fresh_discarded"] > 0, row
        assert row["duplicates_delivered"] == 0
