"""Legacy setup shim (environments without the ``wheel`` package).

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` on minimal offline toolchains.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
