"""Acceptance pins for the netpath subsystem.

1. **Golden parity** — a single-phase static ``PathProfile`` is the
   paper's fixed channel, byte for byte: on a no-fault baseline, on the
   ``sender_reset`` scenario, and on a multi-SA ``gateway_crash``, the
   ConvergenceReport metrics with a static profile attached must equal
   the pre-netpath (``path=None``) run exactly.  The netpath layer is a
   refactor of the net contract, not a behavioural change.

2. **Store determinism** — a ``nat_rebinding`` grid run through the
   fleet writes byte-identical result stores modulo ``wall_time``
   across ``--jobs 1`` and ``--jobs 4``: NAT gates, path timelines and
   the replay schedule are all part of the deterministic event
   schedule, not artifacts of execution parallelism.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.core.protocol import build_protocol
from repro.core.convergence import report_metrics
from repro.fleet.results import ResultStore
from repro.fleet.runner import FleetRunner, scenario_metrics
from repro.fleet.spec import CampaignSpec, ScenarioGrid
from repro.net.delay import UniformJitterDelay
from repro.net.loss import BernoulliLoss
from repro.netpath import PathProfile
from repro.sim.trace import NULL_TRACE
from repro.workloads.scenarios import (
    run_gateway_crash_scenario,
    run_sender_reset_scenario,
)


def canonical(metrics: dict) -> str:
    return json.dumps(metrics, sort_keys=True)


class TestGoldenParity:
    def test_baseline_traffic_byte_identical(self):
        """No faults, just a clocked stream: static profile == no profile."""
        reports = []
        for path in (None, PathProfile.static()):
            harness = build_protocol(trace=NULL_TRACE, path=path)
            harness.sender.start_traffic(count=500)
            harness.run(until=1.0)
            reports.append(report_metrics(harness.score()))
        assert canonical(reports[0]) == canonical(reports[1])

    def test_baseline_with_jitter_and_loss_byte_identical(self):
        """The profile's phase models must consume the same RNG stream as
        link-constructor models (clones start in the reset state)."""
        delay = UniformJitterDelay(0.0001, 0.0002)
        loss = BernoulliLoss(0.05)
        reports = []
        for kwargs in (
            dict(delay=delay, loss=loss),
            dict(path=PathProfile.static(delay=delay, loss=loss)),
        ):
            harness = build_protocol(trace=NULL_TRACE, seed=11, **kwargs)
            harness.sender.start_traffic(count=500)
            harness.run(until=1.0)
            reports.append(report_metrics(harness.score(check_bounds=False)))
        assert canonical(reports[0]) == canonical(reports[1])

    def test_sender_reset_scenario_byte_identical(self):
        plain = run_sender_reset_scenario()
        pathed = run_sender_reset_scenario(path=PathProfile.static())
        assert canonical(scenario_metrics(plain)) == canonical(
            scenario_metrics(pathed)
        )

    def test_gateway_crash_scenario_byte_identical(self):
        kwargs = dict(n_sas=4, crash_after_sends=120, messages_after_reset=80)
        plain = run_gateway_crash_scenario(**kwargs)
        pathed = run_gateway_crash_scenario(path=PathProfile.static(), **kwargs)
        assert canonical(plain) == canonical(pathed)


def canonical_lines(path: Path) -> list[str]:
    return [
        re.sub(r'"wall_time":[0-9eE.+-]+', '"wall_time":0', line)
        for line in path.read_text().splitlines()
    ]


class TestStoreDeterminism:
    def test_nat_rebinding_grid_identical_across_jobs_1_and_4(self, tmp_path):
        spec = CampaignSpec(
            name="netpath-jobs",
            base_seed=2003,
            grids=(ScenarioGrid(
                scenario="nat_rebinding",
                params={
                    "policy": ["strict", "rebind_on_valid"],
                    "reset_schedule": ["none", "during"],
                    "rebind_after_sends": 60,
                    "messages_after_rebind": 60,
                },
            ),),
        )
        assert spec.session_count() == 4
        stores = {}
        for jobs in (1, 4):
            store = ResultStore(tmp_path / f"jobs{jobs}" / "results.jsonl")
            outcome = FleetRunner(spec, store, jobs=jobs).run()
            assert len(outcome.executed) == 4
            assert {r.status for r in outcome.executed} == {"ok"}
            stores[jobs] = store
        assert canonical_lines(stores[1].path) == canonical_lines(stores[4].path)
        # The NAT model really ran in the workers: policy-dependent outcomes.
        by_id = {r.task_id: r.metrics for r in stores[1].records()}
        rebinds = {tid: m["nat"]["rebinds"] for tid, m in by_id.items()}
        assert set(rebinds.values()) == {0, 1}  # strict vs rebind_on_valid
