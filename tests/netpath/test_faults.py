"""Tests for repro.netpath.faults and their fleet JSON round-trip."""

from __future__ import annotations

import json

import pytest

from repro.core.protocol import build_protocol
from repro.fleet.spec import (
    PATHFAULT_TAG,
    PATHPROFILE_TAG,
    CampaignSpec,
    ScenarioGrid,
    decode_params,
    encode_params,
)
from repro.gateway import Gateway
from repro.net.delay import FixedDelay
from repro.net.link import Link
from repro.net.loss import BernoulliLoss
from repro.netpath import (
    NatRebinding,
    PathEnv,
    PathFlap,
    PathOutage,
    PathPhase,
    PathProfile,
    RegimeShift,
    path_fault_from_dict,
)
from repro.sim.engine import Engine
from repro.sim.trace import NULL_TRACE


def make_link():
    engine = Engine(trace=NULL_TRACE)
    delivered = []
    link = Link(engine, "l", sink=delivered.append)
    return engine, link, delivered


class TestPathOutage:
    def test_blackholes_exactly_the_window(self):
        engine, link, delivered = make_link()
        PathOutage(at=0.001, duration=0.001).apply(PathEnv(engine, link=link))
        for t in (0.0005, 0.0015, 0.0025):
            engine.call_at(t, link.send, t)
        engine.run()
        assert delivered == [0.0005, 0.0025]
        assert link.blackholed == 1

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            PathOutage(at=0.0, duration=0.0)

    def test_needs_a_link(self):
        with pytest.raises(ValueError, match="needs a link"):
            PathOutage(at=0.0, duration=1.0).apply(PathEnv(Engine()))


class TestPathFlap:
    def test_cycles_open_and_close(self):
        engine, link, delivered = make_link()
        flap = PathFlap(at=0.001, down_time=0.001, up_time=0.001, cycles=2)
        assert flap.ends_at == pytest.approx(0.004)
        flap.apply(PathEnv(engine, link=link))
        # down: [1ms, 2ms) and [3ms, 4ms); up elsewhere
        times = [0.0005, 0.0015, 0.0025, 0.0035, 0.0045]
        for t in times:
            engine.call_at(t, link.send, t)
        engine.run()
        assert delivered == [0.0005, 0.0025, 0.0045]
        assert link.blackholed == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="cycles"):
            PathFlap(at=0.0, down_time=1.0, up_time=1.0, cycles=0)
        with pytest.raises(ValueError, match="down_time"):
            PathFlap(at=0.0, down_time=0.0, up_time=1.0)


class TestRegimeShift:
    def test_swaps_models_at_the_instant(self):
        engine, link, delivered = make_link()
        RegimeShift(
            at=0.001,
            phase=PathPhase("bad", loss=BernoulliLoss(1.0)),
        ).apply(PathEnv(engine, link=link))
        engine.call_at(0.0005, link.send, "before")
        engine.call_at(0.0015, link.send, "after")
        engine.run()
        assert delivered == ["before"]
        assert link.regime_shifts == 1

    def test_accepts_phase_as_dict(self):
        shift = RegimeShift(at=0.0, phase={"name": "x", "duration": None})
        assert isinstance(shift.phase, PathPhase)


class TestNatRebinding:
    def test_after_sends_moves_the_sender_address(self):
        harness = build_protocol(trace=NULL_TRACE, sender_address="nat:a")
        env = PathEnv(harness.engine, link=harness.link, sender=harness.sender)
        NatRebinding(after_sends=3, new_address="nat:b").apply(env)
        harness.sender.start_traffic(count=6)
        harness.run(until=1.0)
        srcs = [p for _, p in harness.receiver.delivered_log]
        assert harness.sender.address == "nat:b"
        assert len(srcs) == 6

    def test_needs_exactly_one_trigger_at_construction(self):
        """Misconfigured faults must fail at spec-authoring time, before
        they can JSON-encode into a campaign and error mid-fleet-run."""
        with pytest.raises(ValueError, match="exactly one trigger"):
            NatRebinding(new_address="x")
        with pytest.raises(ValueError, match="exactly one trigger"):
            NatRebinding(new_address="x", at=1.0, after_sends=1)

    def test_rejects_empty_address(self):
        with pytest.raises(ValueError, match="new_address"):
            NatRebinding(new_address="")


ALL_FAULTS = [
    PathOutage(at=0.5, duration=0.25),
    PathFlap(at=0.1, down_time=0.05, up_time=0.1, cycles=3),
    RegimeShift(at=1.0, phase=PathPhase(
        "congested", delay=FixedDelay(0.002), loss=BernoulliLoss(0.1)
    )),
    NatRebinding(new_address="nat:b", after_sends=100),
]


class TestJsonRoundTrip:
    @pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.kind)
    def test_fault_dict_round_trip(self, fault):
        data = json.loads(json.dumps(fault.to_dict()))
        assert path_fault_from_dict(data) == fault

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown path fault kind"):
            path_fault_from_dict({"kind": "gremlin"})

    @pytest.mark.parametrize("fault", ALL_FAULTS, ids=lambda f: f.kind)
    def test_fleet_codec_tags_faults(self, fault):
        encoded = encode_params({"fault": fault})
        assert set(encoded["fault"]) == {PATHFAULT_TAG}
        decoded = decode_params(json.loads(json.dumps(encoded)))
        assert decoded["fault"] == fault

    def test_fleet_codec_tags_profiles(self):
        profile = PathProfile(
            cycle=True,
            phases=(
                PathPhase("good", duration=0.01),
                PathPhase("bad", duration=0.01, loss=BernoulliLoss(0.5)),
            ),
        )
        encoded = encode_params({"path": profile})
        assert set(encoded["path"]) == {PATHPROFILE_TAG}
        decoded = decode_params(json.loads(json.dumps(encoded)))
        assert decoded["path"].to_dict() == profile.to_dict()

    def test_spec_file_round_trip_with_path_params(self, tmp_path):
        """A campaign spec carrying a PathProfile survives dump/load and
        expands to identical tasks (the netpath fleet guarantee)."""
        profile = PathProfile(phases=(
            PathPhase("calm", duration=0.002),
            PathPhase("storm", loss=BernoulliLoss(0.02)),
        ))
        spec = CampaignSpec(
            name="netpath-rt",
            base_seed=11,
            grids=(ScenarioGrid(
                scenario="nat_rebinding",
                params={
                    "rebind_after_sends": 50,
                    "messages_after_rebind": 50,
                    "policy": ["strict", "rebind_on_valid"],
                    "path": profile,
                },
            ),),
        )
        path = spec.dump(tmp_path / "spec.json")
        loaded = CampaignSpec.load(path)
        assert [t.to_dict() for t in loaded.tasks()] == [
            t.to_dict() for t in spec.tasks()
        ]
        decoded = decode_params(loaded.tasks()[0].params)
        assert decoded["path"].to_dict() == profile.to_dict()


class TestGatewayPerSaPaths:
    def test_outage_hits_one_sa_of_n(self):
        gateway = Gateway(n_sas=3, k=50, seed=0)
        gateway.apply_path_fault(1, PathOutage(at=0.0005, duration=0.0005))
        gateway.start_traffic(count=200)
        gateway.run(until=0.01)
        blackholed = [unit.harness.link.blackholed for unit in gateway.sas]
        assert blackholed[1] > 0
        assert blackholed[0] == 0 and blackholed[2] == 0
        report = gateway.score(check_bounds=False)
        assert report.metrics()["replays_accepted"] == 0

    def test_unknown_sa_index_rejected(self):
        gateway = Gateway(n_sas=2, k=50)
        with pytest.raises(KeyError, match="no SA with index"):
            gateway.path_env(9)

    def test_per_sa_profile_override(self):
        hole = PathProfile(phases=(PathPhase("hole", up=False),))
        gateway = Gateway(n_sas=2, k=50, sa_paths={1: hole})
        gateway.start_traffic(count=50)
        gateway.run(until=0.01)
        assert gateway.sas[0].harness.link.blackholed == 0
        assert gateway.sas[1].harness.link.blackholed == 50
