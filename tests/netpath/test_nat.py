"""Tests for repro.netpath.nat, Message.src, and the SA/SAD rebinding policy."""

from __future__ import annotations

import pytest

from repro.core.protocol import build_protocol
from repro.ipsec.sa import REBIND_POLICIES, make_sa
from repro.ipsec.sad import SecurityAssociationDatabase
from repro.net.message import Message
from repro.netpath.nat import NatGate
from repro.sim.trace import NULL_TRACE


class TestMessageSrc:
    def test_src_defaults_to_none(self):
        assert Message(seq=1).src is None

    def test_with_meta_preserves_src(self):
        message = Message(seq=1, src="nat:a").with_meta(uid=7)
        assert message.src == "nat:a"
        assert message.get_meta("uid") == 7

    def test_sender_address_stamped_on_packets(self):
        harness = build_protocol(trace=NULL_TRACE, sender_address="nat:a")
        seen = []
        harness.link.add_tap(lambda _t, packet, _inj: seen.append(packet.src))
        harness.sender.send_burst(3)
        harness.sender.address = "nat:b"
        harness.sender.send_burst(2)
        assert seen == ["nat:a"] * 3 + ["nat:b"] * 2

    def test_default_sender_is_addressless(self):
        harness = build_protocol(trace=NULL_TRACE)
        seen = []
        harness.link.add_tap(lambda _t, packet, _inj: seen.append(packet.src))
        harness.sender.send_burst(1)
        assert seen == [None]

    @pytest.mark.parametrize("encap", ["esp", "ah"])
    def test_encapsulated_packets_carry_the_outer_src(self, encap):
        """ESP and AH ride src on the outer header (outside the ICV), so
        a NatGate sees the same addresses as in plain mode."""
        harness = build_protocol(
            trace=NULL_TRACE, encap=encap, sender_address="nat:a"
        )
        seen = []
        harness.link.add_tap(lambda _t, packet, _inj: seen.append(packet.src))
        harness.sender.send_burst(2)
        harness.run(until=0.001)
        assert seen == ["nat:a", "nat:a"]
        assert harness.receiver.delivered_total == 2  # ICV unaffected


class TestSaRebindPolicy:
    def test_policies_are_the_known_set(self):
        assert REBIND_POLICIES == ("static", "strict", "rebind_on_valid")

    def test_sa_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="rebind policy"):
            make_sa("p", "q", seed_or_rng=0, rebind_policy="wander")

    def test_sad_tracks_and_moves_bindings_per_policy(self):
        sad = SecurityAssociationDatabase()
        mobile = make_sa("p", "q", seed_or_rng=0, rebind_policy="rebind_on_valid")
        pinned = make_sa("p", "r", seed_or_rng=1, rebind_policy="strict")
        sad.add(mobile)
        sad.add(pinned)
        sad.bind_peer(mobile, "nat:a")
        sad.bind_peer(pinned, "nat:a")
        assert sad.rebind_peer(mobile, "nat:b")
        assert sad.peer_binding(mobile) == "nat:b"
        assert not sad.rebind_peer(pinned, "nat:b")
        assert sad.peer_binding(pinned) == "nat:a"
        assert sad.rebinds == 1 and sad.rebinds_refused == 1

    def test_remove_clears_binding(self):
        sad = SecurityAssociationDatabase()
        sa = make_sa("p", "q", seed_or_rng=0)
        sad.add(sa)
        sad.bind_peer(sa, "nat:a")
        sad.remove(sa)
        assert sad.peer_binding(sa) is None

    def test_remove_peer_bulk_teardown_clears_bindings(self):
        """The IETF-remedy bulk teardown must not leave stale bindings a
        re-established SA with the same SPI would inherit."""
        sad = SecurityAssociationDatabase()
        sa = make_sa("p", "q", seed_or_rng=0)
        sad.add(sa)
        sad.bind_peer(sa, "nat:a")
        assert sad.remove_peer("p", "q") == 1
        reborn = make_sa("p", "q", seed_or_rng=1, spi=sa.spi)
        sad.add(reborn)
        assert sad.peer_binding(reborn) is None


def gated_harness(policy: str, **kwargs):
    harness = build_protocol(
        trace=NULL_TRACE, sender_address="nat:a", **kwargs
    )
    gate = NatGate(harness.receiver, policy=policy, initial_binding="nat:a")
    harness.link.sink = gate.on_receive
    return harness, gate


class TestNatGate:
    def test_rejects_unknown_policy(self):
        harness = build_protocol(trace=NULL_TRACE)
        with pytest.raises(ValueError, match="rebind policy"):
            NatGate(harness.receiver, policy="wander")

    def test_sad_and_sa_must_come_together(self):
        harness = build_protocol(trace=NULL_TRACE)
        with pytest.raises(ValueError, match="together"):
            NatGate(harness.receiver, sad=SecurityAssociationDatabase())

    def test_rebind_on_valid_moves_binding_once(self):
        harness, gate = gated_harness("rebind_on_valid")
        harness.sender.send_burst(5)
        harness.sender.address = "nat:b"
        harness.sender.send_burst(5)
        harness.run(until=0.01)
        assert gate.binding == "nat:b"
        assert gate.rebinds == 1
        assert harness.receiver.delivered_total == 10

    def test_strict_drops_the_moved_stream(self):
        harness, gate = gated_harness("strict")
        harness.sender.send_burst(5)
        harness.sender.address = "nat:b"
        harness.sender.send_burst(5)
        harness.run(until=0.01)
        assert gate.binding == "nat:a"
        assert gate.rejected == 5
        assert harness.receiver.delivered_total == 5

    def test_static_forwards_everything_without_rebinding(self):
        harness, gate = gated_harness("static")
        harness.sender.send_burst(3)
        harness.sender.address = "nat:b"
        harness.sender.send_burst(3)
        harness.run(until=0.01)
        assert gate.binding == "nat:a"
        assert gate.rebinds == 0 and gate.rejected == 0
        assert harness.receiver.delivered_total == 6

    def test_window_invalid_packet_does_not_rebind(self):
        """A replay from a new address must not move the binding."""
        harness, gate = gated_harness("rebind_on_valid", with_adversary=True)
        harness.sender.send_burst(5)
        harness.run(until=0.001)
        # Replay a recorded (old-binding) packet... but pretend the
        # adversary moved: inject a stale copy re-stamped from nat:evil.
        _, recorded = harness.adversary.recorded[0]
        forged = Message(
            seq=recorded.seq, payload=recorded.payload,
            sent_at=recorded.sent_at, meta=recorded.meta, src="nat:evil",
        )
        harness.adversary.inject_now(forged)
        harness.run(until=0.002)
        assert gate.binding == "nat:a"  # replay was rejected, no rebind
        assert gate.rebinds == 0
        assert gate.off_binding == 1

    def test_first_contact_latches_binding(self):
        harness = build_protocol(trace=NULL_TRACE, sender_address="nat:a")
        gate = NatGate(harness.receiver, policy="strict", initial_binding=None)
        harness.link.sink = gate.on_receive
        harness.sender.send_burst(2)
        harness.run(until=0.001)
        assert gate.binding == "nat:a"
        assert gate.rejected == 0

    def test_sad_backed_gate_moves_the_sad_binding(self):
        """With sad/sa wired, the SAD holds the authoritative binding and
        the SA's negotiated policy overrides the gate argument."""
        sad = SecurityAssociationDatabase()
        sa = make_sa("p", "q", seed_or_rng=3, rebind_policy="rebind_on_valid")
        sad.add(sa)
        harness = build_protocol(trace=NULL_TRACE, sender_address="nat:a")
        gate = NatGate(
            harness.receiver, policy="strict",  # overridden by the SA
            sad=sad, sa=sa, initial_binding="nat:a",
        )
        harness.link.sink = gate.on_receive
        assert gate.policy == "rebind_on_valid"
        assert sad.peer_binding(sa) == "nat:a"
        harness.sender.send_burst(3)
        harness.sender.address = "nat:b"
        harness.sender.send_burst(3)
        harness.run(until=0.01)
        assert sad.peer_binding(sa) == "nat:b"
        assert gate.binding == "nat:b"
        assert sad.rebinds == 1
        assert harness.receiver.delivered_total == 6
