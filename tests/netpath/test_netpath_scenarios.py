"""End-to-end tests for the netpath scenarios and the rekey storm."""

from __future__ import annotations

import json

import pytest

from repro.fleet.runner import execute_task, scenario_metrics
from repro.fleet.spec import FleetTask, encode_params
from repro.workloads.scenarios import (
    SCENARIOS,
    run_mobile_handover_scenario,
    run_nat_rebinding_scenario,
    run_path_flap_scenario,
    run_rekey_storm_scenario,
)

SMALL = dict(rebind_after_sends=80, messages_after_rebind=80)


class TestRegistry:
    def test_netpath_scenarios_registered(self):
        assert {"nat_rebinding", "path_flap", "mobile_handover",
                "rekey_storm"} <= set(SCENARIOS)


class TestNatRebindingScenario:
    def test_rebind_on_valid_converges_with_one_rebind(self):
        result = run_nat_rebinding_scenario(**SMALL)
        assert result.report.converged
        assert result.report.replays_accepted == 0
        assert result.extra["nat"]["rebinds"] == 1
        assert result.extra["nat"]["binding"] == "nat:b"
        # The full stream was delivered despite the rebinding.
        assert result.report.audit.delivered_uids == 160

    def test_strict_policy_kills_the_tunnel(self):
        result = run_nat_rebinding_scenario(policy="strict", **SMALL)
        nat = result.extra["nat"]
        assert nat["rebinds"] == 0 and nat["binding"] == "nat:a"
        assert nat["rejected"] > 0
        assert result.report.audit.delivered_uids == 80  # pre-rebinding only
        assert result.report.replays_accepted == 0

    def test_replayed_old_binding_history_is_rejected(self):
        result = run_nat_rebinding_scenario(**SMALL)
        assert result.extra["adversary_injections"] > 0
        assert result.report.replays_accepted == 0

    def test_reset_during_rebinding_stays_safe(self):
        result = run_nat_rebinding_scenario(reset_schedule="during", **SMALL)
        assert len(result.harness.sender.reset_records) == 1
        assert result.report.replays_accepted == 0
        assert result.report.converged

    def test_unknown_reset_schedule_rejected(self):
        with pytest.raises(ValueError, match="reset_schedule"):
            run_nat_rebinding_scenario(reset_schedule="sometime", **SMALL)

    def test_deterministic_across_runs(self):
        first = scenario_metrics(run_nat_rebinding_scenario(**SMALL))
        second = scenario_metrics(run_nat_rebinding_scenario(**SMALL))
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


class TestPathFlapScenario:
    def test_windows_blackhole_traffic(self):
        result = run_path_flap_scenario(messages=300, flap_after_sends=80)
        assert result.extra["blackholed"] > 0
        assert result.report.audit.never_arrived == result.extra["blackholed"]
        assert result.report.replays_accepted == 0

    def test_reset_during_a_dark_window(self):
        result = run_path_flap_scenario(
            messages=300, flap_after_sends=80, reset_schedule="during"
        )
        assert len(result.harness.sender.reset_records) == 1
        record = result.harness.sender.reset_records[0]
        assert record.resume_time is not None  # recovered through the flap
        assert result.report.replays_accepted == 0


class TestMobileHandoverScenario:
    def test_handover_composes_all_three_faults(self):
        result = run_mobile_handover_scenario(
            handover_after_sends=80, messages_after_handover=80
        )
        assert result.extra["blackholed"] > 0  # the association gap
        assert result.extra["regime_shifts"] == 1  # the visited network
        assert result.extra["nat"]["rebinds"] == 1  # the new binding
        assert result.report.replays_accepted == 0

    def test_runs_through_the_fleet_worker(self):
        task = FleetTask(
            task_id="t0",
            scenario="mobile_handover",
            params=encode_params(dict(
                handover_after_sends=60, messages_after_handover=60,
            )),
            seed=3,
        )
        record = execute_task(task)
        assert record.status == "ok", record.error
        assert record.metrics["replays_accepted"] == 0
        assert record.metrics["nat"]["rebinds"] == 1


class TestRekeyStormScenario:
    def test_storm_beats_sequential_but_pays_cpu_contention(self):
        metrics = run_rekey_storm_scenario(n_sas=4)
        assert metrics["storm_speedup"] > 1.0  # RTTs overlap
        assert metrics["cpu_max_wait_s"] > 0  # but crypto serialized
        assert metrics["rekey_storm_time_s"] < metrics["rekey_sequential_time_s"]
        assert metrics["savefetch_time_s"] < metrics["rekey_storm_time_s"]
        assert metrics["messages"] == 4 * 9  # 9 ISAKMP messages per SA

    def test_uncontended_ablation_is_faster(self):
        contended = run_rekey_storm_scenario(n_sas=4)
        free = run_rekey_storm_scenario(n_sas=4, contended=False)
        assert free["rekey_storm_time_s"] < contended["rekey_storm_time_s"]
        assert free["cpu_max_wait_s"] == 0.0

    def test_deterministic_and_json_safe(self):
        first = run_rekey_storm_scenario(n_sas=2, seed=5)
        second = run_rekey_storm_scenario(n_sas=2, seed=5)
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
