"""Tests for repro.netpath.profile: phases, profiles, timelines."""

from __future__ import annotations

import json
import math

import pytest

from repro.net.delay import FixedDelay, UniformJitterDelay
from repro.net.link import Link
from repro.net.loss import BernoulliLoss, GilbertElliottLoss
from repro.netpath.profile import PathPhase, PathProfile
from repro.sim.engine import Engine
from repro.sim.trace import NULL_TRACE


class TestPathPhase:
    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            PathPhase(name="")

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            PathPhase(name="x", duration=0.0)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            PathPhase(name="x", duration=1.0, jitter=1.0)

    def test_rejects_jitter_on_terminal_phase(self):
        with pytest.raises(ValueError, match="terminal"):
            PathPhase(name="x", duration=None, jitter=0.1)

    def test_dict_round_trip_preserves_everything(self):
        phase = PathPhase(
            name="burst",
            duration=0.25,
            delay=UniformJitterDelay(0.001, 0.002),
            loss=GilbertElliottLoss(0.1, 0.3, 0.0, 0.9),
            up=False,
            fifo=False,
            jitter=0.2,
        )
        data = json.loads(json.dumps(phase.to_dict()))
        rebuilt = PathPhase.from_dict(data)
        assert rebuilt.to_dict() == phase.to_dict()
        assert rebuilt.up is False and rebuilt.fifo is False


class TestPathProfile:
    def test_needs_at_least_one_phase(self):
        with pytest.raises(ValueError, match="at least one"):
            PathProfile(phases=())

    def test_non_final_phase_needs_duration(self):
        with pytest.raises(ValueError, match="final phase"):
            PathProfile(phases=(
                PathPhase(name="a"),
                PathPhase(name="b", duration=1.0),
            ))

    def test_cycle_requires_every_duration(self):
        with pytest.raises(ValueError, match="final phase"):
            PathProfile(phases=(PathPhase(name="a"),), cycle=True)

    def test_static_detection(self):
        assert PathProfile.static().is_static
        assert not PathProfile(phases=(PathPhase("a", duration=1.0),)).is_static
        assert not PathProfile(
            phases=(PathPhase("hole", up=False),)
        ).is_static  # a forever-down phase is not the fixed channel

    def test_json_round_trip(self):
        profile = PathProfile(
            cycle=True,
            phases=(
                PathPhase("good", duration=0.1, loss=BernoulliLoss(0.01)),
                PathPhase("bad", duration=0.05, up=False, jitter=0.1),
            ),
        )
        data = json.loads(json.dumps(profile.to_dict()))
        assert PathProfile.from_dict(data).to_dict() == profile.to_dict()

    def test_phases_accepts_plain_dicts(self):
        profile = PathProfile(phases=({"name": "a", "duration": None},))
        assert profile.phases[0] == PathPhase("a")


class TestPathTimeline:
    def test_walks_phases_in_order(self):
        profile = PathProfile(phases=(
            PathPhase("a", duration=1.0),
            PathPhase("b", duration=2.0),
            PathPhase("c"),
        ))
        timeline = profile.bind(0)
        assert timeline.phase.name == "a" and timeline.next_change == 1.0
        timeline.advance(1.0)
        assert timeline.phase.name == "b" and timeline.next_change == 3.0
        timeline.advance(5.0)
        assert timeline.phase.name == "c"
        assert math.isinf(timeline.next_change)
        assert timeline.transitions == 2
        assert [name for _, name in timeline.log] == ["a", "b", "c"]

    def test_advance_crosses_many_boundaries_at_once(self):
        profile = PathProfile(
            cycle=True,
            phases=(PathPhase("x", duration=1.0), PathPhase("y", duration=1.0)),
        )
        timeline = profile.bind(0)
        timeline.advance(10.5)
        assert timeline.transitions == 10
        assert timeline.phase.name == "x"

    def test_jitter_is_deterministic_per_seed(self):
        profile = PathProfile(
            cycle=True,
            phases=(PathPhase("x", duration=1.0, jitter=0.5),),
        )
        first = profile.bind(7)
        second = profile.bind(7)
        other = profile.bind(8)
        for _ in range(5):
            first.advance(first.next_change)
            second.advance(second.next_change)
            other.advance(other.next_change)
        assert [t for t, _ in first.log] == [t for t, _ in second.log]
        assert [t for t, _ in first.log] != [t for t, _ in other.log]

    def test_phase_models_enter_fresh_each_entry(self):
        """A re-entered Gilbert-Elliott phase starts GOOD again."""
        profile = PathProfile(
            cycle=True,
            phases=(
                PathPhase("lossy", duration=1.0,
                          loss=GilbertElliottLoss(1.0, 0.0)),
                PathPhase("clean", duration=1.0),
            ),
        )
        timeline = profile.bind(0)
        first_model = timeline.loss
        assert first_model is not None
        import random
        rng = random.Random(0)
        first_model.should_drop(rng)
        assert first_model.in_bad_state
        timeline.advance(2.0)  # lossy re-entered on the second cycle
        assert timeline.phase.name == "lossy"
        assert timeline.loss is not first_model
        assert not timeline.loss.in_bad_state


class TestLinkIntegration:
    def _link(self, profile, seed=0):
        engine = Engine(trace=NULL_TRACE)
        delivered = []
        link = Link(engine, "l", sink=delivered.append, path=profile, seed=seed)
        return engine, link, delivered

    def test_static_profile_keeps_hot_path_unarmed(self):
        _, link, _ = self._link(PathProfile.static())
        assert link._timeline is None  # resolved at construction

    def test_blackhole_phase_drops_offered_packets(self):
        profile = PathProfile(phases=(
            PathPhase("up", duration=0.001),
            PathPhase("hole", duration=0.001, up=False),
            PathPhase("up2"),
        ))
        engine, link, delivered = self._link(profile)
        for t in (0.0005, 0.0015, 0.0025):
            engine.call_at(t, link.send, t)
        engine.run()
        assert delivered == [0.0005, 0.0025]
        assert link.blackholed == 1 and link.dropped == 1
        assert link.path_transitions == 2

    def test_phase_models_override_and_inherit_base(self):
        profile = PathProfile(phases=(
            PathPhase("lossy", duration=0.001, loss=BernoulliLoss(1.0)),
            PathPhase("inherit"),
        ))
        engine, link, delivered = self._link(profile)
        base_loss = link._base_loss
        for t in (0.0005, 0.0015):
            engine.call_at(t, link.send, t)
        engine.run()
        assert delivered == [0.0015]  # first packet eaten by the lossy phase
        assert link.loss is base_loss  # inherited back after the transition

    def test_phase_fifo_override(self):
        profile = PathProfile(phases=(
            PathPhase("ordered", duration=0.001, fifo=True),
            PathPhase("free", fifo=False),
        ))
        engine, link, _ = self._link(profile)
        assert link.fifo is True
        engine.call_at(0.002, link.send, "x")
        engine.run()
        assert link.fifo is False

    def test_timed_final_phase_runs_on_forever(self):
        """A non-cycling profile whose last phase is timed: the timeline
        parks at infinity once the duration elapses (no repeated checks,
        no phantom transition)."""
        profile = PathProfile(phases=(PathPhase("only", duration=1.0),))
        timeline = profile.bind(0)
        timeline.advance(5.0)
        assert timeline.phase.name == "only"
        assert timeline.transitions == 0
        assert math.isinf(timeline.next_change)
