"""Bounded model checking of the paper's protocols.

These are the machine-checked versions of the paper's claims:

* unprotected: the explorer *finds* the Section 3 attacks;
* SAVE/FETCH: exhaustively safe in the paper's stated scope
  (single-sided resets, lossless channel);
* SAVE/FETCH outside that scope: counterexamples exist (loss before a
  receiver reset; staggered dual resets) — this reproduction's finding;
* the ceiling repair: safe even in those configurations.

Configurations are kept small so the whole file runs in seconds.
"""

from dataclasses import replace

import pytest

from repro.apn.specs import SpecConfig, make_savefetch_system, make_unprotected_system
from repro.apn.specs_ceiling import make_ceiling_system
from repro.verify.explorer import StateExplorer

SMALL = SpecConfig(w=2, k=1, max_seq=4, chan_cap=2, max_replays=1)


class TestUnprotectedCounterexamples:
    def test_sender_reset_reuse_found(self):
        config = replace(SMALL, max_resets_p=1, max_resets_q=0)
        result = StateExplorer(make_unprotected_system(config)).explore()
        assert not result.ok
        assert any("reused" in v.error for v in result.violations)

    def test_counterexample_trace_is_concrete_and_short(self):
        config = replace(SMALL, max_resets_p=1, max_resets_q=0)
        result = StateExplorer(make_unprotected_system(config)).explore()
        violation = result.violations[0]
        assert violation.trace  # a replayable action sequence
        assert violation.trace[0].startswith("p.")
        assert len(violation.trace) <= 8  # BFS gives a minimal witness

    def test_receiver_reset_replay_found(self):
        config = replace(SMALL, max_resets_p=0, max_resets_q=1, max_replays=2)
        result = StateExplorer(make_unprotected_system(config)).explore()
        assert not result.ok
        assert any("Discrimination" in v.error for v in result.violations)

    def test_no_faults_no_violations(self):
        config = replace(SMALL, max_resets_p=0, max_resets_q=0, max_replays=0)
        result = StateExplorer(make_unprotected_system(config)).explore()
        assert result.ok


class TestSaveFetchTheorems:
    """Section 5, machine-checked for the bounded instance."""

    def test_sender_resets_safe(self):
        config = replace(SMALL, max_resets_p=1, max_resets_q=0, max_replays=2)
        result = StateExplorer(make_savefetch_system(config)).explore()
        assert result.ok, result.summary()
        assert result.states_explored > 1000

    def test_receiver_resets_safe(self):
        config = replace(SMALL, max_resets_p=0, max_resets_q=1, max_replays=2)
        result = StateExplorer(make_savefetch_system(config)).explore()
        assert result.ok, result.summary()

    def test_sender_resets_safe_even_with_loss(self):
        config = replace(
            SMALL, max_resets_p=1, max_resets_q=0, max_replays=1, with_loss=True
        )
        result = StateExplorer(make_savefetch_system(config)).explore()
        assert result.ok, result.summary()


class TestSaveFetchBoundaries:
    """Outside the proofs' implicit hypotheses, counterexamples exist."""

    def test_sizing_rule_is_necessary(self):
        """Without 'at most one SAVE in flight', FETCH under-reads."""
        config = replace(
            SMALL, max_resets_p=1, max_resets_q=0, enforce_sizing=False, max_seq=5
        )
        result = StateExplorer(make_savefetch_system(config)).explore()
        assert not result.ok
        assert any("reused" in v.error for v in result.violations)

    def test_loss_before_receiver_reset_breaks_no_replay(self):
        config = replace(
            SMALL, max_resets_p=0, max_resets_q=1, with_loss=True, max_replays=2
        )
        result = StateExplorer(make_savefetch_system(config)).explore()
        assert not result.ok
        assert any("Discrimination" in v.error for v in result.violations)

    def test_staggered_dual_reset_breaks_no_replay(self):
        config = replace(SMALL, max_resets_p=1, max_resets_q=1, max_replays=2, max_seq=5)
        result = StateExplorer(make_savefetch_system(config)).explore()
        assert not result.ok
        trace = result.violations[0].trace
        # The witness interleaves a p reset before the q reset.
        assert "p.reset" in trace and "q.reset" in trace


class TestCeilingRepair:
    """The write-ahead ceiling closes both boundary holes."""

    def test_safe_under_loss_and_receiver_reset(self):
        config = replace(
            SMALL, max_resets_p=0, max_resets_q=1, with_loss=True, max_replays=2
        )
        result = StateExplorer(make_ceiling_system(config)).explore()
        assert result.ok, result.summary()

    def test_safe_under_staggered_dual_resets(self):
        config = replace(SMALL, max_resets_p=1, max_resets_q=1, max_replays=2)
        result = StateExplorer(make_ceiling_system(config)).explore()
        assert result.ok, result.summary()


class TestExplorerMechanics:
    def test_truncation_reported(self):
        config = replace(SMALL, max_resets_p=1, max_resets_q=1)
        explorer = StateExplorer(make_savefetch_system(config), max_states=50,
                                 stop_at_first_violation=False)
        result = explorer.explore()
        assert result.truncated or result.violations

    def test_summary_renders(self):
        config = replace(SMALL, max_resets_p=0, max_resets_q=0, max_replays=0)
        result = StateExplorer(make_unprotected_system(config)).explore()
        assert "OK" in result.summary()
