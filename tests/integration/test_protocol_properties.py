"""Property tests over the whole timed protocol: random fault schedules.

The strongest end-to-end statement this reproduction makes: for *any*
schedule of sender/receiver resets (spaced beyond the recovery time, on a
lossless in-order channel, with a properly sized K), the SAVE/FETCH pair
never reuses a sequence number, never accepts a replay, and every gap
stays within 2K.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import build_protocol
from repro.ipsec.costs import CostModel

COSTS = CostModel(t_save=100e-6, t_send=4e-6, t_fetch=0.0)
# Recovery takes down_time + t_save; keep schedules clear of overlap.
DOWN = 3 * COSTS.t_save
SPACING = 10 * COSTS.t_save

#: A fault: (who, when-slot) — slots are multiplied into spaced times.
FAULT = st.tuples(st.sampled_from(["p", "q"]), st.integers(min_value=1, max_value=30))


@given(faults=st.lists(FAULT, min_size=1, max_size=6, unique_by=lambda f: f[1]))
@settings(max_examples=60, deadline=None)
def test_any_spaced_reset_schedule_converges(faults):
    harness = build_protocol(k_p=50, k_q=50, costs=COSTS, seed=1)
    for who, slot in faults:
        target = harness.sender if who == "p" else harness.receiver
        harness.engine.call_at(slot * SPACING, target.reset, DOWN)
    harness.sender.start_traffic(count=12_000)
    horizon = 31 * SPACING + 12_000 * COSTS.t_send
    harness.run(until=horizon)

    report = harness.score()
    assert report.converged, report.bound_violations
    assert report.replays_accepted == 0
    # No sequence number ever reused on the wire.
    seqs = [
        record.detail["seq"]
        for record in harness.engine.trace.filter(source="p", kind="send")
    ]
    assert len(seqs) == len(set(seqs))


@given(
    faults=st.lists(FAULT, min_size=1, max_size=4, unique_by=lambda f: f[1]),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=30, deadline=None)
def test_ceiling_variant_same_guarantee(faults, seed):
    harness = build_protocol(variant="ceiling", k_p=50, k_q=50, costs=COSTS,
                             seed=seed)
    for who, slot in faults:
        target = harness.sender if who == "p" else harness.receiver
        harness.engine.call_at(slot * SPACING, target.reset, DOWN)
    harness.sender.start_traffic(count=8_000)
    harness.run(until=31 * SPACING + 8_000 * COSTS.t_send)
    report = harness.score(check_bounds=False)
    assert report.replays_accepted == 0
    delivered = [seq for _, seq in harness.receiver.delivered_log]
    assert len(delivered) == len(set(delivered))
