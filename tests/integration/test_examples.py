"""Every example script must run clean and print its headline."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", "CONVERGED"),
    ("replay_attack_demo.py", "rejects every replay"),
    ("reset_storm.py", "converged                  : True"),
    ("rekey_vs_savefetch.py", "speedup"),
    ("prolonged_outage.py", "session recovered            : True"),
    ("ipsec_host_demo.py", "no reuse, nothing replayable"),
    ("dead_peer_detection.py", "traffic-based"),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs_clean(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    assert expected in result.stdout


def test_model_check_example_runs_clean():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "model_check_protocols.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.count("SAFE") >= 4
    assert result.stdout.count("COUNTEREXAMPLE") >= 4
