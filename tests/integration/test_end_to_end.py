"""Cross-module integration tests: full scenarios over the whole stack."""

import pytest

from repro.core.protocol import build_protocol
from repro.ipsec.costs import CostModel
from repro.net.delay import UniformJitterDelay
from repro.net.loss import BernoulliLoss

FAST = CostModel(t_save=100e-6, t_send=4e-6, t_fetch=0.0)


class TestLossyChannels:
    def test_bernoulli_loss_never_causes_duplicates(self):
        harness = build_protocol(loss=BernoulliLoss(0.1), seed=3, costs=FAST)
        harness.sender.start_traffic(count=2000)
        harness.run(until=1.0)
        report = harness.score(check_bounds=False)
        assert report.replays_accepted == 0
        assert report.audit.never_arrived > 100  # loss actually happened
        assert report.fresh_discarded == 0  # loss is not discard

    def test_jittered_nonfifo_channel_discrimination_holds(self):
        harness = build_protocol(
            delay=UniformJitterDelay(0.0, 20e-6),
            fifo_link=False,
            seed=4,
            costs=FAST,
            w=64,
        )
        harness.sender.start_traffic(count=2000)
        harness.run(until=1.0)
        report = harness.score(check_bounds=False)
        assert report.replays_accepted == 0
        # Mild jitter (~5 message slots) stays well inside w=64.
        assert report.fresh_discarded == 0

    def test_loss_plus_reset_stays_replay_free_with_ceiling(self):
        """The regime where SAVE/FETCH has a theoretical hole (E8): the
        ceiling variant is unconditionally safe."""
        harness = build_protocol(
            variant="ceiling",
            loss=BernoulliLoss(0.2),
            seed=5,
            costs=FAST,
            with_adversary=True,
        )
        harness.sender.start_traffic(count=1000)
        harness.engine.call_at(0.002, harness.receiver.reset, 0.0005)

        def replay():
            assert harness.adversary is not None
            harness.adversary.replay_history(rate=1e6)

        harness.receiver.add_resume_listener(replay)
        harness.run(until=1.0)
        assert harness.score(check_bounds=False).replays_accepted == 0


class TestEspIntegration:
    def test_esp_reset_recovery_end_to_end(self):
        harness = build_protocol(encap="esp", costs=FAST)
        harness.sender.start_traffic(count=800)
        harness.engine.call_at(0.001, harness.sender.reset, 0.0003)
        harness.engine.call_at(0.002, harness.receiver.reset, 0.0003)
        harness.run(until=1.0)
        report = harness.score()
        assert report.converged, report.bound_violations
        assert harness.receiver.integrity_failures == 0

    def test_cross_sa_packets_rejected_by_integrity(self):
        """Traffic sealed under one SA pair bounces off another."""
        harness_a = build_protocol(encap="esp", seed=1, costs=FAST)
        harness_b = build_protocol(encap="esp", seed=2, costs=FAST)
        harness_a.sender.start_traffic(count=10)
        harness_a.run(until=1.0)
        # Feed A's packets into B's receiver (same SPI space is unlikely;
        # integrity must reject regardless).
        for _, packet in harness_a.adversary.recorded if harness_a.adversary else []:
            harness_b.receiver.on_receive(packet)
        # Direct path: seal under A, offer to B.
        from repro.ipsec.esp import esp_seal

        foreign = esp_seal(harness_a.sa_pair.forward, 1, b"alien")
        harness_b.receiver.on_receive(foreign)
        assert harness_b.receiver.integrity_failures == 1
        assert harness_b.receiver.delivered_total == 0


class TestWindowImplEquivalenceInSitu:
    @pytest.mark.parametrize("impl", ["array", "bitmap"])
    def test_full_scenario_same_results(self, impl):
        harness = build_protocol(window_impl=impl, seed=9, costs=FAST)
        harness.sender.start_traffic(count=600)
        harness.engine.call_at(0.001, harness.receiver.reset, 0.0002)
        harness.run(until=1.0)
        report = harness.score()
        assert report.converged
        # Both implementations deliver the identical sequence stream.
        delivered = [seq for _, seq in harness.receiver.delivered_log]
        assert delivered == sorted(delivered)

    def test_array_and_bitmap_bitwise_identical_run(self):
        def run_with(impl: str) -> list[tuple[float, int]]:
            harness = build_protocol(window_impl=impl, seed=11, costs=FAST)
            harness.sender.start_traffic(count=400)
            harness.engine.call_at(0.0008, harness.receiver.reset, 0.0002)
            harness.run(until=1.0)
            return harness.receiver.delivered_log

        assert run_with("array") == run_with("bitmap")


class TestTimedVsApnCrossValidation:
    """The timed receiver and the APN window function agree verdict-for-
    verdict on identical receive sequences."""

    def test_same_accept_decisions(self):
        import random

        from repro.apn.specs import window_update
        from repro.ipsec.replay_window import BitmapReplayWindow

        rng = random.Random(13)
        w = 8
        window = BitmapReplayWindow(w)
        r, wdw = 0, (True,) * w
        seq = 0
        for _ in range(500):
            seq += 1
            probe = max(1, seq - rng.randrange(0, 12))
            timed = window.update(probe).accepted
            apn_accepted, r, wdw = window_update(r, wdw, probe, w)
            assert timed == apn_accepted
            assert r == window.right_edge
