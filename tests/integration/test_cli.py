"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "CONVERGED" in out

    def test_spec_savefetch(self, capsys):
        assert main(["spec", "savefetch"]) == 0
        out = capsys.readouterr().out
        assert "protocol savefetch" in out
        assert "process p" in out

    def test_spec_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["spec", "quantum"])

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "e08"]) == 0
        out = capsys.readouterr().out
        assert "E8" in out and "staggered-vulnerable" in out

    def test_experiments_unknown_id(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiments", "e99"])

    def test_check_small_budget(self, capsys):
        assert main(["check", "--budget", "3000"]) == 0
        out = capsys.readouterr().out
        assert "COUNTEREXAMPLE" in out  # unprotected cases fail fast
        assert "unprotected / p resets" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
