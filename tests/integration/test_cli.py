"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "CONVERGED" in out

    def test_spec_savefetch(self, capsys):
        assert main(["spec", "savefetch"]) == 0
        out = capsys.readouterr().out
        assert "protocol savefetch" in out
        assert "process p" in out

    def test_spec_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["spec", "quantum"])

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "e08"]) == 0
        out = capsys.readouterr().out
        assert "E8" in out and "staggered-vulnerable" in out

    def test_experiments_unknown_id(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiments", "e99"])

    def test_experiments_only_flag(self, capsys):
        assert main(["experiments", "--only", "e13"]) == 0
        out = capsys.readouterr().out
        assert "E13" in out and "completed in" in out

    def test_experiments_jobs_flag_parallel(self, capsys):
        assert main(["experiments", "--only", "e13", "--jobs", "2"]) == 0
        assert "E13" in capsys.readouterr().out

    def test_experiments_jobs_must_be_positive(self, capsys):
        assert main(["experiments", "--only", "e13", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_experiments_resume_persists_store(self, tmp_path, capsys):
        args = ["experiments", "--only", "e13", "--resume", "--out", str(tmp_path)]
        assert main(args) == 0
        store = tmp_path / "e13.jsonl"
        assert store.exists()
        size_after_first = store.stat().st_size
        capsys.readouterr()
        # Re-run: everything resumes from the store, nothing re-executes,
        # and the rendered table is identical.
        assert main(args) == 0
        assert store.stat().st_size == size_after_first
        assert "E13" in capsys.readouterr().out

    def test_gateway_compares_all_policies(self, capsys):
        args = ["gateway", "--sas", "4", "--crash-after", "80",
                "--messages", "80"]
        assert main(args) == 0
        out = capsys.readouterr().out
        for policy in ("serial", "batched", "write_ahead"):
            assert policy in out
        assert "spread" in out

    def test_gateway_pinned_policy(self, capsys):
        args = ["gateway", "--sas", "2", "--policy", "batched",
                "--crash-after", "60", "--messages", "60"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "batched" in out and "serial" not in out

    def test_gateway_rejects_zero_sas(self, capsys):
        assert main(["gateway", "--sas", "0"]) == 2
        assert "--sas must be >= 1" in capsys.readouterr().err

    def test_gateway_rejects_bad_crash_after(self, capsys):
        assert main(["gateway", "--crash-after", "0"]) == 2
        assert "--crash-after must be >= 1" in capsys.readouterr().err

    def test_fleet_sample_includes_gateway_grid(self, capsys):
        assert main(["fleet", "--sample"]) == 0
        out = capsys.readouterr().out
        assert '"gateway_crash"' in out
        assert '"store_policy"' in out

    def write_small_spec(self, tmp_path):
        import json

        from repro.fleet.spec import example_spec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(example_spec(sessions=8).to_dict()))
        return spec_path

    def test_fleet_runs_on_sharded_store_and_writes_aggregate(
        self, tmp_path, capsys
    ):
        import json

        spec_path = self.write_small_spec(tmp_path)
        out_dir = tmp_path / "runs"
        args = ["fleet", str(spec_path), "--out", str(out_dir),
                "--store", "sharded", "--shard-bits", "2"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[sharded]" in out
        assert (out_dir / "results.shards" / "store_meta.json").exists()
        aggregate = json.loads((out_dir / "aggregate.json").read_text())
        assert aggregate["tasks"] == 8
        assert aggregate["errors"] == 0
        assert aggregate["percentile_mode"] == "exact"
        # Resume autodetects the backend without --store and reruns nothing.
        assert main(["fleet", str(spec_path), "--out", str(out_dir)]) == 0
        assert "(8 resumed from store)" in capsys.readouterr().out

    def test_fleet_sqlite_store(self, tmp_path, capsys):
        spec_path = self.write_small_spec(tmp_path)
        out_dir = tmp_path / "runs"
        args = ["fleet", str(spec_path), "--out", str(out_dir),
                "--store", "sqlite"]
        assert main(args) == 0
        assert (out_dir / "results.sqlite").exists()
        assert "[sqlite]" in capsys.readouterr().out

    def test_fleet_sample_count_runs_subsample(self, tmp_path, capsys):
        import json

        from repro.fleet.spec import example_spec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(example_spec(sessions=40).to_dict()))
        out_dir = tmp_path / "runs"
        args = ["fleet", str(spec_path), "--out", str(out_dir),
                "--sample", "10", "--store", "sharded"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "sampled of 40" in out
        aggregate = json.loads((out_dir / "aggregate.json").read_text())
        assert 0 < aggregate["tasks"] < 40

    def test_fleet_bare_sample_with_spec_is_an_error(self, tmp_path, capsys):
        spec_path = self.write_small_spec(tmp_path)
        assert main(["fleet", str(spec_path), "--sample"]) == 2
        assert "--sample needs a session count" in capsys.readouterr().err

    def test_check_small_budget(self, capsys):
        assert main(["check", "--budget", "3000"]) == 0
        out = capsys.readouterr().out
        assert "COUNTEREXAMPLE" in out  # unprotected cases fail fast
        assert "unprotected / p resets" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
