"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "CONVERGED" in out

    def test_spec_savefetch(self, capsys):
        assert main(["spec", "savefetch"]) == 0
        out = capsys.readouterr().out
        assert "protocol savefetch" in out
        assert "process p" in out

    def test_spec_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["spec", "quantum"])

    def test_experiments_subset(self, capsys):
        assert main(["experiments", "e08"]) == 0
        out = capsys.readouterr().out
        assert "E8" in out and "staggered-vulnerable" in out

    def test_experiments_unknown_id(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["experiments", "e99"])

    def test_experiments_only_flag(self, capsys):
        assert main(["experiments", "--only", "e13"]) == 0
        out = capsys.readouterr().out
        assert "E13" in out and "completed in" in out

    def test_experiments_jobs_flag_parallel(self, capsys):
        assert main(["experiments", "--only", "e13", "--jobs", "2"]) == 0
        assert "E13" in capsys.readouterr().out

    def test_experiments_jobs_must_be_positive(self, capsys):
        assert main(["experiments", "--only", "e13", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_experiments_resume_persists_store(self, tmp_path, capsys):
        args = ["experiments", "--only", "e13", "--resume", "--out", str(tmp_path)]
        assert main(args) == 0
        store = tmp_path / "e13.jsonl"
        assert store.exists()
        size_after_first = store.stat().st_size
        capsys.readouterr()
        # Re-run: everything resumes from the store, nothing re-executes,
        # and the rendered table is identical.
        assert main(args) == 0
        assert store.stat().st_size == size_after_first
        assert "E13" in capsys.readouterr().out

    def test_gateway_compares_all_policies(self, capsys):
        args = ["gateway", "--sas", "4", "--crash-after", "80",
                "--messages", "80"]
        assert main(args) == 0
        out = capsys.readouterr().out
        for policy in ("serial", "batched", "write_ahead"):
            assert policy in out
        assert "spread" in out

    def test_gateway_pinned_policy(self, capsys):
        args = ["gateway", "--sas", "2", "--policy", "batched",
                "--crash-after", "60", "--messages", "60"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "batched" in out and "serial" not in out

    def test_gateway_rejects_zero_sas(self, capsys):
        assert main(["gateway", "--sas", "0"]) == 2
        assert "--sas must be >= 1" in capsys.readouterr().err

    def test_gateway_rejects_bad_crash_after(self, capsys):
        assert main(["gateway", "--crash-after", "0"]) == 2
        assert "--crash-after must be >= 1" in capsys.readouterr().err

    def test_fleet_sample_includes_gateway_grid(self, capsys):
        assert main(["fleet", "--sample"]) == 0
        out = capsys.readouterr().out
        assert '"gateway_crash"' in out
        assert '"store_policy"' in out

    def test_check_small_budget(self, capsys):
        assert main(["check", "--budget", "3000"]) == 0
        out = capsys.readouterr().out
        assert "COUNTEREXAMPLE" in out  # unprotected cases fail fast
        assert "unprotected / p resets" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
