"""Tests for repro.net.adversary."""

from repro.net.adversary import ReplayAdversary
from repro.net.link import Link
from repro.net.message import Message


def setup(engine):
    received = []
    link = Link(engine, "link", sink=received.append)
    adversary = ReplayAdversary(engine, link, seed=0)
    return link, adversary, received


class TestRecording:
    def test_records_legitimate_traffic(self, engine):
        link, adversary, _ = setup(engine)
        for seq in range(3):
            link.send(Message(seq=seq))
        engine.run()
        assert [m.seq for m in adversary.recorded_packets] == [0, 1, 2]

    def test_does_not_record_injections(self, engine):
        link, adversary, _ = setup(engine)
        link.send(Message(seq=1))
        engine.run()
        adversary.inject_now(adversary.recorded_packets[0])
        engine.run()
        assert len(adversary.recorded) == 1

    def test_records_even_lost_packets(self, engine):
        from repro.net.loss import DeterministicLoss

        received = []
        link = Link(engine, "link", sink=received.append, loss=DeterministicLoss([0]))
        adversary = ReplayAdversary(engine, link, seed=0)
        link.send(Message(seq=1))
        engine.run()
        assert received == []  # dropped
        assert len(adversary.recorded) == 1  # but the on-path attacker saw it

    def test_highest_seq_packet(self, engine):
        link, adversary, _ = setup(engine)
        for seq in [3, 9, 5]:
            link.send(Message(seq=seq))
        engine.run()
        best = adversary.highest_seq_packet()
        assert best is not None and best.seq == 9

    def test_highest_seq_empty(self, engine):
        _, adversary, _ = setup(engine)
        assert adversary.highest_seq_packet() is None


class TestStrategies:
    def test_replay_history_in_order(self, engine):
        link, adversary, received = setup(engine)
        for seq in range(4):
            link.send(Message(seq=seq))
        engine.run()
        received.clear()
        count = adversary.replay_history()
        engine.run()
        assert count == 4
        assert [m.seq for m in received] == [0, 1, 2, 3]
        assert adversary.injections == 4

    def test_replay_history_limit(self, engine):
        link, adversary, received = setup(engine)
        for seq in range(4):
            link.send(Message(seq=seq))
        engine.run()
        received.clear()
        assert adversary.replay_history(limit=2) == 2
        engine.run()
        assert [m.seq for m in received] == [0, 1]

    def test_replay_history_rate_paces_injections(self, engine):
        link, adversary, received = setup(engine)
        times = []
        link.sink = lambda m: times.append(engine.now)
        for seq in range(3):
            link.send(Message(seq=seq))
        engine.run()
        times.clear()
        adversary.replay_history(rate=10.0, start_delay=1.0)
        engine.run()
        assert times == [1.0, 1.1, 1.2]

    def test_replay_max(self, engine):
        link, adversary, received = setup(engine)
        for seq in [1, 7, 3]:
            link.send(Message(seq=seq))
        engine.run()
        received.clear()
        assert adversary.replay_max() == 1
        engine.run()
        assert [m.seq for m in received] == [7]

    def test_replay_max_nothing_recorded(self, engine):
        _, adversary, _ = setup(engine)
        assert adversary.replay_max() == 0

    def test_replay_range(self, engine):
        link, adversary, received = setup(engine)
        for seq in range(10):
            link.send(Message(seq=seq))
        engine.run()
        received.clear()
        count = adversary.replay_range(3, 6)
        engine.run()
        assert count == 4
        assert [m.seq for m in received] == [3, 4, 5, 6]

    def test_replay_random_count(self, engine):
        link, adversary, received = setup(engine)
        for seq in range(5):
            link.send(Message(seq=seq))
        engine.run()
        received.clear()
        assert adversary.replay_random(7) == 7
        engine.run()
        assert len(received) == 7
        assert all(0 <= m.seq < 5 for m in received)

    def test_replay_random_empty_recording(self, engine):
        _, adversary, _ = setup(engine)
        assert adversary.replay_random(3) == 0
