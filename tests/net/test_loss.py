"""Tests for repro.net.loss."""

import random

import pytest

from repro.net.loss import BernoulliLoss, DeterministicLoss, GilbertElliottLoss, NoLoss


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        rng = random.Random(0)
        assert not any(model.should_drop(rng) for _ in range(100))


class TestBernoulliLoss:
    def test_zero_probability_never_drops(self):
        model = BernoulliLoss(0.0)
        rng = random.Random(0)
        assert not any(model.should_drop(rng) for _ in range(100))

    def test_one_probability_always_drops(self):
        model = BernoulliLoss(1.0)
        rng = random.Random(0)
        assert all(model.should_drop(rng) for _ in range(100))

    def test_empirical_rate(self):
        model = BernoulliLoss(0.3)
        rng = random.Random(42)
        drops = sum(model.should_drop(rng) for _ in range(10_000))
        assert 0.27 < drops / 10_000 < 0.33

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)


class TestGilbertElliott:
    def test_all_good_never_drops(self):
        model = GilbertElliottLoss(0.0, 1.0, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(0)
        assert not any(model.should_drop(rng) for _ in range(100))

    def test_stuck_bad_always_drops(self):
        model = GilbertElliottLoss(1.0, 0.0, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(0)
        results = [model.should_drop(rng) for _ in range(20)]
        assert all(results)
        assert model.in_bad_state

    def test_produces_bursts(self):
        """Loss events should cluster more than Bernoulli at equal rate."""
        model = GilbertElliottLoss(0.01, 0.2, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(7)
        drops = [model.should_drop(rng) for _ in range(20_000)]
        # Count runs of consecutive drops.
        runs, current = [], 0
        for dropped in drops:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected some loss"
        assert max(runs) >= 3  # bursts, not isolated drops

    def test_reset_returns_to_good(self):
        model = GilbertElliottLoss(1.0, 0.0)
        rng = random.Random(0)
        model.should_drop(rng)
        assert model.in_bad_state
        model.reset()
        assert not model.in_bad_state


class TestDeterministicLoss:
    def test_drops_exact_indices(self):
        model = DeterministicLoss([1, 3])
        rng = random.Random(0)
        results = [model.should_drop(rng) for _ in range(5)]
        assert results == [False, True, False, True, False]

    def test_reset_restarts_index(self):
        model = DeterministicLoss([0])
        rng = random.Random(0)
        assert model.should_drop(rng)
        assert not model.should_drop(rng)
        model.reset()
        assert model.should_drop(rng)
