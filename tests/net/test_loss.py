"""Tests for repro.net.loss."""

import random

import pytest

from repro.net.loss import BernoulliLoss, DeterministicLoss, GilbertElliottLoss, NoLoss


class TestNoLoss:
    def test_never_drops(self):
        model = NoLoss()
        rng = random.Random(0)
        assert not any(model.should_drop(rng) for _ in range(100))


class TestBernoulliLoss:
    def test_zero_probability_never_drops(self):
        model = BernoulliLoss(0.0)
        rng = random.Random(0)
        assert not any(model.should_drop(rng) for _ in range(100))

    def test_one_probability_always_drops(self):
        model = BernoulliLoss(1.0)
        rng = random.Random(0)
        assert all(model.should_drop(rng) for _ in range(100))

    def test_empirical_rate(self):
        model = BernoulliLoss(0.3)
        rng = random.Random(42)
        drops = sum(model.should_drop(rng) for _ in range(10_000))
        assert 0.27 < drops / 10_000 < 0.33

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)


class TestGilbertElliott:
    def test_all_good_never_drops(self):
        model = GilbertElliottLoss(0.0, 1.0, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(0)
        assert not any(model.should_drop(rng) for _ in range(100))

    def test_stuck_bad_always_drops(self):
        model = GilbertElliottLoss(1.0, 0.0, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(0)
        results = [model.should_drop(rng) for _ in range(20)]
        assert all(results)
        assert model.in_bad_state

    def test_produces_bursts(self):
        """Loss events should cluster more than Bernoulli at equal rate."""
        model = GilbertElliottLoss(0.01, 0.2, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(7)
        drops = [model.should_drop(rng) for _ in range(20_000)]
        # Count runs of consecutive drops.
        runs, current = [], 0
        for dropped in drops:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected some loss"
        assert max(runs) >= 3  # bursts, not isolated drops

    def test_reset_returns_to_good(self):
        model = GilbertElliottLoss(1.0, 0.0)
        rng = random.Random(0)
        model.should_drop(rng)
        assert model.in_bad_state
        model.reset()
        assert not model.in_bad_state


class TestDeterministicLoss:
    def test_drops_exact_indices(self):
        model = DeterministicLoss([1, 3])
        rng = random.Random(0)
        results = [model.should_drop(rng) for _ in range(5)]
        assert results == [False, True, False, True, False]

    def test_reset_restarts_index(self):
        model = DeterministicLoss([0])
        rng = random.Random(0)
        assert model.should_drop(rng)
        assert not model.should_drop(rng)
        model.reset()
        assert model.should_drop(rng)


class TestGilbertElliottSteadyState:
    """Statistical pins for the chain's long-run loss rate.

    The per-packet state chain has stationary distribution
    ``pi_bad = g2b / (g2b + b2g)`` (state transitions happen *before*
    the drop draw, so the stationary split applies to the state each
    packet sees), giving a steady-state loss rate of
    ``pi_bad * loss_bad + (1 - pi_bad) * loss_good``.  Tolerances are
    ~5 standard deviations of the correlated estimator, so the pins are
    tight enough to catch an off-by-one in the transition/draw order but
    do not flake.
    """

    @staticmethod
    def _empirical_rate(model, draws, seed=1234):
        rng = random.Random(seed)
        return sum(model.should_drop(rng) for _ in range(draws)) / draws

    def test_symmetric_chain_loses_half_of_bad_time(self):
        # pi_bad = 0.25; loss only in BAD -> rate = 0.25
        model = GilbertElliottLoss(0.1, 0.3, loss_good=0.0, loss_bad=1.0)
        rate = self._empirical_rate(model, 200_000)
        assert abs(rate - 0.25) < 0.012

    def test_mixed_state_loss_probabilities(self):
        # pi_bad = 0.2/(0.2+0.3) = 0.4; rate = 0.4*0.8 + 0.6*0.05 = 0.35
        model = GilbertElliottLoss(0.2, 0.3, loss_good=0.05, loss_bad=0.8)
        rate = self._empirical_rate(model, 200_000)
        assert abs(rate - 0.35) < 0.012

    def test_rare_long_bursts_regime(self):
        # The E14 shape: pi_bad = 0.02/(0.02+0.015) ~ 0.5714, loss_bad=1.
        model = GilbertElliottLoss(0.02, 0.015, loss_good=0.0, loss_bad=1.0)
        rate = self._empirical_rate(model, 400_000)
        assert abs(rate - 0.02 / 0.035) < 0.03  # slow-mixing chain: wider bar

    def test_reset_mid_stream_restores_the_good_start(self):
        """reset() must restore the *initial* distribution, not the
        stationary one: a fresh/reset chain starts GOOD deterministically."""
        model = GilbertElliottLoss(0.5, 0.1, loss_good=0.0, loss_bad=1.0)
        rng = random.Random(7)
        for _ in range(100):
            model.should_drop(rng)
        model.reset()
        # First post-reset packet can only be lost if the chain leaves
        # GOOD on that very step: probability g2b, never loss_good.
        drops = 0
        for _ in range(2_000):
            model.reset()
            drops += model.should_drop(rng)
        assert abs(drops / 2_000 - 0.5) < 0.05  # = g2b, not pi_bad (5/6)


class TestDeterministicLossBoundaries:
    """Pattern-boundary pins for the index-set model."""

    def test_first_and_last_index_of_a_pattern(self):
        model = DeterministicLoss([0, 4])
        rng = random.Random(0)
        results = [model.should_drop(rng) for _ in range(6)]
        assert results == [True, False, False, False, True, False]

    def test_beyond_the_pattern_never_drops(self):
        model = DeterministicLoss([2])
        rng = random.Random(0)
        [model.should_drop(rng) for _ in range(3)]
        assert not any(model.should_drop(rng) for _ in range(1_000))

    def test_empty_pattern_is_noloss(self):
        model = DeterministicLoss([])
        rng = random.Random(0)
        assert not any(model.should_drop(rng) for _ in range(100))

    def test_counter_advances_even_on_kept_packets(self):
        """The index is per *offered* packet, not per dropped one."""
        model = DeterministicLoss([3])
        rng = random.Random(0)
        assert [model.should_drop(rng) for _ in range(4)] == [
            False, False, False, True,
        ]

    def test_duplicate_and_unordered_indices_collapse(self):
        model = DeterministicLoss([3, 1, 3, 1])
        assert model.drop_indices == frozenset({1, 3})

    def test_negative_indices_are_unreachable(self):
        """Accepted by construction but can never fire: the offered-packet
        counter starts at 0 and only grows."""
        model = DeterministicLoss([-1])
        rng = random.Random(0)
        assert not any(model.should_drop(rng) for _ in range(10))

    def test_reset_at_a_pattern_boundary(self):
        """reset() exactly at the last pattern index replays the pattern
        from the top, not from the interrupted position."""
        model = DeterministicLoss([1])
        rng = random.Random(0)
        assert [model.should_drop(rng) for _ in range(2)] == [False, True]
        model.reset()
        assert [model.should_drop(rng) for _ in range(2)] == [False, True]
