"""Tests for repro.net.message."""

from repro.net.message import Message


class TestMessage:
    def test_repr_matches_paper_notation(self):
        assert repr(Message(seq=7)) == "msg(7)"

    def test_frozen(self):
        message = Message(seq=1)
        try:
            message.seq = 2  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_with_meta_appends(self):
        message = Message(seq=1).with_meta(uid=5)
        assert message.get_meta("uid") == 5
        assert message.seq == 1

    def test_meta_last_write_wins(self):
        message = Message(seq=1).with_meta(tag="a").with_meta(tag="b")
        assert message.get_meta("tag") == "b"

    def test_meta_default(self):
        assert Message(seq=1).get_meta("missing", default=0) == 0

    def test_equality_by_content(self):
        assert Message(seq=1, sent_at=0.5) == Message(seq=1, sent_at=0.5)
        assert Message(seq=1) != Message(seq=2)

    def test_hashable(self):
        assert len({Message(seq=1), Message(seq=1), Message(seq=2)}) == 2
