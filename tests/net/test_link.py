"""Tests for repro.net.link."""

from repro.net.delay import FixedDelay, UniformJitterDelay
from repro.net.icmp import IcmpType
from repro.net.link import Link
from repro.net.loss import BernoulliLoss, DeterministicLoss
from repro.net.message import Message


def collect_link(engine, **kwargs):
    received = []
    link = Link(engine, "link", sink=received.append, **kwargs)
    return link, received


class TestDelivery:
    def test_delivers_in_order_zero_delay(self, engine):
        link, received = collect_link(engine)
        for seq in range(3):
            link.send(Message(seq=seq))
        engine.run()
        assert [m.seq for m in received] == [0, 1, 2]
        assert link.delivered == 3

    def test_fixed_delay_applied(self, engine):
        link, received = collect_link(engine, delay=FixedDelay(0.5))
        times = []
        link.sink = lambda m: times.append(engine.now)
        link.send(Message(seq=1))
        engine.run()
        assert times == [0.5]

    def test_jitter_without_fifo_can_reorder(self, engine):
        link, received = collect_link(
            engine, delay=UniformJitterDelay(0.0, 1.0), seed=3, fifo=False
        )
        for seq in range(50):
            link.send(Message(seq=seq))
        engine.run()
        order = [m.seq for m in received]
        assert sorted(order) == list(range(50))
        assert order != list(range(50))  # some reorder occurred

    def test_fifo_clamps_reorder(self, engine):
        link, received = collect_link(
            engine, delay=UniformJitterDelay(0.0, 1.0), seed=3, fifo=True
        )
        for seq in range(50):
            link.send(Message(seq=seq))
        engine.run()
        assert [m.seq for m in received] == list(range(50))


class TestLoss:
    def test_deterministic_loss_drops(self, engine):
        link, received = collect_link(engine, loss=DeterministicLoss([0, 2]))
        for seq in range(4):
            link.send(Message(seq=seq))
        engine.run()
        assert [m.seq for m in received] == [1, 3]
        assert link.dropped == 2

    def test_loss_traced(self, engine):
        link, _ = collect_link(engine, loss=BernoulliLoss(1.0))
        link.send(Message(seq=1))
        engine.run()
        assert engine.trace.count(source="link", kind="drop") == 1


class TestTaps:
    def test_tap_sees_all_offers(self, engine):
        link, _ = collect_link(engine, loss=DeterministicLoss([0]))
        seen = []
        link.add_tap(lambda t, p, injected: seen.append((p.seq, injected)))
        link.send(Message(seq=0))  # dropped, but tapped
        link.send(Message(seq=1))
        link.inject(Message(seq=0))
        engine.run()
        assert seen == [(0, False), (1, False), (0, True)]

    def test_remove_tap(self, engine):
        link, _ = collect_link(engine)
        seen = []
        tap = lambda t, p, injected: seen.append(p.seq)  # noqa: E731
        link.add_tap(tap)
        link.send(Message(seq=1))
        link.remove_tap(tap)
        link.send(Message(seq=2))
        engine.run()
        assert seen == [1]


class TestInjection:
    def test_injected_counted_and_delivered(self, engine):
        link, received = collect_link(engine)
        link.inject(Message(seq=9))
        engine.run()
        assert link.injected == 1
        assert [m.seq for m in received] == [9]


class TestAvailability:
    def test_down_destination_drops_and_icmps(self, engine):
        icmps = []
        up = {"value": True}
        link, received = collect_link(
            engine,
            availability=lambda: up["value"],
            icmp_sink=icmps.append,
        )
        link.send(Message(seq=1))
        engine.run()
        up["value"] = False
        link.send(Message(seq=2))
        engine.run()
        assert [m.seq for m in received] == [1]
        assert link.undeliverable == 1
        assert len(icmps) == 1
        assert icmps[0].icmp_type is IcmpType.DESTINATION_UNREACHABLE
        assert icmps[0].about.seq == 2

    def test_no_icmp_sink_just_drops(self, engine):
        link, received = collect_link(engine, availability=lambda: False)
        link.send(Message(seq=1))
        engine.run()
        assert received == []
        assert link.undeliverable == 1
