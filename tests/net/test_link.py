"""Tests for repro.net.link."""

from repro.net.delay import FixedDelay, UniformJitterDelay
from repro.net.icmp import IcmpType
from repro.net.link import Link
from repro.net.loss import BernoulliLoss, DeterministicLoss
from repro.net.message import Message


def collect_link(engine, **kwargs):
    received = []
    link = Link(engine, "link", sink=received.append, **kwargs)
    return link, received


class TestDelivery:
    def test_delivers_in_order_zero_delay(self, engine):
        link, received = collect_link(engine)
        for seq in range(3):
            link.send(Message(seq=seq))
        engine.run()
        assert [m.seq for m in received] == [0, 1, 2]
        assert link.delivered == 3

    def test_fixed_delay_applied(self, engine):
        link, received = collect_link(engine, delay=FixedDelay(0.5))
        times = []
        link.sink = lambda m: times.append(engine.now)
        link.send(Message(seq=1))
        engine.run()
        assert times == [0.5]

    def test_jitter_without_fifo_can_reorder(self, engine):
        link, received = collect_link(
            engine, delay=UniformJitterDelay(0.0, 1.0), seed=3, fifo=False
        )
        for seq in range(50):
            link.send(Message(seq=seq))
        engine.run()
        order = [m.seq for m in received]
        assert sorted(order) == list(range(50))
        assert order != list(range(50))  # some reorder occurred

    def test_fifo_clamps_reorder(self, engine):
        link, received = collect_link(
            engine, delay=UniformJitterDelay(0.0, 1.0), seed=3, fifo=True
        )
        for seq in range(50):
            link.send(Message(seq=seq))
        engine.run()
        assert [m.seq for m in received] == list(range(50))


class TestLoss:
    def test_deterministic_loss_drops(self, engine):
        link, received = collect_link(engine, loss=DeterministicLoss([0, 2]))
        for seq in range(4):
            link.send(Message(seq=seq))
        engine.run()
        assert [m.seq for m in received] == [1, 3]
        assert link.dropped == 2

    def test_loss_traced(self, engine):
        link, _ = collect_link(engine, loss=BernoulliLoss(1.0))
        link.send(Message(seq=1))
        engine.run()
        assert engine.trace.count(source="link", kind="drop") == 1


class TestTaps:
    def test_tap_sees_all_offers(self, engine):
        link, _ = collect_link(engine, loss=DeterministicLoss([0]))
        seen = []
        link.add_tap(lambda t, p, injected: seen.append((p.seq, injected)))
        link.send(Message(seq=0))  # dropped, but tapped
        link.send(Message(seq=1))
        link.inject(Message(seq=0))
        engine.run()
        assert seen == [(0, False), (1, False), (0, True)]

    def test_remove_tap(self, engine):
        link, _ = collect_link(engine)
        seen = []
        tap = lambda t, p, injected: seen.append(p.seq)  # noqa: E731
        link.add_tap(tap)
        link.send(Message(seq=1))
        link.remove_tap(tap)
        link.send(Message(seq=2))
        engine.run()
        assert seen == [1]


class TestInjection:
    def test_injected_counted_and_delivered(self, engine):
        link, received = collect_link(engine)
        link.inject(Message(seq=9))
        engine.run()
        assert link.injected == 1
        assert [m.seq for m in received] == [9]


class TestAvailability:
    def test_down_destination_drops_and_icmps(self, engine):
        icmps = []
        up = {"value": True}
        link, received = collect_link(
            engine,
            availability=lambda: up["value"],
            icmp_sink=icmps.append,
        )
        link.send(Message(seq=1))
        engine.run()
        up["value"] = False
        link.send(Message(seq=2))
        engine.run()
        assert [m.seq for m in received] == [1]
        assert link.undeliverable == 1
        assert len(icmps) == 1
        assert icmps[0].icmp_type is IcmpType.DESTINATION_UNREACHABLE
        assert icmps[0].about.seq == 2

    def test_no_icmp_sink_just_drops(self, engine):
        link, received = collect_link(engine, availability=lambda: False)
        link.send(Message(seq=1))
        engine.run()
        assert received == []
        assert link.undeliverable == 1


class TestOfferMany:
    """The batched offer path must be observationally identical to
    offering each packet in sequence — same RNG draw order, same stats,
    same delivery schedule — on every link configuration."""

    def assert_parity(self, engine, n=40, make_kwargs=dict):
        # Each link gets freshly built models: loss/delay models are
        # stateful, so sharing instances would itself break parity.
        seq_link, seq_rx = collect_link(engine, **make_kwargs())
        batch_link, batch_rx = collect_link(engine, **make_kwargs())
        seq_times, batch_times = [], []
        seq_link.sink = lambda m: seq_times.append((engine.now, m.seq))
        batch_link.sink = lambda m: batch_times.append((engine.now, m.seq))
        packets = [Message(seq=i) for i in range(n)]
        for packet in packets:
            seq_link.send(packet)
        batch_link.offer_many(list(packets))
        engine.run()
        assert batch_times == seq_times
        for stat in ("offered", "dropped", "delivered", "blackholed"):
            assert getattr(batch_link, stat) == getattr(seq_link, stat), stat

    def test_parity_plain(self, engine):
        self.assert_parity(engine)

    def test_parity_with_loss_and_jitter(self, engine):
        self.assert_parity(engine, make_kwargs=lambda: dict(
            loss=BernoulliLoss(0.3), seed=5,
            delay=UniformJitterDelay(0.0, 1.0),
        ))

    def test_parity_fifo_clamps(self, engine):
        self.assert_parity(engine, make_kwargs=lambda: dict(
            delay=UniformJitterDelay(0.0, 1.0), seed=9, fifo=True,
        ))

    def test_parity_deterministic_loss(self, engine):
        self.assert_parity(
            engine,
            make_kwargs=lambda: dict(loss=DeterministicLoss([0, 3, 4])),
        )

    def test_taps_see_every_packet(self, engine):
        # A tap forces the exact per-packet slow path.
        link, received = collect_link(engine)
        tapped = []
        link.add_tap(lambda now, packet, injected: tapped.append(packet.seq))
        link.offer_many([Message(seq=i) for i in range(5)])
        engine.run()
        assert tapped == list(range(5))
        assert [m.seq for m in received] == list(range(5))

    def test_injected_batch_counts(self, engine):
        link, received = collect_link(engine)
        link.offer_many([Message(seq=i) for i in range(4)], injected=True)
        engine.run()
        assert link.injected == 4
        assert len(received) == 4

    def test_blackholed_batch(self, engine):
        link, received = collect_link(engine)
        link.path_down()
        link.offer_many([Message(seq=i) for i in range(6)])
        engine.run()
        assert received == []
        assert link.blackholed == 6
        assert link.dropped == 6
        assert link.offered == 6

    def test_empty_batch_is_noop(self, engine):
        link, received = collect_link(engine)
        link.offer_many([])
        engine.run()
        assert link.offered == 0
        assert received == []
