"""Tests for repro.net.pool (opt-in envelope recycling)."""

from repro.ipsec.esp import EspPacket
from repro.net.message import Message
from repro.net.pool import (
    DEFAULT_POOL_CAP,
    EnvelopePool,
    esp_packet_pool,
    message_pool,
)


class TestMessagePool:
    def test_miss_builds_a_real_message(self):
        pool = message_pool()
        msg = pool.acquire(seq=7, payload=b"x", sent_at=1.5)
        assert isinstance(msg, Message)
        assert (msg.seq, msg.payload, msg.sent_at) == (7, b"x", 1.5)
        assert pool.misses == 1 and pool.hits == 0

    def test_release_then_acquire_reuses_the_object(self):
        pool = message_pool()
        first = pool.acquire(seq=1, payload=b"a")
        pool.release(first)
        second = pool.acquire(seq=2, payload=b"b", sent_at=9.0)
        assert second is first  # recycled, not reallocated
        assert (second.seq, second.payload, second.sent_at) == (2, b"b", 9.0)
        assert pool.hits == 1 and pool.recycled == 1

    def test_rearm_resets_every_field_to_defaults(self):
        # A recycled envelope must not leak the previous incarnation's
        # fields through the rearm defaults.
        pool = message_pool()
        stale = pool.acquire(
            seq=5, payload=b"secret", sent_at=3.0, meta=(("uid", 9),),
            src="p",
        )
        pool.release(stale)
        fresh = pool.acquire(seq=6)
        assert fresh is stale
        assert fresh.payload == b""
        assert fresh.sent_at == 0.0
        assert fresh.meta == ()
        assert fresh.src is None


class TestEspPacketPool:
    def test_round_trip(self):
        pool = esp_packet_pool()
        packet = pool.acquire(spi=1, seq=2, ciphertext=b"c", icv=b"i")
        assert isinstance(packet, EspPacket)
        pool.release(packet)
        again = pool.acquire(spi=9, seq=10, ciphertext=b"C", icv=b"I",
                             src="gw")
        assert again is packet
        assert (again.spi, again.seq, again.ciphertext, again.icv,
                again.src) == (9, 10, b"C", b"I", "gw")


class TestPoolMechanics:
    def test_cap_bounds_the_free_list(self):
        pool = EnvelopePool(
            lambda v: [v], lambda obj, v: obj.__setitem__(0, v), cap=2
        )
        objs = [pool.acquire(i) for i in range(4)]
        for obj in objs:
            pool.release(obj)
        assert pool.stats()["pool_size"] == 2
        assert pool.recycled == 2  # releases beyond cap are dropped

    def test_stats_shape_matches_event_core_counters(self):
        # Shared shape with EventQueue.pool_stats(): one obs probe
        # publishes both.
        pool = message_pool()
        assert set(pool.stats()) == {
            "pool_hits", "pool_misses", "pool_recycled", "pool_size",
        }
        pool.release(pool.acquire(seq=1))
        pool.acquire(seq=2)
        assert pool.stats() == {
            "pool_hits": 1, "pool_misses": 1,
            "pool_recycled": 1, "pool_size": 0,
        }

    def test_default_cap(self):
        assert message_pool().cap == DEFAULT_POOL_CAP
        assert esp_packet_pool(cap=16).cap == 16
