"""Tests for repro.net.delay."""

import random

import pytest

from repro.net.delay import ExponentialJitterDelay, FixedDelay, UniformJitterDelay


class TestFixedDelay:
    def test_constant(self):
        model = FixedDelay(0.01)
        rng = random.Random(0)
        assert {model.sample(rng) for _ in range(10)} == {0.01}

    def test_default_zero(self):
        assert FixedDelay().sample(random.Random(0)) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedDelay(-1.0)


class TestUniformJitterDelay:
    def test_within_bounds(self):
        model = UniformJitterDelay(base=0.01, jitter=0.005)
        rng = random.Random(1)
        for _ in range(200):
            delay = model.sample(rng)
            assert 0.01 <= delay <= 0.015

    def test_zero_jitter_is_fixed(self):
        model = UniformJitterDelay(base=0.02, jitter=0.0)
        assert model.sample(random.Random(0)) == 0.02


class TestExponentialJitterDelay:
    def test_at_least_base(self):
        model = ExponentialJitterDelay(base=0.01, mean_jitter=0.002)
        rng = random.Random(2)
        assert all(model.sample(rng) >= 0.01 for _ in range(200))

    def test_mean_roughly_base_plus_jitter(self):
        model = ExponentialJitterDelay(base=0.0, mean_jitter=0.01)
        rng = random.Random(3)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(0.01, rel=0.05)

    def test_zero_jitter(self):
        model = ExponentialJitterDelay(base=0.005, mean_jitter=0.0)
        assert model.sample(random.Random(0)) == 0.005
