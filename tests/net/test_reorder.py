"""Tests for repro.net.reorder."""

from repro.net.message import Message
from repro.net.reorder import DegreeReorderStage


class ListPipe:
    """A downstream that records sends synchronously."""

    def __init__(self) -> None:
        self.sent: list[int] = []

    def send(self, packet) -> None:
        self.sent.append(packet.seq)


def stage_with(degree: int, probability: float, seed: int = 0):
    pipe = ListPipe()
    stage = DegreeReorderStage(pipe, degree=degree, probability=probability, seed=seed)
    return stage, pipe


class TestNoReorder:
    def test_probability_zero_passthrough(self):
        stage, pipe = stage_with(degree=4, probability=0.0)
        for seq in range(5):
            stage.send(Message(seq=seq))
        assert pipe.sent == [0, 1, 2, 3, 4]

    def test_degree_zero_passthrough(self):
        stage, pipe = stage_with(degree=0, probability=1.0)
        for seq in range(5):
            stage.send(Message(seq=seq))
        assert pipe.sent == [0, 1, 2, 3, 4]


class TestExactDegree:
    def test_held_packet_released_after_degree_passes(self):
        stage, pipe = stage_with(degree=3, probability=1.0, seed=0)
        # Force exactly the first packet to be held: use probability 1 for
        # one send then lower it.
        stage.send(Message(seq=0))  # held
        stage.probability = 0.0
        for seq in range(1, 6):
            stage.send(Message(seq=seq))
        # seq 0 suffers a reorder of exactly degree 3: released after 3
        # subsequent sends, i.e. delivered just after seq 3.
        assert pipe.sent == [1, 2, 3, 0, 4, 5]

    def test_suffered_degree_never_exceeds_configured(self):
        """Even with overlapping holds (regression for E10)."""
        degree = 5
        stage, pipe = stage_with(degree=degree, probability=0.4, seed=11)
        total = 300
        for seq in range(total):
            stage.send(Message(seq=seq))
        stage.flush()
        assert sorted(pipe.sent) == list(range(total))
        position = {seq: i for i, seq in enumerate(pipe.sent)}
        for seq in range(total):
            # Count messages sent after `seq` that arrived before it.
            overtakers = sum(
                1 for later in range(seq + 1, total) if position[later] < position[seq]
            )
            assert overtakers <= degree, f"seq {seq} overtaken by {overtakers}"

    def test_non_overlapping_hold_suffers_exact_degree(self):
        stage, pipe = stage_with(degree=4, probability=1.0)
        stage.send(Message(seq=0))
        stage.probability = 0.0
        for seq in range(1, 10):
            stage.send(Message(seq=seq))
        position = {seq: i for i, seq in enumerate(pipe.sent)}
        overtakers = sum(1 for later in range(1, 10) if position[later] < position[0])
        assert overtakers == 4


class TestFlush:
    def test_flush_releases_everything(self):
        stage, pipe = stage_with(degree=100, probability=1.0)
        for seq in range(3):
            stage.send(Message(seq=seq))
        assert pipe.sent == []
        assert stage.currently_held == 3
        released = stage.flush()
        assert released == 3
        assert sorted(pipe.sent) == [0, 1, 2]
        assert stage.currently_held == 0

    def test_held_total_counts(self):
        stage, pipe = stage_with(degree=2, probability=1.0)
        stage.send(Message(seq=0))
        assert stage.held_total == 1
