"""Tests for repro.net.icmp."""

from repro.net.icmp import IcmpMessage, IcmpType
from repro.net.message import Message


def test_types_have_rfc_numbers():
    assert IcmpType.DESTINATION_UNREACHABLE.value == 3
    assert IcmpType.ECHO_REQUEST.value == 8
    assert IcmpType.ECHO_REPLY.value == 0


def test_message_carries_offending_packet():
    packet = Message(seq=4)
    icmp = IcmpMessage(
        icmp_type=IcmpType.DESTINATION_UNREACHABLE, about=packet, time=1.5
    )
    assert icmp.about is packet
    assert icmp.time == 1.5
    assert "DESTINATION_UNREACHABLE" in repr(icmp)


def test_frozen():
    icmp = IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST, about=1, time=0.0)
    try:
        icmp.time = 1.0  # type: ignore[misc]
        raised = False
    except AttributeError:
        raised = True
    assert raised
