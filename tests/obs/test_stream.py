"""Tests for repro.obs.stream — events, ledger, view fold, reconciliation."""

import json

import pytest

from repro.obs.hub import merge_rollups
from repro.obs.stream import (
    EVENT_KINDS,
    PROGRESS_SCHEMA,
    CampaignStream,
    CampaignView,
    LedgerTail,
    ProgressEvent,
    ProgressLedger,
    StreamConfig,
    read_ledger,
)


class TestProgressEvent:
    def test_round_trip(self):
        event = ProgressEvent(
            kind="task_finished", time=12.5, worker="w1",
            task_id="g0/s00001", data={"wall_time": 0.25},
        )
        again = ProgressEvent.from_dict(json.loads(event.to_json()))
        assert again == event

    def test_schema_tag_only_on_campaign_started(self):
        started = ProgressEvent(kind="campaign_started", time=1.0)
        other = ProgressEvent(kind="task_started", time=1.0, task_id="t")
        assert started.to_dict()["schema"] == PROGRESS_SCHEMA
        assert "schema" not in other.to_dict()

    def test_empty_fields_omitted(self):
        line = ProgressEvent(kind="worker_heartbeat", time=1.0).to_dict()
        assert "worker" not in line
        assert "task_id" not in line
        assert "data" not in line

    def test_every_kind_is_known(self):
        assert len(EVENT_KINDS) == 7
        assert "campaign_started" in EVENT_KINDS
        assert "campaign_finished" in EVENT_KINDS


class TestProgressLedger:
    def test_append_is_durable_per_event(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        ledger = ProgressLedger(path)
        ledger.append(ProgressEvent(kind="campaign_started", time=1.0))
        # Durable before close: a reader sees the event immediately.
        assert len(list(read_ledger(path))) == 1
        ledger.close()

    def test_heals_dangling_tail_on_open(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        event = ProgressEvent(kind="campaign_started", time=1.0)
        path.write_text(event.to_json() + "\n" + '{"kind": "task_sta',
                        encoding="utf-8")
        ledger = ProgressLedger(path)
        ledger.append(ProgressEvent(kind="campaign_finished", time=2.0))
        ledger.close()
        errors: list[str] = []
        events = list(read_ledger(path, errors=errors))
        # The torn fragment is lost; the next append is not glued to it.
        assert [e.kind for e in events] == [
            "campaign_started", "campaign_finished",
        ]
        assert len(errors) == 1

    def test_read_ledger_skips_non_event_objects(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        path.write_text('{"not_an_event": true}\n', encoding="utf-8")
        errors: list[str] = []
        assert list(read_ledger(path, errors=errors)) == []
        assert any("non-event" in e for e in errors)

    def test_missing_ledger_replays_empty(self, tmp_path):
        view = CampaignView.replay(tmp_path / "absent.jsonl")
        assert view.events_folded == 0
        assert view.done == 0


def feed(view, events):
    for event in events:
        view.fold(event)
    return view


def campaign_events(tasks=3, jobs=2, error_ids=()):
    """A plausible full campaign event sequence."""
    events = [ProgressEvent(
        kind="campaign_started", time=0.0,
        data={"campaign": "t", "total": tasks, "skipped": 0, "jobs": jobs},
    )]
    clock = 1.0
    for index in range(tasks):
        task_id = f"task{index}"
        worker = f"w{index % jobs + 1}"
        events.append(ProgressEvent(kind="task_started", time=clock,
                                    worker=worker, task_id=task_id))
        clock += 1.0
        if task_id in error_ids:
            events.append(ProgressEvent(
                kind="task_errored", time=clock, task_id=task_id,
                data={"wall_time": 1.0, "error": "boom"},
            ))
        else:
            events.append(ProgressEvent(
                kind="task_finished", time=clock, task_id=task_id,
                data={"wall_time": 1.0 + index},
            ))
        clock += 1.0
    events.append(ProgressEvent(kind="campaign_finished", time=clock,
                                data={"executed": tasks}))
    return events


class TestCampaignView:
    def test_fold_counts_and_attribution(self):
        view = feed(CampaignView(), campaign_events(tasks=4, jobs=2))
        assert view.campaign == "t"
        assert view.total == 4
        assert view.done == 4
        assert view.errors == 0
        assert view.finished is True
        assert view.running == {}
        # Finishes are parent-emitted (worker="") but attributed to the
        # worker that announced task_started, via the running map.
        assert view.workers["w1"].tasks_done == 2
        assert view.workers["w2"].tasks_done == 2

    def test_errored_tasks_tracked_separately(self):
        view = feed(CampaignView(),
                    campaign_events(tasks=3, error_ids={"task1"}))
        assert view.done == 2
        assert view.errored == {"task1": "boom"}
        assert view.workers["w2"].errors == 1

    def test_finish_after_error_clears_it(self):
        events = campaign_events(tasks=2, error_ids={"task0"})
        retry = [
            ProgressEvent(kind="campaign_started", time=10.0,
                          data={"total": 2, "skipped": 1, "jobs": 1}),
            ProgressEvent(kind="task_finished", time=11.0, task_id="task0",
                          data={"wall_time": 0.5}),
        ]
        view = feed(CampaignView(), events + retry)
        assert view.errored == {}
        assert view.done == 2
        assert view.runs == 2

    def test_heartbeat_updates_worker_resources(self):
        view = CampaignView()
        view.fold(ProgressEvent(
            kind="worker_heartbeat", time=5.0, worker="w1",
            data={"resources": {"cpu_user": 1.5, "cpu_system": 0.5,
                                "rss_bytes": 1 << 20}},
        ))
        worker = view.workers["w1"]
        assert worker.cpu_time == 2.0
        assert worker.rss_bytes == 1 << 20
        assert worker.last_seen == 5.0

    def test_snapshot_installs_rollup(self):
        view = CampaignView()
        view.fold(ProgressEvent(kind="snapshot", time=1.0,
                                data={"rollup": {"counters": {"x": 1}}}))
        assert view.rollup == {"counters": {"x": 1}}

    def test_worst_outliers_bounded_and_sorted(self):
        events = campaign_events(tasks=9, jobs=1)
        view = feed(CampaignView(), events)
        outliers = view.worst_outliers()
        assert len(outliers) == 5
        walls = [wall for wall, _ in outliers]
        assert walls == sorted(walls, reverse=True)
        assert outliers[0] == (9.0, "task8")

    def test_throughput_and_eta(self):
        view = feed(CampaignView(), campaign_events(tasks=4)[:-2])
        # 3 finishes at times 2, 4, 6 -> 2 intervals over 4 seconds.
        assert view.throughput() == pytest.approx(0.5)
        assert view.eta_seconds() == pytest.approx(2.0)

    def test_replay_equals_live_fold(self, tmp_path):
        events = campaign_events(tasks=5, jobs=2, error_ids={"task2"})
        path = tmp_path / "progress.jsonl"
        ledger = ProgressLedger(path)
        live = CampaignView()
        for event in events:
            ledger.append(event)
            live.fold(event)
        ledger.close()
        replayed = CampaignView.replay(path)
        assert replayed.as_dict() == live.as_dict()
        assert replayed.completed == live.completed
        assert replayed.worst_outliers() == live.worst_outliers()

    def test_torn_tail_replays_to_last_acknowledged_state(self, tmp_path):
        events = campaign_events(tasks=3)
        path = tmp_path / "progress.jsonl"
        text = "".join(event.to_json() + "\n" for event in events)
        # Tear mid-way through the final event's line (a kill -9).
        path.write_text(text[: len(text) - 20], encoding="utf-8")
        view = CampaignView.replay(path)
        assert view.done == 3
        assert view.finished is False  # the torn campaign_finished is lost


class TestCampaignStream:
    def test_persist_before_fold(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        stream = CampaignStream.open(path)

        class Boom(RuntimeError):
            pass

        original_fold = stream.view.fold

        def failing_fold(event):
            raise Boom()

        stream.view.fold = failing_fold
        with pytest.raises(Boom):
            stream.emit(ProgressEvent(kind="campaign_started", time=1.0))
        stream.view.fold = original_fold
        stream.close()
        # The event hit the disk even though the fold blew up.
        assert len(list(read_ledger(path))) == 1

    def test_open_reconciles_store_completions(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        first = CampaignStream.open(path)
        for event in campaign_events(tasks=2)[:-1]:
            first.emit(event)
        first.close()
        # The store says task2 also completed (its task_finished event
        # died with the parent); reopen must close the gap.
        stream = CampaignStream.open(
            path, completed_ids={"task0", "task1", "task2"}, now=99.0
        )
        assert stream.view.completed == {"task0", "task1", "task2"}
        assert stream.view.recovered == {"task2"}
        stream.close()
        # And the reconciliation is durable: a fresh replay agrees.
        assert CampaignView.replay(path).completed == {
            "task0", "task1", "task2",
        }

    def test_recovered_events_skip_wall_stats(self, tmp_path):
        stream = CampaignStream.open(
            tmp_path / "p.jsonl", completed_ids={"a", "b"}, now=1.0
        )
        assert stream.view.done == 2
        assert stream.view.wall_time_count == 0
        assert stream.view.worst_outliers() == []
        stream.close()

    def test_snapshot_merges_rollups(self, tmp_path):
        stream = CampaignStream.open(tmp_path / "p.jsonl")
        stream.emit_snapshot(1.0, rollups=[
            {"counters": {"resets": 1}},
            {"counters": {"resets": 2}},
        ])
        stream.emit_snapshot(2.0, rollups=[{"counters": {"resets": 4}}])
        assert stream.view.rollup["counters"]["resets"] == 7
        assert stream.view.rollup["tasks"] == 3
        stream.close()

    def test_merge_rollups_is_associative_over_tasks(self):
        rollups = [{"counters": {"x": i}} for i in range(1, 4)]
        all_at_once = merge_rollups(rollups)
        incremental = merge_rollups(
            [merge_rollups(rollups[:2])] + rollups[2:]
        )
        assert incremental == all_at_once
        assert all_at_once["tasks"] == 3


class TestLedgerTail:
    def test_incremental_polling(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        tail = LedgerTail(path)
        assert tail.poll() == []  # file does not exist yet
        ledger = ProgressLedger(path)
        ledger.append(ProgressEvent(kind="campaign_started", time=1.0))
        assert [e.kind for e in tail.poll()] == ["campaign_started"]
        assert tail.poll() == []
        ledger.append(ProgressEvent(kind="campaign_finished", time=2.0))
        assert [e.kind for e in tail.poll()] == ["campaign_finished"]
        ledger.close()

    def test_partial_tail_line_buffers_until_newline(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        event = ProgressEvent(kind="campaign_started", time=1.0)
        line = event.to_json() + "\n"
        tail = LedgerTail(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(line[:10])
            handle.flush()
            assert tail.poll() == []  # incomplete: buffered, not parsed
            handle.write(line[10:])
            handle.flush()
        assert tail.poll() == [event]

    def test_tail_folds_to_same_view_as_replay(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        events = campaign_events(tasks=4, jobs=2)
        ledger = ProgressLedger(path)
        tail = LedgerTail(path)
        tailed = CampaignView()
        for event in events:
            ledger.append(event)
            for seen in tail.poll():
                tailed.fold(seen)
        ledger.close()
        assert tailed.as_dict() == CampaignView.replay(path).as_dict()


class TestStreamConfig:
    def test_flight_dir_defaults_to_ledger_dir(self, tmp_path):
        config = StreamConfig(ledger_path=tmp_path / "progress.jsonl")
        assert config.resolved_flight_dir() == tmp_path

    def test_worker_payload_is_json_safe(self, tmp_path):
        config = StreamConfig(
            ledger_path=tmp_path / "progress.jsonl",
            profile_dir=tmp_path / "profiles",
            trace_malloc=True,
        )
        payload = json.loads(json.dumps(config.worker_payload()))
        assert payload["flight_dir"] == str(tmp_path)
        assert payload["profile_dir"] == str(tmp_path / "profiles")
        assert payload["trace_malloc"] is True
        # The ledger path itself must NOT ride to workers: only the
        # parent appends to the ledger.
        assert "ledger_path" not in payload
