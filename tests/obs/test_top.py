"""Tests for repro.obs.top — dashboard rendering and the follow loop."""

import io

import pytest

from repro.obs.health import HealthState
from repro.obs.stream import (
    CampaignView,
    ProgressEvent,
    ProgressLedger,
    WorkerStatus,
)
from repro.obs.top import (
    ANSI_CLEAR,
    dashboard_state,
    find_ledger,
    render_dashboard,
    render_ledger,
    run_top,
    worker_health,
)


def write_campaign_ledger(path, tasks=4, finish=True, error_ids=()):
    ledger = ProgressLedger(path)
    ledger.append(ProgressEvent(
        kind="campaign_started", time=0.0,
        data={"campaign": "demo", "total": tasks, "skipped": 0, "jobs": 2},
    ))
    clock = 1.0
    for index in range(tasks):
        task_id = f"task{index}"
        worker = f"w{index % 2 + 1}"
        ledger.append(ProgressEvent(kind="task_started", time=clock,
                                    worker=worker, task_id=task_id))
        clock += 0.5
        kind = "task_errored" if task_id in error_ids else "task_finished"
        data = {"wall_time": 0.5}
        if kind == "task_errored":
            data["error"] = "boom"
        ledger.append(ProgressEvent(kind=kind, time=clock, task_id=task_id,
                                    data=data))
        clock += 0.5
    if finish:
        ledger.append(ProgressEvent(kind="campaign_finished", time=clock,
                                    data={"executed": tasks}))
    ledger.close()
    return path


class TestWorkerHealth:
    def view(self, finished=False, mean_wall=1.0):
        view = CampaignView()
        view.wall_time_sum = mean_wall
        view.wall_time_count = 1
        view.finished = finished
        return view

    def test_fresh_worker_is_green(self):
        worker = WorkerStatus("w1", last_seen=100.0)
        assert worker_health(worker, self.view(), 101.0) == HealthState.GREEN

    def test_stale_heartbeat_goes_yellow(self):
        worker = WorkerStatus("w1", last_seen=100.0)
        assert worker_health(worker, self.view(), 120.0) == HealthState.YELLOW

    def test_two_red_signals_go_red(self):
        worker = WorkerStatus(
            "w1", last_seen=100.0, errors=5,
            current_task="t", task_started_at=100.0,
        )
        # heartbeat_age 200s (RED), errors 5 (RED) -> RED.
        assert worker_health(worker, self.view(), 300.0) == HealthState.RED

    def test_stalled_task_contributes(self):
        worker = WorkerStatus(
            "w1", last_seen=99.0, current_task="t", task_started_at=90.0,
        )
        # 10s on a 1s-mean task: stall_factor 10 -> YELLOW vote.
        assert worker_health(worker, self.view(), 100.0) == HealthState.YELLOW

    def test_finished_campaign_is_always_green(self):
        worker = WorkerStatus("w1", last_seen=0.0, errors=50)
        view = self.view(finished=True)
        assert worker_health(worker, view, 1e9) == HealthState.GREEN


class TestRenderDashboard:
    def test_header_and_progress(self, tmp_path):
        path = write_campaign_ledger(tmp_path / "progress.jsonl")
        frame = render_ledger(path)
        assert "campaign demo" in frame
        assert "[FINISHED]" in frame
        assert "4/4 (100.0%)" in frame
        assert "w1" in frame and "w2" in frame

    def test_errored_tasks_listed(self, tmp_path):
        path = write_campaign_ledger(tmp_path / "progress.jsonl",
                                     error_ids={"task1"})
        frame = render_ledger(path)
        assert "errors=1" in frame
        assert "task1: boom" in frame

    def test_live_and_replay_render_identically(self, tmp_path):
        # The acceptance property: the frame a live fold renders equals
        # the frame a post-mortem replay of the same ledger renders.
        path = write_campaign_ledger(tmp_path / "progress.jsonl")
        from repro.obs.stream import read_ledger

        live = CampaignView()
        for event in read_ledger(path):
            live.fold(event)
        assert render_dashboard(live) == render_ledger(path)

    def test_unfinished_ledger_renders_running(self, tmp_path):
        path = write_campaign_ledger(tmp_path / "progress.jsonl",
                                     finish=False)
        assert "[RUNNING]" in render_ledger(path)

    def test_empty_view_renders(self):
        frame = render_dashboard(CampaignView())
        assert "campaign ?" in frame
        assert "0/0" in frame

    def test_dashboard_state_summary(self, tmp_path):
        path = write_campaign_ledger(tmp_path / "progress.jsonl")
        state = dashboard_state(CampaignView.replay(path))
        assert state["done"] == 4
        assert state["finished"] is True
        assert state["worker_health"] == {"w1": "GREEN", "w2": "GREEN"}
        assert len(state["worst_tasks"]) == 4


class TestFindLedger:
    def test_accepts_the_file_itself(self, tmp_path):
        path = write_campaign_ledger(tmp_path / "progress.jsonl")
        assert find_ledger(path) == path

    def test_accepts_the_out_dir(self, tmp_path):
        path = write_campaign_ledger(tmp_path / "progress.jsonl")
        assert find_ledger(tmp_path) == path

    def test_accepts_a_parent_with_one_run(self, tmp_path):
        run = tmp_path / "runs" / "campaign"
        run.mkdir(parents=True)
        path = write_campaign_ledger(run / "progress.jsonl")
        assert find_ledger(tmp_path / "runs") == path

    def test_ambiguous_parent_raises(self, tmp_path):
        for name in ("a", "b"):
            run = tmp_path / name
            run.mkdir()
            write_campaign_ledger(run / "progress.jsonl")
        with pytest.raises(FileNotFoundError):
            find_ledger(tmp_path)

    def test_missing_raises_with_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="--stream"):
            find_ledger(tmp_path)


class TestRunTop:
    def test_once_renders_single_frame(self, tmp_path):
        path = write_campaign_ledger(tmp_path / "progress.jsonl")
        out = io.StringIO()
        view = run_top(tmp_path, once=True, out=out)
        assert view.finished is True
        text = out.getvalue()
        assert ANSI_CLEAR not in text  # one-shot mode does not clear
        assert "[FINISHED]" in text

    def test_follow_stops_at_campaign_finished(self, tmp_path):
        path = write_campaign_ledger(tmp_path / "progress.jsonl")
        out = io.StringIO()
        view = run_top(tmp_path, follow=True, refresh=0.01, out=out)
        assert view.finished is True
        assert ANSI_CLEAR in out.getvalue()

    def test_follow_final_frame_matches_once_frame(self, tmp_path):
        # Acceptance: live follow and finished-ledger replay render the
        # identical final dashboard.
        path = write_campaign_ledger(tmp_path / "progress.jsonl")
        follow_out = io.StringIO()
        run_top(tmp_path, follow=True, refresh=0.01, out=follow_out)
        once_out = io.StringIO()
        run_top(tmp_path, once=True, out=once_out)
        final_frame = follow_out.getvalue().split(ANSI_CLEAR)[-1]
        assert final_frame == once_out.getvalue()

    def test_follow_max_frames_bounds_unfinished_ledger(self, tmp_path):
        write_campaign_ledger(tmp_path / "progress.jsonl", finish=False)
        out = io.StringIO()
        view = run_top(tmp_path, follow=True, refresh=0.01, out=out,
                       max_frames=2)
        assert view.finished is False
        assert out.getvalue().count(ANSI_CLEAR) == 2
