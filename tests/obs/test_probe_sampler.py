"""Tests for repro.obs.probe and repro.obs.sampler.

The probe publishes exactly the signals the ROADMAP's ``repro.control``
adaptive controller consumes; the sampler is the only piece that turns
gauges into time series and must never wedge a run.
"""

import pytest

from repro.core.protocol import build_protocol
from repro.net.loss import BernoulliLoss
from repro.obs.hub import MetricsHub
from repro.obs.probe import EventCoreProbe, HealthProbe, SharedStoreProbe
from repro.obs.sampler import DEFAULT_SAMPLE_INTERVAL, Sampler
from repro.sim.engine import Engine
from repro.sim.trace import NULL_TRACE


def observed_harness(**kwargs):
    hub = MetricsHub("probe-test")
    harness = build_protocol(trace=NULL_TRACE, hub=hub, **kwargs)
    return hub, harness


class TestWiring:
    def test_enabled_hub_attaches_probe_and_sampler(self):
        hub, harness = observed_harness()
        assert harness.hub is hub
        assert isinstance(harness.probe, HealthProbe)
        assert isinstance(harness.sampler, Sampler)
        assert harness.probe in harness.sampler.probes

    def test_disabled_run_attaches_nothing(self):
        harness = build_protocol(trace=NULL_TRACE)
        assert harness.hub is None
        assert harness.probe is None
        assert harness.sampler is None

    def test_caller_owned_engine_gets_no_sampler(self):
        # The engine's owner (the gateway) runs one shared sampler; a
        # per-SA build on a borrowed engine must not add its own.
        engine = Engine()
        hub = MetricsHub("shared")
        harness = build_protocol(engine=engine, hub=hub)
        assert harness.probe is not None
        assert harness.sampler is None


class TestProbeSignals:
    def test_loss_ewma_tracks_lossy_link(self):
        hub, harness = observed_harness(loss=BernoulliLoss(0.3), seed=7)
        harness.sender.start_traffic(count=400)
        harness.run(until=1.0)
        loss = hub.ewma("loss_ewma")
        assert loss.observations > 0
        assert 0.05 < loss.value < 0.6
        assert len(hub.series("loss_ewma").samples) > 0

    def test_lossless_run_reports_zero_loss(self):
        hub, harness = observed_harness()
        harness.sender.start_traffic(count=200)
        harness.run(until=1.0)
        assert hub.ewma("loss_ewma").value == 0.0
        assert hub.counter("replay_discards").value == 0

    def test_recovery_latency_observed_per_reset(self):
        hub, harness = observed_harness()
        harness.sender.start_traffic(count=300)
        harness.engine.call_later(
            4e-4, lambda: harness.sender.reset(down_for=2e-4)
        )
        harness.run(until=1.0)
        histogram = hub.histogram("recovery_latency")
        assert histogram.count == 1
        assert hub.counter("resets").value == 1
        # The latency is at least the scheduled down time.
        assert histogram.minimum >= 2e-4
        assert len(hub.series("recovery_latency").samples) == 1

    def test_save_queue_depth_sampled(self):
        hub, harness = observed_harness()
        harness.sender.start_traffic(count=300)
        harness.run(until=1.0)
        samples = hub.series("save_queue_depth").samples
        assert samples, "sampler never snapshotted the queue gauge"
        assert all(value >= 0 for _, value in samples)

    def test_signal_names_registered_eagerly(self):
        # An idle SA still exports its schema: every controller signal
        # name exists before any traffic runs.
        hub, _ = observed_harness()
        exported = hub.as_dict()
        assert "replay_discards" in exported["counters"]
        assert "resets" in exported["counters"]
        assert "loss_ewma" in exported["ewmas"]
        assert "recovery_latency" in exported["histograms"]
        assert "save_queue_depth" in exported["gauges"]
        assert "save_wait" in exported["gauges"]


class TestSamplerLifecycle:
    def test_unhorizoned_run_drains(self):
        # The tick must not re-arm forever: run() with no horizon ends.
        hub, harness = observed_harness()
        harness.sender.start_traffic(count=50)
        harness.run()
        assert harness.engine.pending_events == 0
        assert not harness.sampler.running

    def test_sample_cadence_matches_interval(self):
        engine = Engine()
        hub = MetricsHub("cadence")
        sampler = Sampler(engine, hub, interval=1e-3)
        sampler.start()
        engine.call_later(10.5e-3, lambda: None)  # keep the queue alive
        engine.run(until=10.5e-3)
        pending = hub.series("engine/pending_events").samples
        assert sampler.samples_taken == 10
        assert pending[0][0] == pytest.approx(1e-3)
        assert pending[-1][0] == pytest.approx(10e-3)

    def test_stop_disarms(self):
        engine = Engine()
        sampler = Sampler(engine, MetricsHub("stop"), interval=1e-3)
        sampler.start()
        sampler.stop()
        engine.call_later(5e-3, lambda: None)
        engine.run()
        assert sampler.samples_taken == 0
        assert not sampler.running

    def test_sample_now_while_stopped(self):
        engine = Engine()
        hub = MetricsHub("manual")
        sampler = Sampler(engine, hub, interval=1e-3)
        sampler.sample_now()
        assert sampler.samples_taken == 1
        assert len(hub.series("engine/events_processed").samples) == 1

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            Sampler(Engine(), MetricsHub("bad"), interval=0.0)

    def test_default_interval_is_paper_scaled(self):
        assert DEFAULT_SAMPLE_INTERVAL == pytest.approx(1e-4)


class TestEventCoreProbe:
    def test_publishes_event_core_counters(self):
        engine = Engine()
        hub = MetricsHub("core")
        probe = EventCoreProbe(hub, engine)
        for i in range(200):
            engine.call_later(1e-4 + i * 1e-4, lambda: None)
        engine.run()
        probe.sample(engine.now)
        assert hub.gauge("engine/events_processed").value == 200
        assert hub.gauge("engine/pending_events").value == 0
        # The default wheel core recycled the fired handles.
        assert hub.gauge("engine/pool_recycled").value > 0
        assert hub.gauge("engine/pool_size").value > 0
        assert len(hub.series("engine/events_processed").samples) == 1

    def test_watch_pool_publishes_under_label(self):
        from repro.net.pool import message_pool

        engine = Engine()
        hub = MetricsHub("core")
        probe = EventCoreProbe(hub, engine)
        pool = message_pool()
        probe.watch_pool("msgpool", pool)
        pool.release(pool.acquire(seq=1))
        pool.acquire(seq=2)
        probe.sample(0.0)
        assert hub.gauge("msgpool/pool_hits").value == 1
        assert hub.gauge("msgpool/pool_misses").value == 1
        assert hub.gauge("msgpool/pool_recycled").value == 1
        assert hub.gauge("msgpool/pool_size").value == 0

    def test_heap_core_reports_zero_pool_activity(self):
        engine = Engine(core="heap")
        hub = MetricsHub("core")
        probe = EventCoreProbe(hub, engine)
        engine.call_later(1e-3, lambda: None)
        engine.run()
        probe.sample(engine.now)
        assert hub.gauge("engine/pool_recycled").value == 0
        assert hub.gauge("engine/events_processed").value == 1


class TestSharedStoreProbe:
    def test_gateway_store_signals(self):
        from repro.gateway import Gateway

        hub = MetricsHub("gw")
        gateway = Gateway(n_sas=2, hub=hub)
        assert gateway.hub is hub
        assert gateway.sampler is not None
        assert isinstance(gateway.sampler.probes[0], SharedStoreProbe)
        assert isinstance(gateway.sampler.probes[1], EventCoreProbe)
        # One shared sampler serves the store and event-core probes plus
        # every SA probe.
        assert len(gateway.sampler.probes) == 4
        for unit in gateway.sas:
            unit.harness.sender.start_traffic(count=100)
        gateway.engine.run(until=1.0)
        assert hub.series("store/backlog").samples
        assert hub.series("store/saves").last_value() > 0
        assert hub.gauge("store/max_save_wait").value >= 0.0
