"""Tests for repro.obs.export — files, round-trips, and the schema contract.

The ``validate_*`` helpers are what the CI obs smoke job trusts, so both
the pass path and every rejection branch are pinned here.
"""

import json

import pytest

from repro.obs.export import (
    CHROME_TRACE_FILE,
    MANIFEST_FILE,
    MANIFEST_SCHEMA,
    METRICS_FILE,
    METRICS_SCHEMA,
    TRACE_RECORDS_FILE,
    build_manifest,
    chrome_trace_events,
    export_run,
    metrics_lines,
    read_manifest,
    read_metrics_jsonl,
    read_metrics_lines,
    read_trace_records,
    render_run_trace,
    validate_manifest,
    validate_metrics_lines,
    validate_progress_file,
    validate_progress_lines,
    validate_trace_events,
    write_chrome_trace,
    write_manifest,
    write_metrics_jsonl,
    write_trace_records,
)
from repro.obs.hub import MetricsHub
from repro.sim.trace import TraceRecorder


def populated_hub() -> MetricsHub:
    hub = MetricsHub("export-test")
    sa = hub.sub("sa0")
    sa.counter("replay_discards").inc(3)
    sa.gauge("save_queue_depth").set(2.0)
    sa.ewma("loss_ewma").observe(0.125)
    sa.histogram("recovery_latency").observe(3e-4)
    sa.series("loss_ewma").sample(1e-3, 0.125)
    hub.counter("resets").inc()
    return hub


def recorded_trace() -> TraceRecorder:
    trace = TraceRecorder()
    trace.record(0.0, "p", "send", seq=1)
    trace.record(1e-4, "p", "reset")
    trace.record(3e-4, "p", "resume")
    trace.record(4e-4, "q", "deliver", seq=1)
    return trace


class TestMetricsJsonl:
    def test_header_first_then_one_line_per_instrument(self):
        lines = metrics_lines(populated_hub())
        assert lines[0]["kind"] == "meta"
        assert lines[0]["schema"] == METRICS_SCHEMA
        assert lines[0]["labels"] == ["sa0"]
        kinds = [line["kind"] for line in lines[1:]]
        assert set(kinds) == {"counter", "gauge", "ewma", "histogram", "series"}

    def test_round_trip_matches_as_dict(self, tmp_path):
        hub = populated_hub()
        path = write_metrics_jsonl(hub, tmp_path / METRICS_FILE)
        read_back = read_metrics_jsonl(path)
        exported = hub.as_dict()
        assert read_back["name"] == exported["name"]
        assert read_back["labels"] == exported["labels"]
        assert read_back["counters"] == exported["counters"]
        assert read_back["gauges"] == exported["gauges"]
        assert read_back["ewmas"] == exported["ewmas"]
        assert read_back["histograms"] == exported["histograms"]
        assert {name: [list(sample) for sample in samples]
                for name, samples in read_back["series"].items()} == exported["series"]

    def test_writes_nested_parent_dirs(self, tmp_path):
        # Fleet task IDs contain "/" — the writer must create the subdirs.
        path = write_metrics_jsonl(
            populated_hub(), tmp_path / "obs" / "grid0" / "t1.metrics.jsonl"
        )
        assert path.exists()

    def test_validate_accepts_real_lines(self):
        assert validate_metrics_lines(metrics_lines(populated_hub())) == []

    def test_validate_rejects_missing_meta(self):
        errors = validate_metrics_lines(
            [{"kind": "counter", "name": "x", "value": 1}]
        )
        assert any("meta" in error for error in errors)

    def test_validate_rejects_wrong_schema(self):
        errors = validate_metrics_lines([{"kind": "meta", "schema": "bogus@9"}])
        assert any(METRICS_SCHEMA in error for error in errors)

    def test_validate_rejects_misplaced_meta(self):
        lines = metrics_lines(populated_hub())
        errors = validate_metrics_lines(lines[1:] + lines[:1])
        assert any("first line" in error for error in errors)

    def test_validate_rejects_unknown_kind(self):
        lines = metrics_lines(populated_hub()) + [{"kind": "sparkline"}]
        assert any("unknown kind" in e for e in validate_metrics_lines(lines))

    def test_validate_rejects_bad_values(self):
        lines = metrics_lines(populated_hub()) + [
            {"kind": "counter", "name": "x", "value": "three"},
            {"kind": "ewma", "name": "y", "value": 0.5},
            {"kind": "histogram", "name": "z", "count": "many", "buckets": []},
            {"kind": "series", "name": "w", "samples": [[1.0]]},
            {"kind": "gauge", "name": "", "value": 0.0},
        ]
        errors = validate_metrics_lines(lines)
        assert any("numeric value" in error for error in errors)
        assert any("alpha" in error for error in errors)
        assert any("integer count" in error for error in errors)
        assert any("buckets dict" in error for error in errors)
        assert any("[time, value]" in error for error in errors)
        assert any("instrument name" in error for error in errors)


class TestReadMetricsLines:
    def write_metrics(self, tmp_path):
        return write_metrics_jsonl(populated_hub(), tmp_path / METRICS_FILE)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_metrics_lines(tmp_path / METRICS_FILE)

    def test_clean_file_reads_without_notes(self, tmp_path):
        path = self.write_metrics(tmp_path)
        notes: list[str] = []
        lines = read_metrics_lines(path, errors=notes)
        assert notes == []
        assert lines == metrics_lines(populated_hub())

    def test_torn_tail_salvaged_with_note(self, tmp_path):
        # A kill -9 mid-export tears the last line; every complete line
        # must survive and the damage must be reported, not fatal.
        path = self.write_metrics(tmp_path)
        whole = path.read_bytes()
        path.write_bytes(whole[:-20])
        notes: list[str] = []
        lines = read_metrics_lines(path, errors=notes)
        assert len(lines) == len(metrics_lines(populated_hub())) - 1
        assert any("torn line" in note for note in notes)

    def test_non_object_line_skipped_with_note(self, tmp_path):
        path = self.write_metrics(tmp_path)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]\n")
        notes: list[str] = []
        lines = read_metrics_lines(path, errors=notes)
        assert lines == metrics_lines(populated_hub())
        assert any("non-object" in note for note in notes)

    def test_torn_file_still_validates_surviving_lines(self, tmp_path):
        # The CLI obs --check path: salvage notes are warnings, schema
        # errors are failures, and a torn tail alone produces neither.
        path = self.write_metrics(tmp_path)
        path.write_bytes(path.read_bytes()[:-20])
        assert validate_metrics_lines(read_metrics_lines(path)) == []

    def test_read_metrics_jsonl_tolerates_torn_tail(self, tmp_path):
        path = self.write_metrics(tmp_path)
        path.write_bytes(path.read_bytes()[:-20])
        export = read_metrics_jsonl(path)
        assert export["name"] == "export-test"
        # The torn instrument is gone; the salvaged ones loaded.
        full = populated_hub().as_dict()
        for group in ("counters", "gauges", "ewmas"):
            for name, value in export[group].items():
                assert full[group][name] == value


def progress_lines(tasks=2):
    from repro.obs.stream import PROGRESS_SCHEMA

    lines = [{"kind": "campaign_started", "time": 0.0,
              "schema": PROGRESS_SCHEMA,
              "data": {"campaign": "demo", "total": tasks}}]
    for index in range(tasks):
        lines.append({"kind": "task_started", "time": 1.0 + index,
                      "worker": "w1", "task_id": f"t{index}"})
        lines.append({"kind": "task_finished", "time": 1.5 + index,
                      "task_id": f"t{index}", "data": {"wall_time": 0.5}})
    lines.append({"kind": "campaign_finished", "time": 9.0,
                  "data": {"executed": tasks}})
    return lines


class TestValidateProgress:
    def test_accepts_well_formed_sequence(self):
        assert validate_progress_lines(progress_lines()) == []

    def test_rejects_unknown_kind(self):
        lines = progress_lines() + [{"kind": "task_retried", "time": 10.0}]
        errors = validate_progress_lines(lines)
        assert any("unknown kind 'task_retried'" in e for e in errors)

    def test_rejects_missing_schema_tag(self):
        lines = progress_lines()
        del lines[0]["schema"]
        errors = validate_progress_lines(lines)
        assert any("schema None" in e for e in errors)

    def test_rejects_events_before_campaign_started(self):
        lines = progress_lines()[1:]
        errors = validate_progress_lines(lines)
        # The ordering break is reported once, not per line.
        assert len([e for e in errors if "before any" in e]) == 1

    def test_task_scoped_kinds_need_task_id(self):
        for kind in ("task_started", "task_finished", "task_errored"):
            lines = progress_lines() + [{"kind": kind, "time": 10.0}]
            errors = validate_progress_lines(lines)
            assert any(f"{kind} needs a task_id" in e for e in errors)

    def test_rejects_non_numeric_time_and_non_object_data(self):
        lines = progress_lines()
        lines[1]["time"] = "noon"
        lines[2]["data"] = ["not", "an", "object"]
        errors = validate_progress_lines(lines)
        assert any("numeric time" in e for e in errors)
        assert any("data must be an object" in e for e in errors)

    def write_ledger(self, tmp_path, lines):
        path = tmp_path / "progress.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        return path

    def test_file_validates_clean_ledger(self, tmp_path):
        path = self.write_ledger(tmp_path, progress_lines())
        assert validate_progress_file(path) == []

    def test_torn_ledger_reports_salvage_not_schema_errors(self, tmp_path):
        # A SIGKILLed run's ledger: the torn tail line becomes a salvage
        # note; the surviving lines still pass the schema check.
        path = self.write_ledger(tmp_path, progress_lines())
        path.write_bytes(path.read_bytes()[:-15])
        errors = validate_progress_file(path)
        assert errors
        assert all("torn line" in e for e in errors)

    def test_file_reports_schema_breaks(self, tmp_path):
        lines = progress_lines() + [{"kind": "mystery", "time": 99.0}]
        path = self.write_ledger(tmp_path, lines)
        assert any("unknown kind" in e for e in validate_progress_file(path))


class TestManifest:
    def test_build_and_validate(self):
        manifest = build_manifest(
            "run", scenario="gateway_crash", params={"n_sas": 4}, seed=2003,
            engine_stats={"events_processed": 100}, wall_time=0.5,
            files=[METRICS_FILE],
        )
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["files"] == [METRICS_FILE]
        assert validate_manifest(manifest) == []

    def test_round_trip(self, tmp_path):
        manifest = build_manifest("run", files=[METRICS_FILE], extra={"note": 1})
        path = write_manifest(manifest, tmp_path / MANIFEST_FILE)
        assert read_manifest(path) == manifest

    def test_validate_rejects_bad_shapes(self):
        assert validate_manifest({}) != []
        errors = validate_manifest({"schema": MANIFEST_SCHEMA, "name": 3,
                                    "files": "metrics.jsonl"})
        assert any("string name" in error for error in errors)
        assert any("files list" in error for error in errors)


class TestTraceRecords:
    def test_round_trip(self, tmp_path):
        trace = recorded_trace()
        path = write_trace_records(trace, tmp_path / TRACE_RECORDS_FILE)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["dropped"] == 0
        records = read_trace_records(path)
        assert len(records) == len(trace)
        assert records[0].kind == "send"
        assert records[0].detail == {"seq": 1}

    def test_dropped_count_survives(self, tmp_path):
        trace = TraceRecorder(max_records=2)
        for index in range(5):
            trace.record(index * 1e-4, "p", "send", seq=index)
        path = write_trace_records(trace, tmp_path / "t.jsonl")
        header = json.loads(path.read_text().splitlines()[0])
        assert header["dropped"] == 3


class TestChromeTrace:
    def test_sources_become_threads_and_records_instants(self):
        events = chrome_trace_events(recorded_trace())
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["args"]["name"] for e in metadata} == {
            "repro simulation", "p", "q",
        }
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 4
        assert instants[0]["ts"] == 0.0

    def test_reset_resume_pair_becomes_recovery_span(self):
        events = chrome_trace_events(recorded_trace())
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["name"] == "recovery"
        assert spans[0]["ts"] == pytest.approx(1e-4 * 1e6)
        assert spans[0]["dur"] == pytest.approx(2e-4 * 1e6)

    def test_hub_series_become_counter_tracks(self):
        events = chrome_trace_events(export=populated_hub().as_dict())
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and counters[0]["name"] == "sa0/loss_ewma"
        assert counters[0]["args"] == {"value": 0.125}

    def test_metadata_sorts_first_then_time(self):
        events = chrome_trace_events(
            recorded_trace(), export=populated_hub().as_dict()
        )
        phases = [e["ph"] for e in events]
        assert phases[: phases.count("M")] == ["M"] * phases.count("M")
        timestamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert timestamps == sorted(timestamps)

    def test_non_json_detail_values_stringified(self):
        trace = TraceRecorder()
        trace.record(0.0, "p", "send", window=object())
        events = chrome_trace_events(trace)
        instant = next(e for e in events if e["ph"] == "i")
        assert isinstance(instant["args"]["window"], str)
        json.dumps(events)  # the whole document must serialize

    def test_write_and_validate_document(self, tmp_path):
        events = chrome_trace_events(
            recorded_trace(), export=populated_hub().as_dict()
        )
        path = write_chrome_trace(events, tmp_path / CHROME_TRACE_FILE)
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert validate_trace_events(document) == []

    def test_validate_rejects_bad_events(self):
        assert validate_trace_events({}) == ["document needs a traceEvents list"]
        errors = validate_trace_events({"traceEvents": [
            "not-an-object",
            {"ph": "Z", "name": "x", "pid": 1},
            {"ph": "i", "name": "x", "pid": 1, "ts": -1.0, "s": "t"},
            {"ph": "X", "name": "x", "pid": 1, "ts": 0.0, "dur": -2.0},
            {"ph": "C", "name": "x", "pid": 1, "ts": 0.0, "args": {"v": "hi"}},
            {"ph": "i", "name": "x", "pid": 1, "ts": 0.0, "s": "galaxy"},
        ]})
        assert any("not an object" in error for error in errors)
        assert any("unknown phase" in error for error in errors)
        assert any("non-negative ts" in error for error in errors)
        assert any("non-negative dur" in error for error in errors)
        assert any("numeric args" in error for error in errors)
        assert any("scope s" in error for error in errors)


class TestRunDirectories:
    def test_export_run_writes_metrics_and_manifest(self, tmp_path):
        run_dir = export_run(
            tmp_path / "run", populated_hub(), name="export-test",
            scenario="baseline", seed=7,
        )
        assert (run_dir / METRICS_FILE).exists()
        manifest = read_manifest(run_dir / MANIFEST_FILE)
        assert manifest["files"] == [METRICS_FILE]
        assert manifest["scenario"] == "baseline"
        # No Chrome trace until the summarize step asks for one.
        assert not (run_dir / CHROME_TRACE_FILE).exists()

    def test_export_run_includes_trace_when_recorded(self, tmp_path):
        run_dir = export_run(
            tmp_path / "run", populated_hub(), trace=recorded_trace(),
        )
        manifest = read_manifest(run_dir / MANIFEST_FILE)
        assert sorted(manifest["files"]) == [METRICS_FILE, TRACE_RECORDS_FILE]

    def test_empty_trace_writes_no_records_file(self, tmp_path):
        run_dir = export_run(
            tmp_path / "run", populated_hub(), trace=TraceRecorder(),
        )
        assert not (run_dir / TRACE_RECORDS_FILE).exists()

    def test_render_run_trace_uses_everything(self, tmp_path):
        run_dir = export_run(
            tmp_path / "run", populated_hub(), trace=recorded_trace(),
        )
        path = render_run_trace(run_dir)
        document = json.loads(path.read_text())
        assert validate_trace_events(document) == []
        phases = {event["ph"] for event in document["traceEvents"]}
        assert phases == {"M", "i", "X", "C"}
        # Idempotent: re-rendering overwrites cleanly.
        assert render_run_trace(run_dir) == path

    def test_render_run_trace_empty_dir_is_none(self, tmp_path):
        assert render_run_trace(tmp_path) is None
