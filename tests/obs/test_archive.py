"""Tests for repro.obs.archive (the run warehouse)."""

import json

import pytest

from repro.obs.archive import (
    EXCLUDED_SIGNAL_PARTS,
    KIND_BENCH,
    KIND_FLEET,
    KIND_OBS,
    RUN_SCHEMA,
    SAMPLE_CAP,
    RunArchive,
    RunSnapshot,
    downsample,
    signal_is_excluded,
    snapshot_from_bench,
    snapshot_from_fleet_run,
    snapshot_from_obs_run,
    snapshot_target,
)
from repro.perf import RATE_SCHEMA


def make_snapshot(name="run", counter=1, kind=KIND_OBS):
    snapshot = RunSnapshot(kind=kind, name=name)
    snapshot.signals["counters"]["events"] = counter
    snapshot.signals["gauges"]["level"] = 0.5
    return snapshot


def observed_run(tmp_path, seed=2003, **param_overrides):
    """Run a tiny observed gateway_crash and export it to a run dir."""
    from repro.obs.export import export_run
    from repro.obs.hub import MetricsHub, use_hub
    from repro.workloads.scenarios import run_gateway_crash_scenario

    params = {"n_sas": 2, "crash_after_sends": 20,
              "messages_after_reset": 20}
    params.update(param_overrides)
    hub = MetricsHub()
    with use_hub(hub):
        metrics = run_gateway_crash_scenario(seed=seed, **params)
    return export_run(
        tmp_path / "run", hub, scenario="gateway_crash", params=params,
        seed=seed, manifest_extra={"metrics": metrics, "wall_time": 0.0},
    )


class TestDownsample:
    def test_short_series_verbatim(self):
        assert downsample([1.0, 2.0, 3.0]) == [1.0, 2.0, 3.0]

    def test_long_series_capped_and_ends_preserved(self):
        values = [float(i) for i in range(5000)]
        picked = downsample(values)
        assert len(picked) == SAMPLE_CAP
        assert picked[0] == 0.0
        assert picked[-1] == 4999.0
        assert picked == sorted(picked)  # order preserved

    def test_deterministic(self):
        values = [float(i) for i in range(1234)]
        assert downsample(values) == downsample(values)


class TestExclusions:
    @pytest.mark.parametrize("part", EXCLUDED_SIGNAL_PARTS)
    def test_each_part_excludes(self, part):
        assert signal_is_excluded(f"worker/{part}_bytes")

    def test_protocol_names_kept(self):
        for name in ("replay_discards", "recovery_latency", "converged"):
            assert not signal_is_excluded(name)


class TestRunSnapshot:
    def test_hash_ignores_meta(self):
        a = make_snapshot()
        b = make_snapshot()
        b.meta["created"] = 999.0
        b.meta["git_sha"] = "deadbeef"
        b.meta["machine_score"] = 99.0
        assert a.run_id == b.run_id

    def test_hash_tracks_signals(self):
        a = make_snapshot(counter=1)
        b = make_snapshot(counter=2)
        assert a.run_id != b.run_id

    def test_hash_tracks_kind_and_name(self):
        assert make_snapshot(name="x").run_id != make_snapshot(name="y").run_id
        assert (make_snapshot(kind=KIND_OBS).run_id
                != make_snapshot(kind=KIND_FLEET).run_id)

    def test_dict_round_trip(self):
        snapshot = make_snapshot()
        snapshot.meta["git_sha"] = "abc"
        data = json.loads(json.dumps(snapshot.as_dict()))
        loaded = RunSnapshot.from_dict(data)
        assert loaded.run_id == snapshot.run_id
        assert loaded.signals == snapshot.signals
        assert loaded.meta["git_sha"] == "abc"

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="not a"):
            RunSnapshot.from_dict({"schema": "something/else@9"})

    def test_from_dict_rejects_edited_content(self):
        data = make_snapshot().as_dict()
        data["signals"]["counters"]["events"] = 42  # tamper after hashing
        with pytest.raises(ValueError, match="content hash mismatch"):
            RunSnapshot.from_dict(data)


class TestObsExtractor:
    def test_snapshot_shape(self, tmp_path):
        run_dir = observed_run(tmp_path)
        snapshot = snapshot_from_obs_run(run_dir)
        assert snapshot.kind == KIND_OBS
        assert snapshot.name == "gateway_crash"
        assert snapshot.signals["counters"]  # resets, discards, ...
        assert "recovery_latency" in snapshot.signals["histograms"]
        assert "recovery_latency" in snapshot.signals["samples"]
        assert "metric/converged" in snapshot.signals["counters"]
        assert snapshot.meta["seed"] == 2003

    def test_no_machine_dependent_signals(self, tmp_path):
        snapshot = snapshot_from_obs_run(observed_run(tmp_path))
        for table in snapshot.signals.values():
            for name in table:
                assert not signal_is_excluded(name), name

    def test_deterministic_across_reruns(self, tmp_path):
        a = snapshot_from_obs_run(observed_run(tmp_path / "a"))
        b = snapshot_from_obs_run(observed_run(tmp_path / "b"))
        assert a.run_id == b.run_id

    def test_different_workload_different_hash(self, tmp_path):
        a = snapshot_from_obs_run(observed_run(tmp_path / "a"))
        b = snapshot_from_obs_run(
            observed_run(tmp_path / "b", crash_after_sends=30)
        )
        assert a.run_id != b.run_id


def fleet_run(tmp_path, sessions=4):
    from repro.fleet import CampaignSpec, run_campaign

    spec = CampaignSpec.from_dict({
        "name": "arch-fleet",
        "base_seed": 2003,
        "grids": [{
            "scenario": "sender_reset",
            "sessions": sessions,
            "params": {"k": 25, "messages_after_reset": 40,
                       "reset_after_sends": [40, 50]},
        }],
    })
    out = tmp_path / "fleet"
    run_campaign(spec, store=out / "results.jsonl")
    # Write the aggregate the CLI writes, so the extractor sees it.
    from repro.fleet.aggregate import aggregate_store
    from repro.fleet.results import ResultStore

    store = ResultStore(out / "results.jsonl")
    aggregate = aggregate_store(store)
    payload = aggregate.summary().as_dict()
    if aggregate.sketch.count:
        payload["sketch"] = aggregate.sketch.as_dict()
    (out / "aggregate.json").write_text(json.dumps(payload))
    return out


class TestFleetExtractor:
    def test_snapshot_shape(self, tmp_path):
        out = fleet_run(tmp_path)
        snapshot = snapshot_from_fleet_run(out)
        assert snapshot.kind == KIND_FLEET
        assert snapshot.signals["counters"]["tasks"] == 4
        assert snapshot.signals["counters"]["errors"] == 0

    def test_convergence_points_and_sketch(self, tmp_path):
        from repro.fleet.aggregate import QuantileSketch

        sketch = QuantileSketch()
        for value in (0.001, 0.002, 0.004):
            sketch.observe(value)
        out = tmp_path / "fleet"
        out.mkdir()
        (out / "aggregate.json").write_text(json.dumps({
            "tasks": 3, "ok": 3, "errors": 0,
            "convergence_time": {"p50": 0.002, "p99": 0.004, "max": 0.004},
            "sketch": sketch.as_dict(),
        }))
        snapshot = snapshot_from_fleet_run(out)
        assert snapshot.signals["gauges"]["time_to_converge/p99"] == 0.004
        assert "time_to_converge" in snapshot.signals["sketches"]
        loaded = QuantileSketch.from_dict(
            snapshot.signals["sketches"]["time_to_converge"]
        )
        assert loaded.count == 3

    def test_missing_dir_raises(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(FileNotFoundError, match="neither"):
            snapshot_from_fleet_run(empty)


def bench_json(tmp_path, normalized=1000.0, tagged=True):
    extra = {
        "schema": RATE_SCHEMA, "name": "bench_x", "metric": "events/s",
        "count": 500, "seconds": 0.5, "rate": 1000.0,
        "machine_score": 1.0, "normalized_rate": normalized,
        "git_sha": "cafe" * 10,
    } if tagged else {"note": "untagged"}
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "BENCH_X.json"
    path.write_text(json.dumps({
        "benchmarks": [{"name": "bench_x", "stats": {"min": 0.5},
                        "extra_info": extra}],
    }))
    return path


class TestBenchExtractor:
    def test_snapshot_shape(self, tmp_path):
        snapshot = snapshot_from_bench(bench_json(tmp_path))
        assert snapshot.kind == KIND_BENCH
        assert snapshot.signals["gauges"]["bench_x/normalized_rate"] == 1000.0
        assert snapshot.signals["counters"]["bench_x/count"] == 500
        assert snapshot.meta["git_sha"] == "cafe" * 10
        assert snapshot.meta["machine_score"] == 1.0

    def test_untagged_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="tagged"):
            snapshot_from_bench(bench_json(tmp_path, tagged=False))

    def test_hash_machine_independent(self, tmp_path):
        a = snapshot_from_bench(bench_json(tmp_path / "a"))
        b_path = bench_json(tmp_path / "b")
        data = json.loads(b_path.read_text())
        data["benchmarks"][0]["extra_info"]["machine_score"] = 7.7
        data["benchmarks"][0]["extra_info"]["git_sha"] = "beef" * 10
        b_path.write_text(json.dumps(data))
        b = snapshot_from_bench(b_path)
        assert a.run_id == b.run_id  # score and sha live in meta only


class TestSnapshotTarget:
    def test_sniffs_obs_dir(self, tmp_path):
        assert snapshot_target(observed_run(tmp_path)).kind == KIND_OBS

    def test_sniffs_fleet_dir(self, tmp_path):
        assert snapshot_target(fleet_run(tmp_path)).kind == KIND_FLEET

    def test_sniffs_bench_file(self, tmp_path):
        assert snapshot_target(bench_json(tmp_path)).kind == KIND_BENCH

    def test_loads_written_snapshot(self, tmp_path):
        snapshot = make_snapshot()
        path = tmp_path / "run.json"
        path.write_text(json.dumps(snapshot.as_dict()))
        assert snapshot_target(path).run_id == snapshot.run_id

    def test_missing_target_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            snapshot_target(tmp_path / "gone")

    def test_unknown_json_raises(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a"):
            snapshot_target(path)


class TestRunArchive:
    def test_add_and_load(self, tmp_path):
        archive = RunArchive(tmp_path / "wh")
        snapshot = make_snapshot()
        assert archive.add(snapshot) is True
        loaded = archive.load(snapshot.run_id)
        assert loaded is not None
        assert loaded.run_id == snapshot.run_id
        assert archive.index()[0]["schema"] == RUN_SCHEMA

    def test_readd_dedups(self, tmp_path):
        archive = RunArchive(tmp_path / "wh")
        snapshot = make_snapshot()
        assert archive.add(snapshot) is True
        assert archive.add(snapshot) is False
        assert len(archive.index()) == 1

    def test_history_order_and_filters(self, tmp_path):
        archive = RunArchive(tmp_path / "wh")
        for counter in (1, 2, 3):
            archive.add(make_snapshot(counter=counter))
        archive.add(make_snapshot(name="other", kind=KIND_FLEET))
        runs = archive.history(kind=KIND_OBS, name="run")
        assert len(runs) == 3
        assert [r.signals["counters"]["events"] for r in runs] == [1, 2, 3]
        assert len(archive.history(last=2)) == 2
        assert archive.history(kind=KIND_FLEET)[0].name == "other"

    def test_resolve_latest_prefix_and_path(self, tmp_path):
        archive = RunArchive(tmp_path / "wh")
        first = make_snapshot(counter=1)
        second = make_snapshot(counter=2)
        archive.add(first)
        archive.add(second)
        assert archive.resolve("latest").run_id == second.run_id
        assert archive.resolve(first.run_id[:10]).run_id == first.run_id
        run_dir = observed_run(tmp_path)
        assert archive.resolve(str(run_dir)).kind == KIND_OBS

    def test_resolve_errors(self, tmp_path):
        archive = RunArchive(tmp_path / "wh")
        with pytest.raises(ValueError, match="empty"):
            archive.resolve("latest")
        archive.add(make_snapshot(counter=1))
        with pytest.raises(ValueError, match="matches nothing"):
            archive.resolve("zzzz")
