"""Tests for repro.obs.health — voting, thresholds, and the table."""

from repro.obs.health import (
    DEFAULT_THRESHOLDS,
    HealthState,
    HealthThresholds,
    _pool_hit_rate,
    classify,
    health_rows,
    render_health_table,
    signal_level,
    vote,
)
from repro.obs.hub import MetricsHub


class TestSignalLevel:
    def test_boundaries_are_inclusive(self):
        assert signal_level(0.01, 0.02, 0.20) == HealthState.GREEN
        assert signal_level(0.02, 0.02, 0.20) == HealthState.YELLOW
        assert signal_level(0.20, 0.02, 0.20) == HealthState.RED

    def test_states_order_by_severity(self):
        assert HealthState.GREEN < HealthState.YELLOW < HealthState.RED
        assert HealthState.RED.label == "RED"


class TestClassify:
    def test_all_quiet_is_green(self):
        signals = {"loss_ewma": 0.0, "save_queue_depth": 1.0,
                   "recovery_p99": 0.0, "replay_discards": 0}
        assert classify(signals) == HealthState.GREEN

    def test_one_yellow_signal_makes_yellow(self):
        signals = {"loss_ewma": 0.05, "save_queue_depth": 0.0,
                   "recovery_p99": 0.0, "replay_discards": 0}
        assert classify(signals) == HealthState.YELLOW

    def test_single_red_vote_is_only_yellow(self):
        # The anti-flap property: one saturated signal cannot declare an
        # SA dead on its own.
        signals = {"loss_ewma": 0.9, "save_queue_depth": 0.0,
                   "recovery_p99": 0.0, "replay_discards": 0}
        assert classify(signals) == HealthState.YELLOW

    def test_two_red_votes_make_red(self):
        signals = {"loss_ewma": 0.9, "save_queue_depth": 10.0,
                   "recovery_p99": 0.0, "replay_discards": 0}
        assert classify(signals) == HealthState.RED

    def test_red_votes_parameter(self):
        signals = {"loss_ewma": 0.9, "save_queue_depth": 0.0,
                   "recovery_p99": 0.0, "replay_discards": 0}
        assert classify(signals, red_votes=1) == HealthState.RED

    def test_unknown_signals_ignored(self):
        assert classify({"cpu_temperature": 1e9}) == HealthState.GREEN

    def test_custom_thresholds(self):
        strict = HealthThresholds(loss=(0.001, 0.01))
        assert classify({"loss_ewma": 0.005}, thresholds=strict) == (
            HealthState.YELLOW
        )
        assert strict.for_signal("loss_ewma") == (0.001, 0.01)
        assert DEFAULT_THRESHOLDS.for_signal("nonsense") is None


class TestVote:
    def test_all_green(self):
        assert vote([HealthState.GREEN] * 3) == HealthState.GREEN

    def test_empty_levels_are_green(self):
        assert vote([]) == HealthState.GREEN

    def test_any_yellow_lifts_to_yellow(self):
        levels = [HealthState.GREEN, HealthState.YELLOW, HealthState.GREEN]
        assert vote(levels) == HealthState.YELLOW

    def test_single_red_is_only_yellow(self):
        assert vote([HealthState.RED, HealthState.GREEN]) == HealthState.YELLOW

    def test_red_quorum(self):
        assert vote([HealthState.RED, HealthState.RED]) == HealthState.RED
        assert vote([HealthState.RED], red_votes=1) == HealthState.RED


class TestPoolHitRate:
    def test_none_when_probe_never_sampled(self):
        assert _pool_hit_rate({}) is None

    def test_zero_when_pool_untouched(self):
        gauges = {"engine/pool_hits": 0.0, "engine/pool_misses": 0.0}
        assert _pool_hit_rate(gauges) == 0.0

    def test_rate_is_hits_over_total(self):
        gauges = {"engine/pool_hits": 75.0, "engine/pool_misses": 25.0}
        assert _pool_hit_rate(gauges) == 0.75

    def test_one_sided_gauges_count_as_zero(self):
        assert _pool_hit_rate({"engine/pool_hits": 10.0}) == 1.0
        assert _pool_hit_rate({"engine/pool_misses": 10.0}) == 0.0


def observed_export(loss: float = 0.0, discards: int = 0) -> dict:
    hub = MetricsHub("health-test")
    for index in range(2):
        sa = hub.sub(f"sa{index}")
        sa.ewma("loss_ewma").observe(loss if index else 0.0)
        sa.counter("replay_discards").inc(discards if index else 0)
        sa.counter("resets").inc()
        sa.gauge("save_queue_depth").set(1.0)
        sa.series("save_queue_depth").sample(1e-3, 1.0 + index)
        sa.histogram("recovery_latency").observe(2e-4)
        sa.gauge("path_transitions").set(0.0)
    return hub.as_dict()


class TestHealthRows:
    def test_one_row_per_label(self):
        rows = health_rows(observed_export())
        assert [row["label"] for row in rows] == ["sa0", "sa1"]
        assert all(row["recoveries"] == 1 for row in rows)
        assert all(row["resets"] == 1 for row in rows)

    def test_peak_depth_from_series_not_last_gauge(self):
        rows = health_rows(observed_export())
        assert rows[1]["save_queue_depth"] == 2.0

    def test_signals_drive_state(self):
        rows = health_rows(observed_export(loss=0.5, discards=500))
        assert rows[0]["state"] == "GREEN"
        assert rows[1]["state"] == "RED"

    def test_unlabeled_export_yields_single_row(self):
        hub = MetricsHub("single")
        hub.ewma("loss_ewma").observe(0.0)
        rows = health_rows(hub.as_dict())
        assert len(rows) == 1
        assert rows[0]["label"] == "-"

    def test_render_table(self):
        table = render_health_table(health_rows(observed_export(loss=0.5,
                                                                discards=500)))
        assert "sa0" in table and "sa1" in table
        assert "overall: 1 GREEN, 1 RED" in table

    def test_render_empty(self):
        assert "no SAs" in render_health_table([])

    def test_pool_hit_column_renders_dash_without_probe(self):
        # Pre-PR-7 exports have no EventCoreProbe gauges: every row's
        # pool_hit_rate is None and the column must render "-".
        table = render_health_table(health_rows(observed_export()))
        assert "pool_hit%" in table
        for line in table.splitlines()[2:-1]:
            assert line.rstrip().endswith("-")

    def test_pool_hit_column_renders_percentage(self):
        hub = MetricsHub("health-test")
        hub.sub("sa0").ewma("loss_ewma").observe(0.0)
        hub.gauge("engine/pool_hits").set(90.0)
        hub.gauge("engine/pool_misses").set(10.0)
        rows = health_rows(hub.as_dict())
        assert all(row["pool_hit_rate"] == 0.9 for row in rows)
        table = render_health_table(rows)
        assert "90.0" in table
