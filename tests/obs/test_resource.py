"""Tests for repro.obs.resource — probes, usage deltas, slow-task profiler."""

import time
import tracemalloc

import pytest

from repro.obs.hub import MetricsHub
from repro.obs.resource import (
    ResourceProbe,
    TaskProfiler,
    publish_task_usage,
    resource_snapshot,
    rss_bytes,
)


class TestResourceSnapshot:
    def test_snapshot_keys_and_types(self):
        snapshot = resource_snapshot()
        assert snapshot["cpu_user"] >= 0.0
        assert snapshot["cpu_system"] >= 0.0
        assert isinstance(snapshot["rss_bytes"], int)
        assert "tracemalloc_peak" not in snapshot  # not tracing

    def test_rss_is_plausible(self):
        # A running CPython interpreter occupies at least a few MiB.
        assert rss_bytes() > 1 << 20

    def test_tracemalloc_fields_when_tracing(self):
        tracemalloc.start()
        try:
            blob = ["x"] * 10_000
            snapshot = resource_snapshot()
            assert snapshot["tracemalloc_peak"] >= snapshot[
                "tracemalloc_current"] > 0
            del blob
        finally:
            tracemalloc.stop()


class TestResourceProbe:
    def test_sample_publishes_gauges_and_series(self):
        hub = MetricsHub("probe-test")
        probe = ResourceProbe(hub)
        snapshot = probe.sample(now=1.5)
        export = hub.as_dict()
        gauges = export["gauges"]
        assert gauges["worker/cpu_time"] == pytest.approx(
            snapshot["cpu_user"] + snapshot["cpu_system"]
        )
        assert gauges["worker/rss_bytes"] == snapshot["rss_bytes"]
        cpu_curve = export["series"]["worker/cpu_time"]
        assert [point[0] for point in cpu_curve] == [1.5]

    def test_resample_extends_the_curve(self):
        hub = MetricsHub("probe-test")
        probe = ResourceProbe(hub)
        probe.sample(now=1.0)
        probe.sample(now=2.0)
        curve = hub.as_dict()["series"]["worker/rss_bytes"]
        assert [point[0] for point in curve] == [1.0, 2.0]


class TestPublishTaskUsage:
    def test_delta_computed_and_published(self):
        hub = MetricsHub("usage-test")
        before = {"cpu_user": 1.0, "cpu_system": 0.5, "rss_bytes": 100}
        after = {"cpu_user": 1.4, "cpu_system": 0.6, "rss_bytes": 175}
        delta = publish_task_usage(hub, before, after)
        assert delta["task_cpu"] == pytest.approx(0.5)
        assert delta["task_rss_growth"] == 75
        gauges = hub.as_dict()["gauges"]
        assert gauges["worker/task_cpu"] == pytest.approx(0.5)
        assert gauges["worker/task_rss_growth"] == 75

    def test_tracemalloc_peak_passes_through(self):
        hub = MetricsHub("usage-test")
        before = {"cpu_user": 0, "cpu_system": 0, "rss_bytes": 0}
        after = {"cpu_user": 0, "cpu_system": 0, "rss_bytes": 0,
                 "tracemalloc_peak": 4096}
        delta = publish_task_usage(hub, before, after)
        assert delta["tracemalloc_peak"] == 4096
        assert hub.as_dict()["gauges"]["worker/tracemalloc_peak"] == 4096


class TestTaskProfiler:
    def test_no_threshold_before_min_samples(self, tmp_path):
        profiler = TaskProfiler(tmp_path, min_samples=5)
        for _ in range(4):
            profiler.observe(1.0)
        assert profiler.threshold() is None
        assert profiler.should_dump(100.0) is False

    def test_percentile_threshold(self, tmp_path):
        profiler = TaskProfiler(tmp_path, percentile=0.9, min_samples=10)
        for wall in range(10):  # 0..9
            profiler.observe(float(wall))
        assert profiler.threshold() == 9.0
        assert profiler.should_dump(9.0) is True
        assert profiler.should_dump(8.9) is False

    def test_rank(self, tmp_path):
        profiler = TaskProfiler(tmp_path, min_samples=1)
        for wall in (1.0, 2.0, 3.0, 4.0):
            profiler.observe(wall)
        assert profiler.rank(2.5) == pytest.approx(0.5)

    def test_profile_dumps_only_past_cutoff(self, tmp_path):
        profiler = TaskProfiler(tmp_path, percentile=0.9, min_samples=4)
        # Establish a distribution of ~1ms tasks deterministically.
        for _ in range(4):
            profiler.observe(0.001)
        with profiler.profile("fast"):
            pass  # well under the 1ms cutoff
        assert profiler.dumped == []
        with profiler.profile("slow/one"):
            time.sleep(0.05)
        assert "slow/one" in profiler.dumped
        # Hierarchical ids flatten into the profile dir.
        assert (tmp_path / "slow_one.pstats").exists()

    def test_dump_is_loadable_pstats(self, tmp_path):
        import pstats

        profiler = TaskProfiler(tmp_path, min_samples=1)
        with profiler.profile("first"):
            sum(range(1000))
        with profiler.profile("second"):
            sum(range(200_000))
        assert "second" in profiler.dumped
        stats = pstats.Stats(str(tmp_path / "second.pstats"))
        assert stats.total_calls >= 1

    def test_cutoff_evaluated_before_observe(self, tmp_path):
        # A task must not raise the bar for itself: the decision uses
        # the history *excluding* the task being decided.
        profiler = TaskProfiler(tmp_path, percentile=0.0, min_samples=2)
        profiler.observe(1.0)
        profiler.observe(1.0)
        with profiler.profile("t"):
            pass
        # percentile 0 -> cutoff is min(history) = 1.0; the ~0s task is
        # below it, so no dump even though observe() later added ~0s.
        assert profiler.dumped == []
