"""Edge cases the diff engine leans on: quantile bounds and hardened
deserialization for QuantileSketch and LogHistogram.

The cross-run diff gates on ``quantile_bounds`` intervals, so these pin
the degenerate shapes — empty, single observation, all-equal, spilled,
underflow — and the bounds-contain-truth contract that makes "within
sketch error" an honest verdict.
"""

import math

import pytest

from repro.fleet.aggregate import (
    SKETCH_RELATIVE_ERROR,
    QuantileSketch,
    percentile,
)
from repro.obs.hub import LogHistogram


class TestSketchQuantileBounds:
    def test_empty_is_zero_width_zero(self):
        assert QuantileSketch().quantile_bounds(0.5) == (0.0, 0.0)

    def test_single_observation_exact(self):
        sketch = QuantileSketch()
        sketch.observe(0.003)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert sketch.quantile_bounds(q) == (0.003, 0.003)

    def test_all_equal_stream_exact(self):
        sketch = QuantileSketch()
        for _ in range(1000):
            sketch.observe(7.0)
        assert sketch.quantile_bounds(0.99) == (7.0, 7.0)

    def test_bounds_contain_truth(self):
        values = [0.0001 * (1 + i % 97) for i in range(5000)]
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        for q in (0.1, 0.5, 0.9, 0.99):
            lo, hi = sketch.quantile_bounds(q)
            truth = percentile(values, q * 100.0)
            assert lo <= truth <= hi, (q, lo, truth, hi)

    def test_width_respects_documented_error(self):
        sketch = QuantileSketch()
        for i in range(1000):
            sketch.observe(0.001 * (1 + i % 50))
        lo, hi = sketch.quantile_bounds(0.99)
        assert lo >= hi / (1.0 + SKETCH_RELATIVE_ERROR) - 1e-12

    def test_underflow_values_bounded(self):
        sketch = QuantileSketch()
        sketch.observe(0.0)
        sketch.observe(0.0)
        sketch.observe(1.0)
        lo, hi = sketch.quantile_bounds(0.5)
        assert lo <= 0.0 <= hi

    def test_lo_clamped_to_minimum(self):
        sketch = QuantileSketch()
        sketch.observe(1.0)
        sketch.observe(1.001)  # same bucket as 1.0's upper region
        lo, hi = sketch.quantile_bounds(0.99)
        assert lo >= 1.0  # never below the observed minimum


class TestSketchFromDictHardening:
    def roundtrip(self, sketch, drop=()):
        data = sketch.as_dict()
        for key in drop:
            data.pop(key, None)
        return QuantileSketch.from_dict(data)

    def build(self, values):
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        return sketch

    def test_full_round_trip(self):
        sketch = self.build([0.001, 0.002, 0.004, 0.0])
        loaded = self.roundtrip(sketch)
        assert loaded.count == sketch.count
        assert loaded.minimum == sketch.minimum
        assert loaded.maximum == sketch.maximum
        assert loaded.quantile(0.5) == sketch.quantile(0.5)

    def test_missing_min_derives_conservative(self):
        sketch = self.build([0.5, 1.0, 2.0])
        loaded = self.roundtrip(sketch, drop=("min",))
        assert loaded.minimum <= sketch.minimum
        lo, hi = loaded.quantile_bounds(0.5)
        assert lo <= sketch.quantile(0.5) <= hi or lo <= hi

    def test_missing_max_derives_upper_edge(self):
        sketch = self.build([0.5, 1.0, 2.0])
        loaded = self.roundtrip(sketch, drop=("max",))
        assert loaded.maximum >= sketch.maximum

    def test_missing_min_with_underflow_is_zero(self):
        sketch = self.build([0.0, 1.0])
        loaded = self.roundtrip(sketch, drop=("min",))
        assert loaded.minimum == 0.0

    def test_empty_payload(self):
        loaded = QuantileSketch.from_dict({})
        assert loaded.count == 0
        assert loaded.quantile_bounds(0.5) == (0.0, 0.0)


class TestHistogramQuantileBounds:
    def test_empty_is_zero_width_zero(self):
        assert LogHistogram("h").quantile_bounds(0.5) == (0.0, 0.0)

    def test_single_observation_exact(self):
        hist = LogHistogram("h")
        hist.observe(0.003)
        assert hist.quantile_bounds(0.99) == (0.003, 0.003)

    def test_all_equal_exact(self):
        hist = LogHistogram("h")
        for _ in range(100):
            hist.observe(2.5)
        assert hist.quantile_bounds(0.5) == (2.5, 2.5)

    def test_bounds_contain_truth(self):
        values = [0.001 * (1 + i % 31) for i in range(2000)]
        hist = LogHistogram("h")
        for value in values:
            hist.observe(value)
        for q in (0.1, 0.5, 0.9, 0.99):
            lo, hi = hist.quantile_bounds(q)
            truth = percentile(values, q * 100.0)
            assert lo <= truth <= hi, (q, lo, truth, hi)

    def test_one_octave_width(self):
        hist = LogHistogram("h")
        for i in range(100):
            hist.observe(0.001 * (1 + i % 17))
        lo, hi = hist.quantile_bounds(0.99)
        assert lo >= hi / 2.0 - 1e-15

    def test_zero_and_negative_bounded(self):
        hist = LogHistogram("h")
        hist.observe(0.0)
        hist.observe(0.0)
        hist.observe(5.0)
        lo, hi = hist.quantile_bounds(0.25)
        assert lo <= 0.0 <= hi


class TestHistogramFromDictHardening:
    def build(self, values):
        hist = LogHistogram("h")
        for value in values:
            hist.observe(value)
        return hist

    def roundtrip(self, hist, drop=()):
        data = hist.as_dict()
        for key in drop:
            data.pop(key, None)
        return LogHistogram.from_dict("h", data)

    def test_missing_min_never_overstates(self):
        hist = self.build([0.5, 1.0, 4.0])
        loaded = self.roundtrip(hist, drop=("min",))
        assert loaded.minimum <= hist.minimum

    def test_missing_max_never_understates(self):
        hist = self.build([0.5, 1.0, 4.0])
        loaded = self.roundtrip(hist, drop=("max",))
        assert loaded.maximum >= hist.maximum

    def test_missing_extremes_keep_bounds_honest(self):
        values = [0.001 * (1 + i % 13) for i in range(500)]
        hist = self.build(values)
        loaded = self.roundtrip(hist, drop=("min", "max"))
        for q in (0.5, 0.99):
            lo, hi = loaded.quantile_bounds(q)
            truth = percentile(values, q * 100.0)
            assert lo <= truth <= hi

    def test_underflow_bucket_min_is_zero(self):
        hist = self.build([0.0, 1.0])
        loaded = self.roundtrip(hist, drop=("min",))
        assert loaded.minimum == 0.0

    def test_empty_payload(self):
        loaded = LogHistogram.from_dict("h", {})
        assert loaded.count == 0
        assert loaded.quantile_bounds(0.5) == (0.0, 0.0)


class TestMixedDiffShapes:
    """The three distribution-evidence shapes diff pairwise sanely."""

    def evidence(self, values):
        sketch = QuantileSketch()
        hist = LogHistogram("lat")
        for value in values:
            sketch.observe(value)
            hist.observe(value)
        return sketch, hist

    @pytest.mark.parametrize("q", [0.5, 0.99])
    def test_same_data_intervals_overlap_pairwise(self, q):
        values = [0.001 * (1 + i % 11) for i in range(300)]
        sketch, hist = self.evidence(values)
        exact = percentile(values, q * 100.0)
        intervals = [
            sketch.quantile_bounds(q),
            hist.quantile_bounds(q),
            (exact, exact),
        ]
        for a_lo, a_hi in intervals:
            for b_lo, b_hi in intervals:
                assert a_lo <= b_hi and b_lo <= a_hi, (
                    "same-data evidence shapes must overlap"
                )

    def test_shifted_data_separates_cleanly(self):
        base_values = [0.001 * (1 + i % 11) for i in range(300)]
        cur_values = [v * 4.0 for v in base_values]  # beyond any slop
        base_sketch, base_hist = self.evidence(base_values)
        cur_sketch, cur_hist = self.evidence(cur_values)
        for base, cur in (
            (base_sketch.quantile_bounds(0.99),
             cur_sketch.quantile_bounds(0.99)),
            (base_hist.quantile_bounds(0.99),
             cur_hist.quantile_bounds(0.99)),
            (base_sketch.quantile_bounds(0.99),
             cur_hist.quantile_bounds(0.99)),
        ):
            assert cur[0] > base[1], "4x shift must clear the error bounds"
