"""End-to-end streaming telemetry: live runs, parity, and the SIGKILL test.

The acceptance property this file pins (ISSUE PR 9): a campaign killed
with SIGKILL mid-flight leaves a ``progress.jsonl`` whose replayed
:class:`CampaignView` matches the healed result store exactly — zero
lost tasks, zero phantom tasks — and each SIGTERMed worker's flight
dump is schema-valid.  Stream-off runs must stay byte-identical to the
pre-streaming runner.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.fleet.results import ResultStore, progress_ledger_path
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import CampaignSpec, ScenarioGrid
from repro.obs.export import validate_flight_dump, validate_progress_file
from repro.obs.flightrec import load_flight
from repro.obs.stream import CampaignView, StreamConfig
from repro.obs.top import render_dashboard

SRC = str(Path(__file__).resolve().parents[2] / "src")


def small_spec(sessions=6):
    return CampaignSpec(
        name="stream-e2e",
        base_seed=2003,
        grids=(ScenarioGrid(
            scenario="sender_reset",
            params={"k": 25, "reset_after_sends": [40, 50, 60],
                    "messages_after_reset": 60},
            sessions=sessions,
        ),),
    )


def streamed_runner(tmp_path, jobs=1, **stream_kwargs):
    store = ResultStore(tmp_path / "results.jsonl")
    stream = StreamConfig(
        ledger_path=progress_ledger_path(store), **stream_kwargs
    )
    return FleetRunner(small_spec(), store, jobs=jobs, stream=stream), store


class TestStreamedRunner:
    def check_run(self, tmp_path, jobs):
        runner, store = streamed_runner(tmp_path, jobs=jobs)
        outcome = runner.run()
        assert len(outcome.executed) == 6
        ledger = progress_ledger_path(store)
        assert validate_progress_file(ledger) == []
        replayed = CampaignView.replay(ledger)
        assert replayed.completed == store.completed_ids()
        assert replayed.finished is True
        assert replayed.total == 6
        # Live view and replayed view render the identical dashboard.
        assert render_dashboard(runner.view) == render_dashboard(replayed)
        return replayed

    def test_serial_streamed_campaign(self, tmp_path):
        view = self.check_run(tmp_path, jobs=1)
        assert set(view.workers) == {"w0"}

    def test_pooled_streamed_campaign(self, tmp_path):
        view = self.check_run(tmp_path, jobs=2)
        # Pool workers are named by pool identity; the parent's
        # task_finished events attribute to them via task_started.
        assert all(name.startswith("w") for name in view.workers)
        assert sum(w.tasks_done for w in view.workers.values()) == 6

    def test_resume_skips_and_reconciles(self, tmp_path):
        runner, store = streamed_runner(tmp_path, jobs=1)
        runner.run()
        again, _ = streamed_runner(tmp_path, jobs=1)
        again.store = store
        outcome = again.run()
        assert outcome.skipped == 6
        assert len(outcome.executed) == 0
        view = CampaignView.replay(progress_ledger_path(store))
        assert view.runs == 2
        assert view.completed == store.completed_ids()

    def test_snapshot_events_carry_merged_rollup(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        stream = StreamConfig(
            ledger_path=progress_ledger_path(store), snapshot_every=2
        )
        runner = FleetRunner(
            small_spec(), store, jobs=1, stream=stream,
            obs_dir=tmp_path / "obs",
        )
        runner.run()
        assert runner.view.rollup["tasks"] == 6
        assert runner.view.rollup["counters"]["resets"] >= 6


class TestStreamOffParity:
    def run_store(self, tmp_path, stream):
        store = ResultStore(tmp_path / "results.jsonl")
        config = (
            StreamConfig(ledger_path=progress_ledger_path(store))
            if stream else None
        )
        FleetRunner(small_spec(), store, jobs=1, stream=config).run()
        return (tmp_path / "results.jsonl").read_bytes()

    def test_store_identical_with_and_without_stream(self, tmp_path):
        # wall_time is the one field excluded from determinism
        # comparisons (it differs between ANY two runs); everything
        # else in the store must be unaffected by streaming.
        def canonical(raw):
            records = []
            for line in raw.decode("utf-8").splitlines():
                record = json.loads(line)
                record.pop("wall_time", None)
                records.append(record)
            return records

        off = self.run_store(tmp_path / "off", stream=False)
        on = self.run_store(tmp_path / "on", stream=True)
        assert canonical(off) == canonical(on)
        # Byte-level: the lines differ only inside their wall_time field.
        assert len(off.splitlines()) == len(on.splitlines())

    def test_stream_off_writes_no_ledger_or_flight_files(self, tmp_path):
        self.run_store(tmp_path, stream=False)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "results.jsonl",
        ]

    def test_stream_off_metrics_have_no_worker_instruments(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        FleetRunner(
            small_spec(), store, jobs=1, obs_dir=tmp_path / "obs"
        ).run()
        metrics_files = list((tmp_path / "obs").rglob("*.metrics.jsonl"))
        assert metrics_files
        for path in metrics_files:
            assert "worker/" not in path.read_text(encoding="utf-8")

    def test_streamed_observed_metrics_gain_worker_instruments(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        stream = StreamConfig(ledger_path=progress_ledger_path(store))
        FleetRunner(
            small_spec(), store, jobs=1, stream=stream,
            obs_dir=tmp_path / "obs",
        ).run()
        metrics_files = list((tmp_path / "obs").rglob("*.metrics.jsonl"))
        assert metrics_files
        for path in metrics_files:
            assert "worker/task_cpu" in path.read_text(encoding="utf-8")


KILL_DRIVER = """\
import multiprocessing
import os
import signal
import sys
import time

from repro.fleet.results import ResultStore, progress_ledger_path
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import CampaignSpec, ScenarioGrid
from repro.obs.stream import StreamConfig

out = sys.argv[1]
spec = CampaignSpec(
    name="kill-e2e",
    base_seed=2003,
    grids=(ScenarioGrid(
        scenario="gateway_crash",
        params={"n_sas": 6, "crash_after_sends": 250,
                "messages_after_reset": 250},
        sessions=10,
    ),),
)
store = ResultStore(os.path.join(out, "results.jsonl"))
stream = StreamConfig(ledger_path=progress_ledger_path(store))


def progress(done, pending, record):
    if done >= 2:
        # SIGTERM the pool workers mid-task (they dump flight rings),
        # give the dumps a moment to land, then die without cleanup.
        for child in multiprocessing.active_children():
            os.kill(child.pid, signal.SIGTERM)
        time.sleep(1.0)
        # The pool maintenance thread respawns replacements for the
        # SIGTERMed workers during the sleep; SIGKILL them too so no
        # orphan outlives the parent holding its stdio pipes open.
        for child in multiprocessing.active_children():
            try:
                os.kill(child.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        os.kill(os.getpid(), signal.SIGKILL)


FleetRunner(spec, store, jobs=2, progress=progress, stream=stream).run()
"""


class TestSigkillAcceptance:
    def launch_and_kill(self, tmp_path):
        driver = tmp_path / "driver.py"
        driver.write_text(KILL_DRIVER, encoding="utf-8")
        out = tmp_path / "run"
        out.mkdir()
        env = dict(os.environ, PYTHONPATH=SRC)
        # Redirect stdio to files and wait on the *process*, not on pipe
        # EOF: any straggler grandchild inheriting the pipes would keep
        # a capture_output wait blocked long after the driver died.
        with (tmp_path / "driver.out").open("wb") as out_file, \
                (tmp_path / "driver.err").open("wb") as err_file:
            proc = subprocess.Popen(
                [sys.executable, str(driver), str(out)],
                env=env, stdout=out_file, stderr=err_file,
            )
            returncode = proc.wait(timeout=120)
        assert returncode == -signal.SIGKILL, (
            f"driver should die by SIGKILL, got {returncode}:\n"
            f"{(tmp_path / 'driver.err').read_text(encoding='utf-8')}"
        )
        return out

    def test_sigkill_leaves_exact_replayable_state(self, tmp_path):
        out = self.launch_and_kill(tmp_path)
        ledger = out / "progress.jsonl"
        assert ledger.exists()
        # The torn ledger still schema-validates (salvage drops at most
        # the torn tail line).
        assert validate_progress_file(ledger) == []

        store = ResultStore(out / "results.jsonl")  # heals on open
        completed = store.completed_ids()
        assert len(completed) >= 2  # the kill fired after 2 records

        view = CampaignView.replay(ledger)
        # Zero phantom tasks: persist order is store-then-ledger, so a
        # ledger task_finished implies a durable store record.
        assert view.completed <= completed
        # Zero lost tasks beyond the record in flight at the kill.
        assert len(completed - view.completed) <= 1

        # Resume with the same store: reconciliation closes the gap and
        # the finished campaign agrees everywhere.
        spec = CampaignSpec(
            name="kill-e2e",
            base_seed=2003,
            grids=(ScenarioGrid(
                scenario="gateway_crash",
                params={"n_sas": 6, "crash_after_sends": 250,
                        "messages_after_reset": 250},
                sessions=10,
            ),),
        )
        stream = StreamConfig(ledger_path=progress_ledger_path(store))
        runner = FleetRunner(spec, store, jobs=2, stream=stream)
        outcome = runner.run()
        assert outcome.skipped == len(completed)
        assert runner.view.completed == store.completed_ids()
        assert len(store.completed_ids()) == 10
        assert validate_progress_file(ledger) == []
        final = CampaignView.replay(ledger)
        assert final.completed == store.completed_ids()
        assert final.recovered == completed - view.completed
        assert render_dashboard(runner.view) == render_dashboard(final)

    def test_killed_workers_left_valid_flight_dumps(self, tmp_path):
        out = self.launch_and_kill(tmp_path)
        dumps = sorted(out.glob("flight_*.json"))
        # Workers were mid-task when SIGTERMed (slow tasks, chunksize
        # 1), so at least one ring dumped; every dump must validate.
        assert dumps, "no flight dumps written by SIGTERMed workers"
        for path in dumps:
            dump = load_flight(path)
            assert validate_flight_dump(dump) == []
            assert dump["reason"] == "sigterm"
            assert dump["current_task"] is not None
            kinds = [event["kind"] for event in dump["events"]]
            assert "task_started" in kinds
