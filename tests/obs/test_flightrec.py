"""Tests for repro.obs.flightrec — the ring, dumps, and the SIGTERM hook."""

import json
import multiprocessing
import os
import signal

from repro.obs.export import validate_flight_dump
from repro.obs.flightrec import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    flight_path,
    load_flight,
)


class TestFlightRecorder:
    def test_ring_bounds_and_dropped_count(self):
        flight = FlightRecorder("w1", limit=4)
        for index in range(10):
            flight.note("tick", time=float(index))
        assert flight.recorded == 10
        assert flight.dropped == 6
        snapshot = flight.snapshot("test")
        assert len(snapshot["events"]) == 4
        # The ring keeps the newest events.
        assert [e["time"] for e in snapshot["events"]] == [6.0, 7.0, 8.0, 9.0]

    def test_task_boundaries_manage_current_task(self):
        flight = FlightRecorder("w1")
        flight.task_started("t1", time=1.0)
        assert flight.current_task == "t1"
        flight.task_finished("t1", time=2.0, status="ok")
        assert flight.current_task is None

    def test_snapshot_is_schema_valid(self):
        flight = FlightRecorder("w1", limit=8)
        flight.task_started("t1", time=1.0)
        flight.note("heartbeat", time=1.5)
        snapshot = flight.snapshot("unhandled_exception")
        assert snapshot["schema"] == FLIGHT_SCHEMA
        assert snapshot["current_task"] == "t1"
        assert validate_flight_dump(snapshot) == []

    def test_dump_round_trips_and_validates(self, tmp_path):
        flight = FlightRecorder("w3", limit=8)
        flight.task_started("g0/s00001", time=1.0)
        target = flight.dump(tmp_path, "sigterm")
        assert target == flight_path(tmp_path, "w3")
        assert target.name == "flight_w3.json"
        dump = load_flight(target)
        assert dump["reason"] == "sigterm"
        assert dump["worker"] == "w3"
        assert validate_flight_dump(dump) == []
        # Atomic write: no temp file left behind.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_redump_replaces_previous(self, tmp_path):
        flight = FlightRecorder("w1")
        flight.dump(tmp_path, "first")
        flight.note("more", time=2.0)
        flight.dump(tmp_path, "second")
        dump = load_flight(flight_path(tmp_path, "w1"))
        assert dump["reason"] == "second"
        assert dump["recorded"] == 1

    def test_load_flight_rejects_non_object(self, tmp_path):
        path = tmp_path / "flight_bad.json"
        path.write_text("[1, 2]", encoding="utf-8")
        try:
            load_flight(path)
        except ValueError as exc:
            assert "not an object" in str(exc)
        else:
            raise AssertionError("expected ValueError")


def _sigterm_child(
    flight_dir: str, ready_path: str, mark_task_active: bool
) -> None:
    """Child process: install the worker SIGTERM hook, optionally mark a
    task in flight, then wait to be terminated by the test."""
    import time
    from pathlib import Path

    from repro.obs.flightrec import FlightRecorder

    flight = FlightRecorder("wchild", limit=16)
    flight.note("booted", time=0.0)
    if mark_task_active:
        flight.task_started("task/under/test", time=1.0)

    def handler(signum, frame):
        if flight.current_task is not None:
            flight.dump(flight_dir, "sigterm")
        os._exit(128 + signum)

    signal.signal(signal.SIGTERM, handler)
    Path(ready_path).write_text("ready", encoding="utf-8")
    while True:
        time.sleep(0.05)


class TestSigtermDump:
    def run_child(self, tmp_path, mark_task_active):
        import time

        ready_path = tmp_path / "ready"
        ctx = multiprocessing.get_context("spawn")
        child = ctx.Process(
            target=_sigterm_child,
            args=(str(tmp_path), str(ready_path), mark_task_active),
        )
        child.start()
        deadline = time.time() + 20.0
        while not ready_path.exists():
            assert time.time() < deadline, "child never became ready"
            time.sleep(0.02)
        child.terminate()
        child.join(timeout=10.0)
        # os._exit(128 + SIGTERM) in the handler, not a raw signal death.
        assert child.exitcode == 128 + signal.SIGTERM

    def test_sigterm_mid_task_dumps_flight(self, tmp_path):
        self.run_child(tmp_path, mark_task_active=True)
        dump = load_flight(flight_path(tmp_path, "wchild"))
        assert dump["reason"] == "sigterm"
        assert dump["current_task"] == "task/under/test"
        assert validate_flight_dump(dump) == []

    def test_sigterm_between_tasks_leaves_no_dump(self, tmp_path):
        # The guard that keeps a normal pool teardown from littering
        # flight files: no task in flight, no dump.
        self.run_child(tmp_path, mark_task_active=False)
        assert not flight_path(tmp_path, "wchild").exists()


class TestValidateFlightDump:
    def good(self):
        return json.loads(json.dumps(FlightRecorder("w1").snapshot("test")))

    def test_missing_schema_fails(self):
        dump = self.good()
        del dump["schema"]
        assert validate_flight_dump(dump)

    def test_event_without_kind_fails(self):
        flight = FlightRecorder("w1")
        flight.note("task_started", time=1.0)
        dump = flight.snapshot("test")
        del dump["events"][0]["kind"]
        assert validate_flight_dump(dump)

    def test_recorded_less_than_ring_fails(self):
        flight = FlightRecorder("w1")
        flight.note("tick")
        dump = flight.snapshot("test")
        dump["recorded"] = 0
        assert validate_flight_dump(dump)
