"""The regression-gate acceptance: a seeded 2x recovery-latency
regression is caught RED (exit 1) while the self-diff of the same run
reports zero regressions (exit 0), and every render is byte-identical
between live ingest and archive replay.

This is the CI `regression` job in miniature, driven through the real
CLI surfaces (`obs archive` / `obs diff` / `obs history`).
"""

import copy
import json

import pytest

from repro.__main__ import main
from repro.obs.archive import RunArchive, RunSnapshot, snapshot_target
from repro.obs.compare import diff_runs, render_diff_table
from repro.obs.health import HealthState
from repro.obs.trend import render_history_table


@pytest.fixture(scope="module")
def observed_run(tmp_path_factory):
    """A small observed gateway_crash exported to a run directory."""
    from repro.obs.export import export_run
    from repro.obs.hub import MetricsHub, use_hub
    from repro.workloads.scenarios import run_gateway_crash_scenario

    params = {"n_sas": 4, "crash_after_sends": 60,
              "messages_after_reset": 60}
    hub = MetricsHub()
    with use_hub(hub):
        metrics = run_gateway_crash_scenario(seed=2003, **params)
    return export_run(
        tmp_path_factory.mktemp("gate") / "run", hub,
        scenario="gateway_crash", params=params, seed=2003,
        manifest_extra={"metrics": metrics},
    )


def seeded_regression(snapshot, factor=2.0):
    """The synthetic regression: recovery latency multiplied through
    every evidence shape (samples, histogram extremes + bucket shift)."""
    regressed = copy.deepcopy(snapshot)
    octaves = int(factor).bit_length() - 1  # 2x -> one bucket up
    for name, values in regressed.signals["samples"].items():
        if "recovery" in name:
            regressed.signals["samples"][name] = [v * factor for v in values]
    for name, payload in list(regressed.signals["histograms"].items()):
        if "recovery" in name:
            shifted = dict(payload)
            shifted["buckets"] = {
                str(int(index) + octaves): count
                for index, count in payload["buckets"].items()
            }
            for key in ("min", "max", "mean", "p50", "p99", "total"):
                if key in shifted:
                    shifted[key] = shifted[key] * factor
            regressed.signals["histograms"][name] = shifted
    return regressed


class TestSeededRegression:
    def test_doubled_recovery_latency_goes_red(self, observed_run):
        base = snapshot_target(observed_run)
        cur = seeded_regression(base)
        diff = diff_runs(base, cur)
        assert diff.verdict is HealthState.RED
        assert any("recovery" in row.name for row in diff.regressions)

    def test_improvement_direction_stays_green(self, observed_run):
        base = snapshot_target(observed_run)
        cur = seeded_regression(base)
        # Halving latency (the reverse diff) is an improvement.
        assert diff_runs(cur, base).verdict is HealthState.GREEN

    def test_self_diff_zero_regressions(self, observed_run):
        snapshot = snapshot_target(observed_run)
        diff = diff_runs(snapshot, snapshot)
        assert diff.verdict is HealthState.GREEN
        assert diff.regressions == []


class TestCliGate:
    def test_self_diff_exits_zero(self, observed_run, tmp_path, capsys):
        code = main(["obs", "diff", str(observed_run), str(observed_run),
                     "--archive", str(tmp_path / "wh")])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict: GREEN (0 regression(s))" in out
        assert "self-diff" in out

    def test_seeded_regression_exits_one(self, observed_run, tmp_path,
                                          capsys):
        base = snapshot_target(observed_run)
        regressed = seeded_regression(base)
        # The regressed snapshot is hash-consistent (recomputed), so it
        # writes/loads as a first-class archived run.
        reg_path = tmp_path / "regressed.json"
        reg_path.write_text(json.dumps(regressed.as_dict()))
        code = main(["obs", "diff", str(observed_run), str(reg_path),
                     "--archive", str(tmp_path / "wh")])
        captured = capsys.readouterr()
        assert code == 1
        assert "verdict: RED" in captured.out
        assert "REGRESSION" in captured.err
        assert "--write-snapshot" in captured.err  # refresh hint

    def test_json_output_parses(self, observed_run, tmp_path, capsys):
        code = main(["obs", "diff", str(observed_run), str(observed_run),
                     "--archive", str(tmp_path / "wh"), "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["verdict"] == "GREEN"
        assert data["regressions"] == 0


class TestArchiveCli:
    def test_archive_then_dedup(self, observed_run, tmp_path, capsys):
        warehouse = tmp_path / "wh"
        assert main(["obs", "archive", str(observed_run),
                     "--archive", str(warehouse)]) == 0
        first = capsys.readouterr().out
        assert "archived: obs-run" in first
        assert main(["obs", "archive", str(observed_run),
                     "--archive", str(warehouse)]) == 0
        second = capsys.readouterr().out
        assert "already archived" in second
        assert len(RunArchive(warehouse).index()) == 1

    def test_write_snapshot_round_trips(self, observed_run, tmp_path,
                                        capsys):
        target = tmp_path / "ref" / "run.json"
        assert main(["obs", "archive", str(observed_run),
                     "--write-snapshot", str(target)]) == 0
        loaded = RunSnapshot.from_dict(json.loads(target.read_text()))
        assert loaded.run_id == snapshot_target(observed_run).run_id

    def test_history_renders(self, observed_run, tmp_path, capsys):
        warehouse = tmp_path / "wh"
        main(["obs", "archive", str(observed_run),
              "--archive", str(warehouse)])
        capsys.readouterr()
        assert main(["obs", "history", "--archive", str(warehouse)]) == 0
        out = capsys.readouterr().out
        assert "1 run(s)" in out
        assert "gateway_crash" in out


class TestByteIdenticalReplay:
    def test_diff_render_replays_identically(self, observed_run, tmp_path):
        warehouse = RunArchive(tmp_path / "wh")
        live = snapshot_target(observed_run)
        regressed = seeded_regression(live)
        warehouse.add(live)
        warehouse.add(regressed)
        live_render = render_diff_table(diff_runs(live, regressed),
                                        verbose=True)
        replayed = render_diff_table(
            diff_runs(warehouse.load(live.run_id),
                      warehouse.load(regressed.run_id)),
            verbose=True,
        )
        assert replayed == live_render

    def test_history_render_replays_identically(self, observed_run,
                                                tmp_path):
        warehouse = RunArchive(tmp_path / "wh")
        live = snapshot_target(observed_run)
        regressed = seeded_regression(live)
        warehouse.add(live)
        warehouse.add(regressed)
        live_render = render_history_table([live, regressed])
        assert render_history_table(warehouse.history()) == live_render
        assert "!" in live_render or "anomaly" in live_render


class TestCommittedReference:
    def test_reference_snapshot_is_valid_and_hash_consistent(self):
        from pathlib import Path

        ref = (Path(__file__).resolve().parents[2]
               / "benchmarks" / "baselines" / "obs_reference" / "run.json")
        assert ref.exists(), "the CI gate's reference snapshot is missing"
        snapshot = RunSnapshot.from_dict(json.loads(ref.read_text()))
        assert snapshot.kind == "obs-run"
        assert snapshot.name == "gateway_crash"
        # The gate's protocol metrics are all present.
        assert "recovery_latency" in snapshot.signals["histograms"]
        assert "metric/converged" in snapshot.signals["counters"]
        # Self-diff of the committed file: zero regressions forever.
        diff = diff_runs(snapshot, snapshot)
        assert diff.verdict is HealthState.GREEN
