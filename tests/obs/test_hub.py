"""Tests for repro.obs.hub — instruments, labels, rollups, the NullHub."""

import math

import pytest

from repro.obs.hub import (
    LOG_BUCKET_COUNT,
    NULL_HUB,
    EwmaGauge,
    Gauge,
    HubCounter,
    LogHistogram,
    MetricsHub,
    NullHub,
    default_hub,
    merge_rollups,
    split_label,
    use_hub,
)


class TestInstruments:
    def test_counter_monotonic(self):
        counter = HubCounter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("x")
        gauge.set(3.0)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_ewma_first_observation_primes(self):
        ewma = EwmaGauge("x", alpha=0.5)
        ewma.observe(10.0)
        assert ewma.value == 10.0  # no bias toward a zero start
        ewma.observe(0.0)
        assert ewma.value == pytest.approx(5.0)
        assert ewma.observations == 2

    def test_ewma_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            EwmaGauge("x", alpha=0.0)
        with pytest.raises(ValueError):
            EwmaGauge("x", alpha=1.5)


class TestLogHistogram:
    def test_bucket_index_powers_of_two(self):
        # 1.0 = 2**0 lands in the bucket whose range starts at 2**0.
        index = LogHistogram.bucket_index(1.0)
        assert LogHistogram.bucket_upper_bound(index - 1) == 1.0

    def test_under_and_overflow_clamp(self):
        assert LogHistogram.bucket_index(0.0) == 0
        assert LogHistogram.bucket_index(-5.0) == 0
        assert LogHistogram.bucket_index(1e-40) == 0
        assert LogHistogram.bucket_index(1e9) == LOG_BUCKET_COUNT - 1

    def test_observe_tracks_summary(self):
        histogram = LogHistogram("x")
        for value in (1e-4, 2e-4, 4e-4):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.minimum == 1e-4
        assert histogram.maximum == 4e-4
        assert histogram.mean == pytest.approx(7e-4 / 3)

    def test_quantile_conservative_within_one_bucket(self):
        histogram = LogHistogram("x")
        for _ in range(99):
            histogram.observe(1e-4)
        histogram.observe(1e-2)
        # p50 sits in the 1e-4 bucket; the estimate never understates.
        assert 1e-4 <= histogram.quantile(0.5) <= 2e-4
        assert histogram.quantile(0.99) <= 1e-2 * 2
        assert histogram.quantile(1.0) == histogram.maximum

    def test_quantile_empty_and_bounds(self):
        histogram = LogHistogram("x")
        assert histogram.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_merge_is_vector_addition(self):
        left, right = LogHistogram("x"), LogHistogram("x")
        left.observe(1e-4)
        right.observe(1e-2)
        right.observe(2e-2)
        left.merge(right)
        assert left.count == 3
        assert left.minimum == 1e-4
        assert left.maximum == 2e-2
        assert sum(left.counts) == 3

    def test_from_dict_round_trip(self):
        histogram = LogHistogram("x")
        for value in (1e-4, 5e-4, 1e-3):
            histogram.observe(value)
        rebuilt = LogHistogram.from_dict("x", histogram.as_dict())
        assert rebuilt.as_dict() == histogram.as_dict()

    def test_empty_as_dict_is_finite(self):
        exported = LogHistogram("x").as_dict()
        assert exported["count"] == 0
        assert exported["min"] == 0.0 and exported["max"] == 0.0
        assert exported["buckets"] == {}


class TestHubRegistry:
    def test_get_or_create_by_name(self):
        hub = MetricsHub("run")
        assert hub.counter("a") is hub.counter("a")
        assert hub.gauge("a") is not hub.counter("a")

    def test_sub_hub_prefixes_and_shares_registry(self):
        hub = MetricsHub("run")
        sa = hub.sub("sa3")
        sa.counter("resets").inc()
        assert hub.counter("sa3/resets").value == 1
        assert sa.label == "sa3"
        assert hub.labels == ["sa3"]

    def test_nested_labels(self):
        hub = MetricsHub("run")
        inner = hub.sub("gw").sub("sa1")
        inner.gauge("x").set(2.0)
        assert hub.gauge("gw/sa1/x").value == 2.0
        assert "gw/sa1" in hub.labels

    def test_sub_rejects_bad_labels(self):
        hub = MetricsHub("run")
        with pytest.raises(ValueError):
            hub.sub("")
        with pytest.raises(ValueError):
            hub.sub("a/b")

    def test_split_label(self):
        assert split_label("sa3/loss_ewma") == ("sa3", "loss_ewma")
        assert split_label("loss_ewma") == ("", "loss_ewma")
        assert split_label("gw/sa3/x") == ("gw/sa3", "x")

    def test_iter_instruments_sorted_within_kind(self):
        hub = MetricsHub("run")
        hub.counter("b").inc()
        hub.counter("a").inc()
        hub.series("s").sample(0.0, 1.0)
        kinds_names = [(kind, name) for kind, name, _ in hub.iter_instruments()]
        assert kinds_names == [("counter", "a"), ("counter", "b"), ("series", "s")]

    def test_as_dict_shape(self):
        hub = MetricsHub("run")
        hub.sub("sa0").ewma("loss_ewma").observe(0.1)
        hub.histogram("lat").observe(2e-4)
        hub.series("depth").sample(0.5, 3.0)
        exported = hub.as_dict()
        assert exported["name"] == "run"
        assert exported["labels"] == ["sa0"]
        assert exported["ewmas"]["sa0/loss_ewma"]["observations"] == 1
        assert exported["histograms"]["lat"]["count"] == 1
        assert exported["series"]["depth"] == [[0.5, 3.0]]


class TestRollup:
    def make_labeled_hub(self) -> MetricsHub:
        hub = MetricsHub("run")
        for index, (discards, loss) in enumerate([(3, 0.1), (5, 0.4)]):
            sa = hub.sub(f"sa{index}")
            sa.counter("replay_discards").inc(discards)
            sa.ewma("loss_ewma").observe(loss)
            sa.histogram("recovery_latency").observe(1e-4 * (index + 1))
        return hub

    def test_counters_sum_across_labels(self):
        rollup = self.make_labeled_hub().rollup()
        assert rollup["counters"]["replay_discards"] == 8
        assert rollup["labels"] == 2

    def test_gauges_report_worst_label(self):
        rollup = self.make_labeled_hub().rollup()
        assert rollup["worst_gauges"]["loss_ewma"] == pytest.approx(0.4)

    def test_histograms_merge(self):
        rollup = self.make_labeled_hub().rollup()
        assert rollup["histograms"]["recovery_latency"]["count"] == 2

    def test_unlabeled_instruments_pass_through(self):
        hub = MetricsHub("run")
        hub.counter("saves").inc(7)
        assert hub.rollup()["counters"]["saves"] == 7

    def test_merge_rollups_folds_tasks(self):
        first = self.make_labeled_hub().rollup()
        second = self.make_labeled_hub().rollup()
        merged = merge_rollups([first, second])
        assert merged["tasks"] == 2
        assert merged["labels"] == 4
        assert merged["counters"]["replay_discards"] == 16
        assert merged["worst_gauges"]["loss_ewma"] == pytest.approx(0.4)
        assert merged["histograms"]["recovery_latency"]["count"] == 4

    def test_merge_rollups_empty(self):
        merged = merge_rollups([])
        assert merged["tasks"] == 0
        assert merged["counters"] == {}
        assert merged["histograms"] == {}


class TestNullHub:
    def test_enabled_is_pinned_false(self):
        hub = NullHub()
        assert hub.enabled is False
        hub.enabled = False  # harmless no-op
        with pytest.raises(ValueError, match="cannot be enabled"):
            hub.enabled = True
        assert hub.enabled is False

    def test_instruments_are_shared_no_ops(self):
        hub = NULL_HUB
        counter = hub.counter("x")
        counter.inc(100)
        assert counter.value == 0
        hub.gauge("g").set(5.0)
        hub.ewma("e").observe(1.0)
        hub.histogram("h").observe(1.0)
        hub.series("s").sample(0.0, 1.0)
        assert hub.as_dict()["counters"] == {}
        assert hub.sub("sa0") is hub

    def test_real_hub_is_enabled(self):
        assert MetricsHub("run").enabled is True
        assert MetricsHub("run").sub("sa0").enabled is True


class TestAmbientHub:
    def test_default_is_null(self):
        assert default_hub() is NULL_HUB

    def test_use_hub_installs_and_restores(self):
        hub = MetricsHub("scoped")
        with use_hub(hub) as installed:
            assert installed is hub
            assert default_hub() is hub
        assert default_hub() is NULL_HUB

    def test_use_hub_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_hub(MetricsHub("scoped")):
                raise RuntimeError("boom")
        assert default_hub() is NULL_HUB
