"""CLI surfaces that feed the run warehouse, plus the extended
``obs <run-dir> --check`` (progress ledger + flight recorder dumps).

Three entry points land snapshots in the same archive: the warehouse
verbs themselves (covered in test_regression_gate), ``fleet --archive``
after a campaign, and ``python -m repro.perf check --archive`` after a
bench run.  These drive the latter two end-to-end through their real
argument parsers.
"""

import json

import pytest

from repro import perf
from repro.__main__ import main
from repro.obs.archive import KIND_BENCH, KIND_FLEET, RunArchive
from repro.obs.flightrec import FLIGHT_SCHEMA
from repro.obs.stream import PROGRESS_SCHEMA


def write_spec(tmp_path):
    spec = {
        "name": "cli-archive",
        "base_seed": 2003,
        "grids": [{
            "scenario": "sender_reset",
            "sessions": 4,
            "params": {"k": 25, "messages_after_reset": 30,
                       "reset_after_sends": [40, 60]},
        }],
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return path


class TestFleetArchive:
    def test_campaign_lands_in_warehouse(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out = tmp_path / "runs"
        warehouse = tmp_path / "wh"
        code = main(["fleet", str(spec), "--out", str(out),
                     "--archive", str(warehouse)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "archived:" in captured
        entries = RunArchive(warehouse).index()
        assert len(entries) == 1
        assert entries[0]["kind"] == KIND_FLEET
        assert entries[0]["name"] == "cli-archive"

    def test_rerun_dedups_by_content(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out = tmp_path / "runs"
        warehouse = tmp_path / "wh"
        assert main(["fleet", str(spec), "--out", str(out),
                     "--archive", str(warehouse)]) == 0
        capsys.readouterr()
        # Second run resumes from the store, re-aggregates identical
        # content, and the warehouse recognizes the hash.
        assert main(["fleet", str(spec), "--out", str(out),
                     "--archive", str(warehouse)]) == 0
        assert "already archived" in capsys.readouterr().out
        assert len(RunArchive(warehouse).index()) == 1

    def test_no_archive_flag_no_warehouse(self, tmp_path, capsys):
        spec = write_spec(tmp_path)
        out = tmp_path / "runs"
        assert main(["fleet", str(spec), "--out", str(out)]) == 0
        capsys.readouterr()
        assert not (tmp_path / "run_archive").exists()


def write_bench_json(path, score, sha="deadbeef" * 5, seconds=0.001):
    path.write_text(json.dumps({
        "benchmarks": [{
            "name": "bench_engine_event_rate",
            "stats": {"min": seconds},
            "extra_info": {
                "schema": perf.RATE_SCHEMA,
                "name": "bench_engine_event_rate",
                "metric": "events/s",
                "count": 1000,
                "seconds": seconds,
                "rate": 1000 / seconds,
                "machine_score": score,
                "normalized_rate": 1000 / seconds / score,
                "git_sha": sha,
            },
        }],
    }))
    return path


def write_baseline(path):
    path.write_text(json.dumps({
        "metric": "events/s",
        "tolerance": 0.20,
        "benchmarks": {
            "bench_engine_event_rate": {
                "count": 1000,
                # Far below anything a real host produces, so the gate
                # itself stays green and the test exercises archiving.
                "normalized_rate": 1e-6,
            },
        },
    }))
    return path


class TestPerfCheckArchive:
    def test_bench_report_lands_in_warehouse(self, tmp_path, capsys):
        bench = write_bench_json(tmp_path / "BENCH_M3.json",
                                 score=perf.machine_score())
        baseline = write_baseline(tmp_path / "baseline.json")
        warehouse = tmp_path / "wh"
        code = perf.main(["check", str(bench), "--baseline", str(baseline),
                          "--archive", str(warehouse)])
        captured = capsys.readouterr().out
        assert code == perf.EXIT_OK
        assert "archived:" in captured
        entries = RunArchive(warehouse).index()
        assert len(entries) == 1
        assert entries[0]["kind"] == KIND_BENCH
        snapshot = RunArchive(warehouse).load(entries[0]["run_id"])
        assert snapshot.meta["git_sha"] == "deadbeef" * 5

    def test_provenance_mismatch_printed(self, tmp_path, capsys):
        # Captured on a host twice as fast as this one: the raw rates in
        # the file are not comparable, and the gate says so.
        bench = write_bench_json(tmp_path / "BENCH_M3.json",
                                 score=perf.machine_score() * 2.0)
        baseline = write_baseline(tmp_path / "baseline.json")
        code = perf.main(["check", str(bench), "--baseline", str(baseline)])
        captured = capsys.readouterr().out
        assert code == perf.EXIT_OK
        assert "provenance: bench_engine_event_rate" in captured
        assert "normalized rates only" in captured

    def test_matching_provenance_stays_quiet(self, tmp_path, capsys):
        bench = write_bench_json(tmp_path / "BENCH_M3.json",
                                 score=perf.machine_score())
        baseline = write_baseline(tmp_path / "baseline.json")
        assert perf.main(["check", str(bench), "--baseline", str(baseline)]) \
            == perf.EXIT_OK
        assert "provenance:" not in capsys.readouterr().out

    def test_unreadable_target_warns_but_gates(self, tmp_path, capsys):
        # Archiving is best-effort: a warehouse failure must never turn
        # a green perf gate red.
        bench = write_bench_json(tmp_path / "BENCH_M3.json",
                                 score=perf.machine_score())
        baseline = write_baseline(tmp_path / "baseline.json")
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the warehouse dir should go")
        code = perf.main(["check", str(bench), "--baseline", str(baseline),
                          "--archive", str(blocked)])
        captured = capsys.readouterr()
        assert code == perf.EXIT_OK
        assert "warning: could not archive" in captured.err


@pytest.fixture()
def checked_run(tmp_path, capsys):
    """An observed run produced through the CLI itself (so the on-disk
    layout is exactly what --check validates)."""
    run_dir = tmp_path / "run"
    assert main(["obs", str(run_dir), "--scenario", "gateway_crash",
                 "--params", json.dumps({"n_sas": 2,
                                         "crash_after_sends": 20,
                                         "messages_after_reset": 20}),
                 "--seed", "2003"]) == 0
    capsys.readouterr()
    return run_dir


def valid_ledger_lines():
    return [
        {"kind": "campaign_started", "time": 0.0,
         "schema": PROGRESS_SCHEMA, "data": {"total": 1}},
        {"kind": "task_started", "time": 0.1, "task_id": "t0"},
        {"kind": "task_finished", "time": 0.2, "task_id": "t0"},
    ]


def valid_flight_dump(worker="w0"):
    return {
        "schema": FLIGHT_SCHEMA,
        "worker": worker,
        "reason": "task_errored",
        "events": [{"kind": "task_started", "task_id": "t0"}],
        "recorded": 1,
        "dropped": 0,
        "resources": {"rss_bytes": 1},
    }


class TestObsCheckStreamingArtifacts:
    def write_ledger(self, run_dir, lines, torn=False):
        text = "".join(json.dumps(line) + "\n" for line in lines)
        if torn:
            text += '{"kind": "task_started", "time": 0.3, "ta'
        (run_dir / "progress.jsonl").write_text(text)

    def test_valid_artifacts_pass(self, checked_run, capsys):
        self.write_ledger(checked_run, valid_ledger_lines())
        (checked_run / "flight_w0.json").write_text(
            json.dumps(valid_flight_dump()))
        assert main(["obs", str(checked_run), "--check"]) == 0
        out = capsys.readouterr().out
        assert "schema check OK" in out
        assert "progress.jsonl" in out
        assert "flight_w0.json" in out

    def test_torn_ledger_warns_not_fails(self, checked_run, capsys):
        self.write_ledger(checked_run, valid_ledger_lines(), torn=True)
        assert main(["obs", str(checked_run), "--check"]) == 0
        captured = capsys.readouterr()
        assert "WARN" in captured.err
        assert "schema check OK" in captured.out

    def test_invalid_ledger_fails(self, checked_run, capsys):
        lines = valid_ledger_lines()
        lines[1]["kind"] = "task_teleported"
        self.write_ledger(checked_run, lines)
        assert main(["obs", str(checked_run), "--check"]) == 1
        assert "SCHEMA FAIL" in capsys.readouterr().err

    def test_invalid_flight_dump_fails(self, checked_run, capsys):
        dump = valid_flight_dump()
        del dump["worker"]
        (checked_run / "flight_w1.json").write_text(json.dumps(dump))
        assert main(["obs", str(checked_run), "--check"]) == 1
        err = capsys.readouterr().err
        assert "flight_w1.json" in err
        assert "worker" in err

    def test_unparseable_flight_dump_fails(self, checked_run, capsys):
        (checked_run / "flight_w2.json").write_text("{not json")
        assert main(["obs", str(checked_run), "--check"]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_absent_streaming_artifacts_still_ok(self, checked_run, capsys):
        # A run that never streamed has neither file; --check only
        # validates what the run dir actually carries.
        assert main(["obs", str(checked_run), "--check"]) == 0
        out = capsys.readouterr().out
        assert "schema check OK" in out
        assert "progress.jsonl" not in out
