"""End-to-end tests: the ``obs`` CLI and the fleet's ``--obs`` plumbing."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.fleet.results import ResultStore
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import CampaignSpec, ScenarioGrid
from repro.obs.export import read_metrics_jsonl, validate_trace_events
from repro.obs.hub import merge_rollups


class TestObsCli:
    def run_observed(self, tmp_path, extra=()):
        return main([
            "obs", str(tmp_path / "run"),
            "--scenario", "gateway_crash",
            "--params", json.dumps(
                {"n_sas": 4, "crash_after_sends": 60,
                 "messages_after_reset": 60}
            ),
            "--seed", "2003", *extra,
        ])

    def test_scenario_run_writes_and_summarizes(self, tmp_path, capsys):
        assert self.run_observed(tmp_path) == 0
        out = capsys.readouterr().out
        assert "observed run written" in out
        assert "overall:" in out  # the health table printed
        run_dir = tmp_path / "run"
        assert (run_dir / "metrics.jsonl").exists()
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "trace.json").exists()
        export = read_metrics_jsonl(run_dir / "metrics.jsonl")
        assert export["labels"] == ["sa0", "sa1", "sa2", "sa3"]

    def test_check_passes_on_real_run(self, tmp_path):
        assert self.run_observed(tmp_path, extra=("--check",)) == 0
        document = json.loads((tmp_path / "run" / "trace.json").read_text())
        assert validate_trace_events(document) == []

    def test_check_fails_on_corrupted_metrics(self, tmp_path, capsys):
        assert self.run_observed(tmp_path) == 0
        metrics_path = tmp_path / "run" / "metrics.jsonl"
        lines = metrics_path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = "bogus@9"
        metrics_path.write_text("\n".join([json.dumps(header)] + lines[1:]))
        assert main(["obs", str(tmp_path / "run"), "--check"]) == 1
        assert "SCHEMA FAIL" in capsys.readouterr().err

    def test_summarize_without_run_errors(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "empty")]) == 2
        assert "not an observed run" in capsys.readouterr().err

    def test_unknown_scenario_errors(self, tmp_path, capsys):
        code = main(["obs", str(tmp_path / "run"), "--scenario", "nonsense"])
        assert code == 2
        assert "nonsense" in capsys.readouterr().err

    def test_bad_params_json_errors(self, tmp_path, capsys):
        code = main([
            "obs", str(tmp_path / "run"),
            "--scenario", "gateway_crash", "--params", "{not json",
        ])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_help_has_an_example_per_subcommand(self, capsys):
        for command in ("experiments", "check", "demo", "spec", "fleet",
                        "gateway", "netpath", "obs", "top"):
            with pytest.raises(SystemExit):
                main([command, "--help"])
            assert "example:" in capsys.readouterr().out, (
                f"{command} --help lacks a usage example"
            )


def observed_campaign(tmp_path, jobs: int = 1):
    spec = CampaignSpec(
        name="obs-fleet",
        base_seed=2003,
        grids=(ScenarioGrid(
            scenario="gateway_crash",
            params={"n_sas": [2, 4], "crash_after_sends": 60,
                    "messages_after_reset": 60},
        ),),
    )
    store = ResultStore(tmp_path / "results.jsonl")
    obs_dir = tmp_path / "obs"
    outcome = FleetRunner(spec, store, jobs=jobs, obs_dir=obs_dir).run()
    return outcome, store, obs_dir


class TestFleetObs:
    def test_per_task_metrics_files_written(self, tmp_path):
        outcome, _, obs_dir = observed_campaign(tmp_path)
        assert {r.status for r in outcome.executed} == {"ok"}
        for record in outcome.executed:
            path = obs_dir / f"{record.task_id}.metrics.jsonl"
            assert path.exists(), f"missing metrics file for {record.task_id}"
            export = read_metrics_jsonl(path)
            assert export["name"] == record.task_id
            assert export["labels"]  # per-SA sub-hubs registered

    def test_rollup_rides_each_record(self, tmp_path):
        outcome, _, _ = observed_campaign(tmp_path)
        for record in outcome.executed:
            rollup = record.metrics["obs"]
            assert rollup["counters"]["resets"] >= 2
            assert "recovery_latency" in rollup["histograms"]

    def test_campaign_rollup_written_and_consistent(self, tmp_path):
        outcome, store, obs_dir = observed_campaign(tmp_path)
        campaign = json.loads((obs_dir / "campaign_obs.json").read_text())
        expected = merge_rollups(
            record.metrics["obs"] for record in store.records()
        )
        assert campaign == json.loads(json.dumps(expected))
        assert campaign["tasks"] == len(outcome.executed)
        assert campaign["labels"] == 2 + 4

    def test_parallel_campaign_observes_identically(self, tmp_path):
        _, _, serial_dir = observed_campaign(tmp_path / "serial", jobs=1)
        _, _, pooled_dir = observed_campaign(tmp_path / "pooled", jobs=2)
        serial = json.loads((serial_dir / "campaign_obs.json").read_text())
        pooled = json.loads((pooled_dir / "campaign_obs.json").read_text())
        assert serial == pooled

    def test_fleet_cli_obs_flag(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-obs",
            "base_seed": 2003,
            "grids": [{
                "scenario": "gateway_crash",
                "params": {"n_sas": 2, "crash_after_sends": 60,
                           "messages_after_reset": 60},
            }],
        }))
        out_dir = tmp_path / "runs"
        assert main(["fleet", str(spec_path), "--out", str(out_dir),
                     "--obs"]) == 0
        assert (out_dir / "obs" / "campaign_obs.json").exists()
        metrics_files = list((out_dir / "obs").rglob("*.metrics.jsonl"))
        assert len(metrics_files) == 1


def small_spec_file(tmp_path, sessions=2):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps({
        "name": "cli-stream",
        "base_seed": 2003,
        "grids": [{
            "scenario": "gateway_crash",
            "params": {"n_sas": 2, "crash_after_sends": 60,
                       "messages_after_reset": 60},
            "sessions": sessions,
        }],
    }))
    return spec_path


class TestFleetStreamCli:
    def test_stream_flag_writes_valid_ledger(self, tmp_path, capsys):
        from repro.obs.export import validate_progress_file
        from repro.obs.stream import CampaignView

        spec_path = small_spec_file(tmp_path)
        out_dir = tmp_path / "runs"
        assert main(["fleet", str(spec_path), "--out", str(out_dir),
                     "--stream"]) == 0
        assert "ledger=" in capsys.readouterr().out
        ledger = out_dir / "progress.jsonl"
        assert validate_progress_file(ledger) == []
        view = CampaignView.replay(ledger)
        assert view.finished is True
        assert view.done == 2

    def test_watch_renders_frames_and_exits_zero(self, tmp_path, capsys):
        from repro.obs.top import ANSI_CLEAR

        spec_path = small_spec_file(tmp_path)
        out_dir = tmp_path / "runs"
        assert main(["fleet", str(spec_path), "--out", str(out_dir),
                     "--watch"]) == 0
        out = capsys.readouterr().out
        assert ANSI_CLEAR in out
        assert "campaign cli-stream" in out

    def test_profile_slow_runs_and_gates_on_min_samples(self, tmp_path):
        spec_path = small_spec_file(tmp_path, sessions=4)
        out_dir = tmp_path / "runs"
        assert main(["fleet", str(spec_path), "--out", str(out_dir),
                     "--stream", "--profile-slow"]) == 0
        # 4 tasks sit below the profiler's min-samples gate: the run
        # must succeed without littering pstats dumps.
        assert list(out_dir.rglob("*.pstats")) == []

    def test_top_once_renders_finished_ledger(self, tmp_path, capsys):
        spec_path = small_spec_file(tmp_path)
        out_dir = tmp_path / "runs"
        assert main(["fleet", str(spec_path), "--out", str(out_dir),
                     "--stream"]) == 0
        capsys.readouterr()
        assert main(["top", str(out_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "[FINISHED]" in out
        assert "campaign cli-stream" in out

    def test_top_missing_ledger_exits_two(self, tmp_path, capsys):
        tmp_path.joinpath("empty").mkdir()
        assert main(["top", str(tmp_path / "empty")]) == 2
        assert "--stream" in capsys.readouterr().err

    def test_top_rejects_non_positive_refresh(self, tmp_path, capsys):
        assert main(["top", str(tmp_path), "--refresh", "0"]) == 2
        assert "refresh" in capsys.readouterr().err


class TestExperimentsObsCli:
    def test_obs_flag_writes_campaign_rollup(self, tmp_path):
        out_dir = tmp_path / "exp"
        assert main(["experiments", "e12", "--out", str(out_dir),
                     "--obs"]) == 0
        campaign = out_dir / "obs" / "e12" / "campaign_obs.json"
        assert campaign.exists()
        rollup = json.loads(campaign.read_text())
        assert rollup["tasks"] >= 1
        metrics_files = list(
            (out_dir / "obs" / "e12").rglob("*.metrics.jsonl")
        )
        assert metrics_files

    def test_without_obs_flag_no_obs_dir(self, tmp_path):
        out_dir = tmp_path / "exp"
        assert main(["experiments", "e12", "--out", str(out_dir)]) == 0
        assert not (out_dir / "obs").exists()
