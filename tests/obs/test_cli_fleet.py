"""End-to-end tests: the ``obs`` CLI and the fleet's ``--obs`` plumbing."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.fleet.results import ResultStore
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import CampaignSpec, ScenarioGrid
from repro.obs.export import read_metrics_jsonl, validate_trace_events
from repro.obs.hub import merge_rollups


class TestObsCli:
    def run_observed(self, tmp_path, extra=()):
        return main([
            "obs", str(tmp_path / "run"),
            "--scenario", "gateway_crash",
            "--params", json.dumps(
                {"n_sas": 4, "crash_after_sends": 60,
                 "messages_after_reset": 60}
            ),
            "--seed", "2003", *extra,
        ])

    def test_scenario_run_writes_and_summarizes(self, tmp_path, capsys):
        assert self.run_observed(tmp_path) == 0
        out = capsys.readouterr().out
        assert "observed run written" in out
        assert "overall:" in out  # the health table printed
        run_dir = tmp_path / "run"
        assert (run_dir / "metrics.jsonl").exists()
        assert (run_dir / "manifest.json").exists()
        assert (run_dir / "trace.json").exists()
        export = read_metrics_jsonl(run_dir / "metrics.jsonl")
        assert export["labels"] == ["sa0", "sa1", "sa2", "sa3"]

    def test_check_passes_on_real_run(self, tmp_path):
        assert self.run_observed(tmp_path, extra=("--check",)) == 0
        document = json.loads((tmp_path / "run" / "trace.json").read_text())
        assert validate_trace_events(document) == []

    def test_check_fails_on_corrupted_metrics(self, tmp_path, capsys):
        assert self.run_observed(tmp_path) == 0
        metrics_path = tmp_path / "run" / "metrics.jsonl"
        lines = metrics_path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = "bogus@9"
        metrics_path.write_text("\n".join([json.dumps(header)] + lines[1:]))
        assert main(["obs", str(tmp_path / "run"), "--check"]) == 1
        assert "SCHEMA FAIL" in capsys.readouterr().err

    def test_summarize_without_run_errors(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "empty")]) == 2
        assert "not an observed run" in capsys.readouterr().err

    def test_unknown_scenario_errors(self, tmp_path, capsys):
        code = main(["obs", str(tmp_path / "run"), "--scenario", "nonsense"])
        assert code == 2
        assert "nonsense" in capsys.readouterr().err

    def test_bad_params_json_errors(self, tmp_path, capsys):
        code = main([
            "obs", str(tmp_path / "run"),
            "--scenario", "gateway_crash", "--params", "{not json",
        ])
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_help_has_an_example_per_subcommand(self, capsys):
        for command in ("experiments", "check", "demo", "spec", "fleet",
                        "gateway", "netpath", "obs"):
            with pytest.raises(SystemExit):
                main([command, "--help"])
            assert "example:" in capsys.readouterr().out, (
                f"{command} --help lacks a usage example"
            )


def observed_campaign(tmp_path, jobs: int = 1):
    spec = CampaignSpec(
        name="obs-fleet",
        base_seed=2003,
        grids=(ScenarioGrid(
            scenario="gateway_crash",
            params={"n_sas": [2, 4], "crash_after_sends": 60,
                    "messages_after_reset": 60},
        ),),
    )
    store = ResultStore(tmp_path / "results.jsonl")
    obs_dir = tmp_path / "obs"
    outcome = FleetRunner(spec, store, jobs=jobs, obs_dir=obs_dir).run()
    return outcome, store, obs_dir


class TestFleetObs:
    def test_per_task_metrics_files_written(self, tmp_path):
        outcome, _, obs_dir = observed_campaign(tmp_path)
        assert {r.status for r in outcome.executed} == {"ok"}
        for record in outcome.executed:
            path = obs_dir / f"{record.task_id}.metrics.jsonl"
            assert path.exists(), f"missing metrics file for {record.task_id}"
            export = read_metrics_jsonl(path)
            assert export["name"] == record.task_id
            assert export["labels"]  # per-SA sub-hubs registered

    def test_rollup_rides_each_record(self, tmp_path):
        outcome, _, _ = observed_campaign(tmp_path)
        for record in outcome.executed:
            rollup = record.metrics["obs"]
            assert rollup["counters"]["resets"] >= 2
            assert "recovery_latency" in rollup["histograms"]

    def test_campaign_rollup_written_and_consistent(self, tmp_path):
        outcome, store, obs_dir = observed_campaign(tmp_path)
        campaign = json.loads((obs_dir / "campaign_obs.json").read_text())
        expected = merge_rollups(
            record.metrics["obs"] for record in store.records()
        )
        assert campaign == json.loads(json.dumps(expected))
        assert campaign["tasks"] == len(outcome.executed)
        assert campaign["labels"] == 2 + 4

    def test_parallel_campaign_observes_identically(self, tmp_path):
        _, _, serial_dir = observed_campaign(tmp_path / "serial", jobs=1)
        _, _, pooled_dir = observed_campaign(tmp_path / "pooled", jobs=2)
        serial = json.loads((serial_dir / "campaign_obs.json").read_text())
        pooled = json.loads((pooled_dir / "campaign_obs.json").read_text())
        assert serial == pooled

    def test_fleet_cli_obs_flag(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-obs",
            "base_seed": 2003,
            "grids": [{
                "scenario": "gateway_crash",
                "params": {"n_sas": 2, "crash_after_sends": 60,
                           "messages_after_reset": 60},
            }],
        }))
        out_dir = tmp_path / "runs"
        assert main(["fleet", str(spec_path), "--out", str(out_dir),
                     "--obs"]) == 0
        assert (out_dir / "obs" / "campaign_obs.json").exists()
        metrics_files = list((out_dir / "obs").rglob("*.metrics.jsonl"))
        assert len(metrics_files) == 1
