"""Tests for repro.obs.trend (EWMA control bands over run history)."""

from repro.fleet.aggregate import QuantileSketch
from repro.obs.archive import KIND_OBS, RunSnapshot
from repro.obs.hub import LogHistogram
from repro.obs.trend import (
    compute_trend,
    history_signals,
    render_history_table,
    signal_value,
)


def snap(counter=None, gauge=None, samples=None, histogram=None,
         sketch=None, name="run"):
    snapshot = RunSnapshot(kind=KIND_OBS, name=name)
    if counter is not None:
        snapshot.signals["counters"]["events"] = counter
    if gauge is not None:
        snapshot.signals["gauges"]["level"] = gauge
    if samples is not None:
        snapshot.signals["samples"]["lat"] = samples
    if histogram is not None:
        snapshot.signals["histograms"]["lat"] = histogram
    if sketch is not None:
        snapshot.signals["sketches"]["lat"] = sketch
    return snapshot


class TestSignalValue:
    def test_bare_name_counter_then_gauge(self):
        snapshot = snap(counter=7, gauge=0.5)
        assert signal_value(snapshot, "events") == 7.0
        assert signal_value(snapshot, "level") == 0.5
        assert signal_value(snapshot, "missing") is None

    def test_sample_stats(self):
        snapshot = snap(samples=[1.0, 2.0, 3.0, 4.0])
        assert signal_value(snapshot, "lat@mean") == 2.5
        assert signal_value(snapshot, "lat@max") == 4.0
        assert signal_value(snapshot, "lat@p50") == 2.5

    def test_histogram_stats(self):
        hist = LogHistogram("lat")
        for value in (0.001, 0.002, 0.004):
            hist.observe(value)
        snapshot = snap(histogram=hist.as_dict())
        assert signal_value(snapshot, "lat@mean") > 0.0
        assert signal_value(snapshot, "lat@max") == 0.004
        assert signal_value(snapshot, "lat@p99") >= 0.004

    def test_sketch_stats(self):
        sketch = QuantileSketch()
        for value in (0.001, 0.002, 0.004):
            sketch.observe(value)
        snapshot = snap(sketch=sketch.as_dict())
        assert signal_value(snapshot, "lat@max") == 0.004
        assert signal_value(snapshot, "lat@p50") >= 0.002 / 1.1

    def test_bad_stat_is_none(self):
        snapshot = snap(samples=[1.0, 2.0])
        assert signal_value(snapshot, "lat@median") is None
        assert signal_value(snapshot, "lat@pxyz") is None
        assert signal_value(snapshot, "lat@p150") is None


class TestComputeTrend:
    def test_flat_history_no_anomalies(self):
        points = compute_trend([snap(counter=5) for _ in range(6)], "events")
        assert len(points) == 6
        assert not any(point.anomaly for point in points)
        assert all(point.center == 5.0 for point in points)

    def test_departure_from_flat_history_flags(self):
        snapshots = [snap(counter=5) for _ in range(4)] + [snap(counter=6)]
        points = compute_trend(snapshots, "events")
        assert points[-1].anomaly

    def test_first_two_points_never_flag(self):
        # One point establishes nothing; the second only seeds variance.
        points = compute_trend([snap(counter=1), snap(counter=100)], "events")
        assert not any(point.anomaly for point in points)

    def test_noisy_history_tolerates_noise(self):
        values = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 10.4]
        points = compute_trend([snap(gauge=v) for v in values], "level")
        assert not any(point.anomaly for point in points)

    def test_big_jump_after_noisy_history_flags(self):
        values = [10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 30.0]
        points = compute_trend([snap(gauge=v) for v in values], "level")
        assert points[-1].anomaly

    def test_missing_signal_skipped(self):
        snapshots = [snap(counter=5), snap(gauge=1.0), snap(counter=5)]
        points = compute_trend(snapshots, "events")
        assert len(points) == 2

    def test_deterministic(self):
        snapshots = [snap(gauge=v) for v in (1.0, 2.0, 1.5, 9.0)]
        first = compute_trend(snapshots, "level")
        second = compute_trend(snapshots, "level")
        assert [(p.value, p.center, p.band, p.anomaly) for p in first] \
            == [(p.value, p.center, p.band, p.anomaly) for p in second]


class TestHistorySignals:
    def test_filters_to_resolvable(self):
        snapshots = [snap(counter=1)]
        assert history_signals(snapshots, ["events", "absent"]) == ["events"]

    def test_defaults_filtered(self):
        snapshot = RunSnapshot(kind=KIND_OBS, name="r")
        snapshot.signals["counters"]["replay_discards"] = 0
        assert history_signals([snapshot]) == ["replay_discards"]


class TestRenderHistoryTable:
    def test_empty_archive_message(self):
        assert "no archived runs" in render_history_table([])

    def test_marks_anomalies_and_counts(self):
        snapshots = [snap(counter=5) for _ in range(4)] + [snap(counter=9)]
        text = render_history_table(snapshots, ["events"])
        assert "9!" in text
        assert "1 anomaly point(s)" in text
        assert "5 run(s)" in text

    def test_byte_identical_replay(self, tmp_path):
        # Render from live snapshots, then from the archive alone.
        from repro.obs.archive import RunArchive

        # Distinct contents: identical snapshots would dedup to one
        # archived run (content addressing working as designed), so use
        # four different runs for a 4-row replay.
        snapshots = [snap(counter=c) for c in (5, 6, 5.5, 7)]
        live = render_history_table(snapshots, ["events"])
        archive = RunArchive(tmp_path / "wh")
        for snapshot in snapshots:
            archive.add(snapshot)
        replayed = render_history_table(archive.history(), ["events"])
        assert replayed == live
