"""Acceptance pins for the observability layer.

1. **Zero-overhead-off** — a run built with a :class:`NullHub` (explicit
   or ambient) is byte-identical to a run that never heard of the hub:
   on a no-fault baseline, on ``sender_reset``, and on a multi-SA
   ``gateway_crash``.  Wiring checks ``hub.enabled`` once at build time
   and attaches nothing, so the disabled path schedules the same events
   and draws the same random numbers.

2. **Observation never steers** — an *enabled* hub samples state but
   schedules nothing the protocol can see: the convergence report of an
   observed run equals the unobserved one exactly (only the engine's
   ``events_processed`` may differ, by the sampler ticks themselves).

3. **Fleet determinism** — an observed campaign writes the same result
   store as an unobserved one modulo the ``obs`` rollup key, and the
   same store across ``--jobs 1`` and ``--jobs 2``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.core.convergence import report_metrics
from repro.core.protocol import build_protocol
from repro.fleet.results import ResultStore
from repro.fleet.runner import FleetRunner, scenario_metrics
from repro.fleet.spec import CampaignSpec, ScenarioGrid
from repro.obs.hub import NULL_HUB, MetricsHub, NullHub, use_hub
from repro.sim.trace import NULL_TRACE
from repro.workloads.scenarios import (
    run_gateway_crash_scenario,
    run_sender_reset_scenario,
)


def canonical(metrics: dict) -> str:
    return json.dumps(metrics, sort_keys=True)


class TestNullHubParity:
    def test_baseline_traffic_byte_identical(self):
        """No faults, just a clocked stream: explicit NullHub == no hub."""
        reports = []
        for hub in (None, NULL_HUB, NullHub()):
            harness = build_protocol(trace=NULL_TRACE, hub=hub)
            harness.sender.start_traffic(count=500)
            harness.run(until=1.0)
            reports.append(canonical(report_metrics(harness.score())))
        assert reports[0] == reports[1] == reports[2]

    def test_sender_reset_scenario_byte_identical(self):
        plain = run_sender_reset_scenario()
        with use_hub(NULL_HUB):
            nulled = run_sender_reset_scenario()
        assert canonical(scenario_metrics(plain)) == canonical(
            scenario_metrics(nulled)
        )

    def test_gateway_crash_scenario_byte_identical(self):
        kwargs = dict(n_sas=4, crash_after_sends=120, messages_after_reset=80)
        plain = run_gateway_crash_scenario(**kwargs)
        with use_hub(NULL_HUB):
            nulled = run_gateway_crash_scenario(**kwargs)
        assert canonical(plain) == canonical(nulled)

    def test_null_hub_run_registers_nothing(self):
        hub = NullHub()
        harness = build_protocol(trace=NULL_TRACE, hub=hub)
        harness.sender.start_traffic(count=100)
        harness.run(until=1.0)
        assert harness.hub is None and harness.sampler is None
        assert hub.as_dict()["counters"] == {}


class TestEnabledHubParity:
    def test_observed_protocol_outcome_identical(self):
        reports = []
        events = []
        for hub in (None, MetricsHub("observed")):
            harness = build_protocol(trace=NULL_TRACE, hub=hub)
            harness.sender.start_traffic(count=400)
            events.append(harness.run(until=1.0))
            reports.append(canonical(report_metrics(harness.score())))
        assert reports[0] == reports[1]
        # The sampler's own ticks are the only extra events.
        assert events[1] > events[0]

    def test_observed_gateway_crash_metrics_identical(self):
        kwargs = dict(n_sas=4, crash_after_sends=120, messages_after_reset=80)
        plain = run_gateway_crash_scenario(**kwargs)
        with use_hub(MetricsHub("observed")):
            observed = run_gateway_crash_scenario(**kwargs)
        assert canonical(plain) == canonical(observed)


def canonical_lines(path: Path, strip_obs: bool = False) -> list[str]:
    lines = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        record["wall_time"] = 0
        if strip_obs:
            record.get("metrics", {}).pop("obs", None)
        lines.append(json.dumps(record, sort_keys=True))
    return lines


def crash_spec() -> CampaignSpec:
    return CampaignSpec(
        name="obs-parity",
        base_seed=2003,
        grids=(ScenarioGrid(
            scenario="gateway_crash",
            params={
                "n_sas": [2, 4],
                "crash_after_sends": 60,
                "messages_after_reset": 60,
            },
        ),),
    )


class TestFleetDeterminism:
    def test_observed_store_matches_unobserved_modulo_rollup(self, tmp_path):
        stores = {}
        for observed in (False, True):
            key = "obs" if observed else "plain"
            store = ResultStore(tmp_path / key / "results.jsonl")
            obs_dir = tmp_path / key / "obsdata" if observed else None
            outcome = FleetRunner(
                crash_spec(), store, jobs=1, obs_dir=obs_dir
            ).run()
            assert {r.status for r in outcome.executed} == {"ok"}
            stores[key] = store
        assert canonical_lines(stores["plain"].path) == canonical_lines(
            stores["obs"].path, strip_obs=True
        )
        # The observed store really carries the rollups it stripped.
        rollups = [r.metrics["obs"] for r in stores["obs"].records()]
        assert all("counters" in rollup for rollup in rollups)

    def test_observed_store_identical_across_jobs_1_and_2(self, tmp_path):
        stores = {}
        for jobs in (1, 2):
            store = ResultStore(tmp_path / f"jobs{jobs}" / "results.jsonl")
            FleetRunner(
                crash_spec(), store, jobs=jobs,
                obs_dir=tmp_path / f"jobs{jobs}" / "obsdata",
            ).run()
            stores[jobs] = store
        assert canonical_lines(stores[1].path) == canonical_lines(stores[2].path)
