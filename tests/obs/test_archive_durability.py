"""Archive durability: crashes mid-ingest, torn indexes, backend parity.

The warehouse's ordering contract — snapshot file first (atomic), index
line second (fsynced, salvageable) — means any crash leaves an archive
that reads correctly and that re-ingesting the same run heals
completely.  These tests drive each failure point explicitly, plus the
backend-parity acceptance: the same campaign through the jsonl, sharded
and sqlite result stores archives to diffable snapshots that self-diff
all-GREEN.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.archive import KIND_OBS, RunArchive, RunSnapshot
from repro.obs.compare import diff_runs
from repro.obs.health import HealthState


def make_snapshot(counter=1, name="run"):
    snapshot = RunSnapshot(kind=KIND_OBS, name=name)
    snapshot.signals["counters"]["events"] = counter
    return snapshot


class TestTornIndex:
    def test_torn_tail_salvaged(self, tmp_path):
        archive = RunArchive(tmp_path / "wh")
        first = make_snapshot(1)
        second = make_snapshot(2)
        archive.add(first)
        archive.add(second)
        # Tear the last index line mid-write (crash during fsync window).
        text = archive.index_path.read_text()
        archive.index_path.write_text(text[: len(text) - 17])
        entries = archive.index()
        assert [e["run_id"] for e in entries] == [first.run_id]
        # Re-ingest repairs the missing line without duplicating files.
        assert archive.add(second) is False
        assert [e["run_id"] for e in archive.index()] \
            == [first.run_id, second.run_id]

    def test_garbage_line_skipped(self, tmp_path):
        archive = RunArchive(tmp_path / "wh")
        snapshot = make_snapshot()
        archive.add(snapshot)
        with archive.index_path.open("a") as handle:
            handle.write("{utterly broken\n")
        later = make_snapshot(2)
        archive.add(later)
        assert [e["run_id"] for e in archive.index()] \
            == [snapshot.run_id, later.run_id]


class TestCrashBetweenWriteAndIndex:
    def test_snapshot_without_index_line_heals(self, tmp_path):
        archive = RunArchive(tmp_path / "wh")
        indexed = make_snapshot(1)
        archive.add(indexed)
        # Simulate the crash window: snapshot file landed, index append
        # never ran.
        orphan = make_snapshot(2)
        path = archive.snapshot_path(orphan.run_id)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(orphan.as_dict()))
        assert len(archive.index()) == 1  # orphan invisible until healed
        created = archive.add(orphan)
        assert created is False  # content already on disk
        assert [e["run_id"] for e in archive.index()] \
            == [indexed.run_id, orphan.run_id]
        assert archive.load(orphan.run_id).run_id == orphan.run_id


KILL_DRIVER = """
import json, sys
from repro.obs.archive import KIND_OBS, RunArchive, RunSnapshot

root = sys.argv[1]
archive = RunArchive(root)
for counter in range(1, 1000):
    snapshot = RunSnapshot(kind=KIND_OBS, name="kill-run")
    snapshot.signals["counters"]["events"] = counter
    archive.add(snapshot)
    print("added", counter, flush=True)
"""


class TestSigkillMidIngest:
    @pytest.mark.parametrize("after", [1, 3])
    def test_killed_ingest_loop_leaves_salvageable_archive(
        self, tmp_path, after
    ):
        root = tmp_path / "wh"
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src}:{env.get('PYTHONPATH', '')}"
        proc = subprocess.Popen(
            [sys.executable, "-c", KILL_DRIVER, str(root)],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        seen = 0
        for line in proc.stdout:
            if line.startswith("added"):
                seen += 1
                if seen >= after:
                    proc.send_signal(signal.SIGKILL)
                    break
        proc.wait()
        proc.stdout.close()
        archive = RunArchive(root)
        entries = archive.index()  # salvage walk must not raise
        assert len(entries) >= after
        for entry in entries:
            loaded = archive.load(entry["run_id"])
            assert loaded is not None  # index never points at nothing
            assert loaded.run_id == entry["run_id"]
        # Re-ingesting every acknowledged run is a no-op (idempotent).
        for counter in range(1, seen + 1):
            snapshot = RunSnapshot(kind=KIND_OBS, name="kill-run")
            snapshot.signals["counters"]["events"] = counter
            assert archive.add(snapshot) is False


def run_backend_campaign(tmp_path, backend):
    from repro.fleet import CampaignSpec, run_campaign
    from repro.fleet.aggregate import aggregate_store
    from repro.fleet.results import make_store

    spec = CampaignSpec.from_dict({
        "name": "backend-parity",
        "base_seed": 2003,
        "grids": [{
            "scenario": "sender_reset",
            "sessions": 6,
            "params": {"k": 25, "messages_after_reset": 40,
                       "reset_after_sends": [40, 50, 60]},
        }],
    })
    out = tmp_path / backend
    out.mkdir()
    store = make_store(backend, out)
    try:
        run_campaign(spec, store=store)
        aggregate = aggregate_store(store)
    finally:
        close = getattr(store, "close", None)
        if close is not None:
            close()
    payload = aggregate.summary().as_dict()
    if aggregate.sketch.count:
        payload["sketch"] = aggregate.sketch.as_dict()
    (out / "aggregate.json").write_text(json.dumps(payload))
    return out


class TestBackendParity:
    @pytest.mark.parametrize("backend", ["jsonl", "sharded", "sqlite"])
    def test_self_diff_green_on_every_backend(self, tmp_path, backend):
        from repro.obs.archive import snapshot_from_fleet_run

        out = run_backend_campaign(tmp_path, backend)
        snapshot = snapshot_from_fleet_run(out)
        diff = diff_runs(snapshot, snapshot)
        assert diff.verdict is HealthState.GREEN
        assert diff.regressions == []

    def test_backends_archive_to_identical_content(self, tmp_path):
        from repro.obs.archive import snapshot_from_fleet_run

        snapshots = [
            snapshot_from_fleet_run(
                run_backend_campaign(tmp_path, backend), name="parity"
            )
            for backend in ("jsonl", "sharded", "sqlite")
        ]
        ids = {snapshot.run_id for snapshot in snapshots}
        assert len(ids) == 1, "backends disagreed on campaign content"
        # And cross-backend diffs are all-GREEN by construction.
        diff = diff_runs(snapshots[0], snapshots[1])
        assert diff.verdict is HealthState.GREEN
