"""The ISSUE's acceptance run: a 32-SA observed gateway crash.

An enabled hub on a fleet-scale gateway_crash must produce per-SA loss
EWMA, save-queue and recovery-latency series, and the run directory's
Chrome trace-event JSON must validate against the schema checker — the
same contract the CI obs smoke job enforces on a smaller grid.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import (
    export_run,
    read_metrics_jsonl,
    render_run_trace,
    validate_manifest,
    validate_metrics_lines,
    validate_trace_events,
)
from repro.obs.health import health_rows
from repro.obs.hub import MetricsHub, use_hub
from repro.workloads.scenarios import run_gateway_crash_scenario

N_SAS = 32


@pytest.fixture(scope="module")
def observed_crash():
    hub = MetricsHub("acceptance-32sa")
    with use_hub(hub):
        metrics = run_gateway_crash_scenario(
            n_sas=N_SAS, crash_after_sends=60, messages_after_reset=60,
            seed=2003,
        )
    return hub, metrics


class TestPerSaSignals:
    def test_every_sa_labeled(self, observed_crash):
        hub, _ = observed_crash
        assert hub.labels == [f"sa{index}" for index in range(N_SAS)]

    def test_per_sa_loss_ewma_series(self, observed_crash):
        hub, _ = observed_crash
        for index in range(N_SAS):
            samples = hub.series(f"sa{index}/loss_ewma").samples
            assert samples, f"sa{index} has no loss series"
            assert all(value == 0.0 for _, value in samples)  # lossless link

    def test_per_sa_save_queue_series(self, observed_crash):
        hub, _ = observed_crash
        peaks = [
            max(value for _, value in hub.series(f"sa{i}/save_queue_depth").samples)
            for i in range(N_SAS)
        ]
        assert all(peak >= 0 for peak in peaks)
        assert any(peak >= 1 for peak in peaks), (
            "no SA was ever sampled with an in-flight SAVE"
        )

    def test_per_sa_recovery_latency_observed(self, observed_crash):
        hub, _ = observed_crash
        for index in range(N_SAS):
            histogram = hub.histogram(f"sa{index}/recovery_latency")
            assert histogram.count >= 1, f"sa{index} recorded no recovery"

    def test_fetch_storm_staircase(self, observed_crash):
        # The shared store serializes the wake-up FETCH storm, so
        # recovery latency grows with the SA's position in the queue:
        # the worst SA waits far longer than the first.
        hub, _ = observed_crash
        latencies = sorted(
            hub.histogram(f"sa{index}/recovery_latency").maximum
            for index in range(N_SAS)
        )
        assert latencies[-1] > 1.5 * latencies[0]
        # ... and the spread spans many serialized FETCHes, not jitter.
        assert latencies[-1] - latencies[0] > 1e-3

    def test_store_probe_saw_the_storm(self, observed_crash):
        hub, _ = observed_crash
        backlog = [value for _, value in hub.series("store/backlog").samples]
        assert max(backlog) > 0.0
        assert hub.series("store/fetches").last_value() >= N_SAS

    def test_rollup_aggregates_all_sas(self, observed_crash):
        hub, _ = observed_crash
        rollup = hub.rollup()
        assert rollup["labels"] == N_SAS
        assert rollup["counters"]["resets"] >= N_SAS
        assert rollup["histograms"]["recovery_latency"]["count"] >= N_SAS

    def test_health_rows_cover_every_sa(self, observed_crash):
        hub, _ = observed_crash
        rows = health_rows(hub.as_dict())
        assert len(rows) == N_SAS
        assert all(row["state"] in ("GREEN", "YELLOW", "RED") for row in rows)


class TestRunDirectoryContract:
    def test_exported_run_validates_end_to_end(self, observed_crash, tmp_path):
        hub, metrics = observed_crash
        run_dir = export_run(
            tmp_path / "run", hub, name="acceptance-32sa",
            scenario="gateway_crash", seed=2003,
            manifest_extra={"metrics": metrics},
        )
        lines = [
            json.loads(line)
            for line in (run_dir / "metrics.jsonl").read_text().splitlines()
        ]
        assert validate_metrics_lines(lines) == []
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert validate_manifest(manifest) == []
        trace_path = render_run_trace(run_dir)
        document = json.loads(trace_path.read_text())
        assert validate_trace_events(document) == []
        # The counter tracks carry every SA's series into the viewer.
        counter_names = {
            event["name"] for event in document["traceEvents"]
            if event["ph"] == "C"
        }
        assert f"sa{N_SAS - 1}/loss_ewma" in counter_names
        # And the file round-trips to the same health view.
        read_back = read_metrics_jsonl(run_dir / "metrics.jsonl")
        assert len(health_rows(read_back)) == N_SAS
