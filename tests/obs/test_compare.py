"""Tests for repro.obs.compare (statistical run diffing)."""

import pytest

from repro.fleet.aggregate import SKETCH_RELATIVE_ERROR, QuantileSketch
from repro.obs.archive import KIND_OBS, RunSnapshot
from repro.obs.compare import (
    DEFAULT_POLICIES,
    MetricPolicy,
    bootstrap_delta_ci,
    classify_bounds,
    classify_samples,
    classify_scalar,
    diff_runs,
    distribution_bounds,
    policy_for,
    render_diff_table,
)
from repro.obs.health import HealthState
from repro.obs.hub import LogHistogram


def snap(counters=None, gauges=None, samples=None, histograms=None,
         sketches=None, name="run"):
    snapshot = RunSnapshot(kind=KIND_OBS, name=name)
    snapshot.signals["counters"].update(counters or {})
    snapshot.signals["gauges"].update(gauges or {})
    snapshot.signals["samples"].update(samples or {})
    snapshot.signals["histograms"].update(histograms or {})
    snapshot.signals["sketches"].update(sketches or {})
    return snapshot


GATED = MetricPolicy("*", direction=1, rel=(0.10, 0.50),
                     absolute=(1.0, 10.0))


class TestPolicies:
    def test_first_match_wins(self):
        assert policy_for("worker/cpu_time").gated is False
        assert policy_for("replay_discards").gated is True

    def test_fallback_is_info(self):
        policy = policy_for("some_future_signal_xyz")
        assert policy.gated is False
        assert policy.direction == 0

    def test_converged_lower_is_worse(self):
        assert policy_for("converged").direction == -1
        assert policy_for("metric/converged").direction == -1

    def test_normalized_rate_info_only(self):
        policy = policy_for("bench_engine_event_rate/normalized_rate")
        assert policy.gated is False
        assert policy.direction == -1

    def test_recovery_uses_time_thresholds(self):
        policy = policy_for("recovery_latency")
        assert policy.absolute == (5e-5, 2e-4)


class TestClassifyScalar:
    def test_no_change_green(self):
        assert classify_scalar(5.0, 5.0, GATED)[0] is HealthState.GREEN

    def test_improvement_green(self):
        assert classify_scalar(5.0, 1.0, GATED)[0] is HealthState.GREEN

    def test_red_needs_both_axes(self):
        # Relative huge (1 -> 30, 29x) AND absolute huge (29 > 10): RED.
        assert classify_scalar(1.0, 30.0, GATED)[0] is HealthState.RED
        # Relative huge but absolute small (0 -> 2 with floor 1): YELLOW.
        assert classify_scalar(0.0, 2.0, GATED)[0] is HealthState.YELLOW
        # Absolute large but relative tiny (1000 -> 1015, 1.5%): YELLOW.
        assert classify_scalar(1000.0, 1015.0, GATED)[0] is HealthState.YELLOW

    def test_direction_flips_worseness(self):
        lower_worse = MetricPolicy("*", direction=-1, absolute=(1.0, 2.0))
        state, _ = classify_scalar(10.0, 1.0, lower_worse)
        assert state is not HealthState.GREEN
        assert classify_scalar(1.0, 10.0, lower_worse)[0] is HealthState.GREEN

    def test_info_policy_always_green(self):
        info = MetricPolicy("*", direction=0, gated=False)
        assert classify_scalar(0.0, 1e9, info)[0] is HealthState.GREEN


class TestBootstrap:
    def test_deterministic(self):
        base = [1.0, 1.1, 0.9, 1.05]
        cur = [2.0, 2.1, 1.9, 2.05]
        assert bootstrap_delta_ci(base, cur) == bootstrap_delta_ci(base, cur)

    def test_clear_shift_excludes_zero(self):
        base = [1.0, 1.1, 0.9, 1.05, 0.95]
        cur = [2.0, 2.1, 1.9, 2.05, 1.95]
        low, high = bootstrap_delta_ci(base, cur)
        assert low > 0.5
        assert high < 1.5

    def test_identical_series_ci_is_tight_around_zero(self):
        values = [1.0, 2.0, 3.0]
        low, high = bootstrap_delta_ci(values, values)
        assert low <= 0.0 <= high


class TestClassifySamples:
    def test_doubled_series_red_with_ci(self):
        policy = MetricPolicy("*", absolute=(5e-5, 2e-4))
        base = [0.7e-3, 0.8e-3, 0.9e-3, 1.0e-3]
        cur = [v * 2 for v in base]
        state, note = classify_samples(base, cur, policy)
        assert state is HealthState.RED
        assert "95% CI" in note

    def test_single_observation_caps_at_yellow(self):
        policy = MetricPolicy("*", absolute=(5e-5, 2e-4))
        state, note = classify_samples([1e-3], [1e-2], policy)
        assert state is HealthState.YELLOW
        assert "n=1" in note

    def test_insignificant_red_demotes(self):
        # Means differ enough for a naive RED, but the series overlap so
        # much the bootstrap CI spans zero.
        policy = MetricPolicy("*", rel=(0.01, 0.05), absolute=(1e-6, 1e-4))
        base = [1e-3, 9e-3, 2e-3, 8e-3, 3e-3]
        cur = [2e-3, 8e-3, 4e-3, 9e-3, 4e-3]
        state, note = classify_samples(base, cur, policy)
        assert state is not HealthState.RED
        if "spans 0" in note:
            assert state is HealthState.YELLOW

    def test_improvement_green(self):
        policy = MetricPolicy("*", absolute=(5e-5, 2e-4))
        base = [2e-3, 2e-3, 2e-3]
        cur = [1e-3, 1e-3, 1e-3]
        assert classify_samples(base, cur, policy)[0] is HealthState.GREEN


class TestClassifyBounds:
    def test_overlap_is_green_within_sketch_error(self):
        # Naively worse (hi moved up) but the intervals overlap.
        state, note = classify_bounds((0.9, 1.0), (0.95, 1.1), GATED)
        assert state is HealthState.GREEN
        assert note == "within sketch error"

    def test_gap_beyond_error_escalates(self):
        policy = MetricPolicy("*", rel=(0.10, 0.50), absolute=(0.1, 1.0))
        state, note = classify_bounds((0.9, 1.0), (3.0, 3.3), policy)
        assert state is HealthState.RED
        assert "beyond sketch error" in note

    def test_identical_bounds_green(self):
        assert classify_bounds((1.0, 1.0), (1.0, 1.0), GATED)[0] \
            is HealthState.GREEN

    def test_direction_minus_one(self):
        policy = MetricPolicy("*", direction=-1, rel=(0.1, 0.5),
                              absolute=(0.1, 1.0))
        # Current dropped far below baseline: worse for lower-is-worse.
        state, _ = classify_bounds((3.0, 3.3), (0.5, 0.6), policy)
        assert state is HealthState.RED
        # Improvement is green.
        assert classify_bounds((0.5, 0.6), (3.0, 3.3), policy)[0] \
            is HealthState.GREEN


class TestDistributionBounds:
    def test_samples_zero_width(self):
        snapshot = snap(samples={"lat": [1.0, 2.0, 3.0, 4.0]})
        lo, hi = distribution_bounds(snapshot, "lat", 0.5)
        assert lo == hi

    def test_histogram_bounds_contain_truth(self):
        hist = LogHistogram("lat")
        values = [0.001 * (1 + i % 7) for i in range(100)]
        for value in values:
            hist.observe(value)
        snapshot = snap(histograms={"lat": hist.as_dict()})
        from repro.fleet.aggregate import percentile

        for q in (0.5, 0.9, 0.99):
            lo, hi = distribution_bounds(snapshot, "lat", q)
            truth = percentile(values, q * 100.0)
            assert lo <= truth <= hi

    def test_sketch_preferred_over_samples(self):
        sketch = QuantileSketch()
        for i in range(100):
            sketch.observe(0.001 * (1 + i % 7))
        snapshot = snap(sketches={"lat": sketch.as_dict()},
                        samples={"lat": [99.0]})
        lo, hi = distribution_bounds(snapshot, "lat", 0.99)
        assert hi < 99.0  # came from the sketch, not the sample
        assert hi / (1.0 + SKETCH_RELATIVE_ERROR) <= lo <= hi

    def test_absent_signal_none(self):
        assert distribution_bounds(snap(), "nope", 0.5) is None


class TestDiffRuns:
    def test_self_diff_all_green(self):
        snapshot = snap(
            counters={"replay_discards": 3, "errors": 0},
            gauges={"loss_ewma": 0.01},
            samples={"recovery_latency": [1e-3, 2e-3, 3e-3]},
        )
        diff = diff_runs(snapshot, snapshot)
        assert diff.verdict is HealthState.GREEN
        assert diff.regressions == []
        assert all(row.state is HealthState.GREEN for row in diff.rows)

    def test_counter_regression_detected(self):
        base = snap(counters={"replay_discards": 0})
        cur = snap(counters={"replay_discards": 200})
        diff = diff_runs(base, cur)
        assert diff.verdict is HealthState.RED
        assert diff.regressions[0].name == "replay_discards"

    def test_presence_rows_are_info(self):
        base = snap(counters={"old_signal": 1})
        cur = snap(counters={"new_signal": 2})
        diff = diff_runs(base, cur)
        notes = {row.name: row.note for row in diff.rows}
        assert notes["old_signal"] == "only in baseline"
        assert notes["new_signal"] == "only in current"
        assert diff.verdict is HealthState.GREEN

    def test_mixed_exact_vs_sketch_quantiles(self):
        # Baseline has exact samples; current only a sketch of ~the same
        # distribution: overlapping honest intervals, no false alarm.
        values = [0.001 * (1 + i % 5) for i in range(50)]
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        base = snap(samples={"recovery_latency": values})
        cur = snap(sketches={"recovery_latency": sketch.as_dict()})
        diff = diff_runs(base, cur)
        quantile_rows = [r for r in diff.rows if r.kind in ("p50", "p99")]
        assert quantile_rows
        assert all(r.state is HealthState.GREEN for r in quantile_rows)

    def test_sketch_vs_sketch_true_regression(self):
        base_sketch, cur_sketch = QuantileSketch(), QuantileSketch()
        for i in range(200):
            value = 0.001 * (1 + i % 5)
            base_sketch.observe(value)
            cur_sketch.observe(value * 2.0)  # 2x > 1.0905 sketch slop
        base = snap(sketches={"recovery_latency": base_sketch.as_dict()})
        cur = snap(sketches={"recovery_latency": cur_sketch.as_dict()})
        diff = diff_runs(base, cur)
        p99 = [r for r in diff.rows if r.kind == "p99"][0]
        assert p99.state is not HealthState.GREEN

    def test_row_order_deterministic(self):
        base = snap(counters={"b": 1, "a": 2}, gauges={"z": 0.1},
                    samples={"m": [1.0, 2.0, 3.0]})
        cur = snap(counters={"b": 2, "a": 2}, gauges={"z": 0.2},
                   samples={"m": [1.0, 2.0, 3.0]})
        first = [(- r.name.count(""), r.name, r.kind)
                 for r in diff_runs(base, cur).rows]
        second = [(- r.name.count(""), r.name, r.kind)
                  for r in diff_runs(base, cur).rows]
        assert first == second

    def test_as_dict_round_trips_json(self):
        import json

        diff = diff_runs(snap(counters={"errors": 0}),
                         snap(counters={"errors": 5}))
        data = json.loads(json.dumps(diff.as_dict()))
        assert data["verdict"] == "RED"
        assert data["regressions"] == 1


class TestRenderDiffTable:
    def test_stable_and_names_verdict(self):
        base = snap(counters={"replay_discards": 0})
        cur = snap(counters={"replay_discards": 200})
        diff = diff_runs(base, cur)
        text = render_diff_table(diff)
        assert render_diff_table(diff_runs(base, cur)) == text
        assert "verdict: RED (1 regression(s))" in text
        assert "replay_discards" in text

    def test_self_diff_mentions_identical_hashes(self):
        snapshot = snap(counters={"errors": 0})
        text = render_diff_table(diff_runs(snapshot, snapshot))
        assert "self-diff" in text
        assert "verdict: GREEN" in text

    def test_verbose_shows_green_rows(self):
        base = snap(counters={"errors": 0})
        quiet = render_diff_table(diff_runs(base, base))
        loud = render_diff_table(diff_runs(base, base), verbose=True)
        assert "errors" not in quiet
        assert "errors" in loud

    def test_info_rows_marked(self):
        base = snap(gauges={"bench_x/normalized_rate": 100.0})
        cur = snap(gauges={"bench_x/normalized_rate": 10.0})
        text = render_diff_table(diff_runs(base, cur), verbose=True)
        assert "(info)" in text
        assert "verdict: GREEN" in text  # slower bench never gates here
