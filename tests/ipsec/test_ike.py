"""Tests for the simplified IKE handshake."""

import pytest

from repro.ipsec.crypto import IntegrityError
from repro.ipsec.esp import esp_open, esp_seal
from repro.ipsec.ike import IkeConfig, IkeInitiator, IkeResponder
from repro.net.delay import FixedDelay
from repro.net.link import Link
from repro.sim.engine import Engine


def wire_up(engine, rtt=0.01, costs=None):
    config = IkeConfig(costs=costs) if costs is not None else IkeConfig()
    responder = IkeResponder(
        engine, "b", "a", send_fn=lambda m: link_ba.send(m), config=config, seed=2
    )
    initiator = IkeInitiator(
        engine, "a", "b", send_fn=lambda m: link_ab.send(m), config=config, seed=1
    )
    link_ab = Link(engine, "link:a->b", sink=responder.on_receive, delay=FixedDelay(rtt / 2))
    link_ba = Link(engine, "link:b->a", sink=initiator.on_receive, delay=FixedDelay(rtt / 2))
    return initiator, responder


class TestHandshake:
    def test_completes_on_both_sides(self, engine, fast_costs):
        initiator, responder = wire_up(engine, costs=fast_costs)
        initiator.start()
        engine.run()
        assert initiator.result is not None
        assert responder.result is not None

    def test_both_sides_derive_identical_sa_keys(self, engine, fast_costs):
        """Real DH: both peers independently compute the same secrets."""
        initiator, responder = wire_up(engine, costs=fast_costs)
        initiator.start()
        engine.run()
        sa_i = initiator.result.sa_pair
        sa_r = responder.result.sa_pair
        assert sa_i.forward.auth_key == sa_r.forward.auth_key
        assert sa_i.backward.enc_key == sa_r.backward.enc_key

    def test_negotiated_sa_actually_works_for_esp(self, engine, fast_costs):
        """Both peers construct byte-identical SAs (keys *and* SPI are
        derived from the shared DH master), so ESP interoperates."""
        initiator, responder = wire_up(engine, costs=fast_costs)
        initiator.start()
        engine.run()
        tx_sa = initiator.result.sa_pair.forward
        rx_sa = responder.result.sa_pair.forward
        # Identical except each peer's own completion timestamp.
        assert (tx_sa.spi, tx_sa.auth_key, tx_sa.enc_key) == (
            rx_sa.spi,
            rx_sa.auth_key,
            rx_sa.enc_key,
        )
        packet = esp_seal(tx_sa, 1, b"hello")
        assert esp_open(rx_sa, packet) == b"hello"

    def test_message_count_is_nine(self, engine, fast_costs):
        initiator, responder = wire_up(engine, costs=fast_costs)
        initiator.start()
        engine.run()
        total = initiator.result.messages_sent + responder.result.messages_sent
        assert total == 9  # main mode 6 + quick mode 3

    def test_latency_scales_with_rtt(self, fast_costs):
        def handshake_latency(rtt: float) -> float:
            engine = Engine()
            initiator, _ = wire_up(engine, rtt=rtt, costs=fast_costs)
            initiator.start()
            engine.run()
            return initiator.result.latency

        fast = handshake_latency(0.001)
        slow = handshake_latency(0.1)
        assert slow > fast + 0.3  # ~4 extra RTTs of 99 ms

    def test_compute_time_charged(self, engine, fast_costs):
        initiator, responder = wire_up(engine, costs=fast_costs)
        initiator.start()
        engine.run()
        assert initiator.result.compute_time >= 2 * fast_costs.t_dh_exp

    def test_sequential_sessions_get_fresh_generations(self, engine, fast_costs):
        initiator, responder = wire_up(engine, costs=fast_costs)
        initiator.start()
        engine.run()
        first = initiator.result.sa_pair
        initiator.start()
        engine.run()
        second = initiator.result.sa_pair
        assert first.forward.auth_key != second.forward.auth_key
        assert second.forward.generation == first.forward.generation + 1


class TestProtocolErrors:
    def test_bad_proposal_rejected(self, engine, fast_costs):
        config_bad = IkeConfig(costs=fast_costs, proposal="esp-des-md5")
        responder = IkeResponder(
            engine,
            "b",
            "a",
            send_fn=lambda m: link_ba.send(m),
            config=IkeConfig(costs=fast_costs),
            seed=2,
        )
        initiator = IkeInitiator(
            engine, "a", "b", send_fn=lambda m: link_ab.send(m), config=config_bad, seed=1
        )
        link_ab = Link(engine, "l1", sink=responder.on_receive)
        link_ba = Link(engine, "l2", sink=initiator.on_receive)
        initiator.start()
        with pytest.raises(ValueError, match="unacceptable proposal"):
            engine.run()

    def test_stale_messages_ignored(self, engine, fast_costs):
        from repro.ipsec.ike import IkeMessage

        initiator, responder = wire_up(engine, costs=fast_costs)
        initiator.start()
        engine.run()
        # Replay an old step-4 message at the completed initiator.
        initiator.on_receive(
            IkeMessage(session_id=999, step=4, sender="b", body=())
        )
        assert initiator.result is not None  # unchanged, no crash
