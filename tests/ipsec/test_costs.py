"""Tests for repro.ipsec.costs."""

import pytest

from repro.ipsec.costs import PAPER_COSTS, CostModel


class TestPaperConstants:
    def test_measured_values(self):
        assert PAPER_COSTS.t_save == pytest.approx(100e-6)
        assert PAPER_COSTS.t_send == pytest.approx(4e-6)

    def test_min_save_interval_is_25(self):
        """The paper's worked example: 'we can set the interval between
        two SAVEs to be at least 25'."""
        assert PAPER_COSTS.min_save_interval() == 25

    def test_send_rate(self):
        assert PAPER_COSTS.send_rate() == pytest.approx(250_000)


class TestDerived:
    def test_min_save_interval_rounds_up(self):
        costs = CostModel(t_save=10e-6, t_send=3e-6)
        assert costs.min_save_interval() == 4  # ceil(10/3)

    def test_min_save_interval_floor_one(self):
        costs = CostModel(t_save=1e-9, t_send=1e-3)
        assert costs.min_save_interval() == 1

    def test_ike_compute_positive_and_dh_dominated(self):
        total = PAPER_COSTS.ike_handshake_compute_time()
        assert total > 4 * PAPER_COSTS.t_dh_exp  # two peers, two exps each

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_COSTS.t_save = 1.0  # type: ignore[misc]
