"""Tests for repro.ipsec.crypto."""

import pytest

from repro.ipsec.crypto import (
    KEY_LENGTH,
    derive_key,
    encode_seq,
    generate_key,
    hmac_digest,
    hmac_verify,
    xor_stream,
)


class TestKeys:
    def test_generate_key_length(self):
        assert len(generate_key(1)) == KEY_LENGTH

    def test_generate_key_deterministic(self):
        assert generate_key(7) == generate_key(7)

    def test_distinct_seeds_distinct_keys(self):
        assert generate_key(1) != generate_key(2)

    def test_derive_key_labelled(self):
        master = generate_key(0)
        assert derive_key(master, "auth") != derive_key(master, "enc")
        assert derive_key(master, "auth") == derive_key(master, "auth")


class TestHmac:
    def test_verify_roundtrip(self):
        key = generate_key(0)
        icv = hmac_digest(key, b"hello")
        assert hmac_verify(key, b"hello", icv)

    def test_wrong_data_fails(self):
        key = generate_key(0)
        icv = hmac_digest(key, b"hello")
        assert not hmac_verify(key, b"hellp", icv)

    def test_wrong_key_fails(self):
        icv = hmac_digest(generate_key(0), b"hello")
        assert not hmac_verify(generate_key(1), b"hello", icv)

    def test_tampered_icv_fails(self):
        key = generate_key(0)
        icv = bytearray(hmac_digest(key, b"hello"))
        icv[0] ^= 1
        assert not hmac_verify(key, b"hello", bytes(icv))


class TestXorStream:
    def test_roundtrip(self):
        key = generate_key(0)
        data = b"the quick brown fox" * 10
        assert xor_stream(key, xor_stream(key, data)) == data

    def test_nonce_separates_streams(self):
        key = generate_key(0)
        assert xor_stream(key, b"aaaa", nonce=b"1") != xor_stream(
            key, b"aaaa", nonce=b"2"
        )

    def test_key_separates_streams(self):
        assert xor_stream(generate_key(0), b"aaaa") != xor_stream(
            generate_key(1), b"aaaa"
        )

    def test_empty_payload(self):
        assert xor_stream(generate_key(0), b"") == b""


class TestEncodeSeq:
    def test_distinct_values_distinct_encodings(self):
        seen = {encode_seq(n) for n in range(0, 5000, 7)}
        assert len(seen) == len(range(0, 5000, 7))

    def test_unbounded_values(self):
        big = 2**300
        assert encode_seq(big) != encode_seq(big + 1)

    def test_no_prefix_collision(self):
        # Length prefix prevents 1||2 colliding with 12 etc.
        assert encode_seq(0x0102) != encode_seq(0x01) + encode_seq(0x02)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_seq(-1)
