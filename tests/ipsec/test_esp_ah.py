"""Tests for ESP/AH encapsulation with enforced integrity."""

import pytest

from repro.ipsec.ah import ah_open, ah_seal
from repro.ipsec.crypto import IntegrityError
from repro.ipsec.esp import esp_open, esp_seal
from repro.ipsec.sa import make_sa, make_sa_pair


@pytest.fixture
def sa():
    return make_sa("p", "q", seed_or_rng=1)


class TestEsp:
    def test_roundtrip(self, sa):
        packet = esp_seal(sa, 7, b"payload")
        assert packet.seq == 7
        assert esp_open(sa, packet) == b"payload"

    def test_payload_is_encrypted(self, sa):
        packet = esp_seal(sa, 7, b"payload")
        assert b"payload" not in packet.ciphertext

    def test_wrong_sa_fails_integrity(self, sa):
        other = make_sa("p", "q", seed_or_rng=2)
        object.__setattr__(other, "spi", sa.spi)  # same SPI, different keys
        packet = esp_seal(sa, 1, b"x")
        with pytest.raises(IntegrityError, match="bad ICV"):
            esp_open(other, packet)

    def test_spi_mismatch_fails(self, sa):
        other = make_sa("p", "q", seed_or_rng=3)
        packet = esp_seal(sa, 1, b"x")
        with pytest.raises(IntegrityError, match="SPI mismatch"):
            esp_open(other, packet)

    def test_tampered_seq_fails(self, sa):
        from repro.ipsec.esp import EspPacket

        packet = esp_seal(sa, 1, b"x")
        forged = EspPacket(
            spi=packet.spi, seq=2, ciphertext=packet.ciphertext, icv=packet.icv
        )
        with pytest.raises(IntegrityError):
            esp_open(sa, forged)

    def test_tampered_ciphertext_fails(self, sa):
        from repro.ipsec.esp import EspPacket

        packet = esp_seal(sa, 1, b"xy")
        body = bytearray(packet.ciphertext)
        body[0] ^= 0xFF
        forged = EspPacket(
            spi=packet.spi, seq=1, ciphertext=bytes(body), icv=packet.icv
        )
        with pytest.raises(IntegrityError):
            esp_open(sa, forged)

    def test_rekeyed_generation_rejects_old_packets(self):
        """The property the IETF remedy relies on."""
        old_pair = make_sa_pair("p", "q", seed_or_rng=1, generation=0)
        new_pair = make_sa_pair("p", "q", seed_or_rng=2, generation=1)
        old_packet = esp_seal(old_pair.forward, 5, b"recorded")
        with pytest.raises(IntegrityError):
            esp_open(new_pair.forward, old_packet)

    def test_unbounded_seq(self, sa):
        packet = esp_seal(sa, 2**64 + 3, b"big")
        assert esp_open(sa, packet) == b"big"


class TestAh:
    def test_roundtrip_cleartext(self, sa):
        packet = ah_seal(sa, 9, b"visible")
        assert packet.payload == b"visible"  # AH does not encrypt
        assert ah_open(sa, packet) == b"visible"

    def test_tampered_payload_fails(self, sa):
        from repro.ipsec.ah import AhPacket

        packet = ah_seal(sa, 1, b"data")
        forged = AhPacket(
            spi=packet.spi, seq=1, payload=b"datb", icv=packet.icv
        )
        with pytest.raises(IntegrityError):
            ah_open(sa, forged)

    def test_spi_mismatch_fails(self, sa):
        other = make_sa("p", "q", seed_or_rng=5)
        packet = ah_seal(sa, 1, b"x")
        with pytest.raises(IntegrityError, match="SPI mismatch"):
            ah_open(other, packet)

    def test_esp_and_ah_icvs_domain_separated(self, sa):
        esp_packet = esp_seal(sa, 1, b"")
        ah_packet = ah_seal(sa, 1, b"")
        assert esp_packet.icv != ah_packet.icv
