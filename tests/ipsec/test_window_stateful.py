"""Stateful property test: every window implementation against a naive
reference model, under arbitrary interleavings of updates and resumes.

The reference model keeps an explicit set of delivered sequence numbers
and the right edge; correctness of the real implementations =
bit-identical verdicts against it at every step.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.ipsec.replay_window import ArrayReplayWindow, BitmapReplayWindow, Verdict
from repro.ipsec.replay_window_blocked import BlockedReplayWindow

W = 32  # multiple of 32 so the blocked impl participates


class ReferenceWindow:
    """The obviously-correct (and obviously-slow) specification."""

    def __init__(self, w: int) -> None:
        self.w = w
        self.r = 0
        self.seen: set[int] = set()
        self.floor = 0  # everything <= floor counts as seen

    def update(self, seq: int) -> Verdict:
        if seq <= self.r - self.w:
            return Verdict.STALE
        if seq <= self.floor or seq in self.seen:
            return Verdict.DUPLICATE
        if seq <= self.r:
            self.seen.add(seq)
            return Verdict.ACCEPT_IN_WINDOW
        self.seen.add(seq)
        self.r = seq
        self.seen = {s for s in self.seen if s > self.r - self.w}
        return Verdict.ACCEPT_ADVANCE

    def resume(self, new_right_edge: int) -> None:
        self.r = new_right_edge
        self.floor = new_right_edge
        self.seen = set()


class WindowEquivalence(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.reference = ReferenceWindow(W)
        self.impls = [
            ArrayReplayWindow(W),
            BitmapReplayWindow(W),
            BlockedReplayWindow(W),
        ]
        self.base = 0  # drifting offset so sequences grow over time

    @rule(offset=st.integers(min_value=-40, max_value=50))
    def offer(self, offset):
        seq = max(-5, self.base + offset)
        self.base = max(self.base, seq)
        expected = self.reference.update(seq)
        for impl in self.impls:
            assert impl.update(seq) == expected, (
                f"{type(impl).__name__} diverged on seq {seq}"
            )

    @rule(leap=st.integers(min_value=0, max_value=100))
    def resume(self, leap):
        target = self.reference.r + leap
        self.base = max(self.base, target)
        self.reference.resume(target)
        for impl in self.impls:
            impl.resume(target)

    @invariant()
    def right_edges_agree(self):
        if not hasattr(self, "reference"):
            return
        for impl in self.impls:
            assert impl.right_edge == self.reference.r


TestWindowEquivalence = WindowEquivalence.TestCase
TestWindowEquivalence.settings = settings(
    max_examples=60, stateful_step_count=80, deadline=None
)
