"""Tests for SA records, the SAD and the SPD."""

import pytest

from repro.ipsec.sa import make_sa, make_sa_pair
from repro.ipsec.sad import SecurityAssociationDatabase
from repro.ipsec.spd import PolicyAction, SecurityPolicyDatabase, SpdEntry


class TestSecurityAssociation:
    def test_unique_spis(self):
        a = make_sa("p", "q", seed_or_rng=1)
        b = make_sa("p", "q", seed_or_rng=1)
        assert a.spi != b.spi

    def test_keys_derived_from_master(self):
        a = make_sa("p", "q", seed_or_rng=1, master_secret=b"m" * 32)
        b = make_sa("p", "q", seed_or_rng=2, master_secret=b"m" * 32, generation=0)
        assert a.auth_key == b.auth_key  # same master, same direction/generation

    def test_generation_separates_keys(self):
        a = make_sa("p", "q", master_secret=b"m" * 32, generation=0)
        b = make_sa("p", "q", master_secret=b"m" * 32, generation=1)
        assert a.auth_key != b.auth_key

    def test_auth_and_enc_keys_differ(self):
        sa = make_sa("p", "q", seed_or_rng=1)
        assert sa.auth_key != sa.enc_key

    def test_expiry(self):
        sa = make_sa("p", "q", now=0.0, lifetime_seconds=10.0)
        assert not sa.expired(5.0)
        assert sa.expired(10.0)

    def test_pair_directions(self):
        pair = make_sa_pair("a", "b", seed_or_rng=0)
        assert pair.forward.src == "a" and pair.forward.dst == "b"
        assert pair.backward.src == "b" and pair.backward.dst == "a"
        assert pair.for_sender("a") is pair.forward
        assert pair.for_sender("b") is pair.backward
        with pytest.raises(KeyError):
            pair.for_sender("c")

    def test_pair_directional_keys_differ(self):
        pair = make_sa_pair("a", "b", seed_or_rng=0)
        assert pair.forward.auth_key != pair.backward.auth_key


class TestSad:
    def test_add_and_lookup_inbound(self):
        sad = SecurityAssociationDatabase()
        sa = make_sa("p", "q", seed_or_rng=1)
        sad.add(sa)
        assert sad.lookup_inbound(sa.spi, "q") is sa
        assert sad.lookup_inbound(sa.spi, "r") is None

    def test_duplicate_add_rejected(self):
        sad = SecurityAssociationDatabase()
        sa = make_sa("p", "q", seed_or_rng=1)
        sad.add(sa)
        with pytest.raises(ValueError, match="already exists"):
            sad.add(sa)

    def test_outbound_prefers_newest_generation(self):
        sad = SecurityAssociationDatabase()
        old = make_sa("p", "q", seed_or_rng=1, generation=0)
        new = make_sa("p", "q", seed_or_rng=2, generation=1)
        sad.add(old)
        sad.add(new)
        assert sad.lookup_outbound("p", "q") is new

    def test_remove(self):
        sad = SecurityAssociationDatabase()
        sa = make_sa("p", "q", seed_or_rng=1)
        sad.add(sa)
        assert sad.remove(sa)
        assert not sad.remove(sa)
        assert len(sad) == 0

    def test_remove_peer_bulk_teardown(self):
        """The IETF remedy's operation: drop every SA between two hosts."""
        sad = SecurityAssociationDatabase()
        for seed in range(3):
            pair = make_sa_pair("a", "b", seed_or_rng=seed)
            sad.add(pair.forward)
            sad.add(pair.backward)
        other = make_sa("a", "c", seed_or_rng=99)
        sad.add(other)
        assert sad.remove_peer("a", "b") == 6
        assert len(sad) == 1
        assert sad.lookup_outbound("a", "c") is other

    def test_sas_involving(self):
        sad = SecurityAssociationDatabase()
        pair = make_sa_pair("a", "b", seed_or_rng=0)
        sad.add(pair.forward)
        sad.add(pair.backward)
        sad.add(make_sa("c", "d", seed_or_rng=1))
        assert len(sad.sas_involving("a")) == 2

    def test_expire(self):
        sad = SecurityAssociationDatabase()
        short = make_sa("p", "q", seed_or_rng=1, now=0.0, lifetime_seconds=1.0)
        long = make_sa("p", "q", seed_or_rng=2, now=0.0, lifetime_seconds=100.0)
        sad.add(short)
        sad.add(long)
        expired = sad.expire(now=5.0)
        assert expired == [short]
        assert len(sad) == 1


class TestSpd:
    def test_first_match_wins(self):
        spd = SecurityPolicyDatabase()
        spd.add_rule("p", "q", "*", PolicyAction.PROTECT)
        spd.add_rule("*", "*", "*", PolicyAction.BYPASS)
        assert spd.match("p", "q") is PolicyAction.PROTECT
        assert spd.match("x", "y") is PolicyAction.BYPASS

    def test_default_action(self):
        spd = SecurityPolicyDatabase()
        assert spd.match("p", "q") is PolicyAction.DISCARD

    def test_protocol_selector(self):
        spd = SecurityPolicyDatabase()
        spd.add_rule("*", "*", "esp", PolicyAction.PROTECT)
        assert spd.match("p", "q", "esp") is PolicyAction.PROTECT
        assert spd.match("p", "q", "ah") is PolicyAction.DISCARD

    def test_wildcards(self):
        entry = SpdEntry("*", "q", "any", PolicyAction.PROTECT)
        assert entry.matches("anyone", "q", "esp")
        assert not entry.matches("anyone", "r", "esp")

    def test_entries_copy(self):
        spd = SecurityPolicyDatabase()
        spd.add_rule("p", "q", "*", PolicyAction.PROTECT)
        entries = spd.entries()
        entries.clear()
        assert len(spd) == 1
