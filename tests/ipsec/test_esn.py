"""Tests for extended-sequence-number inference (RFC 4304 model)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipsec.esn import EsnCodec, infer_esn, truncate_esn
from repro.ipsec.replay_window import BitmapReplayWindow

EPOCH = 1 << 32


class TestTruncate:
    def test_low_bits(self):
        assert truncate_esn(EPOCH + 5) == 5
        assert truncate_esn(5) == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            truncate_esn(-1)


class TestInfer:
    def test_same_epoch(self):
        r = EPOCH + 1000
        assert infer_esn(r, 1001, w=64) == EPOCH + 1001
        assert infer_esn(r, 990, w=64) == EPOCH + 990

    def test_ahead_crossing_epoch(self):
        """Right edge near the top of an epoch; a small wire value means
        the *next* epoch."""
        r = 2 * EPOCH - 10  # near the wrap
        inferred = infer_esn(r, 5, w=64)
        assert inferred == 2 * EPOCH + 5

    def test_behind_crossing_epoch(self):
        """Right edge just past a wrap; a large wire value means the
        *previous* epoch (late arrival)."""
        r = 2 * EPOCH + 10
        inferred = infer_esn(r, (1 << 32) - 5, w=64)
        assert inferred == 2 * EPOCH - 5

    def test_epoch_zero_no_negative_candidates(self):
        assert infer_esn(100, 90, w=64) == 90

    def test_rejects_oversized_wire_value(self):
        with pytest.raises(ValueError):
            infer_esn(0, 1 << 32, w=64)

    @given(
        seq64=st.integers(min_value=1, max_value=10 * EPOCH),
        lag=st.integers(min_value=-60, max_value=200),
    )
    @settings(max_examples=400, deadline=None)
    def test_roundtrip_near_window(self, seq64, lag):
        """Any message within +-window-ish of the right edge reconstructs
        exactly, across wrap boundaries."""
        right_edge = max(0, seq64 + lag)
        wire = truncate_esn(seq64)
        assert infer_esn(right_edge, wire, w=64) == seq64


class TestCodecWithWindow:
    def test_full_stream_over_32bit_wire_across_wrap(self):
        """An in-order 64-bit stream crossing an epoch boundary survives
        encode/decode and is fully delivered."""
        codec = EsnCodec(w=64)
        window = BitmapReplayWindow(64)
        start = EPOCH - 100
        window.resume(start - 1)  # pretend the stream is already there
        delivered = 0
        for seq64 in range(start, start + 300):
            wire = codec.encode(seq64)
            inferred = codec.decode(window.right_edge, wire)
            assert inferred == seq64
            if window.update(inferred).accepted:
                delivered += 1
        assert delivered == 300

    def test_replays_still_rejected_across_wrap(self):
        codec = EsnCodec(w=64)
        window = BitmapReplayWindow(64)
        start = EPOCH - 50
        window.resume(start - 1)
        history = list(range(start, start + 100))
        for seq64 in history:
            window.update(codec.decode(window.right_edge, codec.encode(seq64)))
        # Replay the whole history (as wire values).
        for seq64 in history:
            inferred = codec.decode(window.right_edge, codec.encode(seq64))
            assert not window.update(inferred).accepted

    def test_savefetch_leap_keeps_inference_tracking(self):
        """After a reset the right edge leaps by 2K; inference of the
        next fresh message must still land on the true 64-bit value."""
        codec = EsnCodec(w=64)
        window = BitmapReplayWindow(64)
        k = 25
        true_edge = EPOCH - 30  # counter near a wrap at crash time
        fetched = true_edge - k  # checkpoint one interval behind
        window.resume(fetched + 2 * k)  # post-wake leap crosses the wrap
        next_fresh = true_edge + 1
        inferred = codec.decode(window.right_edge, codec.encode(next_fresh))
        assert inferred == next_fresh
        assert not window.update(inferred).accepted  # burned by the leap
        resumed = window.right_edge + 1
        inferred2 = codec.decode(window.right_edge, codec.encode(resumed))
        assert window.update(inferred2).accepted
