"""Tests for the anti-replay window — the paper's central data structure.

Includes hypothesis property tests establishing (a) equivalence of the
paper-literal array implementation and the RFC-style bitmap one, and
(b) the Discrimination invariant (no sequence number accepted twice).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipsec.replay_window import ArrayReplayWindow, BitmapReplayWindow, Verdict

IMPLS = [ArrayReplayWindow, BitmapReplayWindow]


@pytest.fixture(params=IMPLS, ids=["array", "bitmap"])
def window_cls(request):
    return request.param


class TestInitialState:
    def test_right_edge_zero(self, window_cls):
        assert window_cls(8).right_edge == 0

    def test_left_edge(self, window_cls):
        assert window_cls(8).left_edge == -7

    def test_nonpositive_seq_rejected_initially(self, window_cls):
        """Paper: window starts all-true, so seq <= 0 is never delivered."""
        window = window_cls(4)
        assert window.update(0) is Verdict.DUPLICATE
        assert window.update(-1) is Verdict.DUPLICATE
        assert window.update(-100) is Verdict.STALE

    def test_rejects_bad_w(self, window_cls):
        with pytest.raises(ValueError):
            window_cls(0)


class TestThreeCases:
    """The paper's three receive cases, directly."""

    def test_case_advance(self, window_cls):
        window = window_cls(4)
        assert window.update(1) is Verdict.ACCEPT_ADVANCE
        assert window.right_edge == 1

    def test_case_in_window_fresh_then_duplicate(self, window_cls):
        window = window_cls(4)
        window.update(5)  # r = 5, window covers 2..5
        assert window.update(3) is Verdict.ACCEPT_IN_WINDOW
        assert window.update(3) is Verdict.DUPLICATE

    def test_case_stale(self, window_cls):
        window = window_cls(4)
        window.update(10)  # window covers 7..10
        assert window.update(6) is Verdict.STALE
        assert window.update(7) is Verdict.ACCEPT_IN_WINDOW

    def test_right_edge_duplicate_rejected_after_slide(self, window_cls):
        """The slide must mark the arriving seq received (the off-by-one
        in the paper's literal APN code; see module docstring)."""
        window = window_cls(4)
        assert window.update(9) is Verdict.ACCEPT_ADVANCE
        assert window.update(9) is Verdict.DUPLICATE

    def test_slide_preserves_received_flags(self, window_cls):
        window = window_cls(4)
        window.update(4)  # covers 1..4; received {4}
        window.update(2)  # received {2, 4}
        window.update(6)  # slide by 2; covers 3..6
        assert window.update(4) is Verdict.DUPLICATE
        assert window.update(3) is Verdict.ACCEPT_IN_WINDOW
        assert window.update(5) is Verdict.ACCEPT_IN_WINDOW

    def test_slide_beyond_window_clears(self, window_cls):
        window = window_cls(4)
        window.update(3)
        window.update(100)  # far jump
        assert window.right_edge == 100
        assert window.update(97) is Verdict.ACCEPT_IN_WINDOW
        assert window.update(96) is Verdict.STALE


class TestCheckVsUpdate:
    def test_check_does_not_mutate(self, window_cls):
        window = window_cls(4)
        window.update(5)
        before = window.snapshot()
        assert window.check(4) is Verdict.ACCEPT_IN_WINDOW
        assert window.snapshot() == before

    def test_is_seen(self, window_cls):
        window = window_cls(4)
        window.update(5)
        assert window.is_seen(5)
        assert not window.is_seen(4)
        assert window.is_seen(1)  # stale counts as seen (safe side)


class TestResume:
    def test_resume_marks_everything_seen(self, window_cls):
        """Section 4 wake-up: every seq up to r assumed received."""
        window = window_cls(4)
        window.resume(50)
        assert window.right_edge == 50
        for seq in range(40, 51):
            assert not window.update(seq).accepted
        assert window.update(51) is Verdict.ACCEPT_ADVANCE


class TestEquivalence:
    """The two implementations are behaviourally identical."""

    @given(
        w=st.integers(min_value=1, max_value=40),
        seqs=st.lists(st.integers(min_value=-5, max_value=120), max_size=200),
    )
    @settings(max_examples=300, deadline=None)
    def test_same_verdicts_and_state(self, w, seqs):
        array_window = ArrayReplayWindow(w)
        bitmap_window = BitmapReplayWindow(w)
        for seq in seqs:
            verdict_a = array_window.update(seq)
            verdict_b = bitmap_window.update(seq)
            assert verdict_a == verdict_b, f"diverged on seq {seq}"
            assert array_window.snapshot() == bitmap_window.snapshot()

    @given(
        w=st.integers(min_value=1, max_value=24),
        resume_at=st.integers(min_value=0, max_value=100),
        seqs=st.lists(st.integers(min_value=-5, max_value=200), max_size=60),
    )
    @settings(max_examples=150, deadline=None)
    def test_equivalence_survives_resume(self, w, resume_at, seqs):
        array_window = ArrayReplayWindow(w)
        bitmap_window = BitmapReplayWindow(w)
        array_window.resume(resume_at)
        bitmap_window.resume(resume_at)
        for seq in seqs:
            assert array_window.update(seq) == bitmap_window.update(seq)
            assert array_window.snapshot() == bitmap_window.snapshot()


class TestDiscriminationProperty:
    """No sequence number is ever accepted twice (paper: Discrimination)."""

    @given(
        w=st.integers(min_value=1, max_value=32),
        seqs=st.lists(st.integers(min_value=1, max_value=150), max_size=300),
    )
    @settings(max_examples=300, deadline=None)
    def test_no_double_accept(self, w, seqs):
        window = BitmapReplayWindow(w)
        accepted: set[int] = set()
        for seq in seqs:
            if window.update(seq).accepted:
                assert seq not in accepted, f"seq {seq} accepted twice"
                accepted.add(seq)

    @given(
        w=st.integers(min_value=2, max_value=64),
        count=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_in_order_stream_fully_accepted(self, w, count):
        """w-Delivery on a perfect channel: everything delivered."""
        window = BitmapReplayWindow(w)
        for seq in range(1, count + 1):
            assert window.update(seq).accepted

    @given(
        w=st.integers(min_value=1, max_value=32),
        seqs=st.lists(st.integers(min_value=1, max_value=100), max_size=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_right_edge_monotone(self, w, seqs):
        window = BitmapReplayWindow(w)
        previous = window.right_edge
        for seq in seqs:
            window.update(seq)
            assert window.right_edge >= previous
            previous = window.right_edge
