"""Tests for the per-host IPsec stack (RFC 2401 processing model)."""

import pytest

from repro.ipsec.sa import make_sa_pair
from repro.ipsec.sad import SecurityAssociationDatabase
from repro.ipsec.spd import PolicyAction, SecurityPolicyDatabase
from repro.ipsec.stack import IpsecStack
from repro.net.link import Link


def build_pair(engine, k=25, w=64, policy=PolicyAction.PROTECT):
    """Two hosts with a shared SA pair and bidirectional links."""
    sad_a = SecurityAssociationDatabase()
    sad_b = SecurityAssociationDatabase()
    spd = SecurityPolicyDatabase()
    spd.add_rule("*", "*", "*", policy)

    inbox_a: list[tuple[str, bytes]] = []
    inbox_b: list[tuple[str, bytes]] = []
    stack_a = IpsecStack(
        engine, "a", spd, sad_a, k=k, w=w,
        deliver_upward=lambda src, data: inbox_a.append((src, data)),
    )
    stack_b = IpsecStack(
        engine, "b", spd, sad_b, k=k, w=w,
        deliver_upward=lambda src, data: inbox_b.append((src, data)),
    )
    link_ab = Link(engine, "link:a->b", sink=stack_b.on_receive)
    link_ba = Link(engine, "link:b->a", sink=stack_a.on_receive)
    stack_a.add_route("b", link_ab.send)
    stack_b.add_route("a", link_ba.send)

    pair = make_sa_pair("a", "b", seed_or_rng=1)
    for sad in (sad_a, sad_b):
        sad.add(pair.forward)
        sad.add(pair.backward)
    return stack_a, stack_b, inbox_a, inbox_b, link_ab, pair


class TestOutboundPolicy:
    def test_protect_seals_and_delivers(self, engine):
        stack_a, stack_b, _, inbox_b, _, _ = build_pair(engine)
        assert stack_a.send("b", b"hello")
        engine.run()
        assert inbox_b == [("a", b"hello")]
        assert stack_a.stats.sent_protected == 1
        assert stack_b.stats.delivered == 1

    def test_payload_not_cleartext_on_wire(self, engine):
        stack_a, _, _, _, link_ab, _ = build_pair(engine)
        seen = []
        link_ab.add_tap(lambda t, p, injected: seen.append(p))
        stack_a.send("b", b"secret-payload")
        engine.run()
        packet = seen[0]
        assert b"secret-payload" not in packet.ciphertext

    def test_discard_policy(self, engine):
        stack_a, _, _, inbox_b, _, _ = build_pair(
            engine, policy=PolicyAction.DISCARD
        )
        assert not stack_a.send("b", b"x")
        engine.run()
        assert inbox_b == []
        assert stack_a.stats.outbound_discarded == 1

    def test_bypass_policy(self, engine):
        stack_a, stack_b, _, inbox_b, link_ab, _ = build_pair(
            engine, policy=PolicyAction.BYPASS
        )
        seen = []
        link_ab.add_tap(lambda t, p, injected: seen.append(p))
        stack_a.send("b", b"open")
        engine.run()
        assert inbox_b == [("a", b"open")]
        assert seen[0][0] == "cleartext"

    def test_protect_without_sa_counts_no_sa(self, engine):
        sad = SecurityAssociationDatabase()
        spd = SecurityPolicyDatabase()
        spd.add_rule("*", "*", "*", PolicyAction.PROTECT)
        stack = IpsecStack(engine, "a", spd, sad)
        stack.add_route("b", lambda p: None)
        assert not stack.send("b", b"x")
        assert stack.stats.no_sa == 1

    def test_no_route(self, engine):
        stack_a, *_ = build_pair(engine)
        assert not stack_a.send("nowhere", b"x")


class TestInboundPath:
    def test_sequence_numbers_increase(self, engine):
        stack_a, _, _, _, link_ab, _ = build_pair(engine)
        seqs = []
        link_ab.add_tap(lambda t, p, injected: seqs.append(p.seq))
        for _ in range(5):
            stack_a.send("b", b"m")
        engine.run()
        assert seqs == [1, 2, 3, 4, 5]

    def test_replayed_packet_discarded(self, engine):
        stack_a, stack_b, _, inbox_b, link_ab, _ = build_pair(engine)
        packets = []
        link_ab.add_tap(lambda t, p, injected: packets.append(p))
        for _ in range(3):
            stack_a.send("b", b"m")
        engine.run()
        link_ab.inject(packets[1])  # replay
        engine.run()
        assert len(inbox_b) == 3
        assert stack_b.stats.replay_discarded == 1

    def test_unknown_spi_dropped(self, engine):
        from repro.ipsec.esp import esp_seal
        from repro.ipsec.sa import make_sa

        stack_a, stack_b, _, inbox_b, _, _ = build_pair(engine)
        alien_sa = make_sa("x", "b", seed_or_rng=77)
        stack_b.on_receive(esp_seal(alien_sa, 1, b"alien"))
        assert inbox_b == []
        assert stack_b.stats.no_sa == 1

    def test_tampered_packet_fails_integrity(self, engine):
        from repro.ipsec.esp import EspPacket

        stack_a, stack_b, _, inbox_b, link_ab, _ = build_pair(engine)
        packets = []
        link_ab.add_tap(lambda t, p, injected: packets.append(p))
        stack_a.send("b", b"m")
        engine.run()
        original = packets[0]
        forged = EspPacket(
            spi=original.spi,
            seq=original.seq + 1,
            ciphertext=original.ciphertext,
            icv=original.icv,
        )
        stack_b.on_receive(forged)
        assert stack_b.stats.integrity_failures == 1
        assert len(inbox_b) == 1


class TestHostReset:
    def test_multi_sa_reset_recovers_all_counters(self, engine):
        """A host-wide reset recovers every SA independently, and no
        sequence number is ever reused on any of them."""
        stack_a, stack_b, _, inbox_b, link_ab, _ = build_pair(engine, k=10)
        # Add a second SA pair a<->b (multi-SA host).
        pair2 = make_sa_pair("a", "b", seed_or_rng=2)
        stack_a.sad.add(pair2.forward)
        stack_a.sad.add(pair2.backward)
        stack_b.sad.add(pair2.forward)
        stack_b.sad.add(pair2.backward)

        seqs_by_spi: dict[int, list[int]] = {}
        link_ab.add_tap(
            lambda t, p, injected: seqs_by_spi.setdefault(p.spi, []).append(p.seq)
        )
        for _ in range(30):
            stack_a.send("b", b"m")
        engine.run(until=1.0)
        stack_a.reset(down_for=0.001)
        engine.run(until=2.0)
        for _ in range(30):
            stack_a.send("b", b"m")
        engine.run(until=3.0)
        for spi, seqs in seqs_by_spi.items():
            assert len(seqs) == len(set(seqs)), f"reuse on SPI {spi:#x}"
        assert stack_b.stats.replay_discarded == 0

    def test_down_host_drops(self, engine):
        stack_a, stack_b, _, inbox_b, _, _ = build_pair(engine)
        stack_b.reset(down_for=None)
        stack_a.send("b", b"m")
        engine.run()
        assert inbox_b == []
        assert stack_b.stats.dropped_while_down == 1
        stack_b.wake()
        assert stack_b.is_up

    def test_receiver_reset_then_history_replay_rejected(self, engine):
        stack_a, stack_b, _, inbox_b, link_ab, _ = build_pair(engine, k=10)
        recorded = []
        link_ab.add_tap(lambda t, p, injected: injected or recorded.append(p))
        for _ in range(40):
            stack_a.send("b", b"m")
        engine.run(until=1.0)
        delivered_before = len(inbox_b)
        stack_b.reset(down_for=0.001)
        engine.run(until=2.0)
        for packet in recorded:
            link_ab.inject(packet)
        engine.run(until=3.0)
        assert len(inbox_b) == delivered_before  # nothing replayed in
