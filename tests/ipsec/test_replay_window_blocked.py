"""Tests for the RFC 6479-style blocked window, incl. three-way
equivalence property tests against the array and bitmap implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipsec.replay_window import ArrayReplayWindow, BitmapReplayWindow, Verdict
from repro.ipsec.replay_window_blocked import BLOCK_BITS, BlockedReplayWindow


class TestBasics:
    def test_requires_block_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            BlockedReplayWindow(33)

    def test_initial_state_matches_paper(self):
        window = BlockedReplayWindow(32)
        assert window.right_edge == 0
        assert window.update(0) is Verdict.DUPLICATE
        assert window.update(1) is Verdict.ACCEPT_ADVANCE

    def test_three_cases(self):
        window = BlockedReplayWindow(32)
        window.update(40)
        assert window.update(40) is Verdict.DUPLICATE
        assert window.update(20) is Verdict.ACCEPT_IN_WINDOW
        assert window.update(20) is Verdict.DUPLICATE
        assert window.update(8) is Verdict.STALE
        assert window.update(41) is Verdict.ACCEPT_ADVANCE

    def test_far_jump_clears_history(self):
        window = BlockedReplayWindow(32)
        for seq in range(1, 30):
            window.update(seq)
        window.update(10_000)
        assert window.update(10_000 - 31) is Verdict.ACCEPT_IN_WINDOW
        assert window.update(10_000 - 32) is Verdict.STALE

    def test_resume_floods(self):
        window = BlockedReplayWindow(32)
        window.resume(500)
        assert window.right_edge == 500
        for seq in (500, 490, 470):
            assert not window.update(seq).accepted
        assert window.update(501) is Verdict.ACCEPT_ADVANCE

    def test_lap_around_ring_no_ghost_flags(self):
        """Advancing more than a full ring must not resurrect old flags."""
        window = BlockedReplayWindow(32)
        window.update(5)
        ring_span = (32 // BLOCK_BITS + 1) * BLOCK_BITS
        target = 5 + ring_span * 3 + 7
        window.update(target)
        # In-window positions never received must be fresh, not ghosts.
        assert window.update(target - 5) is Verdict.ACCEPT_IN_WINDOW


class TestThreeWayEquivalence:
    @given(
        blocks=st.integers(min_value=1, max_value=4),
        seqs=st.lists(st.integers(min_value=-5, max_value=400), max_size=250),
    )
    @settings(max_examples=250, deadline=None)
    def test_same_verdicts_and_snapshots(self, blocks, seqs):
        w = blocks * BLOCK_BITS
        impls = [ArrayReplayWindow(w), BitmapReplayWindow(w), BlockedReplayWindow(w)]
        for seq in seqs:
            verdicts = [impl.update(seq) for impl in impls]
            assert verdicts[0] == verdicts[1] == verdicts[2], f"diverged on {seq}"
        snapshots = [impl.snapshot() for impl in impls]
        assert snapshots[0] == snapshots[1] == snapshots[2]

    @given(
        resume_at=st.integers(min_value=0, max_value=300),
        seqs=st.lists(st.integers(min_value=1, max_value=600), max_size=120),
    )
    @settings(max_examples=120, deadline=None)
    def test_equivalence_after_resume(self, resume_at, seqs):
        w = 2 * BLOCK_BITS
        impls = [ArrayReplayWindow(w), BitmapReplayWindow(w), BlockedReplayWindow(w)]
        for impl in impls:
            impl.resume(resume_at)
        for seq in seqs:
            verdicts = [impl.update(seq) for impl in impls]
            assert verdicts[0] == verdicts[1] == verdicts[2]


class TestInHarness:
    def test_usable_as_receiver_window(self):
        from repro.core.protocol import build_protocol

        harness = build_protocol(window_impl="blocked", w=64)
        harness.sender.start_traffic(count=500)
        harness.engine.call_at(0.0006, harness.receiver.reset, 0.0002)
        harness.run(until=1.0)
        report = harness.score()
        assert report.converged, report.bound_violations
