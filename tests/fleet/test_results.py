"""Tests for repro.fleet.results: the append-only JSONL store."""

from __future__ import annotations

from repro.fleet.results import STATUS_ERROR, STATUS_OK, ResultStore, TaskRecord


def make_record(task_id: str, status: str = STATUS_OK, **metrics) -> TaskRecord:
    return TaskRecord(
        task_id=task_id,
        scenario="sender_reset",
        params={"k": 25},
        seed=7,
        status=status,
        metrics=metrics,
        wall_time=0.5,
        error="RuntimeError: boom" if status == STATUS_ERROR else None,
    )


class TestTaskRecord:
    def test_dict_round_trip(self):
        record = make_record("a", converged=True, time_to_converge=[2e-4])
        assert TaskRecord.from_dict(record.to_dict()) == record

    def test_error_round_trip(self):
        record = make_record("b", status=STATUS_ERROR)
        restored = TaskRecord.from_dict(record.to_dict())
        assert restored.error == "RuntimeError: boom"

    def test_json_is_canonical(self):
        record = make_record("a", converged=True)
        assert record.to_json() == record.to_json()
        assert "\n" not in record.to_json()


class TestResultStore:
    def test_append_then_read_back(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        records = [make_record("a"), make_record("b", status=STATUS_ERROR)]
        for record in records:
            store.append(record)
        assert list(store.records()) == records
        assert len(store) == 2

    def test_creates_parent_directories(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "nested" / "r.jsonl")
        store.append(make_record("a"))
        assert store.path.exists()

    def test_missing_file_reads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "never.jsonl")
        assert list(store.records()) == []
        assert store.completed_ids() == set()

    def test_completed_ids_exclude_errors(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("ok-task"))
        store.append(make_record("bad-task", status=STATUS_ERROR))
        assert store.completed_ids() == {"ok-task"}

    def test_truncated_final_line_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("a"))
        store.append(make_record("b"))
        # Simulate a crash mid-append: chop the file mid-way through the
        # final line.
        text = store.path.read_text()
        store.path.write_text(text[: len(text) - 25])
        survivors = list(store.records())
        assert [r.task_id for r in survivors] == ["a"]
        assert store.corrupt_lines == 1
        # The store must still accept appends afterwards.
        store.append(make_record("b"))
        assert store.completed_ids() == {"a", "b"}

    def test_blank_lines_ignored(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("a"))
        with store.path.open("a") as handle:
            handle.write("\n\n")
        store.append(make_record("b"))
        assert [r.task_id for r in store.records()] == ["a", "b"]
        assert store.corrupt_lines == 0
