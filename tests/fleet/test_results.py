"""Tests for repro.fleet.results: the append-only JSONL store."""

from __future__ import annotations

import pytest

from repro.fleet.results import (
    STATUS_ERROR,
    STATUS_OK,
    ResultStore,
    ShardedResultStore,
    SqliteResultStore,
    TaskRecord,
    detect_store_kind,
    make_store,
    salvage_line,
    shard_index,
)


def make_record(task_id: str, status: str = STATUS_OK, **metrics) -> TaskRecord:
    return TaskRecord(
        task_id=task_id,
        scenario="sender_reset",
        params={"k": 25},
        seed=7,
        status=status,
        metrics=metrics,
        wall_time=0.5,
        error="RuntimeError: boom" if status == STATUS_ERROR else None,
    )


class TestTaskRecord:
    def test_dict_round_trip(self):
        record = make_record("a", converged=True, time_to_converge=[2e-4])
        assert TaskRecord.from_dict(record.to_dict()) == record

    def test_error_round_trip(self):
        record = make_record("b", status=STATUS_ERROR)
        restored = TaskRecord.from_dict(record.to_dict())
        assert restored.error == "RuntimeError: boom"

    def test_json_is_canonical(self):
        record = make_record("a", converged=True)
        assert record.to_json() == record.to_json()
        assert "\n" not in record.to_json()


class TestResultStore:
    def test_append_then_read_back(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        records = [make_record("a"), make_record("b", status=STATUS_ERROR)]
        for record in records:
            store.append(record)
        assert list(store.records()) == records
        assert len(store) == 2

    def test_creates_parent_directories(self, tmp_path):
        store = ResultStore(tmp_path / "deep" / "nested" / "r.jsonl")
        store.append(make_record("a"))
        assert store.path.exists()

    def test_missing_file_reads_empty(self, tmp_path):
        store = ResultStore(tmp_path / "never.jsonl")
        assert list(store.records()) == []
        assert store.completed_ids() == set()

    def test_completed_ids_exclude_errors(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("ok-task"))
        store.append(make_record("bad-task", status=STATUS_ERROR))
        assert store.completed_ids() == {"ok-task"}

    def test_truncated_final_line_is_dropped(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("a"))
        store.append(make_record("b"))
        # Simulate a crash mid-append: chop the file mid-way through the
        # final line.
        text = store.path.read_text()
        store.path.write_text(text[: len(text) - 25])
        survivors = list(store.records())
        assert [r.task_id for r in survivors] == ["a"]
        assert store.corrupt_lines == 1
        # The store must still accept appends afterwards.
        store.append(make_record("b"))
        assert store.completed_ids() == {"a", "b"}

    def test_blank_lines_ignored(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("a"))
        with store.path.open("a") as handle:
            handle.write("\n\n")
        store.append(make_record("b"))
        assert [r.task_id for r in store.records()] == ["a", "b"]
        assert store.corrupt_lines == 0


class TestTornLineSalvage:
    def test_mid_file_corruption_loses_only_the_damaged_line(self, tmp_path):
        # Isolated torn writes can land mid-file with multiprocessing
        # writers; the lines after them must survive.
        store = ResultStore(tmp_path / "r.jsonl")
        for task_id in ("a", "b", "c"):
            store.append(make_record(task_id))
        lines = store.path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear the middle line
        store.path.write_text("\n".join(lines) + "\n")
        survivors = [r.task_id for r in store.records()]
        assert survivors == ["a", "c"]
        assert store.corrupt_lines == 1

    def test_complete_records_glued_to_a_fragment_are_salvaged(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("a"))
        fragment = make_record("lost").to_json()[:30]
        glued = fragment + make_record("b").to_json() + make_record("c").to_json()
        with store.path.open("a") as handle:
            handle.write(glued + "\n")
        survivors = [r.task_id for r in store.records()]
        assert survivors == ["a", "b", "c"]
        assert store.corrupt_lines == 1

    def test_salvage_line_reports_clean_single_record(self):
        records, torn = salvage_line(make_record("a").to_json())
        assert [r.task_id for r in records] == ["a"]
        assert not torn

    def test_heal_terminates_a_dangling_partial_line(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        store.append(make_record("a"))
        with store.path.open("a") as handle:
            handle.write(make_record("b").to_json()[:40])  # crash mid-append
        assert store.heal() is True
        assert store.heal() is False  # idempotent
        assert [r.task_id for r in store.records()] == ["a"]
        assert store.corrupt_lines == 1


class TestShardIndex:
    def test_pure_and_in_range(self):
        for bits in (0, 1, 4, 10):
            index = shard_index("g0/sender_reset/s00001", 2003, bits)
            assert index == shard_index("g0/sender_reset/s00001", 2003, bits)
            assert 0 <= index < (1 << bits)

    def test_small_seeds_still_spread(self):
        # Experiment sweeps pin small explicit seeds; the partition must
        # stay uniform anyway because the task id is folded back in.
        bits = 3
        hit = {shard_index(f"task-{i}", 7, bits) for i in range(200)}
        assert hit == set(range(1 << bits))


class TestShardedResultStore:
    def test_round_trip_preserves_record_content(self, tmp_path):
        store = ShardedResultStore(tmp_path / "shards", bits=3)
        records = [make_record(f"t{i}") for i in range(20)]
        for record in records:
            store.append(record)
        read_back = {r.task_id: r for r in store.records()}
        assert read_back == {r.task_id: r for r in records}
        assert len(store) == 20

    def test_lines_byte_identical_to_single_file_store(self, tmp_path):
        single = ResultStore(tmp_path / "r.jsonl")
        sharded = ShardedResultStore(tmp_path / "shards", bits=4)
        for i in range(30):
            record = make_record(f"t{i}")
            single.append(record)
            sharded.append(record)
        single_lines = sorted(single.path.read_text().splitlines())
        shard_lines = sorted(
            line
            for shard in sharded.shards
            if shard.path.exists()
            for line in shard.path.read_text().splitlines()
        )
        assert shard_lines == single_lines

    def test_task_records_never_split_across_shards(self, tmp_path):
        # Error + retry records of one task land in one shard, so
        # within-shard order remains latest-wins truth.
        store = ShardedResultStore(tmp_path / "shards", bits=4)
        store.append(make_record("flaky", status=STATUS_ERROR))
        store.append(make_record("flaky"))
        homes = [
            shard for shard in store.shards
            if shard.path.exists() and len(list(shard.records())) > 0
        ]
        assert len(homes) == 1
        assert [r.status for r in homes[0].records()] == [STATUS_ERROR, STATUS_OK]

    def test_meta_pins_shard_count(self, tmp_path):
        ShardedResultStore(tmp_path / "shards", bits=5)
        reopened = ShardedResultStore(tmp_path / "shards")  # layout from meta
        assert reopened.bits == 5
        with pytest.raises(ValueError, match="bits=5"):
            ShardedResultStore(tmp_path / "shards", bits=3)

    def test_rejects_out_of_range_bits(self, tmp_path):
        with pytest.raises(ValueError, match="shard bits"):
            ShardedResultStore(tmp_path / "shards", bits=11)
        with pytest.raises(ValueError, match="shard bits"):
            ShardedResultStore(tmp_path / "other", bits=-1)

    def test_heal_touches_only_dirty_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path / "shards", bits=2)
        for i in range(16):
            store.append(make_record(f"t{i}"))
        torn = []
        for index, shard in enumerate(store.shards):
            text = shard.path.read_text()
            if index % 2 == 0:
                shard.path.write_text(text + '{"task_id": "torn-')
                torn.append(index)
        assert store.dirty_shards() == torn
        assert store.heal() == torn
        assert store.dirty_shards() == []
        # Every intact record survives; the torn fragments are skipped.
        assert {r.task_id for r in store.records()} == {
            f"t{i}" for i in range(16)
        }

    def test_completed_ids_union_over_shards(self, tmp_path):
        store = ShardedResultStore(tmp_path / "shards", bits=3)
        store.append(make_record("good"))
        store.append(make_record("bad", status=STATUS_ERROR))
        assert store.completed_ids() == {"good"}

    def test_zero_bits_degenerates_to_one_shard(self, tmp_path):
        store = ShardedResultStore(tmp_path / "shards", bits=0)
        for i in range(5):
            store.append(make_record(f"t{i}"))
        assert len(store.shards) == 1
        assert len(list(store.records())) == 5


class TestShardMultisetProperty:
    def test_merge_on_read_matches_single_file_for_random_kill_points(
        self, tmp_path
    ):
        # Property pin: for any prefix of appends (a "kill point"), plus
        # a torn in-flight append, the sharded store's merge-on-read
        # multiset equals the single-file store's — under every shard
        # count.
        import random

        rng = random.Random(2003)
        records = [
            make_record(f"g{i % 3}/t{i:03d}",
                        status=STATUS_ERROR if i % 7 == 0 else STATUS_OK)
            for i in range(60)
        ]
        for trial in range(5):
            kill = rng.randrange(1, len(records))
            in_flight = records[kill]
            for bits in (0, 2, 5):
                single = ResultStore(tmp_path / f"k{trial}b{bits}" / "r.jsonl")
                sharded = ShardedResultStore(
                    tmp_path / f"k{trial}b{bits}" / "shards", bits=bits
                )
                for record in records[:kill]:
                    single.append(record)
                    sharded.append(record)
                # The append in flight at the kill tears mid-line in both.
                torn_line = in_flight.to_json()[:25]
                with single.path.open("a") as handle:
                    handle.write(torn_line)
                with sharded.shard_for(
                    in_flight.task_id, in_flight.seed
                ).path.open("a") as handle:
                    handle.write(torn_line)
                single_ids = sorted(r.to_json() for r in single.records())
                sharded_ids = sorted(r.to_json() for r in sharded.records())
                assert sharded_ids == single_ids
                assert sorted(sharded.completed_ids()) == sorted(
                    single.completed_ids()
                )


class TestSqliteResultStore:
    def test_append_then_read_back_in_order(self, tmp_path):
        store = SqliteResultStore(tmp_path / "r.sqlite")
        records = [make_record("a"), make_record("b", status=STATUS_ERROR)]
        for record in records:
            store.append(record)
        assert list(store.records()) == records
        assert len(store) == 2
        assert store.completed_ids() == {"a"}
        store.close()

    def test_records_survive_reopen(self, tmp_path):
        store = SqliteResultStore(tmp_path / "r.sqlite")
        store.append(make_record("a"))
        store.close()
        reopened = SqliteResultStore(tmp_path / "r.sqlite")
        assert [r.task_id for r in reopened.records()] == ["a"]
        reopened.close()

    def test_stores_canonical_json_lines(self, tmp_path):
        # The SQLite backend persists the same canonical line a JSONL
        # store would, so records move between backends byte-identically.
        store = SqliteResultStore(tmp_path / "r.sqlite")
        record = make_record("a", converged=True)
        store.append(record)
        (line,) = [
            row[0] for row in store._connection.execute(
                "SELECT line FROM records"
            )
        ]
        assert line == record.to_json()
        store.close()


class TestStoreFactory:
    def test_make_store_builds_each_kind(self, tmp_path):
        assert isinstance(make_store("jsonl", tmp_path / "a"), ResultStore)
        assert isinstance(
            make_store("sharded", tmp_path / "b", shard_bits=2),
            ShardedResultStore,
        )
        sqlite_store = make_store("sqlite", tmp_path / "c")
        assert isinstance(sqlite_store, SqliteResultStore)
        sqlite_store.close()

    def test_make_store_rejects_unknown_kind(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store kind"):
            make_store("csv", tmp_path)

    def test_detect_store_kind_finds_existing_backend(self, tmp_path):
        assert detect_store_kind(tmp_path) is None
        make_store("sharded", tmp_path, shard_bits=2)
        assert detect_store_kind(tmp_path) == "sharded"
