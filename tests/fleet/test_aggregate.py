"""Tests for repro.fleet.aggregate: percentiles, summaries, outliers."""

from __future__ import annotations

import pytest

from repro.fleet.aggregate import FleetSummary, percentile, summarize
from repro.fleet.results import STATUS_ERROR, STATUS_OK, TaskRecord


def record(task_id: str, **overrides) -> TaskRecord:
    metrics = {
        "converged": True,
        "sender_resets": 1,
        "receiver_resets": 0,
        "replays_accepted": 0,
        "fresh_discarded": 2,
        "lost_seqnums_per_reset": [10],
        "gaps_sender": [4],
        "gaps_receiver": [],
        "time_to_converge": [2e-4],
        "bound_violations": [],
        "fresh_sent": 100,
        "delivered_uids": 98,
        "never_arrived": 0,
    }
    metrics.update(overrides.pop("metrics", {}))
    defaults = dict(
        task_id=task_id,
        scenario="sender_reset",
        params={"k": 25},
        seed=11,
        status=STATUS_OK,
        metrics=metrics,
        wall_time=0.25,
    )
    defaults.update(overrides)
    return TaskRecord(**defaults)


class TestPercentile:
    def test_known_points(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 75) == 4.0

    def test_interpolates_between_ranks(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], 101)


class TestSummarize:
    def test_counts_and_totals(self):
        records = [
            record("a"),
            record("b", metrics={"replays_accepted": 3, "converged": False}),
            record("c", status=STATUS_ERROR, metrics={}, error="RuntimeError: x"),
        ]
        summary = summarize(records)
        assert summary.tasks == 3
        assert summary.ok == 2
        assert summary.errors == 1
        assert summary.converged == 1
        assert summary.replays_accepted_total == 3
        assert summary.fresh_discarded_total == 4
        assert summary.lost_seqnums_total == 20
        assert summary.resets_total == 2
        assert summary.wall_time_total == pytest.approx(0.75)

    def test_convergence_percentiles(self):
        records = [
            record(f"t{i}", metrics={"time_to_converge": [i * 1e-4]})
            for i in range(1, 11)
        ]
        summary = summarize(records)
        assert summary.convergence_time["p50"] == pytest.approx(5.5e-4)
        assert summary.convergence_time["max"] == pytest.approx(10e-4)

    def test_empty_records(self):
        summary = summarize([])
        assert summary == FleetSummary()
        assert "sessions: 0" in summary.render()

    def test_outliers_prefer_failures_over_slow_convergers(self):
        records = [
            record("slow", metrics={"time_to_converge": [9.0]}),
            record("viol", metrics={
                "bound_violations": ["gap too big"], "converged": False,
            }),
            record("replay", metrics={"replays_accepted": 2, "converged": False}),
            record("err", status=STATUS_ERROR, metrics={}, error="E: x"),
        ]
        summary = summarize(records, worst_k=3)
        reasons = [o.reason for o in summary.outliers]
        assert "slow_converge" not in reasons
        assert set(reasons) == {"error", "violations", "replays"}

    def test_outliers_carry_repro_seed_and_params(self):
        summary = summarize([record("a", seed=424242)])
        outlier = summary.outliers[0]
        assert outlier.seed == 424242
        assert outlier.params == {"k": 25}
        assert "seed=424242" in outlier.summary()

    def test_duplicate_task_ids_count_once_with_latest_winning(self):
        # A resumed store: the task errored once, then retried fine.
        records = [
            record("a", status=STATUS_ERROR, metrics={}, error="E: transient"),
            record("a"),
        ]
        summary = summarize(records)
        assert summary.tasks == 1
        assert summary.ok == 1
        assert summary.errors == 0
        assert summary.converged == 1

    def test_render_mentions_key_quantities(self):
        text = summarize([record("a")]).render()
        assert "sessions: 1" in text
        assert "converged: 1/1" in text
        assert "time-to-converge" in text
        assert "worst cases" in text
