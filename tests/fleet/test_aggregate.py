"""Tests for repro.fleet.aggregate: percentiles, summaries, outliers."""

from __future__ import annotations

import pytest

from repro.fleet.aggregate import (
    SKETCH_RELATIVE_ERROR,
    CampaignAggregate,
    FleetSummary,
    Outlier,
    OutlierReservoir,
    QuantileSketch,
    percentile,
    summarize,
    summarize_store,
)
from repro.fleet.results import STATUS_ERROR, STATUS_OK, TaskRecord


def record(task_id: str, **overrides) -> TaskRecord:
    metrics = {
        "converged": True,
        "sender_resets": 1,
        "receiver_resets": 0,
        "replays_accepted": 0,
        "fresh_discarded": 2,
        "lost_seqnums_per_reset": [10],
        "gaps_sender": [4],
        "gaps_receiver": [],
        "time_to_converge": [2e-4],
        "bound_violations": [],
        "fresh_sent": 100,
        "delivered_uids": 98,
        "never_arrived": 0,
    }
    metrics.update(overrides.pop("metrics", {}))
    defaults = dict(
        task_id=task_id,
        scenario="sender_reset",
        params={"k": 25},
        seed=11,
        status=STATUS_OK,
        metrics=metrics,
        wall_time=0.25,
    )
    defaults.update(overrides)
    return TaskRecord(**defaults)


class TestPercentile:
    def test_known_points(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 75) == 4.0

    def test_interpolates_between_ranks(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match="outside"):
            percentile([1.0], 101)


class TestSummarize:
    def test_counts_and_totals(self):
        records = [
            record("a"),
            record("b", metrics={"replays_accepted": 3, "converged": False}),
            record("c", status=STATUS_ERROR, metrics={}, error="RuntimeError: x"),
        ]
        summary = summarize(records)
        assert summary.tasks == 3
        assert summary.ok == 2
        assert summary.errors == 1
        assert summary.converged == 1
        assert summary.replays_accepted_total == 3
        assert summary.fresh_discarded_total == 4
        assert summary.lost_seqnums_total == 20
        assert summary.resets_total == 2
        assert summary.wall_time_total == pytest.approx(0.75)

    def test_convergence_percentiles(self):
        records = [
            record(f"t{i}", metrics={"time_to_converge": [i * 1e-4]})
            for i in range(1, 11)
        ]
        summary = summarize(records)
        assert summary.convergence_time["p50"] == pytest.approx(5.5e-4)
        assert summary.convergence_time["max"] == pytest.approx(10e-4)

    def test_empty_records(self):
        summary = summarize([])
        assert summary == FleetSummary()
        assert "sessions: 0" in summary.render()

    def test_outliers_prefer_failures_over_slow_convergers(self):
        records = [
            record("slow", metrics={"time_to_converge": [9.0]}),
            record("viol", metrics={
                "bound_violations": ["gap too big"], "converged": False,
            }),
            record("replay", metrics={"replays_accepted": 2, "converged": False}),
            record("err", status=STATUS_ERROR, metrics={}, error="E: x"),
        ]
        summary = summarize(records, worst_k=3)
        reasons = [o.reason for o in summary.outliers]
        assert "slow_converge" not in reasons
        assert set(reasons) == {"error", "violations", "replays"}

    def test_outliers_carry_repro_seed_and_params(self):
        summary = summarize([record("a", seed=424242)])
        outlier = summary.outliers[0]
        assert outlier.seed == 424242
        assert outlier.params == {"k": 25}
        assert "seed=424242" in outlier.summary()

    def test_duplicate_task_ids_count_once_with_latest_winning(self):
        # A resumed store: the task errored once, then retried fine.
        records = [
            record("a", status=STATUS_ERROR, metrics={}, error="E: transient"),
            record("a"),
        ]
        summary = summarize(records)
        assert summary.tasks == 1
        assert summary.ok == 1
        assert summary.errors == 0
        assert summary.converged == 1

    def test_render_mentions_key_quantities(self):
        text = summarize([record("a")]).render()
        assert "sessions: 1" in text
        assert "converged: 1/1" in text
        assert "time-to-converge" in text
        assert "worst cases" in text


class TestQuantileSketch:
    def values(self, n: int = 400, seed: int = 7) -> list[float]:
        import random

        rng = random.Random(seed)
        return [rng.lognormvariate(-8.0, 1.0) for _ in range(n)]

    def fill(self, values) -> QuantileSketch:
        sketch = QuantileSketch()
        for value in values:
            sketch.observe(value)
        return sketch

    @staticmethod
    def assert_same_distribution(a: QuantileSketch, b: QuantileSketch) -> None:
        """Everything quantiles depend on is exactly equal; only the
        running ``total`` (and hence ``mean``) may differ in the last
        bits, float addition not being associative."""
        assert a.counts == b.counts
        assert a.underflow == b.underflow
        assert a.count == b.count
        assert a.minimum == b.minimum
        assert a.maximum == b.maximum
        assert a.total == pytest.approx(b.total)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert a.quantile(q) == b.quantile(q)

    def test_merge_is_commutative(self):
        values = self.values()
        ab = self.fill(values[:150])
        ab.merge(self.fill(values[150:]))
        ba = self.fill(values[150:])
        ba.merge(self.fill(values[:150]))
        self.assert_same_distribution(ab, ba)

    def test_merge_is_associative(self):
        values = self.values()
        chunks = [values[:100], values[100:250], values[250:]]
        left = self.fill(chunks[0])
        left.merge(self.fill(chunks[1]))
        left.merge(self.fill(chunks[2]))
        tail = self.fill(chunks[1])
        tail.merge(self.fill(chunks[2]))
        right = self.fill(chunks[0])
        right.merge(tail)
        self.assert_same_distribution(left, right)

    def test_merge_equals_single_pass(self):
        values = self.values()
        merged = self.fill(values[:97])
        merged.merge(self.fill(values[97:]))
        self.assert_same_distribution(merged, self.fill(values))

    def test_quantile_conservative_within_error_bound(self):
        values = sorted(self.values(1000))
        sketch = self.fill(values)
        for q in (0.5, 0.9, 0.99):
            true_value = values[min(len(values) - 1, int(q * len(values)))]
            estimate = sketch.quantile(q)
            # Never understates, never overstates by more than one
            # sub-bucket width.
            assert estimate >= values[int(q * len(values)) - 1]
            assert estimate <= true_value * (1.0 + SKETCH_RELATIVE_ERROR)

    def test_quantile_clamped_to_observed_max(self):
        sketch = self.fill([3e-4, 5e-4, 7e-4])
        assert sketch.quantile(1.0) == 7e-4

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.mean == 0.0

    def test_non_positive_values_counted_in_underflow(self):
        sketch = self.fill([0.0, -1.0, 2e-4])
        assert sketch.underflow == 2
        assert sketch.count == 3
        assert sketch.quantile(0.1) == -1.0  # exact minimum answers low ranks

    def test_dict_round_trip(self):
        sketch = self.fill(self.values(100))
        restored = QuantileSketch.from_dict(sketch.as_dict())
        assert restored.as_dict() == sketch.as_dict()
        for q in (0.5, 0.9, 0.99):
            assert restored.quantile(q) == sketch.quantile(q)


class TestOutlierReservoir:
    def outlier(self, i: int, value: float) -> Outlier:
        return Outlier(
            task_id=f"t{i:04d}", scenario="s", seed=i, params={},
            reason="slow_converge", value=value,
        )

    def test_matches_full_sort_selection_under_any_order(self):
        import random

        rng = random.Random(3)
        outliers = [self.outlier(i, rng.random()) for i in range(300)]
        expected = sorted(
            outliers, key=lambda o: (-o.value, o.task_id)
        )[:5]
        for trial in range(3):
            shuffled = outliers[:]
            rng.shuffle(shuffled)
            reservoir = OutlierReservoir(5)
            for outlier in shuffled:
                reservoir.add_slow(outlier)
            assert reservoir.top() == expected

    def test_failures_always_outrank_slow(self):
        reservoir = OutlierReservoir(2)
        for i in range(50):
            reservoir.add_slow(self.outlier(i, 100.0 + i))
        failure = Outlier(
            task_id="boom", scenario="s", seed=1, params={},
            reason="error", value=1.0,
        )
        reservoir.add_failure(failure)
        assert reservoir.top()[0] == failure

    def test_merge_equals_single_reservoir(self):
        outliers = [self.outlier(i, float(i % 17)) for i in range(120)]
        whole = OutlierReservoir(5)
        for outlier in outliers:
            whole.add_slow(outlier)
        left, right = OutlierReservoir(5), OutlierReservoir(5)
        for outlier in outliers[:60]:
            left.add_slow(outlier)
        for outlier in outliers[60:]:
            right.add_slow(outlier)
        left.merge(right)
        assert left.top() == whole.top()


class TestCampaignAggregate:
    def test_merge_matches_single_pass_summary(self):
        records = [
            record(f"t{i}", metrics={"time_to_converge": [(i + 1) * 1e-4]})
            for i in range(40)
        ]
        whole = CampaignAggregate()
        for item in records:
            whole.observe(item)
        left, right = CampaignAggregate(), CampaignAggregate()
        for item in records[:17]:
            left.observe(item)
        for item in records[17:]:
            right.observe(item)
        left.merge(right)
        assert left.summary() == whole.summary()

    def test_exact_mode_matches_legacy_interpolation(self):
        records = [
            record(f"t{i}", metrics={"time_to_converge": [i * 1e-4]})
            for i in range(1, 11)
        ]
        summary = summarize(records)
        assert summary.percentile_mode == "exact"
        times = [i * 1e-4 for i in range(1, 11)]
        assert summary.convergence_time["p50"] == percentile(times, 50)
        assert summary.convergence_time["p99"] == percentile(times, 99)
        assert summary.convergence_time["max"] == percentile(times, 100)

    def test_spills_to_sketch_past_exact_cap(self):
        times = [(i % 97 + 1) * 1e-5 for i in range(64)]
        records = [
            record(f"t{i}", metrics={"time_to_converge": [t]})
            for i, t in enumerate(times)
        ]
        summary = summarize(records, exact_cap=16)
        assert summary.percentile_mode == "sketch"
        exact = summarize(records)  # default cap: fully exact
        assert summary.convergence_time["max"] == exact.convergence_time["max"]
        for key in ("p50", "p90", "p99"):
            approx = summary.convergence_time[key]
            true = exact.convergence_time[key]
            assert approx >= true * (1.0 - 1e-12)
            assert approx <= true * (1.0 + SKETCH_RELATIVE_ERROR) + 1e-12
        assert "sketch" in summary.render()

    def test_spill_is_independent_of_merge_grouping(self):
        records = [
            record(f"t{i}", metrics={"time_to_converge": [(i + 1) * 1e-4]})
            for i in range(30)
        ]
        whole = CampaignAggregate(exact_cap=10)
        for item in records:
            whole.observe(item)
        parts = [CampaignAggregate(exact_cap=10) for _ in range(3)]
        for i, item in enumerate(records):
            parts[i % 3].observe(item)
        merged = parts[0]
        merged.merge(parts[1])
        merged.merge(parts[2])
        assert merged.summary() == whole.summary()


def store_with(records, make, tmp_path):
    store = make(tmp_path)
    for item in records:
        store.append(item)
    return store


class TestSummarizeStore:
    def records(self):
        items = [
            record(f"t{i}", metrics={"time_to_converge": [(i + 1) * 1e-4]},
                   seed=100 + i)
            for i in range(25)
        ]
        # One retried task: error first, then ok — latest must win.
        items.insert(
            0, record("t3", status=STATUS_ERROR, metrics={}, seed=103,
                      error="E: transient"),
        )
        return items

    def test_matches_summarize_on_single_file_store(self, tmp_path):
        from repro.fleet.results import ResultStore

        store = store_with(
            self.records(), lambda p: ResultStore(p / "r.jsonl"), tmp_path
        )
        assert summarize_store(store) == summarize(store.records())

    def test_identical_across_shard_counts_and_backends(self, tmp_path):
        from repro.fleet.results import (
            ResultStore,
            ShardedResultStore,
            SqliteResultStore,
        )

        items = self.records()
        summaries = []
        for tag, make in [
            ("jsonl", lambda p: ResultStore(p / "r.jsonl")),
            ("b0", lambda p: ShardedResultStore(p / "s0", bits=0)),
            ("b2", lambda p: ShardedResultStore(p / "s2", bits=2)),
            ("b5", lambda p: ShardedResultStore(p / "s5", bits=5)),
            ("sqlite", lambda p: SqliteResultStore(p / "r.sqlite")),
        ]:
            store = store_with(items, make, tmp_path / tag)
            summaries.append(summarize_store(store))
        first = summaries[0]
        for other in summaries[1:]:
            assert other == first
        assert first.tasks == 25
        assert first.errors == 0  # the retried task's ok record won
