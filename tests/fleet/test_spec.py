"""Tests for repro.fleet.spec: round-trips and deterministic expansion."""

from __future__ import annotations

import pytest

from repro.fleet.spec import (
    DEFAULT_MAX_EVENTS,
    CampaignSpec,
    FleetTask,
    SampledCampaign,
    ScenarioGrid,
    example_spec,
    megafleet_spec,
)


def small_spec() -> CampaignSpec:
    return CampaignSpec(
        name="unit",
        base_seed=99,
        grids=(
            ScenarioGrid(
                scenario="sender_reset",
                params={"k": 25, "reset_after_sends": [40, 50], "w": [32, 64]},
            ),
            ScenarioGrid(
                scenario="loss_reset",
                params={"k": 25, "loss_rate": [0.0, 0.05]},
                sessions=5,
            ),
        ),
    )


class TestSerialisation:
    def test_dict_round_trip(self):
        spec = small_spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = small_spec()
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = small_spec()
        path = spec.dump(tmp_path / "deep" / "campaign.json")
        assert CampaignSpec.load(path) == spec

    def test_defaults_survive_round_trip(self):
        spec = CampaignSpec.from_dict(
            {"name": "d", "grids": [{"scenario": "sender_reset"}]}
        )
        assert spec.base_seed == 0
        assert spec.max_events == DEFAULT_MAX_EVENTS
        assert spec.grids[0].repeats == 1
        assert spec.grids[0].sessions is None

    def test_grids_coerced_from_dicts(self):
        spec = CampaignSpec(
            name="c", grids=({"scenario": "sender_reset", "params": {"k": 25}},)
        )
        assert isinstance(spec.grids[0], ScenarioGrid)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name must be non-empty"):
            CampaignSpec(name="", grids=(ScenarioGrid(scenario="sender_reset"),))

    def test_no_grids_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario grid"):
            CampaignSpec(name="x", grids=())

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty choice list"):
            ScenarioGrid(scenario="sender_reset", params={"k": []})

    def test_bad_sessions_rejected(self):
        with pytest.raises(ValueError):
            ScenarioGrid(scenario="sender_reset", sessions=0)

    def test_unknown_scenario_caught_at_expansion(self):
        spec = CampaignSpec(name="x", grids=(ScenarioGrid(scenario="nope"),))
        with pytest.raises(ValueError, match="unknown scenario 'nope'"):
            spec.tasks()

    def test_misspelled_parameter_fails_fast_with_valid_names(self):
        spec = CampaignSpec(
            name="x",
            grids=(ScenarioGrid(
                scenario="sender_reset",
                params={"k": 25, "reset_after_send": [40, 50]},  # missing 's'
            ),),
        )
        with pytest.raises(ValueError, match="reset_after_send"):
            spec.tasks()
        with pytest.raises(ValueError, match="valid parameters:.*reset_after_sends"):
            spec.tasks()

    def test_seed_cannot_be_a_parameter_axis(self):
        spec = CampaignSpec(
            name="x",
            grids=(ScenarioGrid(scenario="sender_reset", params={"seed": [1, 2]}),),
        )
        with pytest.raises(ValueError, match="derived per task"):
            spec.tasks()

    def test_repeats_rejected_in_population_mode(self):
        with pytest.raises(ValueError, match="repeats applies to grid mode only"):
            ScenarioGrid(scenario="sender_reset", sessions=10, repeats=3)


class TestExpansion:
    def test_grid_mode_is_cartesian_product(self):
        spec = small_spec()
        tasks = spec.tasks()
        grid_tasks = [t for t in tasks if t.scenario == "sender_reset"]
        assert len(grid_tasks) == 2 * 2  # reset_after_sends x w (k is scalar)
        combos = {(t.params["reset_after_sends"], t.params["w"]) for t in grid_tasks}
        assert combos == {(40, 32), (40, 64), (50, 32), (50, 64)}

    def test_population_mode_draws_requested_sessions(self):
        tasks = small_spec().tasks()
        sampled = [t for t in tasks if t.scenario == "loss_reset"]
        assert len(sampled) == 5
        assert all(t.params["loss_rate"] in (0.0, 0.05) for t in sampled)

    def test_session_count_matches_expansion(self):
        spec = small_spec()
        assert spec.session_count() == len(spec.tasks())
        demo = example_spec(sessions=60)
        assert demo.session_count() == len(demo.tasks()) == 60

    def test_example_spec_handles_tiny_session_counts(self):
        for sessions in (1, 2, 3, 4):
            assert example_spec(sessions=sessions).session_count() == sessions
        with pytest.raises(ValueError):
            example_spec(sessions=0)

    def test_repeats_replicate_combos_with_distinct_seeds(self):
        spec = CampaignSpec(
            name="r",
            grids=(ScenarioGrid(
                scenario="sender_reset", params={"k": 25}, repeats=3
            ),),
        )
        tasks = spec.tasks()
        assert len(tasks) == 3
        assert len({t.seed for t in tasks}) == 3
        assert len({t.task_id for t in tasks}) == 3

    def test_expansion_is_deterministic(self):
        assert small_spec().tasks() == small_spec().tasks()

    def test_task_ids_unique_across_grids(self):
        tasks = example_spec(sessions=60).tasks()
        assert len({t.task_id for t in tasks}) == len(tasks)

    def test_seeds_independent_across_tasks(self):
        tasks = example_spec(sessions=60).tasks()
        assert len({t.seed for t in tasks}) == len(tasks)

    def test_base_seed_changes_every_seed_but_not_ids(self):
        a = small_spec()
        b = CampaignSpec(name=a.name, grids=a.grids, base_seed=a.base_seed + 1)
        tasks_a, tasks_b = a.tasks(), b.tasks()
        assert [t.task_id for t in tasks_a] == [t.task_id for t in tasks_b]
        assert all(x.seed != y.seed for x, y in zip(tasks_a, tasks_b))

    def test_task_round_trips_through_dict(self):
        task = small_spec().tasks()[0]
        assert FleetTask.from_dict(task.to_dict()) == task


class TestIterTasks:
    def test_streams_same_tasks_in_same_order(self):
        spec = small_spec()
        assert list(spec.iter_tasks()) == spec.tasks()


class TestSampledCampaign:
    def test_membership_is_deterministic(self):
        spec = example_spec(sessions=400)
        first = [t.task_id for t in SampledCampaign(spec, 80).tasks()]
        second = [t.task_id for t in SampledCampaign(spec, 80).tasks()]
        assert first == second

    def test_sample_is_a_subset_with_tasks_unchanged(self):
        spec = example_spec(sessions=200)
        full = {t.task_id: t for t in spec.tasks()}
        sample = SampledCampaign(spec, 50).tasks()
        assert 0 < len(sample) < 200
        for task in sample:
            assert full[task.task_id] == task  # same params, same seed

    def test_expected_size_is_near_target(self):
        spec = example_spec(sessions=1000)
        sample = SampledCampaign(spec, 200).tasks()
        # Binomial(1000, 0.2): +-4 sigma is ~+-50.
        assert 150 <= len(sample) <= 250

    def test_membership_independent_of_target_only_through_threshold(self):
        # Every task of a smaller sample need not survive a larger one,
        # but a fixed target is a fixed set; growing the target keeps
        # the expectation proportional across grids.
        spec = example_spec(sessions=500)
        small = {t.task_id for t in SampledCampaign(spec, 50).tasks()}
        large = {t.task_id for t in SampledCampaign(spec, 250).tasks()}
        assert small  # nonempty at this scale
        assert len(large) > len(small)

    def test_target_at_or_above_total_keeps_everything(self):
        spec = example_spec(sessions=40)
        assert SampledCampaign(spec, 40).tasks() == spec.tasks()
        assert SampledCampaign(spec, 10_000).tasks() == spec.tasks()

    def test_rejects_non_positive_target(self):
        with pytest.raises(ValueError, match="target"):
            SampledCampaign(example_spec(sessions=10), 0)

    def test_runner_surface(self):
        spec = example_spec(sessions=60)
        sampled = SampledCampaign(spec, 20)
        assert sampled.max_events == spec.max_events
        assert sampled.base_seed == spec.base_seed
        assert sampled.session_count() == 20
        assert sampled.name == "mixed-demo~20"


class TestMegafleetSpec:
    def test_expands_to_one_million_sessions(self):
        spec = megafleet_spec()
        assert spec.session_count() == 1_000_000
        spec.validate_scenarios()

    def test_round_trips_through_json(self):
        spec = megafleet_spec()
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_streams_deterministically(self):
        import itertools

        head = list(itertools.islice(megafleet_spec().iter_tasks(), 200))
        again = list(itertools.islice(megafleet_spec().iter_tasks(), 200))
        assert head == again
        ids = [t.task_id for t in head]
        assert len(set(ids)) == len(ids)
        assert all(t.scenario == "sender_reset" for t in head)

    def test_covers_all_four_scenario_families(self):
        scenarios = {grid.scenario for grid in megafleet_spec().grids}
        assert scenarios == {
            "sender_reset", "receiver_reset", "loss_reset", "gateway_crash"
        }
