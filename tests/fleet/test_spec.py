"""Tests for repro.fleet.spec: round-trips and deterministic expansion."""

from __future__ import annotations

import pytest

from repro.fleet.spec import (
    DEFAULT_MAX_EVENTS,
    CampaignSpec,
    FleetTask,
    ScenarioGrid,
    example_spec,
)


def small_spec() -> CampaignSpec:
    return CampaignSpec(
        name="unit",
        base_seed=99,
        grids=(
            ScenarioGrid(
                scenario="sender_reset",
                params={"k": 25, "reset_after_sends": [40, 50], "w": [32, 64]},
            ),
            ScenarioGrid(
                scenario="loss_reset",
                params={"k": 25, "loss_rate": [0.0, 0.05]},
                sessions=5,
            ),
        ),
    )


class TestSerialisation:
    def test_dict_round_trip(self):
        spec = small_spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = small_spec()
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = small_spec()
        path = spec.dump(tmp_path / "deep" / "campaign.json")
        assert CampaignSpec.load(path) == spec

    def test_defaults_survive_round_trip(self):
        spec = CampaignSpec.from_dict(
            {"name": "d", "grids": [{"scenario": "sender_reset"}]}
        )
        assert spec.base_seed == 0
        assert spec.max_events == DEFAULT_MAX_EVENTS
        assert spec.grids[0].repeats == 1
        assert spec.grids[0].sessions is None

    def test_grids_coerced_from_dicts(self):
        spec = CampaignSpec(
            name="c", grids=({"scenario": "sender_reset", "params": {"k": 25}},)
        )
        assert isinstance(spec.grids[0], ScenarioGrid)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name must be non-empty"):
            CampaignSpec(name="", grids=(ScenarioGrid(scenario="sender_reset"),))

    def test_no_grids_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario grid"):
            CampaignSpec(name="x", grids=())

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="empty choice list"):
            ScenarioGrid(scenario="sender_reset", params={"k": []})

    def test_bad_sessions_rejected(self):
        with pytest.raises(ValueError):
            ScenarioGrid(scenario="sender_reset", sessions=0)

    def test_unknown_scenario_caught_at_expansion(self):
        spec = CampaignSpec(name="x", grids=(ScenarioGrid(scenario="nope"),))
        with pytest.raises(ValueError, match="unknown scenario 'nope'"):
            spec.tasks()

    def test_misspelled_parameter_fails_fast_with_valid_names(self):
        spec = CampaignSpec(
            name="x",
            grids=(ScenarioGrid(
                scenario="sender_reset",
                params={"k": 25, "reset_after_send": [40, 50]},  # missing 's'
            ),),
        )
        with pytest.raises(ValueError, match="reset_after_send"):
            spec.tasks()
        with pytest.raises(ValueError, match="valid parameters:.*reset_after_sends"):
            spec.tasks()

    def test_seed_cannot_be_a_parameter_axis(self):
        spec = CampaignSpec(
            name="x",
            grids=(ScenarioGrid(scenario="sender_reset", params={"seed": [1, 2]}),),
        )
        with pytest.raises(ValueError, match="derived per task"):
            spec.tasks()

    def test_repeats_rejected_in_population_mode(self):
        with pytest.raises(ValueError, match="repeats applies to grid mode only"):
            ScenarioGrid(scenario="sender_reset", sessions=10, repeats=3)


class TestExpansion:
    def test_grid_mode_is_cartesian_product(self):
        spec = small_spec()
        tasks = spec.tasks()
        grid_tasks = [t for t in tasks if t.scenario == "sender_reset"]
        assert len(grid_tasks) == 2 * 2  # reset_after_sends x w (k is scalar)
        combos = {(t.params["reset_after_sends"], t.params["w"]) for t in grid_tasks}
        assert combos == {(40, 32), (40, 64), (50, 32), (50, 64)}

    def test_population_mode_draws_requested_sessions(self):
        tasks = small_spec().tasks()
        sampled = [t for t in tasks if t.scenario == "loss_reset"]
        assert len(sampled) == 5
        assert all(t.params["loss_rate"] in (0.0, 0.05) for t in sampled)

    def test_session_count_matches_expansion(self):
        spec = small_spec()
        assert spec.session_count() == len(spec.tasks())
        demo = example_spec(sessions=60)
        assert demo.session_count() == len(demo.tasks()) == 60

    def test_example_spec_handles_tiny_session_counts(self):
        for sessions in (1, 2, 3, 4):
            assert example_spec(sessions=sessions).session_count() == sessions
        with pytest.raises(ValueError):
            example_spec(sessions=0)

    def test_repeats_replicate_combos_with_distinct_seeds(self):
        spec = CampaignSpec(
            name="r",
            grids=(ScenarioGrid(
                scenario="sender_reset", params={"k": 25}, repeats=3
            ),),
        )
        tasks = spec.tasks()
        assert len(tasks) == 3
        assert len({t.seed for t in tasks}) == 3
        assert len({t.task_id for t in tasks}) == 3

    def test_expansion_is_deterministic(self):
        assert small_spec().tasks() == small_spec().tasks()

    def test_task_ids_unique_across_grids(self):
        tasks = example_spec(sessions=60).tasks()
        assert len({t.task_id for t in tasks}) == len(tasks)

    def test_seeds_independent_across_tasks(self):
        tasks = example_spec(sessions=60).tasks()
        assert len({t.seed for t in tasks}) == len(tasks)

    def test_base_seed_changes_every_seed_but_not_ids(self):
        a = small_spec()
        b = CampaignSpec(name=a.name, grids=a.grids, base_seed=a.base_seed + 1)
        tasks_a, tasks_b = a.tasks(), b.tasks()
        assert [t.task_id for t in tasks_a] == [t.task_id for t in tasks_b]
        assert all(x.seed != y.seed for x, y in zip(tasks_a, tasks_b))

    def test_task_round_trips_through_dict(self):
        task = small_spec().tasks()[0]
        assert FleetTask.from_dict(task.to_dict()) == task
