"""Tests for the JSON param codec: scenario kwargs round-trip through
campaign specs, the result store, and pool workers."""

import json

import pytest

from repro.fleet.runner import execute_task, scenario_metrics
from repro.fleet.spec import (
    COSTMODEL_TAG,
    GATEWAYFAULT_TAG,
    CampaignSpec,
    FleetTask,
    ScenarioGrid,
    decode_params,
    encode_params,
)
from repro.gateway import GatewayCrash, RollingRestart
from repro.ipsec.costs import PAPER_COSTS, CostModel


class TestCodec:
    def test_costmodel_roundtrip(self):
        costs = CostModel(t_save=1e-3, t_send=2e-6)
        encoded = encode_params({"k": 25, "costs": costs})
        assert set(encoded["costs"]) == {COSTMODEL_TAG}
        json.dumps(encoded)  # JSON-safe as-is
        decoded = decode_params(json.loads(json.dumps(encoded)))
        assert decoded["costs"] == costs
        assert decoded["k"] == 25

    def test_tuples_become_lists(self):
        encoded = encode_params({"xs": (1, 2, 3)})
        assert encoded["xs"] == [1, 2, 3]

    def test_plain_values_pass_through(self):
        params = {"a": 1, "b": 0.5, "c": "s", "d": None, "e": True}
        assert decode_params(encode_params(params)) == params

    def test_nested_costmodel_in_list(self):
        pair = [CostModel(), CostModel(t_save=1e-3)]
        decoded = decode_params(encode_params({"costs_list": pair}))
        assert decoded["costs_list"] == pair

    def test_nested_costmodel_in_dict(self):
        nested = {"phases": {"warm": CostModel(t_save=1e-3), "n": 3}}
        encoded = encode_params(nested)
        json.dumps(encoded)  # must not leak a raw CostModel
        assert decode_params(json.loads(json.dumps(encoded))) == nested


class TestCampaignSpecWithCostOverrides:
    def test_grid_axis_of_cost_models_expands_json_safe(self):
        spec = CampaignSpec(
            name="costed",
            grids=(ScenarioGrid(
                scenario="sender_reset",
                params={
                    "k": 25,
                    "reset_after_sends": 30,
                    "messages_after_reset": 10,
                    "costs": [PAPER_COSTS, CostModel(t_save=1e-3)],
                },
            ),),
        )
        tasks = spec.tasks()
        assert len(tasks) == 2
        for task in tasks:
            json.dumps(task.params)

    def test_spec_json_roundtrip_preserves_cost_axis(self):
        spec = CampaignSpec(
            name="costed",
            grids=(ScenarioGrid(
                scenario="sender_reset",
                params={
                    "k": 25,
                    "reset_after_sends": 30,
                    "messages_after_reset": 10,
                    "costs": [CostModel(t_save=1e-3)],
                },
            ),),
        )
        reloaded = CampaignSpec.from_json(spec.to_json())
        assert [t.to_dict() for t in reloaded.tasks()] == [
            t.to_dict() for t in spec.tasks()
        ]

    def test_execute_task_decodes_cost_override(self):
        # A huge t_save makes the save span enormous relative to k, which
        # only matters if the override actually reaches the scenario.
        slow_save = CostModel(t_save=100 * 25 * PAPER_COSTS.t_send)
        task = FleetTask(
            task_id="t0",
            scenario="sender_reset",
            params=encode_params(dict(
                k=25, reset_after_sends=60, messages_after_reset=30,
                costs=slow_save,
            )),
            seed=0,
        )
        record = execute_task(task)
        assert record.status == "ok", record.error
        # With the save still in flight at reset time, FETCH returns the
        # previous checkpoint: the gap exceeds k (impossible under the
        # paper's constants, where the save commits in 25 messages).
        assert record.metrics["sender_reset_records"][0]["save_in_flight"]


class TestDictScenarios:
    def test_execute_task_records_dict_metrics(self):
        task = FleetTask(
            task_id="d0",
            scenario="dpd",
            params={"mechanism": "heartbeat", "cadence": 0.1, "rtt": 0.01,
                    "reset_at": 0.5},
            seed=0,
        )
        record = execute_task(task)
        assert record.status == "ok", record.error
        assert record.metrics["detected"] is True

    def test_scenario_metrics_rejects_other_types(self):
        with pytest.raises(TypeError, match="expected a ScenarioResult"):
            scenario_metrics(42)


class TestGatewayFaultCodec:
    def test_fault_roundtrip_is_tagged_and_json_safe(self):
        fault = GatewayCrash(at=0.002, down_time=0.0002)
        encoded = encode_params({"n_sas": 4, "fault": fault})
        assert set(encoded["fault"]) == {GATEWAYFAULT_TAG}
        decoded = decode_params(json.loads(json.dumps(encoded)))
        assert decoded["fault"] == fault
        assert decode_params(encode_params({
            "fault": RollingRestart(at=0.01, stagger=0.001)
        }))["fault"] == RollingRestart(at=0.01, stagger=0.001)

    def test_gateway_spec_json_roundtrip_preserves_fault(self):
        spec = CampaignSpec(
            name="gw",
            grids=(ScenarioGrid(
                scenario="gateway_crash",
                params={
                    "n_sas": [2, 4],
                    "fault": GatewayCrash(after_sends=50, down_time=0.0002),
                    "crash_after_sends": 50,
                    "messages_after_reset": 50,
                },
            ),),
        )
        reloaded = CampaignSpec.from_json(spec.to_json())
        assert reloaded.tasks() == spec.tasks()

    def test_execute_task_applies_fault_from_json_params(self):
        fault = GatewayCrash(at=0.0008, down_time=0.0002)
        task = FleetTask(
            task_id="gw0",
            scenario="gateway_crash",
            params=encode_params({
                "n_sas": 2,
                "fault": fault,
                "crash_after_sends": 50,
                "messages_after_reset": 50,
            }),
            seed=0,
        )
        record = execute_task(task)
        assert record.status == "ok", record.error
        assert record.metrics["gateway_crashes"] == 1
        assert record.metrics["converged"] is True
