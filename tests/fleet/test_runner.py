"""Tests for repro.fleet.runner: execution, determinism, resume.

The determinism tests pin the satellite guarantee: the same
:class:`CampaignSpec` run twice — and serial vs ``jobs=2`` — writes
byte-identical result stores modulo the ``wall_time`` field.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.fleet.results import STATUS_ERROR, STATUS_OK, ResultStore
from repro.fleet.runner import FleetRunner, execute_task, run_campaign
from repro.fleet.spec import CampaignSpec, ScenarioGrid, example_spec


def canonical_lines(path: Path) -> list[str]:
    """Store lines with the wall-clock-dependent field zeroed."""
    return [
        re.sub(r'"wall_time":[0-9eE.+-]+', '"wall_time":0', line)
        for line in path.read_text().splitlines()
    ]


def run_spec(spec: CampaignSpec, tmp_path: Path, tag: str, jobs: int = 1):
    store = ResultStore(tmp_path / tag / "results.jsonl")
    outcome = FleetRunner(spec, store, jobs=jobs).run()
    return store, outcome


class TestSmokeCampaign:
    def test_twenty_session_mixed_campaign(self, tmp_path):
        spec = example_spec(sessions=20)
        store, outcome = run_spec(spec, tmp_path, "smoke")
        assert outcome.total == 20
        assert outcome.skipped == 0
        assert len(outcome.executed) == 20
        records = list(store.records())
        assert len(records) == 20
        assert {r.status for r in records} == {STATUS_OK}
        assert {r.scenario for r in records} == {
            "sender_reset", "receiver_reset", "loss_reset", "gateway_crash"
        }
        assert all(r.metrics["converged"] for r in records)
        assert all(r.metrics["replays_accepted"] == 0 for r in records)

    def test_progress_callback_streams_in_task_order(self, tmp_path):
        spec = example_spec(sessions=9)
        seen: list[tuple[int, str]] = []
        store = ResultStore(tmp_path / "results.jsonl")
        FleetRunner(
            spec, store, progress=lambda done, total, rec: seen.append((done, rec.task_id))
        ).run()
        assert [done for done, _ in seen] == list(range(1, 10))
        assert [tid for _, tid in seen] == [t.task_id for t in spec.tasks()]

    def test_execute_task_alone_matches_runner_record(self, tmp_path):
        spec = example_spec(sessions=6)
        task = spec.tasks()[0]
        direct = execute_task(task, spec.max_events)
        store, _ = run_spec(spec, tmp_path, "one")
        via_runner = next(iter(store.records()))
        assert direct.metrics == via_runner.metrics
        assert direct.seed == via_runner.seed


class TestDeterminism:
    def test_same_spec_twice_is_byte_identical_modulo_wall_time(self, tmp_path):
        spec = example_spec(sessions=12)
        store_a, _ = run_spec(spec, tmp_path, "a")
        store_b, _ = run_spec(spec, tmp_path, "b")
        assert canonical_lines(store_a.path) == canonical_lines(store_b.path)

    def test_serial_vs_pool_is_byte_identical_modulo_wall_time(self, tmp_path):
        spec = example_spec(sessions=12)
        store_serial, _ = run_spec(spec, tmp_path, "serial", jobs=1)
        store_pool, _ = run_spec(spec, tmp_path, "pool", jobs=2)
        assert canonical_lines(store_serial.path) == canonical_lines(store_pool.path)


class TestResume:
    def test_completed_tasks_are_not_recomputed(self, tmp_path):
        spec = example_spec(sessions=12)
        store, first = run_spec(spec, tmp_path, "resume")
        assert len(first.executed) == 12
        second = FleetRunner(spec, store).run()
        assert second.skipped == 12
        assert second.executed == []
        assert len(list(store.records())) == 12

    def test_interrupted_store_resumes_remaining_tasks(self, tmp_path):
        spec = example_spec(sessions=12)
        store, _ = run_spec(spec, tmp_path, "full")
        # Simulate an interrupt: keep only the first 5 completed lines.
        lines = store.path.read_text().splitlines()[:5]
        partial = ResultStore(tmp_path / "partial" / "results.jsonl")
        partial.path.write_text("\n".join(lines) + "\n")
        outcome = FleetRunner(spec, partial).run()
        assert outcome.skipped == 5
        assert len(outcome.executed) == 7
        # The healed store is indistinguishable from an uninterrupted run.
        assert canonical_lines(partial.path) == canonical_lines(store.path)

    def test_resume_after_mid_line_truncation(self, tmp_path):
        spec = example_spec(sessions=6)
        store, _ = run_spec(spec, tmp_path, "trunc")
        text = store.path.read_text()
        store.path.write_text(text[: len(text) - 20])  # chop the last line
        outcome = FleetRunner(spec, store).run()
        assert outcome.skipped == 5
        assert len(outcome.executed) == 1
        assert len(store.completed_ids()) == 6

    def test_errored_tasks_retry_on_resume(self, tmp_path):
        # loss_rate=2.0 passes spec validation (a real parameter) but
        # fails at runtime (not a probability) -> an error record.
        bad = CampaignSpec(
            name="bad",
            grids=(ScenarioGrid(
                scenario="loss_reset",
                params={"k": 25, "loss_rate": 2.0},
            ),),
        )
        store = ResultStore(tmp_path / "results.jsonl")
        first = FleetRunner(bad, store).run()
        assert [r.status for r in first.executed] == [STATUS_ERROR]
        assert "must be in [0, 1]" in first.executed[0].error
        second = FleetRunner(bad, store).run()
        assert second.skipped == 0  # error records do not count as done
        assert len(second.executed) == 1


class TestGuards:
    def test_rejects_zero_jobs(self, tmp_path):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            FleetRunner(example_spec(6), ResultStore(tmp_path / "r.jsonl"), jobs=0)

    def test_event_budget_overrun_is_an_error_record(self, tmp_path):
        spec = example_spec(sessions=3)
        store = ResultStore(tmp_path / "results.jsonl")
        outcome = FleetRunner(spec, store, max_events=10).run()
        assert all(r.status == STATUS_ERROR for r in outcome.executed)
        assert all("hard_event_limit" in r.error for r in outcome.executed)

    def test_run_campaign_accepts_path_store(self, tmp_path):
        outcome = run_campaign(example_spec(sessions=6), tmp_path / "r.jsonl")
        assert len(outcome.executed) == 6


@pytest.mark.slow
class TestFleetScale:
    def test_five_hundred_session_campaign_parallel(self, tmp_path):
        spec = example_spec(sessions=510, base_seed=77)
        store, outcome = run_spec(spec, tmp_path, "scale", jobs=2)
        assert len(outcome.executed) == 510
        records = list(store.records())
        assert len(records) == 510
        assert all(r.status == STATUS_OK for r in records)
        assert all(r.metrics["replays_accepted"] == 0 for r in records)


class TestStoreBackends:
    def shard_lines(self, store) -> list[str]:
        return sorted(
            line
            for shard in store.shards
            if shard.path.exists()
            for line in canonical_lines(shard.path)
        )

    def test_sharded_run_matches_jsonl_modulo_placement(self, tmp_path):
        from repro.fleet.results import ShardedResultStore

        spec = example_spec(sessions=12)
        jsonl_store, _ = run_spec(spec, tmp_path, "jsonl")
        sharded = ShardedResultStore(tmp_path / "shards", bits=3)
        FleetRunner(spec, sharded).run()
        assert self.shard_lines(sharded) == sorted(
            canonical_lines(jsonl_store.path)
        )

    def test_sharded_serial_vs_pool_byte_identical(self, tmp_path):
        from repro.fleet.results import ShardedResultStore

        spec = example_spec(sessions=12)
        serial = ShardedResultStore(tmp_path / "serial", bits=3)
        FleetRunner(spec, serial, jobs=1).run()
        pool = ShardedResultStore(tmp_path / "pool", bits=3)
        FleetRunner(spec, pool, jobs=2).run()
        for shard_a, shard_b in zip(serial.shards, pool.shards):
            lines_a = canonical_lines(shard_a.path) if shard_a.path.exists() else []
            lines_b = canonical_lines(shard_b.path) if shard_b.path.exists() else []
            assert lines_a == lines_b

    def test_sharded_store_resumes(self, tmp_path):
        from repro.fleet.results import ShardedResultStore

        spec = example_spec(sessions=12)
        store = ShardedResultStore(tmp_path / "shards", bits=2)
        first = FleetRunner(spec, store).run()
        assert len(first.executed) == 12
        second = FleetRunner(spec, store).run()
        assert second.skipped == 12
        assert second.executed == []

    def test_sharded_resume_after_kill_heals_dirty_shard(self, tmp_path):
        from repro.fleet.results import ShardedResultStore

        spec = example_spec(sessions=12)
        full = ShardedResultStore(tmp_path / "full", bits=2)
        FleetRunner(spec, full).run()
        # Rebuild a killed-mid-run store: 5 complete records, plus the
        # in-flight sixth torn mid-line in its shard.
        records = list(full.records())
        partial = ShardedResultStore(tmp_path / "partial", bits=2)
        for record in records[:5]:
            partial.append(record)
        victim = records[5]
        with partial.shard_for(victim.task_id, victim.seed).path.open("a") as fh:
            fh.write(victim.to_json()[:30])
        assert partial.dirty_shards() != []
        outcome = FleetRunner(spec, partial).run()
        assert outcome.skipped == 5
        assert len(outcome.executed) == 7
        assert partial.dirty_shards() == []
        assert len(partial.completed_ids()) == 12
        # The torn fragment stays in the file (skip-and-log, never
        # rewrite), but the record multiset matches the clean run.
        def record_lines(store):
            return sorted(
                re.sub(r'"wall_time":[0-9eE.+-]+', '"wall_time":0',
                       record.to_json())
                for record in store.records()
            )
        assert record_lines(partial) == record_lines(full)

    def test_sqlite_store_runs_and_resumes(self, tmp_path):
        from repro.fleet.results import SqliteResultStore

        spec = example_spec(sessions=9)
        store = SqliteResultStore(tmp_path / "r.sqlite")
        first = FleetRunner(spec, store).run()
        assert len(first.executed) == 9
        second = FleetRunner(spec, store).run()
        assert second.skipped == 9
        store.close()
        # Records are durable across a reopen (persist-before-acknowledge).
        reopened = SqliteResultStore(tmp_path / "r.sqlite")
        assert len(reopened.completed_ids()) == 9
        reopened.close()

    def test_sampled_campaign_runs_and_resumes(self, tmp_path):
        from repro.fleet.results import ShardedResultStore
        from repro.fleet.spec import SampledCampaign

        plan = SampledCampaign(example_spec(sessions=60), 15)
        store = ShardedResultStore(tmp_path / "shards", bits=2)
        first = FleetRunner(plan, store).run()
        assert 5 <= len(first.executed) <= 30  # ~15 expected
        second = FleetRunner(plan, store).run()
        assert second.skipped == len(first.executed)
        assert second.executed == []
