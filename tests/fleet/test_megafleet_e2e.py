"""Campaign-scale end-to-end: kill a sampled megafleet run, resume it.

The CI ``fleet-scale`` job runs this under ``--runslow``: expand the
1M-task campaign spec, run a deterministic ~2k-session sample on the
sharded store with two workers, SIGKILL the process mid-run, resume, and
assert the recovery invariants the whole fleet stack promises — zero
lost tasks, zero duplicated tasks, and sketch percentiles agreeing with
exact ones within the documented error bound.

Set ``MEGAFLEET_OUT`` to keep the campaign directory (CI uploads the
``aggregate.json`` artifact from there); by default everything lands in
the test's tmp dir.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.fleet.aggregate import SKETCH_RELATIVE_ERROR, summarize_store
from repro.fleet.results import STATUS_OK, ShardedResultStore
from repro.fleet.spec import SampledCampaign, megafleet_spec

SAMPLE = 2000
JOBS = 2
SHARD_BITS = 4


def fleet_command(spec_path: Path, out_dir: Path) -> list[str]:
    return [
        sys.executable, "-m", "repro", "fleet", str(spec_path),
        "--sample", str(SAMPLE), "--store", "sharded",
        "--shard-bits", str(SHARD_BITS), "--jobs", str(JOBS),
        "--out", str(out_dir),
    ]


def repro_env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


@pytest.mark.slow
class TestMegafleetKillResume:
    def test_kill_mid_run_then_resume_loses_and_duplicates_nothing(
        self, tmp_path
    ):
        out_dir = Path(os.environ.get("MEGAFLEET_OUT", tmp_path / "megafleet"))
        out_dir.mkdir(parents=True, exist_ok=True)
        spec = megafleet_spec()
        spec_path = spec.dump(out_dir / "megafleet_spec.json")
        command = fleet_command(spec_path, out_dir)
        env = repro_env()

        # Phase 1: start the sampled campaign and SIGKILL it once a
        # meaningful amount of work is durably stored.
        process = subprocess.Popen(
            command, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        store_dir = out_dir / "results.shards"
        deadline = time.monotonic() + 600
        killed = False
        try:
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break  # finished before we could kill it (too fast)
                if store_dir.exists():
                    done = len(ShardedResultStore(store_dir).completed_ids())
                    if done >= 100:
                        os.kill(process.pid, signal.SIGKILL)
                        process.wait(timeout=60)
                        killed = True
                        break
                time.sleep(0.25)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=60)
        assert killed or process.returncode == 0, (
            "first run neither made progress nor finished"
        )

        store = ShardedResultStore(store_dir)
        done_after_kill = store.completed_ids()
        if killed:
            assert done_after_kill, "kill point left no durable records"

        # Phase 2: resume with the identical command.
        result = subprocess.run(
            command, env=env, capture_output=True, text=True, timeout=3600,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert (out_dir / "aggregate.json").exists()

        # Zero lost tasks: exactly the deterministic sample completed.
        expected_ids = {
            task.task_id for task in SampledCampaign(spec, SAMPLE).tasks()
        }
        store = ShardedResultStore(store_dir)
        assert store.completed_ids() == expected_ids

        # Zero duplicated tasks: resume never re-runs completed work, so
        # each task has exactly one ok record (a kill can add an error
        # record before the retry, never a second ok).
        ok_counts = Counter(
            record.task_id
            for record in store.records()
            if record.status == STATUS_OK
        )
        duplicated = {tid: n for tid, n in ok_counts.items() if n > 1}
        assert duplicated == {}
        # Everything the first run durably finished stayed finished.
        assert done_after_kill <= expected_ids

        # Sketch-vs-exact percentile agreement on the full sample:
        # forcing the sketch path (exact_cap=0 spills immediately) must
        # stay conservative and within the documented relative error.
        exact = summarize_store(store)
        sketched = summarize_store(store, exact_cap=0)
        assert exact.percentile_mode == "exact"
        assert sketched.percentile_mode == "sketch"
        assert sketched.convergence_time["max"] == exact.convergence_time["max"]
        for key in ("p50", "p90", "p99"):
            approx = sketched.convergence_time[key]
            true = exact.convergence_time[key]
            assert approx >= true * (1.0 - 1e-12)
            assert approx <= true * (1.0 + SKETCH_RELATIVE_ERROR) + 1e-12
