"""Smoke + shape tests for every experiment (small parameterisations).

Each test asserts the *reproduced shape*: the qualitative claim the paper
makes (who wins, what is bounded, where the cliff/knee sits), not exact
numbers.
"""

import pytest

from repro.experiments import (
    e01_sender_gap,
    e02_receiver_gap,
    e03_sender_loss,
    e04_receiver_discard,
    e05_unbounded,
    e06_save_interval,
    e07_rekey_cost,
    e08_dual_reset,
    e09_prolonged_reset,
    e10_reorder,
    e11_double_reset,
    e12_reset_notice,
    e13_dpd,
    e14_loss_robustness,
    e15_gateway_convergence,
)
from repro.experiments.common import ExperimentResult, render_table


class TestCommon:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [{"a": 1, "bb": 22}, {"a": 333, "bb": 4}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table_zero_rows(self):
        text = render_table(["alpha", "b"], [])
        lines = text.splitlines()
        assert lines == ["alpha  b", "--------"]

    def test_render_table_zero_rows_and_zero_columns(self):
        # Degenerate but legal: an empty header and an empty rule line.
        assert render_table([], []) == "\n"

    def test_format_cell_stable_at_1000_boundary(self):
        from repro.experiments.common import _format_cell

        # Values that *round* to 1000 under %.4g must render in the same
        # notation as 1000 itself, not flip to fixed-point.
        assert _format_cell(1000.0) == "1.000e+03"
        assert _format_cell(999.99996) == "1.000e+03"
        assert _format_cell(-1000.0) == "-1.000e+03"
        assert _format_cell(999.9) == "999.9"

    def test_format_cell_stable_at_small_boundary(self):
        from repro.experiments.common import _format_cell

        assert _format_cell(0.001) == "0.001"
        # Rounds up to 0.001 under %.4g: stays fixed-point like 0.001.
        assert _format_cell(0.00099999999) == "0.001"
        assert _format_cell(0.0009) == "9.000e-04"

    def test_result_container(self):
        result = ExperimentResult("EX", "t", "p", columns=["x"])
        result.add_row(x=1)
        result.note("n")
        assert result.column("x") == [1]
        assert "EX" in result.render() and "note: n" in result.render()


class TestE01:
    def test_fig1_two_regimes_and_bound(self):
        result = e01_sender_gap.run(k=50, offsets=[0, 10, 24, 30, 45])
        assert all(row["within_bound"] for row in result.rows)
        in_flight = [r["gap"] for r in result.rows if r["save_in_flight"]]
        committed = [r["gap"] for r in result.rows if not r["save_in_flight"]]
        assert in_flight and committed
        # Fig. 1's two regimes: gap ~ k + t while the save is in flight
        # (>= k - 1 at t = 0), gap ~ t (< k) once it committed.
        assert min(in_flight) >= 49
        assert max(in_flight) <= 100
        assert max(committed) < 50
        assert all(row["replays_accepted"] == 0 for row in result.rows)


class TestE02:
    def test_fig2_bound_and_no_replays(self):
        result = e02_receiver_gap.run(k=50, offsets=[0, 20, 30, 45])
        assert all(row["within_bound"] for row in result.rows)
        assert all(row["replays_accepted"] == 0 for row in result.rows)
        assert all(row["fresh_discarded"] <= 100 for row in result.rows)


class TestE03:
    def test_claim_i_shape(self):
        result = e03_sender_loss.run(ks=[10, 40], offsets_per_k=3)
        assert all(row["within_bound"] for row in result.rows)
        assert all(row["fresh_discarded"] == 0 for row in result.rows)
        assert all(row["converged"] for row in result.rows)
        losses = result.column("max_lost")
        assert losses[1] > losses[0]  # grows with Kp


class TestE04:
    def test_claim_ii_shape(self):
        result = e04_receiver_discard.run(ks=[10, 40], offsets_per_k=3)
        assert all(row["within_bound"] for row in result.rows)
        assert all(row["replays_accepted"] == 0 for row in result.rows)
        assert all(row["replays_injected"] > 0 for row in result.rows)


class TestE05:
    def test_headline_crossover(self):
        result = e05_unbounded.run(traffic_volumes=[100, 400])
        unprot = result.column("unprot_replays_accepted")
        assert unprot == [100, 400]  # linear, unbounded
        assert result.column("sf_replays_accepted") == [0, 0]
        unprot_discards = result.column("unprot_fresh_discarded")
        assert unprot_discards[1] > unprot_discards[0]
        assert all(v <= 50 for v in result.column("sf_fresh_discarded"))


class TestE06:
    def test_knee_at_rule(self):
        result = e06_save_interval.run(ks=[10, 50])
        below, above = result.rows
        assert not below["rule_satisfied"] and above["rule_satisfied"]
        assert below["max_concurrent_saves"] > 1
        assert above["max_concurrent_saves"] == 1
        assert above["gap_bound_ok"]
        assert above["overhead_fraction"] < below["overhead_fraction"]

    def test_policy_comparison_waste(self):
        comparison = e06_save_interval.compare_policies(k=25, bursts=10)
        assert comparison.time_based_saves > comparison.count_based_saves
        assert comparison.waste_fraction > 0.5


class TestE07:
    def test_savefetch_wins_and_scales(self):
        result = e07_rekey_cost.run(sa_counts=[1, 4], rtts=[0.001])
        assert all(row["speedup"] > 50 for row in result.rows)
        times = result.column("rekey_time_s")
        assert times[1] > 3 * times[0]  # linear in SA count
        assert all(row["savefetch_time_s"] < 0.01 for row in result.rows)


class TestE08:
    def test_dual_reset_cases(self):
        result = e08_dual_reset.run(k=25)
        by_case = {(row["case"], row["protocol"]): row for row in result.rows}
        assert by_case[("simultaneous", "save/fetch")]["converged"]
        assert not by_case[("simultaneous", "unprotected")]["converged"]
        # This reproduction's finding: the staggered window bites
        # SAVE/FETCH and not the ceiling repair.
        assert by_case[("staggered-vulnerable", "savefetch")]["replays_accepted"] >= 1
        assert by_case[("staggered-vulnerable", "ceiling")]["replays_accepted"] == 0


class TestE09:
    def test_recovery_tracks_outage(self):
        result = e09_prolonged_reset.run(outages=[0.05, 2.0], keep_alive_timeout=1.0)
        short, long = result.rows
        assert short["detected"] and short["resync_accepted"]
        assert not short["keepalive_expired"]
        assert long["keepalive_expired"]
        assert all(row["replays_accepted"] == 0 for row in result.rows)
        assert short["recovery_s"] == pytest.approx(0.05, abs=0.02)


class TestE10:
    def test_cliff_at_window_size(self):
        result = e10_reorder.run(
            window_sizes=[32], degrees=[1, 31, 32, 64], messages=800
        )
        by_degree = {row["degree"]: row for row in result.rows}
        assert by_degree[1]["fresh_discarded"] == 0
        assert by_degree[31]["fresh_discarded"] == 0
        assert by_degree[32]["fresh_discarded"] > 0
        assert by_degree[64]["discard_rate"] > 0.8
        assert all(row["duplicates_delivered"] == 0 for row in result.rows)


class TestE11:
    def test_only_paper_config_safe(self):
        result = e11_double_reset.run(k=25)
        by_variant = {}
        for row in result.rows:
            by_variant.setdefault(row["variant"], []).append(row)
        assert all(row["safe"] for row in by_variant["paper (leap 2K, wake save)"])
        assert any(not row["safe"] for row in by_variant["leap 1K"])
        assert any(not row["safe"] for row in by_variant["leap 0"])
        skip_rows = {row["double_reset"]: row for row in by_variant["skip wake save"]}
        assert skip_rows[False]["safe"]  # single reset: fine
        assert not skip_rows[True]["safe"]  # the hazard the SAVE closes


class TestE13:
    def test_detection_scales_with_cadence(self):
        result = e13_dpd.run(cadences=[0.1, 1.0])
        assert all(row["detected"] for row in result.rows)
        heartbeat = {r["cadence_s"]: r for r in result.rows
                     if r["mechanism"] == "heartbeat"}
        assert heartbeat[1.0]["detection_s"] > heartbeat[0.1]["detection_s"]


class TestE14:
    def test_hole_bites_savefetch_not_ceiling(self):
        result = e14_loss_robustness.run(burst_levels=[0.0, 0.03], seeds=3)
        clean, bursty = result.rows
        assert clean["vulnerable_windows"] == 0
        assert clean["sf_runs_with_replays"] == 0
        assert bursty["vulnerable_windows"] > 0
        assert bursty["sf_runs_with_replays"] > 0
        assert bursty["ceiling_runs_with_replays"] == 0


class TestE15:
    def test_policies_trade_spread_not_safety(self):
        result = e15_gateway_convergence.run(
            sa_counts=[1, 8],
            crash_after_sends=100,
            messages_after_reset=100,
        )
        assert all(row["converged"] for row in result.rows)
        assert all(row["replays"] == 0 for row in result.rows)
        by_cell = {(r["n_sas"], r["policy"]): r for r in result.rows}
        # One SA: every policy degenerates to the paper's K=25, no spread.
        assert by_cell[(1, "serial")]["k"] == 25
        assert by_cell[(1, "serial")]["spread_us"] == 0
        # Eight SAs: serial pays the FETCH storm, batching flattens it.
        assert by_cell[(8, "serial")]["k"] == 200
        assert by_cell[(8, "batched")]["k"] == 50
        assert (by_cell[(8, "batched")]["spread_us"]
                < by_cell[(8, "serial")]["spread_us"])
        assert by_cell[(8, "batched")]["batched"] > 0


class TestE12:
    def test_strawman_broken_savefetch_not(self):
        result = e12_reset_notice.run(pre_reset_messages=200, post_reset_messages=80)
        strawman, savefetch = result.rows
        assert strawman["genuine_recovery_ok"]
        assert strawman["broken_by_replay"]
        assert strawman["replays_accepted"] > 100
        assert not savefetch["broken_by_replay"]
