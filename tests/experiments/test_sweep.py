"""Unit tests for the declarative sweep layer (SweepSpec / ExperimentDriver)."""

import json

import pytest

from repro.experiments import e01_sender_gap, e03_sender_loss, e04_receiver_discard, e13_dpd
from repro.experiments.common import swept_offsets
from repro.experiments.sweep import (
    ExperimentDriver,
    ExperimentTaskError,
    SweepPoint,
    SweepSpec,
    TaskCall,
)
from repro.fleet.results import MemoryResultStore, ResultStore
from repro.fleet.spec import COSTMODEL_TAG
from repro.ipsec.costs import CostModel


def _tiny_spec(scenario="dpd", params=None, points=2):
    params = params if params is not None else dict(
        mechanism="heartbeat", cadence=0.1, rtt=0.01, reset_at=0.5
    )
    return SweepSpec(
        experiment_id="ET",
        title="test sweep",
        paper_artifact="none",
        columns=["i", "detected"],
        points=[
            SweepPoint(
                axis={"i": i},
                calls={"run": TaskCall(scenario=scenario, params=params)},
            )
            for i in range(points)
        ],
        reduce_row=lambda axis, metrics: dict(
            i=axis["i"], detected=metrics["run"]["detected"]
        ),
    )


class TestSweepSpec:
    def test_tasks_expand_with_stable_ids(self):
        tasks = _tiny_spec(points=3).tasks()
        assert [task.task_id for task in tasks] == [
            "ET/0000/run", "ET/0001/run", "ET/0002/run",
        ]
        assert all(task.scenario == "dpd" for task in tasks)

    def test_session_count(self):
        assert _tiny_spec(points=3).session_count() == 3

    def test_unknown_scenario_rejected_at_expansion(self):
        spec = _tiny_spec(scenario="bogus", params={})
        with pytest.raises(ValueError, match="unknown scenario 'bogus'"):
            spec.tasks()

    def test_unknown_param_rejected_at_expansion(self):
        spec = _tiny_spec(params={"not_a_param": 1})
        with pytest.raises(ValueError, match="no parameter"):
            spec.tasks()

    def test_costmodel_params_are_json_encoded(self):
        costs = CostModel(t_save=1e-3)
        spec = _tiny_spec(
            scenario="sender_reset",
            params=dict(k=25, reset_after_sends=30,
                        messages_after_reset=10, costs=costs),
            points=1,
        )
        [task] = spec.tasks()
        encoded = task.params["costs"]
        assert set(encoded) == {COSTMODEL_TAG}
        json.dumps(task.params)  # must be JSON-serialisable as-is

    def test_duplicate_roles_within_point_impossible_but_guarded(self):
        # Two points at the same index cannot exist; the guard covers a
        # future id-scheme regression by construction of task_id.
        spec = _tiny_spec(points=1)
        ids = [task.task_id for task in spec.tasks()]
        assert len(set(ids)) == len(ids)


class TestSweptOffsets:
    def test_duplicate_offsets_deduped(self):
        # k=5, offsets_per_k=6: int(i * 5 / 6) hits 0 twice.
        assert swept_offsets(5, 6) == [0, 1, 2, 3, 4]
        assert swept_offsets(10, 3) == [0, 3, 6]

    def test_e03_small_k_expands_distinct_sessions_only(self):
        spec = e03_sender_loss.sweep(ks=[5], offsets_per_k=6)
        assert len(spec.tasks()) == 5  # not 6: the duplicate offset is gone

    def test_e04_small_k_expands_distinct_sessions_only(self):
        spec = e04_receiver_discard.sweep(ks=[5], offsets_per_k=6)
        assert len(spec.tasks()) == 10  # clean + attacked per distinct offset


class TestExperimentDriver:
    def test_reduces_rows_in_point_order(self):
        result = ExperimentDriver(_tiny_spec(points=3)).run()
        assert [row["i"] for row in result.rows] == [0, 1, 2]
        assert all(row["detected"] for row in result.rows)

    def test_outcome_reports_session_counts(self):
        driver = ExperimentDriver(_tiny_spec(points=2))
        driver.run()
        assert driver.outcome is not None
        assert driver.outcome.total == 2
        assert driver.outcome.skipped == 0

    def test_memory_and_file_store_rows_identical(self, tmp_path):
        spec = e01_sender_gap.sweep(k=50, offsets=[0, 30])
        memory_rows = ExperimentDriver(
            spec, store=MemoryResultStore()
        ).run().rows
        file_rows = ExperimentDriver(
            spec, store=ResultStore(tmp_path / "e01.jsonl")
        ).run().rows
        assert json.dumps(memory_rows) == json.dumps(file_rows)

    def test_sharded_store_rows_identical_and_resumable(self, tmp_path):
        from repro.fleet.results import ShardedResultStore

        spec = e01_sender_gap.sweep(k=50, offsets=[0, 30])
        plain_rows = ExperimentDriver(spec, store=MemoryResultStore()).run().rows
        store = ShardedResultStore(tmp_path / "e01.shards", bits=2)
        sharded_rows = ExperimentDriver(spec, store=store).run().rows
        assert json.dumps(plain_rows) == json.dumps(sharded_rows)
        # Re-running against the same sharded store resumes everything.
        resumed = ExperimentDriver(spec, store=store)
        assert json.dumps(resumed.run().rows) == json.dumps(plain_rows)
        assert resumed.outcome.skipped == resumed.outcome.total

    def test_task_error_raises_loudly(self):
        spec = _tiny_spec(
            scenario="sender_reset",
            # k=-1 passes name validation but fails inside the scenario,
            # producing an error record the reducer must refuse to skip.
            params=dict(k=-1, reset_after_sends=10, messages_after_reset=5),
            points=1,
        )
        with pytest.raises(ExperimentTaskError, match="ET/0000/run"):
            ExperimentDriver(spec).run()

    def test_reduce_fails_on_missing_record(self):
        driver = ExperimentDriver(_tiny_spec(points=1))
        with pytest.raises(ExperimentTaskError, match="no record in store"):
            driver.reduce()  # nothing executed yet


class TestResumeAfterInterrupt:
    """Satellite: kill a sweep after N tasks, rerun, rows byte-identical."""

    def test_interrupted_then_resumed_rows_byte_identical(self, tmp_path):
        spec = e01_sender_gap.sweep(k=50, offsets=[0, 10, 30, 45])

        # Reference: one uninterrupted run.
        full = ExperimentDriver(spec, store=ResultStore(tmp_path / "a.jsonl")).run()

        # Interrupted run: kill after 2 completed tasks.
        store = ResultStore(tmp_path / "b.jsonl")

        def kill_after_two(done, pending, record):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ExperimentDriver(spec, store=store, progress=kill_after_two).run()
        assert len(store.completed_ids()) == 2

        # Resume: only the remaining tasks execute; rows byte-identical.
        driver = ExperimentDriver(spec, store=store)
        resumed = driver.run()
        assert driver.outcome.skipped == 2
        assert len(driver.outcome.executed) == 2
        assert json.dumps(resumed.rows) == json.dumps(full.rows)
        assert resumed.notes == full.notes

    def test_stale_store_with_changed_params_refused(self, tmp_path):
        store = ResultStore(tmp_path / "e13.jsonl")
        ExperimentDriver(e13_dpd.sweep(cadences=[0.1]), store=store).run()
        # Same task ids, different parameters: the old records must not be
        # silently attributed to the new sweep's rows.
        changed = e13_dpd.sweep(cadences=[0.2])
        with pytest.raises(ExperimentTaskError, match="does not match"):
            ExperimentDriver(changed, store=store).run()

    def test_reduce_alone_rerenders_a_finished_store(self, tmp_path):
        spec = e13_dpd.sweep(cadences=[0.1])
        store = ResultStore(tmp_path / "e13.jsonl")
        first = ExperimentDriver(spec, store=store).run()
        # A fresh driver over the same store reduces without executing.
        driver = ExperimentDriver(spec, store=store)
        again = driver.run()
        assert driver.outcome.skipped == driver.outcome.total
        assert driver.outcome.executed == []
        assert json.dumps(again.rows) == json.dumps(first.rows)
