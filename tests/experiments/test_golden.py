"""Golden comparison: the sweep-based experiments must reproduce the
pre-refactor rows bit-for-bit.

``golden/golden_rows.json`` was captured by running the original
(serial-loop) e01–e14 implementations at the parameterisations below.
Every experiment now expands to fleet tasks, executes through
``FleetRunner``, and reduces task records back to rows — and the rows,
columns, and notes must all be exactly what the loops produced at the
same seeds.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import (
    e01_sender_gap,
    e02_receiver_gap,
    e03_sender_loss,
    e04_receiver_discard,
    e05_unbounded,
    e06_save_interval,
    e07_rekey_cost,
    e08_dual_reset,
    e09_prolonged_reset,
    e10_reorder,
    e11_double_reset,
    e12_reset_notice,
    e13_dpd,
    e14_loss_robustness,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "golden_rows.json"

#: The exact parameterisations the goldens were captured at.
CASES = {
    "e01": lambda **kw: e01_sender_gap.run(k=50, offsets=[0, 10, 24, 30, 45], **kw),
    "e02": lambda **kw: e02_receiver_gap.run(k=50, offsets=[0, 20, 30, 45], **kw),
    "e03": lambda **kw: e03_sender_loss.run(ks=[10, 40], offsets_per_k=3, **kw),
    "e04": lambda **kw: e04_receiver_discard.run(ks=[10, 40], offsets_per_k=3, **kw),
    "e05": lambda **kw: e05_unbounded.run(traffic_volumes=[100, 400], **kw),
    "e06": lambda **kw: e06_save_interval.run(ks=[10, 50], **kw),
    "e06b": lambda **kw: e06_save_interval.run_policy_table(ks=[25], **kw),
    "e07": lambda **kw: e07_rekey_cost.run(sa_counts=[1, 4], rtts=[0.001], **kw),
    "e08": lambda **kw: e08_dual_reset.run(k=25, **kw),
    "e09": lambda **kw: e09_prolonged_reset.run(
        outages=[0.05, 2.0], keep_alive_timeout=1.0, **kw
    ),
    "e10": lambda **kw: e10_reorder.run(
        window_sizes=[32], degrees=[1, 31, 32, 64], messages=800, **kw
    ),
    "e11": lambda **kw: e11_double_reset.run(k=25, **kw),
    "e12": lambda **kw: e12_reset_notice.run(
        pre_reset_messages=200, post_reset_messages=80, **kw
    ),
    "e13": lambda **kw: e13_dpd.run(cadences=[0.1, 1.0], **kw),
    "e14": lambda **kw: e14_loss_robustness.run(burst_levels=[0.0, 0.03], seeds=3, **kw),
}


def _golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _canonical(result):
    """JSON round-trip, so tuples/ints normalise exactly like the store."""
    return json.loads(json.dumps({
        "columns": result.columns,
        "rows": result.rows,
        "notes": result.notes,
    }))


@pytest.mark.parametrize("name", sorted(CASES))
def test_rows_match_pre_refactor_output(name):
    golden = _golden()[name]
    result = CASES[name]()
    actual = _canonical(result)
    assert actual["columns"] == golden["columns"]
    assert actual["rows"] == golden["rows"]
    assert actual["notes"] == golden["notes"]


def test_parallel_execution_matches_golden_rows():
    """jobs=2 runs through the multiprocessing pool yet reduces to the
    exact same rows (ordered imap + explicit per-task seeds)."""
    golden = _golden()["e13"]
    result = CASES["e13"](jobs=2)
    assert _canonical(result)["rows"] == golden["rows"]
