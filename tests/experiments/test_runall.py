"""Tests for the experiment registry/runner and cross-run determinism."""

import pytest

from repro.experiments import e05_unbounded, e08_dual_reset
from repro.experiments.runall import REGISTRY, run_all


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "e01", "e02", "e03", "e04", "e05", "e06", "e06b", "e07",
            "e08", "e09", "e10", "e11", "e12", "e13", "e14", "e15",
            "e16",
        }
        assert expected <= set(REGISTRY)

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            run_all(["e99"])

    def test_run_subset(self, capsys):
        results = run_all(["e08"])
        assert len(results) == 1
        assert results[0].experiment_id == "E8"
        out = capsys.readouterr().out
        assert "staggered-vulnerable" in out
        assert "completed in" in out


class TestDeterminism:
    def test_experiments_bit_identical_across_runs(self):
        first = e05_unbounded.run(traffic_volumes=[100, 300])
        second = e05_unbounded.run(traffic_volumes=[100, 300])
        assert first.rows == second.rows

    def test_e08_deterministic(self):
        assert e08_dual_reset.run(k=25).rows == e08_dual_reset.run(k=25).rows
