"""Shared fixtures for the test suite, plus the `slow` and shard gates."""

from __future__ import annotations

import pytest

from repro.ipsec.costs import CostModel
from repro.sim.engine import Engine


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked `slow` (fleet-scale campaigns)",
    )
    parser.addoption(
        "--shard",
        default=None,
        metavar="K/N",
        help="run only the K-th of N round-robin test shards (1-indexed), "
        "e.g. --shard 1/2; shards are disjoint and their union is the "
        "full suite",
    )


def _parse_shard(spec: str) -> tuple[int, int]:
    try:
        k_text, n_text = spec.split("/", 1)
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise pytest.UsageError(
            f"--shard expects K/N with integer K and N, got {spec!r}"
        ) from None
    if n < 1 or not 1 <= k <= n:
        raise pytest.UsageError(f"--shard expects 1 <= K <= N, got {spec!r}")
    return k, n


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    shard = config.getoption("--shard")
    if shard is not None:
        # Round-robin rather than contiguous split: expensive tests
        # cluster by module, and interleaving keeps the shards'
        # wall-clock close to equal without maintaining a cost model.
        k, n = _parse_shard(shard)
        kept = items[k - 1 :: n]
        deselected = [
            item for index, item in enumerate(items) if index % n != k - 1
        ]
        if deselected:
            config.hook.pytest_deselected(items=deselected)
        items[:] = kept
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow fleet-scale test; use --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def engine() -> Engine:
    """A fresh simulation engine."""
    return Engine()


@pytest.fixture
def paper_costs() -> CostModel:
    """The paper's Pentium-III cost constants."""
    return CostModel()


@pytest.fixture
def fast_costs() -> CostModel:
    """A cost model with convenient round numbers for timing assertions."""
    return CostModel(
        t_save=100e-6,
        t_send=4e-6,
        t_recv=4e-6,
        t_fetch=50e-6,
        t_dh_exp=1e-3,
        t_prf=10e-6,
        t_sig=0.5e-3,
    )
