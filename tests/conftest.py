"""Shared fixtures for the test suite, plus the `slow` marker gate."""

from __future__ import annotations

import pytest

from repro.ipsec.costs import CostModel
from repro.sim.engine import Engine


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked `slow` (fleet-scale campaigns)",
    )


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow fleet-scale test; use --runslow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def engine() -> Engine:
    """A fresh simulation engine."""
    return Engine()


@pytest.fixture
def paper_costs() -> CostModel:
    """The paper's Pentium-III cost constants."""
    return CostModel()


@pytest.fixture
def fast_costs() -> CostModel:
    """A cost model with convenient round numbers for timing assertions."""
    return CostModel(
        t_save=100e-6,
        t_send=4e-6,
        t_recv=4e-6,
        t_fetch=50e-6,
        t_dh_exp=1e-3,
        t_prf=10e-6,
        t_sig=0.5e-3,
    )
