"""Tests for repro.sim.metrics."""

import math

import pytest

from repro.sim.metrics import Counter, MetricSet, SummaryStat, TimeSeries


class TestCounter:
    def test_increment(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)


class TestSummaryStat:
    def test_empty(self):
        stat = SummaryStat("x")
        assert stat.mean == 0.0
        assert stat.variance == 0.0
        assert stat.as_dict()["min"] == 0.0

    def test_mean_min_max(self):
        stat = SummaryStat("x")
        for value in [1.0, 2.0, 3.0, 4.0]:
            stat.observe(value)
        assert stat.mean == pytest.approx(2.5)
        assert stat.minimum == 1.0
        assert stat.maximum == 4.0
        assert stat.total == 10.0

    def test_variance_welford(self):
        stat = SummaryStat("x")
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in values:
            stat.observe(value)
        assert stat.variance == pytest.approx(4.0)
        assert stat.stddev == pytest.approx(2.0)

    def test_numerically_stable_for_large_offsets(self):
        stat = SummaryStat("x")
        base = 1e12
        for value in [base + 1, base + 2, base + 3]:
            stat.observe(value)
        assert stat.variance == pytest.approx(2.0 / 3.0, rel=1e-6)

    def test_single_observation_variance_zero(self):
        stat = SummaryStat("x")
        stat.observe(5.0)
        assert stat.variance == 0.0
        assert not math.isnan(stat.stddev)

    def test_single_observation_as_dict(self):
        # One sample: min == max == mean == the value, spread is zero,
        # and nothing leaks the +/-inf initial sentinels.
        stat = SummaryStat("x")
        stat.observe(7.25)
        exported = stat.as_dict()
        assert exported["count"] == 1
        assert exported["min"] == exported["max"] == exported["mean"] == 7.25
        assert exported["stddev"] == 0.0
        assert all(math.isfinite(v) for v in exported.values())


class TestTimeSeries:
    def test_sampling(self):
        series = TimeSeries("x")
        series.sample(0.0, 1.0)
        series.sample(1.0, 2.0)
        assert series.values == [1.0, 2.0]
        assert series.times == [0.0, 1.0]
        assert series.last_value() == 2.0

    def test_last_value_default(self):
        assert TimeSeries("x").last_value(default=-1.0) == -1.0

    def test_empty_series_queries(self):
        # Every query on a never-sampled series answers without raising.
        series = TimeSeries("x")
        assert series.values == []
        assert series.times == []
        assert series.last_value() == 0.0
        assert series.samples == []


class TestMetricSet:
    def test_lazy_creation_and_reuse(self):
        metrics = MetricSet()
        metrics.counter("a").increment()
        metrics.counter("a").increment()
        assert metrics.count("a") == 2
        assert metrics.count("missing") == 0

    def test_as_dict_roundtrip(self):
        metrics = MetricSet()
        metrics.counter("sent").increment(3)
        metrics.stat("gap").observe(1.5)
        metrics.series("edge").sample(0.0, 10.0)
        exported = metrics.as_dict()
        assert exported["counters"]["sent"] == 3
        assert exported["stats"]["gap"]["count"] == 1
        assert exported["series"]["edge"] == [(0.0, 10.0)]

    def test_as_dict_same_name_across_kinds_does_not_collide(self):
        # A counter, a stat and a series may legitimately share one name
        # (e.g. "gap" counted and distributed); the export must keep all
        # three, each under its own kind, values intact.
        metrics = MetricSet()
        metrics.counter("gap").increment(2)
        metrics.stat("gap").observe(4.0)
        metrics.series("gap").sample(1.0, 8.0)
        exported = metrics.as_dict()
        assert exported["counters"]["gap"] == 2
        assert exported["stats"]["gap"]["mean"] == 4.0
        assert exported["series"]["gap"] == [(1.0, 8.0)]
        # And the namesakes are independent objects: touching one kind
        # never bleeds into another.
        metrics.counter("gap").increment(5)
        assert metrics.stat("gap").count == 1
        assert len(metrics.series("gap").samples) == 1
