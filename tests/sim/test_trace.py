"""Tests for repro.sim.trace."""

import pytest

from repro.sim.trace import NULL_TRACE, NullTraceRecorder, TraceRecorder


def make_recorder() -> TraceRecorder:
    recorder = TraceRecorder()
    recorder.record(0.0, "p", "send", seq=1)
    recorder.record(0.1, "q", "deliver", seq=1)
    recorder.record(0.2, "p", "send", seq=2)
    recorder.record(0.3, "q", "discard", seq=2, verdict="stale")
    return recorder


class TestRecording:
    def test_len_and_iter(self):
        recorder = make_recorder()
        assert len(recorder) == 4
        assert [r.kind for r in recorder] == ["send", "deliver", "send", "discard"]

    def test_disabled_recorder_drops(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record(0.0, "p", "send")
        assert len(recorder) == 0

    def test_clear(self):
        recorder = make_recorder()
        recorder.clear()
        assert len(recorder) == 0


class TestRingBuffer:
    def test_unbounded_default_never_drops(self):
        recorder = make_recorder()
        assert recorder.max_records is None
        assert recorder.dropped == 0
        assert len(recorder) == 4

    def test_bounded_keeps_newest(self):
        recorder = TraceRecorder(max_records=3)
        for i in range(5):
            recorder.record(float(i), "p", "send", seq=i)
        assert len(recorder) == 3
        assert [r.detail["seq"] for r in recorder] == [2, 3, 4]
        assert recorder.dropped == 2

    def test_bound_exactly_full_drops_nothing(self):
        recorder = TraceRecorder(max_records=4)
        for i in range(4):
            recorder.record(float(i), "p", "send", seq=i)
        assert len(recorder) == 4
        assert recorder.dropped == 0

    def test_queries_see_retained_tail_only(self):
        recorder = TraceRecorder(max_records=2)
        recorder.record(0.0, "p", "send", seq=1)
        recorder.record(0.1, "q", "deliver", seq=1)
        recorder.record(0.2, "p", "send", seq=2)
        assert recorder.count(kind="send") == 1
        assert recorder.last(kind="send").detail["seq"] == 2

    def test_clear_resets_dropped(self):
        recorder = TraceRecorder(max_records=1)
        recorder.record(0.0, "p", "a")
        recorder.record(0.1, "p", "b")
        assert recorder.dropped == 1
        recorder.clear()
        assert recorder.dropped == 0

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_records=0)
        with pytest.raises(ValueError):
            TraceRecorder(max_records=-5)


class TestQueries:
    def test_filter_by_source(self):
        assert len(make_recorder().filter(source="p")) == 2

    def test_filter_by_kind(self):
        assert len(make_recorder().filter(kind="send")) == 2

    def test_filter_by_predicate(self):
        matches = make_recorder().filter(
            predicate=lambda r: r.detail.get("seq") == 2
        )
        assert len(matches) == 2

    def test_count(self):
        assert make_recorder().count(source="q", kind="deliver") == 1

    def test_last(self):
        last = make_recorder().last(source="p")
        assert last is not None and last.detail["seq"] == 2

    def test_last_no_match_is_none(self):
        assert make_recorder().last(source="nobody") is None

    def test_render_contains_details(self):
        text = make_recorder().render()
        assert "deliver" in text and "seq=1" in text

    def test_render_limit(self):
        text = make_recorder().render(limit=1)
        assert "discard" in text and "deliver" not in text

    def test_str_format(self):
        record = make_recorder().records[0]
        assert str(record).startswith("[0.000000000] p send")


class TestNullTraceRecorder:
    def test_record_is_dropped(self):
        recorder = NullTraceRecorder()
        recorder.record(0.0, "p", "send", seq=1)
        assert len(recorder) == 0
        assert recorder.filter() == []
        assert recorder.last() is None

    def test_enabled_is_pinned_false(self):
        recorder = NullTraceRecorder()
        assert recorder.enabled is False
        recorder.enabled = False  # harmless no-op
        with pytest.raises(ValueError, match="cannot be enabled"):
            recorder.enabled = True
        assert recorder.enabled is False

    def test_shared_singleton_is_null(self):
        NULL_TRACE.record(1.0, "x", "y")
        assert len(NULL_TRACE) == 0
        assert isinstance(NULL_TRACE, TraceRecorder)

    def test_untraced_simulation_records_nothing(self):
        from repro.core.protocol import build_protocol

        harness = build_protocol(trace=NULL_TRACE)
        harness.sender.start_traffic(count=5)
        harness.run(until=1.0)
        assert harness.receiver.delivered_total == 5
        assert len(harness.engine.trace) == 0
