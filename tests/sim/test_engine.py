"""Tests for repro.sim.engine."""

import pytest

from repro.sim.engine import Engine, EngineEventLimitError


class TestScheduling:
    def test_call_later_advances_clock(self, engine):
        times = []
        engine.call_later(1.5, lambda: times.append(engine.now))
        engine.run()
        assert times == [1.5]
        assert engine.now == 1.5

    def test_call_at_absolute(self, engine):
        engine.call_later(1.0, lambda: None)
        engine.run()
        fired = []
        engine.call_at(2.0, fired.append, "x")
        engine.run()
        assert fired == ["x"]

    def test_cannot_schedule_in_past(self, engine):
        engine.call_later(1.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError, match="before current time"):
            engine.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ValueError, match="delay"):
            engine.call_later(-1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self, engine):
        order = []

        def first():
            order.append("first")
            engine.call_later(1.0, lambda: order.append("second"))

        engine.call_later(1.0, first)
        engine.run()
        assert order == ["first", "second"]
        assert engine.now == 2.0


class TestRunLimits:
    def test_until_stops_before_later_events(self, engine):
        fired = []
        engine.call_later(1.0, fired.append, 1)
        engine.call_later(5.0, fired.append, 5)
        engine.run(until=2.0)
        assert fired == [1]
        assert engine.now == 2.0  # clock advanced to the horizon
        engine.run()
        assert fired == [1, 5]

    def test_max_events(self, engine):
        fired = []
        for i in range(5):
            engine.call_later(float(i + 1), fired.append, i)
        count = engine.run(max_events=2)
        assert count == 2
        assert fired == [0, 1]

    def test_stop_inside_callback(self, engine):
        fired = []

        def stopper():
            fired.append("stop")
            engine.stop()

        engine.call_later(1.0, stopper)
        engine.call_later(2.0, fired.append, "after")
        engine.run()
        assert fired == ["stop"]

    def test_run_not_reentrant(self, engine):
        def nested():
            with pytest.raises(RuntimeError, match="not reentrant"):
                engine.run()

        engine.call_later(1.0, nested)
        engine.run()

    def test_counters(self, engine):
        engine.call_later(1.0, lambda: None)
        engine.call_later(2.0, lambda: None)
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0
        assert engine.events_processed == 2

    def test_empty_run_returns_zero(self, engine):
        assert engine.run() == 0


class TestPendingEventsAccounting:
    def test_cancel_then_run_accounting(self, engine):
        keep = []
        event = engine.call_later(1.0, keep.append, "cancelled")
        engine.call_later(2.0, keep.append, "kept")
        assert engine.pending_events == 2
        event.cancel()
        assert engine.pending_events == 1
        engine.run()
        assert keep == ["kept"]
        assert engine.pending_events == 0
        assert engine.events_processed == 1

    def test_cancel_inside_callback_updates_pending(self, engine):
        later = engine.call_later(5.0, lambda: None)
        engine.call_later(1.0, later.cancel)
        assert engine.pending_events == 2
        assert engine.run() == 1
        assert engine.pending_events == 0

    def test_until_keeps_future_events_pending(self, engine):
        engine.call_later(1.0, lambda: None)
        engine.call_later(5.0, lambda: None)
        engine.run(until=2.0)
        assert engine.pending_events == 1


class TestDeterminism:
    def test_identical_runs_identical_order(self):
        def run_once() -> list[int]:
            engine = Engine()
            order: list[int] = []
            for i in range(20):
                engine.call_later((i % 5) * 0.25, order.append, i)
            engine.run()
            return order

        assert run_once() == run_once()


class TestHardEventLimit:
    def _self_rescheduling(self, engine: Engine) -> None:
        def tick() -> None:
            engine.call_later(1e-9, tick)

        engine.call_later(0.0, tick)

    def test_runaway_schedule_raises_clear_error(self):
        engine = Engine(hard_event_limit=100)
        self._self_rescheduling(engine)
        with pytest.raises(EngineEventLimitError, match="hard_event_limit=100"):
            engine.run()
        assert engine.events_processed == 101

    def test_error_suggests_the_likely_cause(self):
        engine = Engine(hard_event_limit=10)
        self._self_rescheduling(engine)
        with pytest.raises(EngineEventLimitError, match="self-rescheduling"):
            engine.run()

    def test_no_limit_by_default(self, engine):
        for i in range(1000):
            engine.call_later(i * 1e-6, lambda: None)
        assert engine.run() == 1000

    def test_run_below_the_limit_is_unaffected(self):
        engine = Engine(hard_event_limit=1000)
        fired = []
        for i in range(5):
            engine.call_later(i * 1e-6, fired.append, i)
        engine.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_class_default_applies_to_new_engines(self):
        previous = Engine.default_hard_event_limit
        Engine.default_hard_event_limit = 50
        try:
            engine = Engine()
            assert engine.hard_event_limit == 50
            self._self_rescheduling(engine)
            with pytest.raises(EngineEventLimitError):
                engine.run()
        finally:
            Engine.default_hard_event_limit = previous

    def test_explicit_limit_overrides_class_default(self):
        previous = Engine.default_hard_event_limit
        Engine.default_hard_event_limit = 50
        try:
            assert Engine(hard_event_limit=7).hard_event_limit == 7
        finally:
            Engine.default_hard_event_limit = previous

    def test_limit_counts_lifetime_events(self):
        engine = Engine(hard_event_limit=10)
        for i in range(8):
            engine.call_later(i * 1e-6, lambda: None)
        engine.run()
        for i in range(8):
            engine.call_later(1.0 + i * 1e-6, lambda: None)
        with pytest.raises(EngineEventLimitError):
            engine.run()
