"""Tests for repro.sim.process (SimProcess and Timer)."""

import pytest

from repro.sim.process import SimProcess, Timer


class TestSimProcess:
    def test_now_tracks_engine(self, engine):
        process = SimProcess(engine, "x")
        engine.call_later(3.0, lambda: None)
        engine.run()
        assert process.now == 3.0

    def test_trace_records_with_name(self, engine):
        process = SimProcess(engine, "worker")
        process.trace("did_thing", value=7)
        record = engine.trace.last(source="worker")
        assert record is not None
        assert record.kind == "did_thing"
        assert record.detail["value"] == 7

    def test_call_later_helper(self, engine):
        process = SimProcess(engine, "x")
        fired = []
        process.call_later(1.0, fired.append, "ok")
        engine.run()
        assert fired == ["ok"]


class TestTimer:
    def test_ticks_at_interval(self, engine):
        ticks = []
        timer = Timer(engine, 1.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_first_delay_override(self, engine):
        ticks = []
        timer = Timer(engine, 1.0, lambda: ticks.append(engine.now))
        timer.start(first_delay=0.25)
        engine.run(until=2.5)
        assert ticks == [0.25, 1.25, 2.25]

    def test_stop(self, engine):
        ticks = []
        timer = Timer(engine, 1.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.run(until=1.5)
        timer.stop()
        engine.run(until=5.0)
        assert ticks == [1.0]
        assert not timer.running

    def test_stop_from_inside_callback_stays_stopped(self, engine):
        """Regression: a callback calling stop() must not be re-armed."""
        ticks = []
        timer = Timer(engine, 1.0, lambda: (ticks.append(engine.now), timer.stop()))
        timer.start()
        engine.run(until=10.0)
        assert ticks == [1.0]

    def test_restart_from_inside_callback_respected(self, engine):
        ticks = []

        def callback():
            ticks.append(engine.now)
            if len(ticks) == 1:
                timer.start(first_delay=0.5)  # take control once

        timer = Timer(engine, 1.0, callback)
        timer.start()
        engine.run(until=3.0)
        assert ticks == [1.0, 1.5, 2.5]

    def test_reset_restarts_period(self, engine):
        ticks = []
        timer = Timer(engine, 1.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.call_later(0.75, timer.reset)
        engine.run(until=2.0)
        assert ticks == [1.75]

    def test_reset_when_stopped_is_noop(self, engine):
        timer = Timer(engine, 1.0, lambda: None)
        timer.reset()
        assert not timer.running

    def test_rejects_bad_interval(self, engine):
        with pytest.raises(ValueError, match="interval"):
            Timer(engine, 0.0, lambda: None)
