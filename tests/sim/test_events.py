"""Tests for repro.sim.events."""

import pytest

from repro.sim.events import PRIORITY_EARLY, PRIORITY_LATE, EventQueue


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, order.append, (2,))
        queue.push(1.0, order.append, (1,))
        queue.push(3.0, order.append, (3,))
        while queue:
            queue.pop().fire()
        assert order == [1, 2, 3]

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        order = []
        for tag in "abc":
            queue.push(1.0, order.append, (tag,))
        while queue:
            queue.pop().fire()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, ("normal",))
        queue.push(1.0, order.append, ("late",), priority=PRIORITY_LATE)
        queue.push(1.0, order.append, ("early",), priority=PRIORITY_EARLY)
        while queue:
            queue.pop().fire()
        assert order == ["early", "normal", "late"]


class TestCancellation:
    def test_cancelled_event_not_popped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, fired.append, (1,))
        queue.push(2.0, fired.append, (2,))
        event.cancel()
        while queue:
            queue.pop().fire()
        assert fired == [2]

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        queue = EventQueue()
        with pytest.raises(IndexError):
            queue.pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert not queue
