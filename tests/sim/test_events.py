"""Tests for repro.sim.events."""

import random

import pytest

from repro.sim.events import (
    PRIORITY_EARLY,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    EventQueue,
    HeapEventQueue,
)


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, order.append, (2,))
        queue.push(1.0, order.append, (1,))
        queue.push(3.0, order.append, (3,))
        while queue:
            queue.pop().fire()
        assert order == [1, 2, 3]

    def test_fifo_among_simultaneous(self):
        queue = EventQueue()
        order = []
        for tag in "abc":
            queue.push(1.0, order.append, (tag,))
        while queue:
            queue.pop().fire()
        assert order == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, ("normal",))
        queue.push(1.0, order.append, ("late",), priority=PRIORITY_LATE)
        queue.push(1.0, order.append, ("early",), priority=PRIORITY_EARLY)
        while queue:
            queue.pop().fire()
        assert order == ["early", "normal", "late"]


class TestCancellation:
    def test_cancelled_event_not_popped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1.0, fired.append, (1,))
        queue.push(2.0, fired.append, (2,))
        event.cancel()
        while queue:
            queue.pop().fire()
        assert fired == [2]

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        queue = EventQueue()
        with pytest.raises(IndexError):
            queue.pop()

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 5.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert not queue

    def test_cancel_after_clear_is_harmless(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.clear()
        event.cancel()
        queue.push(2.0, lambda: None)
        assert len(queue) == 1


class TestLiveCounterAccounting:
    """len()/bool() are backed by a live counter, not a heap scan — these
    pin the accounting through every cancel/pop interleaving."""

    def test_cancel_then_pop_accounting(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        queue.push(3.0, lambda: None)
        assert len(queue) == 3
        first.cancel()
        assert len(queue) == 2
        assert queue.pop().time == 2.0
        assert len(queue) == 1
        assert queue.pop().time == 3.0
        assert len(queue) == 0
        assert not queue
        with pytest.raises(IndexError):
            queue.pop()

    def test_double_cancel_decrements_once(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_is_a_no_op(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.pop() is event
        event.cancel()  # already fired/removed: must not corrupt the counter
        assert len(queue) == 1
        assert queue.pop().time == 2.0
        assert len(queue) == 0

    def test_pop_next_until_leaves_event_queued(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        assert queue.pop_next(until=1.0) is None
        assert len(queue) == 1
        event = queue.pop_next(until=5.0)
        assert event is not None and event.time == 5.0
        assert len(queue) == 0

    def test_pop_next_skips_cancelled_prefix(self):
        queue = EventQueue()
        dead = [queue.push(float(i), lambda: None) for i in range(3)]
        queue.push(10.0, lambda: None)
        for event in dead:
            event.cancel()
        survivor = queue.pop_next()
        assert survivor is not None and survivor.time == 10.0
        assert queue.pop_next() is None


class TestHeapCompaction:
    """Compaction is a heap-core concern (the wheel reclaims dead entries
    at slot drain); these tests pin the HeapEventQueue internals."""

    def test_compaction_drops_dead_entries(self):
        queue = HeapEventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(200)]
        for event in events[:150]:
            event.cancel()
        # The heap crossed the dead-fraction threshold mid-way through the
        # cancels, so it must have compacted: the invariant is that dead
        # entries never exceed the compaction fraction of a large heap.
        assert len(queue) == 50
        heap_size = len(queue._heap)
        assert heap_size < 200
        assert heap_size - 50 <= heap_size * HeapEventQueue.COMPACT_FRACTION

    def test_small_heaps_are_not_compacted(self):
        queue = HeapEventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(10)]
        for event in events[:9]:
            event.cancel()
        assert len(queue._heap) == 10  # below COMPACT_MIN: lazy removal only
        assert len(queue) == 1

    def test_compaction_preserves_pop_order(self):
        queue = HeapEventQueue()
        events = [queue.push(float(i % 7), lambda: None) for i in range(300)]
        survivors = [e for i, e in enumerate(events) if i % 4 == 0]
        for i, event in enumerate(events):
            if i % 4:
                event.cancel()
        popped = []
        while queue:
            popped.append(queue.pop())
        expected = sorted(
            survivors, key=lambda e: (e.time, e.priority, e.sequence)
        )
        assert popped == expected


class TestRandomizedOrderingContract:
    """Fuzz the documented ordering contract: events fire in
    ``(time, priority, sequence)`` order — FIFO among equal-priority
    simultaneous events — with cancelled events silently absent."""

    PRIORITIES = (PRIORITY_EARLY, PRIORITY_NORMAL, PRIORITY_LATE)

    @pytest.mark.parametrize("seed", range(8))
    def test_firing_order_matches_contract(self, seed):
        rng = random.Random(seed)
        queue = EventQueue()
        fired: list[int] = []
        scheduled = []
        for tag in range(300):
            event = queue.push(
                time=float(rng.randrange(5)),  # heavy same-time collisions
                callback=fired.append,
                args=(tag,),
                priority=rng.choice(self.PRIORITIES),
            )
            scheduled.append((event, tag))
            # Cancel a random earlier survivor now and then, so dead
            # entries interleave with live ones throughout the heap.
            if rng.random() < 0.3:
                victim, _ = rng.choice(scheduled)
                victim.cancel()
        while queue:
            queue.pop().fire()
        expected = [
            tag
            for event, tag in sorted(
                scheduled,
                key=lambda pair: (
                    pair[0].time, pair[0].priority, pair[0].sequence
                ),
            )
            if not event.cancelled
        ]
        assert fired == expected
