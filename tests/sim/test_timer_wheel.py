"""Wheel-adversarial ordering fixtures, run against BOTH event cores.

The timer wheel must be observationally identical to the plain heap core:
same pop order, same ``len()``, same ``peek_time``, for every schedule —
including the ones a wheel is structurally tempted to get wrong.  Each
test here targets one such shape:

* same-tick FIFO across a cascade boundary (bucketing must never reorder
  equal-key entries),
* timers exactly at ``pop_next(until=...)`` and exactly on the front
  window boundary,
* far-future timers that land in every wheel level and the overflow list
  (including ``inf``, which cannot be bucketed at all),
* schedule-cancel-reschedule storms (dead entries interleaved with live
  ones in the same slots),
* an 80-seed randomized lockstep fuzzer driving both cores through the
  identical op sequence and requiring identical observable streams.

Plus the ``clear()`` bookkeeping pins: clear must reset the window and
live/dead counters and cancel-detach every pending handle, so a queue is
fully reusable afterwards.
"""

import random

import pytest

from repro.sim.events import (
    _FRONT_SPAN,
    _LEVELS,
    PRIORITY_EARLY,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    TICK_HZ,
    EVENT_CORES,
    EventQueue,
    HeapEventQueue,
    make_event_queue,
)

#: Seconds spanned by the wheel's front heap (the level-0 window).
FRONT_SECONDS = _FRONT_SPAN / TICK_HZ  # 8.0

#: One time per structural region of the wheel: front heap, levels 1-3,
#: and the beyond-horizon overflow list.
REGION_TIMES = (0.5, 100.0, 1.0e4, 1.0e6, 9.0e9)


@pytest.fixture(params=sorted(EVENT_CORES))
def core(request):
    """Both registered event cores; every test in this file runs on each."""
    return request.param


def drain(queue):
    """Pop everything and return the observable (time, prio, seq, tag) rows."""
    rows = []
    while True:
        event = queue.pop_next()
        if event is None:
            return rows
        rows.append(
            (event.time, event.priority, event.sequence, event.args[0])
        )


class TestCascadeBoundaryFifo:
    def test_same_tick_fifo_across_cascade(self, core):
        # 60 events at one instant beyond the front window (so the wheel
        # buckets them and later cascades the slot), interleaved with
        # near and far traffic.  FIFO among the equal-key events must
        # survive the bucket -> heapify round trip.
        queue = make_event_queue(core)
        instant = 2.5 * FRONT_SECONDS
        tags = []
        for i in range(60):
            queue.push(instant, lambda: None, (("same", i),))
            tags.append(("same", i))
            if i % 3 == 0:
                queue.push(1.0 + i * 1e-3, lambda: None, (("near", i),))
            if i % 7 == 0:
                queue.push(instant * 10, lambda: None, (("far", i),))
        rows = drain(queue)
        same = [tag for _, _, _, tag in rows if tag[0] == "same"]
        assert same == tags
        assert rows == sorted(rows, key=lambda r: (r[0], r[1], r[2]))

    def test_priorities_hold_across_cascade(self, core):
        queue = make_event_queue(core)
        instant = 3.0 * FRONT_SECONDS
        queue.push(instant, lambda: None, ("normal",), priority=PRIORITY_NORMAL)
        queue.push(instant, lambda: None, ("late",), priority=PRIORITY_LATE)
        queue.push(instant, lambda: None, ("early",), priority=PRIORITY_EARLY)
        assert [tag for _, _, _, tag in drain(queue)] \
            == ["early", "normal", "late"]

    def test_window_boundary_times_stay_ordered(self, core):
        # Exactly on, just below, and just above the 8 s front boundary:
        # the wheel routes these to different structures (front heap vs
        # level-1 slot) but the pop order must be seamless.
        queue = make_event_queue(core)
        tick = 1.0 / TICK_HZ
        for tag, time in [
            ("above", FRONT_SECONDS + tick),
            ("on", FRONT_SECONDS),
            ("below", FRONT_SECONDS - tick),
        ]:
            queue.push(time, lambda: None, (tag,))
        assert [tag for _, _, _, tag in drain(queue)] \
            == ["below", "on", "above"]


class TestUntilBoundary:
    def test_event_exactly_at_until_is_popped(self, core):
        queue = make_event_queue(core)
        queue.push(7.0, lambda: None, ("at",))
        queue.push(7.0 + 1.0 / TICK_HZ, lambda: None, ("after",))
        event = queue.pop_next(until=7.0)
        assert event is not None and event.args == ("at",)
        assert queue.pop_next(until=7.0) is None
        assert len(queue) == 1  # the later event stayed queued

    def test_until_at_far_event_after_window_advance(self, core):
        # Reaching the event forces the wheel to advance its window and
        # cascade; `until` exactly at the event's time must still be
        # inclusive, and one tick earlier must leave it queued.
        queue = make_event_queue(core)
        far = 5.0 * FRONT_SECONDS
        queue.push(far, lambda: None, ("far",))
        assert queue.pop_next(until=far - 1.0 / TICK_HZ) is None
        assert len(queue) == 1
        event = queue.pop_next(until=far)
        assert event is not None and event.time == far
        assert len(queue) == 0

    def test_peek_time_after_denied_until(self, core):
        queue = make_event_queue(core)
        queue.push(3.0 * FRONT_SECONDS, lambda: None, ("x",))
        assert queue.pop_next(until=1.0) is None
        assert queue.peek_time() == 3.0 * FRONT_SECONDS


class TestFarFutureTimers:
    def test_every_wheel_region_pops_in_order(self, core):
        queue = make_event_queue(core)
        rng = random.Random(11)
        times = [t for t in REGION_TIMES for _ in range(5)]
        rng.shuffle(times)
        for i, time in enumerate(times):
            queue.push(time, lambda: None, (i,))
        rows = drain(queue)
        assert [row[0] for row in rows] == sorted(times)
        assert rows == sorted(rows, key=lambda r: (r[0], r[1], r[2]))

    def test_infinity_fires_last(self, core):
        # inf cannot be converted to a tick; the wheel must park it in
        # overflow rather than crash, and it sorts after everything finite.
        queue = make_event_queue(core)
        queue.push(float("inf"), lambda: None, ("inf",))
        queue.push(9.0e9, lambda: None, ("huge",))
        queue.push(0.25, lambda: None, ("soon",))
        assert [tag for _, _, _, tag in drain(queue)] \
            == ["soon", "huge", "inf"]

    def test_post_reaches_every_region(self, core):
        queue = make_event_queue(core)
        fired = []
        for i, time in enumerate(REGION_TIMES):
            queue.post(time, fired.append, (i,))
        while queue:
            queue.pop().fire()
        assert fired == list(range(len(REGION_TIMES)))


class TestRescheduleStorm:
    def test_schedule_cancel_reschedule_storm(self, core):
        # DPD-reset shape, but hopping across wheel regions: each round
        # cancels the previous handle and re-arms at a different region.
        # Exactly one survivor per chain may fire, in global key order.
        queue = make_event_queue(core)
        rng = random.Random(23)
        chains = {}
        for round_no in range(600):
            chain = rng.randrange(40)
            if chain in chains:
                chains[chain][0].cancel()
            time = rng.choice(REGION_TIMES) + rng.random()
            event = queue.push(time, lambda: None, ((chain, round_no),))
            chains[chain] = (event, time)
        assert len(queue) == len(chains)
        rows = drain(queue)
        assert len(rows) == len(chains)
        assert rows == sorted(rows, key=lambda r: (r[0], r[1], r[2]))
        survivors = {tag[0] for _, _, _, tag in rows}
        assert survivors == set(chains)

    def test_storm_live_counter_stays_exact(self, core):
        queue = make_event_queue(core)
        events = []
        for i in range(500):
            events.append(queue.push(0.1 + (i % 9) * FRONT_SECONDS,
                                     lambda: None, (i,)))
            if i % 2:
                events[i // 2].cancel()
        expected = sum(1 for e in events if not e.cancelled)
        assert len(queue) == expected
        assert len(drain(queue)) == expected


class TestCoreParityFuzzer:
    """Drive both cores through an identical op stream in lockstep.

    Every observable — pop results, denied pops, peek times, lengths —
    must match exactly.  DELTAS deliberately includes the 8 s window
    boundary and a beyond-horizon time so the stream constantly crosses
    wheel structures the heap core does not have.
    """

    DELTAS = (0.0, 1e-6, 0.5, 7.999999, 8.0, 9.5, 300.0, 2.0e4, 9.0e9)
    PRIORITIES = (PRIORITY_EARLY, PRIORITY_NORMAL, PRIORITY_LATE)

    @pytest.mark.parametrize("seed", range(80))
    def test_lockstep_streams_identical(self, seed):
        rng = random.Random(seed)
        wheel, heap = EventQueue(), HeapEventQueue()
        handles = []  # (wheel_event, heap_event) pairs, index-aligned
        streams = ([], [])
        cursor = 0.0
        for _ in range(300):
            op = rng.random()
            if op < 0.45:
                time = cursor + rng.choice(self.DELTAS)
                priority = rng.choice(self.PRIORITIES)
                tag = len(handles)
                pair = tuple(
                    q.push(time, lambda: None, (tag,), priority=priority)
                    for q in (wheel, heap)
                )
                handles.append(pair)
            elif op < 0.60:
                time = cursor + rng.choice(self.DELTAS)
                for q in (wheel, heap):
                    q.post(time, lambda: None, ("post",))
            elif op < 0.75 and handles:
                for event in rng.choice(handles):
                    event.cancel()
            elif op < 0.90:
                until = (
                    None if rng.random() < 0.3
                    else cursor + rng.choice(self.DELTAS)
                )
                for stream, q in zip(streams, (wheel, heap)):
                    event = q.pop_next(until=until)
                    if event is None:
                        stream.append(None)
                    else:
                        stream.append(
                            (event.time, event.priority, event.sequence,
                             event.args[0])
                        )
                        cursor = max(cursor, event.time)
            else:
                for stream, q in zip(streams, (wheel, heap)):
                    stream.append(("peek", q.peek_time(), len(q)))
            assert len(wheel) == len(heap)
        for stream, q in zip(streams, (wheel, heap)):
            while True:
                event = q.pop_next()
                if event is None:
                    break
                stream.append(
                    (event.time, event.priority, event.sequence,
                     event.args[0])
                )
        assert streams[0] == streams[1]


class TestClearBookkeeping:
    """``clear()`` must leave the queue indistinguishable from a fresh
    one (modulo the monotone sequence counter and pool counters)."""

    def test_clear_resets_live_and_dead_counters(self, core):
        queue = make_event_queue(core)
        events = [
            queue.push(0.1 + (i % 7) * FRONT_SECONDS, lambda: None, (i,))
            for i in range(100)
        ]
        for event in events[:30]:
            event.cancel()
        queue.clear()
        assert len(queue) == 0
        assert not queue
        assert queue._live == 0
        assert queue._dead == 0
        assert queue.peek_time() is None
        assert queue.pop_next() is None

    def test_clear_cancel_detaches_retained_handles(self, core):
        queue = make_event_queue(core)
        handles = [
            queue.push(0.5 + i * FRONT_SECONDS, lambda: None, (i,))
            for i in range(5)
        ]
        queue.clear()
        # A handle retained across the clear tells the truth: the event
        # will never fire.  A late cancel must stay a no-op rather than
        # driving the live counter negative.
        for handle in handles:
            assert handle.cancelled
            handle.cancel()
        assert len(queue) == 0
        queue.push(1.0, lambda: None, ("fresh",))
        assert len(queue) == 1

    def test_clear_resets_window_for_reuse(self, core):
        # Park the window deep into the schedule, then clear: an early
        # push on the reused queue must be reachable again (a stale
        # window base would bucket it as "in the past").
        queue = make_event_queue(core)
        queue.push(1.0e6, lambda: None, ("far",))
        assert queue.pop_next(until=1.0e6 - 1.0) is None  # advances window
        queue.clear()
        queue.push(0.25, lambda: None, ("early",))
        assert queue.peek_time() == 0.25
        event = queue.pop_next()
        assert event is not None and event.args == ("early",)

    def test_clear_empties_every_wheel_structure(self):
        queue = EventQueue()
        for time in REGION_TIMES + (float("inf"),):
            queue.push(time, lambda: None, (time,))
        queue.clear()
        assert queue._front == []
        assert queue._overflow == []
        assert queue._maps == [0] * _LEVELS
        assert queue._window_base == 0

    def test_reuse_after_clear_preserves_ordering(self, core):
        queue = make_event_queue(core)
        for i in range(50):
            queue.push(float(i % 5), lambda: None, (("old", i),))
        queue.clear()
        for i in range(50):
            queue.push(float((i * 7) % 13) + 0.5, lambda: None, (("new", i),))
        rows = drain(queue)
        assert len(rows) == 50
        assert all(tag[0] == "new" for _, _, _, tag in rows)
        assert rows == sorted(rows, key=lambda r: (r[0], r[1], r[2]))


class TestPoolCounters:
    def test_pool_stats_shape_matches_across_cores(self, core):
        queue = make_event_queue(core)
        stats = queue.pool_stats()
        assert set(stats) == {
            "pool_hits", "pool_misses", "pool_recycled", "pool_size",
        }
        assert all(value >= 0 for value in stats.values())

    def test_wheel_recycles_cancelled_handles(self):
        # Cancel events and force their slot to drain: the handles are
        # unreferenced by then, so the wheel must recycle rather than
        # reallocate on the next push.
        queue = EventQueue()
        for i in range(100):
            queue.push(10.0 + i * 1e-3, lambda: None, (i,)).cancel()
        queue.push(20.0, lambda: None, ("live",))
        assert queue.pop_next().args == ("live",)
        stats = queue.pool_stats()
        assert stats["pool_recycled"] >= 100
        assert stats["pool_size"] >= 100
        misses_before = queue.pool_misses
        queue.push(1.0, lambda: None, ("reused",))
        assert queue.pool_misses == misses_before  # served from the pool
        assert queue.pool_stats()["pool_hits"] >= 1

    def test_retained_handle_is_never_recycled(self):
        queue = EventQueue()
        held = queue.push(10.0, lambda: None, ("held",))
        held.cancel()
        queue.push(20.0, lambda: None, ("live",))
        assert queue.pop_next().args == ("live",)
        # The external reference vetoed recycling: the handle still
        # introspects truthfully instead of aliasing a new incarnation.
        assert held.cancelled
        assert held.time == 10.0
        assert all(event is not held for event in queue._free)
