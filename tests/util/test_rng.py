"""Tests for repro.util.rng."""

import random

import pytest

from repro.util.rng import make_rng, spawn_rng


class TestMakeRng:
    def test_none_gives_default_seed_deterministically(self):
        a = make_rng(None)
        b = make_rng(None)
        assert a.random() == b.random()

    def test_int_seed_is_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_distinct_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_existing_generator_passthrough(self):
        rng = random.Random(7)
        assert make_rng(rng) is rng

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="expected int seed"):
            make_rng("seed")  # type: ignore[arg-type]


class TestSpawnRng:
    def test_same_label_same_stream(self):
        a = spawn_rng(random.Random(5), "link")
        b = spawn_rng(random.Random(5), "link")
        assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]

    def test_different_labels_differ(self):
        parent = random.Random(5)
        a = spawn_rng(parent, "link")
        parent2 = random.Random(5)
        b = spawn_rng(parent2, "adversary")
        assert a.random() != b.random()

    def test_child_independent_of_parent_consumption(self):
        parent = random.Random(9)
        child = spawn_rng(parent, "x")
        first = child.random()
        parent.random()  # consuming the parent must not affect the child
        assert child.random() != first  # child stream advances on its own
