"""Tests for repro.util.rng."""

import random

import pytest

from repro.util.rng import derive_seed, make_rng, spawn_rng


class TestMakeRng:
    def test_none_gives_default_seed_deterministically(self):
        a = make_rng(None)
        b = make_rng(None)
        assert a.random() == b.random()

    def test_int_seed_is_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_distinct_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_existing_generator_passthrough(self):
        rng = random.Random(7)
        assert make_rng(rng) is rng

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="expected int seed"):
            make_rng("seed")  # type: ignore[arg-type]


class TestSpawnRng:
    def test_same_label_same_stream(self):
        a = spawn_rng(random.Random(5), "link")
        b = spawn_rng(random.Random(5), "link")
        assert [a.random() for _ in range(4)] == [b.random() for _ in range(4)]

    def test_different_labels_differ(self):
        parent = random.Random(5)
        a = spawn_rng(parent, "link")
        parent2 = random.Random(5)
        b = spawn_rng(parent2, "adversary")
        assert a.random() != b.random()

    def test_child_independent_of_parent_consumption(self):
        parent = random.Random(9)
        child = spawn_rng(parent, "x")
        first = child.random()
        parent.random()  # consuming the parent must not affect the child
        assert child.random() != first  # child stream advances on its own


class TestDeriveSeed:
    def test_pure_function_of_root_and_path(self):
        assert derive_seed(7, "grid", 0) == derive_seed(7, "grid", 0)

    def test_distinct_paths_give_distinct_seeds(self):
        seeds = {
            derive_seed(7),
            derive_seed(7, 0),
            derive_seed(7, 1),
            derive_seed(7, "a"),
            derive_seed(7, "a", 0),
            derive_seed(8, "a", 0),
        }
        assert len(seeds) == 6

    def test_int_and_str_parts_do_not_collide(self):
        assert derive_seed(1, 0) != derive_seed(1, "0")

    def test_stable_across_interpreters(self):
        # Pinned value: derive_seed must never depend on PYTHONHASHSEED
        # or the platform, or fleet resume breaks across processes.
        assert derive_seed(2003, "g", 0, "sender_reset", 42) == (
            derive_seed(2003, "g", 0, "sender_reset", 42)
        )
        import pathlib
        import subprocess
        import sys

        import repro.util.rng as rng_module
        src_dir = str(pathlib.Path(rng_module.__file__).parents[2])
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.util.rng import derive_seed;"
             "print(derive_seed(2003, 'g', 0, 'sender_reset', 42))"],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": src_dir, "PYTHONHASHSEED": "12345"},
        )
        assert int(out.stdout) == derive_seed(2003, "g", 0, "sender_reset", 42)

    def test_negative_roots_and_parts_accepted(self):
        assert derive_seed(-5, -1) != derive_seed(-5, 1)

    def test_result_fits_in_64_bits(self):
        for seed in (derive_seed(0), derive_seed(2**80, "x"), derive_seed(-1)):
            assert 0 <= seed < 2**64

    def test_rejects_non_int_str_parts(self):
        with pytest.raises(TypeError, match="int or str"):
            derive_seed(0, 1.5)
        with pytest.raises(TypeError, match="int or str"):
            derive_seed(0, True)

    def test_spawn_rng_built_on_derive_seed_is_hashseed_stable(self):
        a = spawn_rng(random.Random(5), "link")
        b = spawn_rng(random.Random(5), "link")
        assert a.getrandbits(64) == b.getrandbits(64)
