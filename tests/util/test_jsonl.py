"""Tests for repro.util.jsonl — the shared salvage-and-skip line walk."""

import json

from repro.util.jsonl import iter_jsonl_objects, salvage_objects


class TestSalvageObjects:
    def test_clean_line_yields_one_object(self):
        values, torn = salvage_objects('{"a": 1}')
        assert values == [{"a": 1}]
        assert torn is False

    def test_torn_tail_is_dropped(self):
        values, torn = salvage_objects('{"a": 1}{"b": 2, "c"')
        assert values == [{"a": 1}]
        assert torn is True

    def test_glued_objects_both_salvaged(self):
        values, torn = salvage_objects('{"a": 1}{"b": 2}')
        assert values == [{"a": 1}, {"b": 2}]
        assert torn is False

    def test_leading_garbage_flags_torn(self):
        values, torn = salvage_objects('c": 3}{"a": 1}')
        # The leading fragment has a brace, so the walk tries (and
        # rejects) it before finding the complete object.
        assert values == [{"a": 1}]
        assert torn is True

    def test_no_object_at_all(self):
        values, torn = salvage_objects("garbage")
        assert values == []
        assert torn is True

    def test_empty_line(self):
        assert salvage_objects("") == ([], False)

    def test_nested_objects_not_double_counted(self):
        values, torn = salvage_objects('{"a": {"b": 1}}')
        assert values == [{"a": {"b": 1}}]
        assert torn is False


class TestIterJsonlObjects:
    def write(self, tmp_path, text):
        path = tmp_path / "data.jsonl"
        path.write_text(text, encoding="utf-8")
        return path

    def test_clean_file(self, tmp_path):
        path = self.write(tmp_path, '{"a": 1}\n{"b": 2}\n')
        assert list(iter_jsonl_objects(path)) == [{"a": 1}, {"b": 2}]

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_jsonl_objects(tmp_path / "absent.jsonl")) == []

    def test_torn_tail_loses_one_line_not_the_file(self, tmp_path):
        path = self.write(tmp_path, '{"a": 1}\n{"b": 2}\n{"c": 3, "d"')
        errors: list[str] = []
        assert list(iter_jsonl_objects(path, errors=errors)) == [
            {"a": 1}, {"b": 2},
        ]
        assert len(errors) == 1
        assert errors[0].endswith(":3: torn line (0 object(s) salvaged)")

    def test_torn_middle_line_keeps_later_lines(self, tmp_path):
        path = self.write(
            tmp_path, '{"a": 1}\n{"tor\n{"b": 2}\n'
        )
        errors: list[str] = []
        assert list(iter_jsonl_objects(path, errors=errors)) == [
            {"a": 1}, {"b": 2},
        ]
        assert len(errors) == 1 and ":2:" in errors[0]

    def test_glued_line_salvages_every_object(self, tmp_path):
        path = self.write(tmp_path, '{"a": 1}{"b": 2}\n')
        errors: list[str] = []
        assert list(iter_jsonl_objects(path, errors=errors)) == [
            {"a": 1}, {"b": 2},
        ]
        assert errors == []  # both objects intact: glued, not torn

    def test_blank_lines_skipped(self, tmp_path):
        path = self.write(tmp_path, '\n{"a": 1}\n\n')
        assert list(iter_jsonl_objects(path)) == [{"a": 1}]

    def test_non_object_values_pass_through(self, tmp_path):
        path = self.write(tmp_path, "[1, 2]\n3\n")
        assert list(iter_jsonl_objects(path)) == [[1, 2], 3]

    def test_matches_json_loads_on_clean_lines(self, tmp_path):
        lines = [{"n": i, "payload": list(range(i))} for i in range(5)]
        path = self.write(
            tmp_path, "".join(json.dumps(line) + "\n" for line in lines)
        )
        assert list(iter_jsonl_objects(path)) == lines
