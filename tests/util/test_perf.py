"""Tests for repro.perf (timers, normalization, and the baseline gate)."""

import json

import pytest

from repro import perf
from repro.perf import (
    RATE_SCHEMA,
    GateResult,
    RateReport,
    Stopwatch,
    check_report,
    current_git_sha,
    load_benchmark_json,
    load_benchmark_provenance,
    machine_score,
    measure_rate,
)


class TestStopwatch:
    def test_measures_elapsed_time(self):
        with Stopwatch() as clock:
            pass
        assert clock.elapsed >= 0

    def test_running_read_is_monotonic(self):
        with Stopwatch() as clock:
            first = clock.elapsed
            second = clock.elapsed
            assert second >= first

    def test_unstarted_read_raises(self):
        with pytest.raises(RuntimeError, match="not been started"):
            Stopwatch().elapsed

    def test_reusable(self):
        clock = Stopwatch()
        with clock:
            pass
        first = clock.elapsed
        with clock:
            pass
        assert clock.elapsed is not None
        assert first is not None


class TestMachineScore:
    def test_positive_and_cached(self):
        first = machine_score()
        assert first > 0
        assert machine_score() == first  # cached, not re-measured

    def test_recalibrate_returns_positive(self):
        assert machine_score(recalibrate=True) > 0


class TestRateReport:
    def test_rate_math(self):
        report = RateReport(
            name="bench_x", metric="events/s", count=1000, seconds=0.5,
            score=2.0,
        )
        assert report.rate == 2000.0
        assert report.normalized == 1000.0

    def test_format_is_one_line_with_name_and_metric(self):
        report = measure_rate("bench_y", "sessions/s", 10, 2.0)
        line = report.format()
        assert "\n" not in line
        assert "bench_y" in line
        assert "sessions/s" in line

    def test_as_dict_round_trips_through_json(self):
        report = measure_rate("bench_z", "events/s", 100, 1.0)
        data = json.loads(json.dumps(report.as_dict()))
        assert data["name"] == "bench_z"
        assert data["rate"] == pytest.approx(100.0)
        assert data["normalized_rate"] == pytest.approx(
            100.0 / report.score
        )

    def test_as_dict_is_schema_tagged_with_provenance(self):
        report = RateReport(
            name="bench_x", metric="events/s", count=10, seconds=1.0,
            score=1.0, git_sha="abc123",
        )
        data = report.as_dict()
        assert data["schema"] == RATE_SCHEMA
        assert data["machine_score"] == 1.0
        assert data["git_sha"] == "abc123"

    def test_measure_rate_stamps_current_sha(self):
        report = measure_rate("bench_x", "events/s", 10, 1.0)
        assert report.git_sha == current_git_sha()


class TestGitShaProvenance:
    def test_github_sha_env_wins(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "feed" * 10)
        assert current_git_sha() == "feed" * 10

    def test_falls_back_to_git(self, monkeypatch):
        monkeypatch.delenv("GITHUB_SHA", raising=False)
        sha = current_git_sha()
        # This test runs inside the repo, so git answers (40 hex chars);
        # the contract either way is "a sha or None", never an exception.
        assert sha is None or len(sha) == 40

    def test_no_repo_no_git_is_none(self, monkeypatch, tmp_path):
        monkeypatch.delenv("GITHUB_SHA", raising=False)
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("PATH", str(tmp_path))  # git unreachable
        assert current_git_sha() is None


def make_baseline(**benchmarks):
    return {
        "metric": "events/s",
        "tolerance": 0.20,
        "benchmarks": dict(benchmarks),
    }


class TestCheckReport:
    def test_passes_at_baseline_rate(self):
        baseline = make_baseline(
            bench_a={"count": 1000, "normalized_rate": 100.0}
        )
        # 1000 items in 10s at score 1.0 -> normalized 100, exactly baseline.
        results, missing = check_report({"bench_a": 10.0}, baseline, score=1.0)
        assert missing == []
        assert len(results) == 1
        assert results[0].ok
        assert results[0].ratio == pytest.approx(1.0)

    def test_fails_below_tolerance_floor(self):
        baseline = make_baseline(
            bench_a={"count": 1000, "normalized_rate": 100.0}
        )
        # 21% slower than baseline: floor is 80, current is 79.
        results, _ = check_report({"bench_a": 1000 / 79.0}, baseline, score=1.0)
        assert not results[0].ok

    def test_passes_just_above_floor(self):
        baseline = make_baseline(
            bench_a={"count": 1000, "normalized_rate": 100.0}
        )
        results, _ = check_report({"bench_a": 1000 / 81.0}, baseline, score=1.0)
        assert results[0].ok

    def test_tolerance_override(self):
        baseline = make_baseline(
            bench_a={"count": 1000, "normalized_rate": 100.0}
        )
        results, _ = check_report(
            {"bench_a": 1000 / 95.0}, baseline, tolerance=0.01, score=1.0
        )
        assert not results[0].ok

    def test_missing_benchmark_reported(self):
        baseline = make_baseline(
            bench_a={"count": 1000, "normalized_rate": 100.0},
            bench_b={"count": 500, "normalized_rate": 50.0},
        )
        results, missing = check_report({"bench_a": 10.0}, baseline, score=1.0)
        assert missing == ["bench_b"]
        assert len(results) == 1

    def test_normalization_cancels_machine_speed(self):
        baseline = make_baseline(
            bench_a={"count": 1000, "normalized_rate": 100.0}
        )
        # A machine 4x faster runs the bench 4x faster but also scores 4x
        # higher, so the normalized verdict is unchanged.
        slow, _ = check_report({"bench_a": 10.0}, baseline, score=1.0)
        fast, _ = check_report({"bench_a": 2.5}, baseline, score=4.0)
        assert slow[0].current_normalized == pytest.approx(
            fast[0].current_normalized
        )

    def test_gate_result_format_names_verdict(self):
        ok = GateResult("bench_a", 100.0, 100.0, 80.0)
        bad = GateResult("bench_a", 10.0, 100.0, 80.0)
        assert "ok" in ok.format()
        assert "REGRESSION" in bad.format()

    def test_gate_result_delta_is_signed_percent(self):
        up = GateResult("bench_a", 110.0, 100.0, 80.0)
        down = GateResult("bench_a", 90.0, 100.0, 80.0)
        assert up.delta_pct == pytest.approx(10.0)
        assert down.delta_pct == pytest.approx(-10.0)

    def test_gate_result_format_shows_delta_arrow(self):
        up = GateResult("bench_a", 110.0, 100.0, 80.0)
        down = GateResult("bench_a", 90.0, 100.0, 80.0)
        assert "↑+10.0%" in up.format()
        assert "↓-10.0%" in down.format()


def write_bench_json(path, **mins):
    payload = {
        "benchmarks": [
            {"name": name, "stats": {"min": value, "mean": value * 1.1}}
            for name, value in mins.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return path


class TestCli:
    def test_load_benchmark_json_uses_min(self, tmp_path):
        path = write_bench_json(tmp_path / "bench.json", bench_a=0.25)
        assert load_benchmark_json(path) == {"bench_a": 0.25}

    def _files(self, tmp_path, seconds):
        bench = write_bench_json(tmp_path / "bench.json", bench_a=seconds)
        baseline = tmp_path / "baseline.json"
        score = machine_score()
        baseline.write_text(json.dumps(make_baseline(
            bench_a={"count": 1000, "normalized_rate": 1000 / 10.0 / score}
        )))
        return str(bench), str(baseline)

    def test_check_passes(self, tmp_path, capsys):
        bench, baseline = self._files(tmp_path, seconds=10.0)
        assert perf.main(["check", bench, "--baseline", baseline]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        bench, baseline = self._files(tmp_path, seconds=100.0)
        assert perf.main(["check", bench, "--baseline", baseline]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_errors_on_missing_bench(self, tmp_path):
        bench = write_bench_json(tmp_path / "bench.json", bench_other=1.0)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(make_baseline(
            bench_a={"count": 1000, "normalized_rate": 1.0}
        )))
        assert perf.main(["check", str(bench),
                          "--baseline", str(baseline)]) == 2

    def test_check_distinguishes_missing_baseline_file(self, tmp_path):
        # Exit 3 (baseline gone) must not masquerade as exit 2 (bench
        # absent from results) or 1 (regression): CI branches on them.
        bench = write_bench_json(tmp_path / "bench.json", bench_a=1.0)
        missing = tmp_path / "nowhere.json"
        assert perf.main(["check", str(bench),
                          "--baseline", str(missing)]) == 3

    def test_check_rejects_corrupt_baseline_file(self, tmp_path):
        bench = write_bench_json(tmp_path / "bench.json", bench_a=1.0)
        corrupt = tmp_path / "baseline.json"
        corrupt.write_text("{not json")
        assert perf.main(["check", str(bench),
                          "--baseline", str(corrupt)]) == 3
        corrupt.write_text(json.dumps({"tolerance": 0.2}))  # no benchmarks
        assert perf.main(["check", str(bench),
                          "--baseline", str(corrupt)]) == 3

    def test_update_errors_on_missing_baseline_file(self, tmp_path):
        bench = write_bench_json(tmp_path / "bench.json", bench_a=1.0)
        assert perf.main(["update", str(bench),
                          "--baseline", str(tmp_path / "gone.json")]) == 3

    def test_exit_code_constants(self):
        assert (perf.EXIT_OK, perf.EXIT_REGRESSION,
                perf.EXIT_MISSING_BENCH, perf.EXIT_MISSING_BASELINE) \
            == (0, 1, 2, 3)

    def test_update_rewrites_baseline(self, tmp_path):
        bench, baseline = self._files(tmp_path, seconds=5.0)
        assert perf.main(["update", bench, "--baseline", baseline]) == 0
        refreshed = json.loads(open(baseline).read())
        spec = refreshed["benchmarks"]["bench_a"]
        assert spec["raw_rate_at_capture"] == pytest.approx(200.0)
        assert "machine_score_at_capture" in refreshed
        # A check against the freshly updated baseline passes.
        assert perf.main(["check", bench, "--baseline", baseline]) == 0


def write_tagged_bench_json(path, name="bench_a", seconds=1.0, score=1.0,
                            sha="cafe" * 10, schema=RATE_SCHEMA):
    extra = {
        "schema": schema,
        "name": name,
        "metric": "events/s",
        "machine_score": score,
        "git_sha": sha,
    }
    path.write_text(json.dumps({
        "benchmarks": [
            {"name": name, "stats": {"min": seconds}, "extra_info": extra},
            # An untagged entry rides along in every file (e.g. a bench
            # that predates the report_rate fixture).
            {"name": "bench_untagged", "stats": {"min": seconds}},
        ],
    }))
    return path


class TestProvenance:
    def test_load_returns_only_tagged_entries(self, tmp_path):
        path = write_tagged_bench_json(tmp_path / "bench.json")
        provenance = load_benchmark_provenance(path)
        assert set(provenance) == {"bench_a"}
        assert provenance["bench_a"]["git_sha"] == "cafe" * 10
        assert provenance["bench_a"]["machine_score"] == 1.0

    def test_wrong_schema_tag_excluded(self, tmp_path):
        path = write_tagged_bench_json(tmp_path / "bench.json",
                                       schema="somebody.else/rate@9")
        assert load_benchmark_provenance(path) == {}

    def test_mismatch_printed_for_gated_benchmark(self, tmp_path, capsys):
        path = write_tagged_bench_json(tmp_path / "bench.json", score=2.0)
        perf._print_provenance_mismatch(path, {"bench_a"}, score=1.0)
        out = capsys.readouterr().out
        assert "provenance: bench_a" in out
        assert "machine score 2.00" in out
        assert "cafe" in out

    def test_within_five_percent_stays_quiet(self, tmp_path, capsys):
        path = write_tagged_bench_json(tmp_path / "bench.json", score=1.04)
        perf._print_provenance_mismatch(path, {"bench_a"}, score=1.0)
        assert capsys.readouterr().out == ""

    def test_ungated_benchmark_not_reported(self, tmp_path, capsys):
        path = write_tagged_bench_json(tmp_path / "bench.json", score=2.0)
        perf._print_provenance_mismatch(path, {"bench_other"}, score=1.0)
        assert capsys.readouterr().out == ""

    def test_missing_sha_reported_as_unknown(self, tmp_path, capsys):
        path = write_tagged_bench_json(tmp_path / "bench.json", score=2.0,
                                       sha=None)
        perf._print_provenance_mismatch(path, {"bench_a"}, score=1.0)
        assert "unknown commit" in capsys.readouterr().out

    def test_unreadable_file_is_silent(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        perf._print_provenance_mismatch(path, {"bench_a"}, score=1.0)
        assert capsys.readouterr().out == ""
