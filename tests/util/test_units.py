"""Tests for repro.util.units."""

import pytest

from repro.util.units import (
    MICROSECOND,
    MILLISECOND,
    SECOND,
    microseconds,
    milliseconds,
    seconds,
)


def test_constants_ratio():
    assert SECOND == 1000 * MILLISECOND
    assert MILLISECOND == 1000 * MICROSECOND


def test_seconds():
    assert seconds(2) == 2.0


def test_milliseconds():
    assert milliseconds(5) == 0.005


def test_microseconds():
    assert microseconds(100) == pytest.approx(100e-6)


def test_paper_constants_expressible():
    # T_save = 100 us, T_send = 4 us => exactly 25 sends per save.
    assert microseconds(100) / microseconds(4) == pytest.approx(25)
