"""Tests for the APN pretty-printer."""

from repro.apn.core import run_random
from repro.apn.pretty import render_execution, render_state, render_system
from repro.apn.specs import SpecConfig, make_savefetch_system, make_unprotected_system


class TestRenderState:
    def test_groups_by_process(self):
        text = render_state({"p.s": 1, "q.r": 0, "chan": ()})
        assert "p: s = 1" in text
        assert "q: r = 0" in text
        assert "(system): chan = ()" in text


class TestRenderSystem:
    def test_unprotected_inventory(self):
        text = render_system(make_unprotected_system(SpecConfig()), "unprotected")
        assert text.startswith("protocol unprotected")
        assert "process p" in text and "process q" in text
        assert "<send>" in text and "<recv>" in text
        assert "<reset>" in text and "<wake>" in text
        assert "initially:" in text

    def test_savefetch_has_save_commit(self):
        text = render_system(make_savefetch_system(SpecConfig()))
        assert "<save_commit>" in text
        assert "lst = 1" in text  # paper initial value for p


class TestRenderExecution:
    def test_trace_with_deltas(self):
        config = SpecConfig(max_resets_p=0, max_resets_q=0, max_replays=0, max_seq=3)
        system = make_unprotected_system(config)
        _, trace, _ = run_random(system, steps=4, seed=0)
        text = render_execution(system, trace)
        assert "initial:" in text
        assert "step 1:" in text
        assert "->" in text  # at least one delta rendered

    def test_limit(self):
        config = SpecConfig(max_resets_p=0, max_resets_q=0, max_replays=0, max_seq=5)
        system = make_unprotected_system(config)
        _, trace, _ = run_random(system, steps=8, seed=0)
        text = render_execution(system, trace, limit=2)
        assert "more steps" in text
