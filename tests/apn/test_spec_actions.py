"""Direct tests of individual APN spec actions (guards and effects)."""

from repro.apn.specs import SpecConfig, make_savefetch_system, make_unprotected_system


def action_by_label(system, label):
    for action in system.actions:
        if action.label == label:
            return action
    raise KeyError(label)


class TestChannelSemantics:
    def test_capacity_blocks_send(self):
        system = make_unprotected_system(SpecConfig(chan_cap=2))
        state = dict(system.initial)
        send = action_by_label(system, "p.send")
        assert send.guard(state)
        state["chan"] = (1, 2)
        assert not send.guard(state)

    def test_drop_action_present_only_with_loss(self):
        lossless = make_unprotected_system(SpecConfig(with_loss=False))
        lossy = make_unprotected_system(SpecConfig(with_loss=True))
        labels_lossless = {action.label for action in lossless.actions}
        labels_lossy = {action.label for action in lossy.actions}
        assert "chan.drop" not in labels_lossless
        assert "chan.drop" in labels_lossy

    def test_drop_enumerates_distinct_messages(self):
        system = make_unprotected_system(SpecConfig(with_loss=True))
        drop = action_by_label(system, "chan.drop")
        state = {**system.initial, "chan": (1, 2, 2)}
        successors = drop.apply(state)
        assert sorted(tuple(s["chan"]) for s in successors) == [(1, 2), (2, 2)]

    def test_recv_branches_over_reorders(self):
        system = make_unprotected_system(SpecConfig())
        recv = action_by_label(system, "q.recv")
        state = {**system.initial, "chan": (1, 2)}
        successors = recv.apply(state)
        assert len(successors) == 2  # either message can arrive first


class TestAdversarySemantics:
    def test_replay_requires_budget_and_history(self):
        system = make_unprotected_system(SpecConfig(max_replays=1))
        replay = action_by_label(system, "adversary.replay")
        state = dict(system.initial)
        assert not replay.guard(state)  # nothing recorded yet
        state["sent"] = frozenset({1})
        assert replay.guard(state)
        state["replays_left"] = 0
        assert not replay.guard(state)

    def test_replay_decrements_budget(self):
        system = make_unprotected_system(SpecConfig(max_replays=2))
        replay = action_by_label(system, "adversary.replay")
        state = {**system.initial, "sent": frozenset({1, 2})}
        successors = replay.apply(state)
        assert len(successors) == 2  # one branch per recorded message
        assert all(s["replays_left"] == 1 for s in successors)


class TestSaveFetchActions:
    def test_reset_aborts_pending_saves(self):
        system = make_savefetch_system(SpecConfig())
        reset = action_by_label(system, "p.reset")
        state = {**system.initial, "p.pending": (3,)}
        (after,) = reset.apply(state)
        assert after["p.pending"] == ()
        assert not after["p.up"]

    def test_wake_applies_leap_from_persist(self):
        system = make_savefetch_system(SpecConfig(k=2))
        wake = action_by_label(system, "p.wake")
        state = {**system.initial, "p.up": False, "p.persist": 7}
        (after,) = wake.apply(state)
        assert after["p.s"] == 7 + 4  # fetched + 2k
        assert after["p.persist"] == 11  # synchronous wake save
        assert after["p.up"]

    def test_q_wake_floods_window(self):
        system = make_savefetch_system(SpecConfig(w=3, k=1))
        wake = action_by_label(system, "q.wake")
        state = {**system.initial, "q.up": False, "q.persist": 5,
                 "q.wdw": (False, False, False)}
        (after,) = wake.apply(state)
        assert after["q.r"] == 7
        assert after["q.wdw"] == (True, True, True)

    def test_sizing_rule_forces_commit_before_new_save(self):
        system = make_savefetch_system(SpecConfig(k=1, max_seq=10))
        send = action_by_label(system, "p.send")
        state = {**system.initial, "p.s": 2, "p.lst": 2, "p.pending": (2,)}
        (after,) = send.apply(state)
        # The pending save committed at the instant the new one started.
        assert after["p.persist"] == 2
        assert after["p.pending"] == (3,)
