"""Tests for the paper-literal APN specs."""

from repro.apn.core import run_random
from repro.apn.specs import SpecConfig, make_savefetch_system, make_unprotected_system, window_update


class TestWindowUpdateHelper:
    def test_matches_paper_cases(self):
        w = 4
        # advance
        accepted, r, wdw = window_update(0, (True,) * w, 1, w)
        assert accepted and r == 1
        # in-window fresh
        accepted2, r2, wdw2 = window_update(r, wdw, 1, w)
        assert not accepted2  # duplicate of the right edge

    def test_agrees_with_bitmap_implementation(self):
        from repro.ipsec.replay_window import BitmapReplayWindow

        w = 5
        window = BitmapReplayWindow(w)
        r, wdw = 0, (True,) * w
        for seq in [1, 3, 2, 3, 10, 7, 6, 5, 11, 1]:
            expected = window.update(seq).accepted
            accepted, r, wdw = window_update(r, wdw, seq, w)
            assert accepted == expected
            assert r == window.right_edge


class TestUnprotectedSpec:
    def test_initial_state_matches_paper(self):
        system = make_unprotected_system(SpecConfig())
        assert system.initial["p.s"] == 1
        assert system.initial["q.r"] == 0
        assert all(system.initial["q.wdw"])

    def test_clean_run_no_violations_without_faults(self):
        config = SpecConfig(max_resets_p=0, max_resets_q=0, max_replays=0, max_seq=8)
        system = make_unprotected_system(config)
        _, trace, violations = run_random(system, steps=400, seed=1)
        assert violations == []
        assert trace  # something happened

    def test_random_walk_can_violate_with_faults(self):
        """Some seed finds the Section 3 failure by random execution."""
        config = SpecConfig(max_resets_p=1, max_resets_q=1, max_replays=3, max_seq=6)
        system = make_unprotected_system(config)
        found = False
        for seed in range(40):
            _, _, violations = run_random(system, steps=300, seed=seed)
            if violations:
                found = True
                break
        assert found


class TestSaveFetchSpec:
    def test_initial_state_matches_paper(self):
        system = make_savefetch_system(SpecConfig())
        assert system.initial["p.s"] == 1
        assert system.initial["p.lst"] == 1
        assert system.initial["q.lst"] == 0

    def test_random_walks_never_violate_in_paper_scope(self):
        """Single-sided resets, lossless channel: many random executions,
        zero violations (the Section 5 theorems, statistically)."""
        for resets_p, resets_q in [(1, 0), (0, 1)]:
            config = SpecConfig(
                max_resets_p=resets_p,
                max_resets_q=resets_q,
                max_replays=3,
                max_seq=8,
                k=2,
                chan_cap=3,
            )
            system = make_savefetch_system(config)
            for seed in range(30):
                _, _, violations = run_random(system, steps=400, seed=seed)
                assert violations == [], f"seed {seed}: {violations}"

    def test_saves_commit_in_fifo_order(self):
        config = SpecConfig(max_resets_p=0, max_resets_q=0, max_replays=0, max_seq=10, k=1)
        system = make_savefetch_system(config)
        state, _, _ = run_random(system, steps=500, seed=5)
        # After quiescence everything pending has had a chance to commit;
        # persist must be one of the initiated checkpoints.
        assert state["p.persist"] >= 1
