"""Tests for the APN guarded-command interpreter."""

import pytest

from repro.apn.core import ApnAction, ApnSystem, canon, run_random


def counter_system(limit: int = 3, invariant_cap: int | None = None) -> ApnSystem:
    actions = [
        ApnAction(
            "p",
            "inc",
            guard=lambda state: state["x"] < limit,
            apply=lambda state: [{**state, "x": state["x"] + 1}],
        )
    ]
    invariants = []
    if invariant_cap is not None:
        invariants.append(
            lambda state: f"x too big: {state['x']}" if state["x"] > invariant_cap else None
        )
    return ApnSystem({"x": 0}, actions, invariants=invariants)


class TestCanon:
    def test_order_insensitive(self):
        assert canon({"a": 1, "b": 2}) == canon({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert canon({"a": 1}) != canon({"a": 2})

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            canon({"a": [1, 2]})


class TestSystem:
    def test_enabled_respects_guard(self):
        system = counter_system(limit=1)
        assert len(system.enabled({"x": 0})) == 1
        assert system.enabled({"x": 1}) == []

    def test_successors_enumerate_nondeterminism(self):
        action = ApnAction(
            "p",
            "pick",
            guard=lambda state: True,
            apply=lambda state: [{**state, "x": v} for v in (1, 2, 3)],
        )
        system = ApnSystem({"x": 0}, [action])
        successors = system.successors({"x": 0})
        assert sorted(t.state["x"] for t in successors) == [1, 2, 3]
        assert all(t.label == "p.pick" for t in successors)

    def test_check_invariants(self):
        system = counter_system(invariant_cap=1)
        assert system.check_invariants({"x": 0}) == []
        assert system.check_invariants({"x": 2}) == ["x too big: 2"]


class TestRunRandom:
    def test_runs_to_quiescence(self):
        system = counter_system(limit=5)
        state, trace, violations = run_random(system, steps=100, seed=0)
        assert state["x"] == 5
        assert len(trace) == 5
        assert violations == []

    def test_stops_on_violation(self):
        system = counter_system(limit=5, invariant_cap=2)
        state, trace, violations = run_random(system, steps=100, seed=0)
        assert violations == ["x too big: 3"]
        assert state["x"] == 3

    def test_deterministic_under_seed(self):
        action = ApnAction(
            "p",
            "flip",
            guard=lambda state: state["n"] < 10,
            apply=lambda state: [
                {**state, "n": state["n"] + 1, "bits": state["bits"] + (b,)}
                for b in (0, 1)
            ],
        )
        system = ApnSystem({"n": 0, "bits": ()}, [action])

        def bits(seed):
            state, _, _ = run_random(system, steps=10, seed=seed)
            return state["bits"]

        assert bits(3) == bits(3)

    def test_step_budget_respected(self):
        system = counter_system(limit=1000)
        state, trace, _ = run_random(system, steps=7, seed=0)
        assert len(trace) == 7
