"""Tests for the IETF rekey baseline."""

import pytest

from repro.core.baselines import RekeySimulation, savefetch_recovery_outcome
from repro.ipsec.costs import CostModel

FAST = CostModel(
    t_save=100e-6,
    t_send=4e-6,
    t_fetch=100e-6,
    t_dh_exp=1e-3,
    t_prf=10e-6,
    t_sig=0.2e-3,
)


class TestRekeySimulation:
    def test_single_sa_renegotiated(self):
        outcome = RekeySimulation(n_sas=1, rtt=0.01, costs=FAST).run()
        assert outcome.n_sas == 1
        assert outcome.messages_exchanged == 9
        assert len(outcome.sa_pairs) == 1
        assert outcome.renegotiation_time > 4 * 0.01  # at least ~4.5 RTTs

    def test_sequential_sas_scale_linearly(self):
        one = RekeySimulation(n_sas=1, rtt=0.01, costs=FAST).run()
        three = RekeySimulation(n_sas=3, rtt=0.01, costs=FAST).run()
        assert three.messages_exchanged == 27
        assert three.renegotiation_time == pytest.approx(
            3 * one.renegotiation_time, rel=0.05
        )

    def test_detection_delay_added(self):
        outcome = RekeySimulation(
            n_sas=1, rtt=0.01, detection_delay=0.5, costs=FAST
        ).run()
        assert outcome.total_recovery_time == pytest.approx(
            outcome.renegotiation_time + 0.5
        )

    def test_new_sas_in_sad(self):
        sim = RekeySimulation(n_sas=2, rtt=0.001, costs=FAST)
        sim.run()
        assert len(sim.sad) == 4  # forward + backward per pair

    def test_distinct_pairs_distinct_keys(self):
        outcome = RekeySimulation(n_sas=2, rtt=0.001, costs=FAST).run()
        a, b = outcome.sa_pairs
        assert a.forward.auth_key != b.forward.auth_key

    def test_rtt_dominates_at_high_latency(self):
        # 8 one-way transits before the initiator finishes = 4 RTTs.
        fast = RekeySimulation(n_sas=1, rtt=0.001, costs=FAST).run()
        slow = RekeySimulation(n_sas=1, rtt=0.1, costs=FAST).run()
        assert slow.renegotiation_time - fast.renegotiation_time == pytest.approx(
            4 * (0.1 - 0.001), rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RekeySimulation(n_sas=0)


class TestSaveFetchOutcome:
    def test_recovery_is_local_io_only(self):
        outcome = savefetch_recovery_outcome(n_sas=1, costs=FAST)
        assert outcome.messages_exchanged == 0
        assert outcome.recovery_time == pytest.approx(200e-6)

    def test_scales_with_sas_but_stays_tiny(self):
        outcome = savefetch_recovery_outcome(n_sas=64, costs=FAST)
        rekey = RekeySimulation(n_sas=64, rtt=0.001, costs=FAST).run()
        assert outcome.recovery_time < rekey.total_recovery_time / 10

    def test_paper_motivating_comparison(self):
        """The headline: orders of magnitude, growing with SA count."""
        rekey = RekeySimulation(n_sas=8, rtt=0.01, costs=FAST).run()
        savefetch = savefetch_recovery_outcome(n_sas=8, costs=FAST)
        assert rekey.total_recovery_time / savefetch.recovery_time > 100
