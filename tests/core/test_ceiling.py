"""Tests for the write-ahead ceiling variant (the reproduction's repair)."""

import pytest

from repro.core.ceiling import CeilingReceiver, CeilingSender
from repro.core.protocol import build_protocol
from repro.ipsec.costs import CostModel
from repro.net.link import Link
from repro.net.message import Message

FAST = CostModel(t_save=100e-6, t_send=4e-6, t_fetch=0.0)


class TestCeilingSender:
    def make(self, engine, k=25, **kwargs):
        received = []
        link = Link(engine, "link", sink=received.append)
        sender = CeilingSender(engine, "p", link, k=k, costs=FAST, **kwargs)
        return sender, received

    def test_never_sends_at_or_above_committed_ceiling(self, engine):
        sender, received = self.make(engine)
        sender.start_traffic(count=400)
        engine.run(until=1.0)
        # Every send must have been under the ceiling committed at that
        # moment; the final ceiling is an upper bound for all of them.
        assert max(m.seq for m in received) < sender.committed_ceiling

    def test_reservation_extends_in_background(self, engine):
        # k = 50 = 2x the save duration in messages: the reservation
        # pipeline keeps ahead of line-rate traffic with no stalls.
        sender, received = self.make(engine, k=50)
        sender.start_traffic(count=100)
        engine.run(until=1.0)
        assert len(received) == 100
        assert sender.stalls == 0
        assert sender.store.saves_committed >= 2

    def test_stall_when_traffic_outruns_reservation(self, engine):
        # Huge save latency: the reservation cannot keep up at line rate.
        slow = CostModel(t_save=0.1, t_send=4e-6, t_fetch=0.0)
        received = []
        link = Link(engine, "link", sink=received.append)
        sender = CeilingSender(engine, "p", link, k=10, costs=slow)
        sender.start_traffic(count=100)
        engine.run(until=2.0)
        assert sender.stalls > 0
        # Stalls suppress, never violate: everything sent is below ceiling.
        assert all(m.seq < sender.committed_ceiling for m in received)

    def test_wake_resumes_at_fetched_ceiling_no_reuse(self, engine):
        sender, received = self.make(engine)
        sender.start_traffic(count=200)
        engine.run(until=0.0003)
        sender.reset(down_for=0.0001)
        engine.run(until=1.0)
        sender.start_traffic(count=100)
        engine.run(until=2.0)
        seqs = [m.seq for m in received]
        assert len(seqs) == len(set(seqs)), "sequence number reused"
        record = sender.reset_records[0]
        assert record.resumed_seq == record.fetched
        assert record.lost_seqnums is not None and 0 <= record.lost_seqnums <= 2 * 25

    def test_reset_mid_save_still_safe(self, engine):
        sender, received = self.make(engine)
        sender.send_burst(20)  # reservation save for 51 in flight
        assert sender.store.save_in_flight
        sender.reset(down_for=0.0)
        engine.run(until=1.0)
        sender.send_burst(30)
        seqs = [m.seq for m in received]
        assert len(seqs) == len(set(seqs))


class TestCeilingReceiver:
    def make(self, engine, k=25, w=16):
        receiver = CeilingReceiver(engine, "q", k=k, w=w, costs=FAST)
        return receiver

    def test_in_order_stream_delivered(self, engine):
        receiver = self.make(engine)
        for seq in range(1, 120):
            receiver.on_receive(Message(seq=seq))
            engine.run(until=engine.now + 1e-3)  # let ceiling raises land
        assert receiver.delivered_total == 119

    def test_over_ceiling_message_buffered_then_delivered(self, engine):
        receiver = self.make(engine, k=10)
        receiver.on_receive(Message(seq=500))  # far above ceiling 10
        assert receiver.delivered_total == 0
        assert receiver.buffered_for_ceiling == 1
        engine.run(until=1.0)  # ceiling save commits, buffer drains
        assert receiver.delivered_total == 1
        assert receiver.committed_ceiling >= 501

    def test_never_delivers_at_or_above_ceiling(self, engine):
        """The safety invariant: delivery implies seq < committed ceiling
        at delivery time (so a post-reset FETCH always clears it)."""
        receiver = self.make(engine, k=10)
        violations = []

        def on_deliver(seq: int, payload: bytes) -> None:
            if seq >= receiver.committed_ceiling:
                violations.append(seq)

        receiver.on_deliver = on_deliver
        for seq in [1, 2, 30, 3, 31, 100, 101, 32, 102, 150]:
            receiver.on_receive(Message(seq=seq))
            engine.run(until=engine.now + 1e-3)
        assert violations == []
        assert receiver.delivered_total >= 7  # in-window traffic lands

    def test_wake_resumes_at_ceiling_no_replay(self, engine):
        receiver = self.make(engine, k=10)
        history = [Message(seq=seq) for seq in range(1, 40)]
        for packet in history:
            receiver.on_receive(packet)
            engine.run(until=engine.now + 1e-3)
        delivered_before = receiver.delivered_total
        receiver.reset(down_for=0.0)
        engine.run(until=engine.now + 1.0)
        for packet in history:  # full-history replay
            receiver.on_receive(packet)
        assert receiver.delivered_total == delivered_before

    def test_replay_rejected_even_after_jump_plus_reset(self, engine):
        """The staggered scenario that breaks SAVE/FETCH."""
        receiver = self.make(engine, k=10)
        jump = Message(seq=300)  # a post-sender-leap jump message
        receiver.on_receive(jump)
        engine.run(until=engine.now + 1.0)
        assert receiver.delivered_total == 1
        # Reset immediately: with SAVE/FETCH the checkpoint would lag.
        receiver.reset(down_for=0.0)
        engine.run(until=engine.now + 1.0)
        receiver.on_receive(jump)  # replay
        assert receiver.delivered_total == 1  # rejected

    def test_crash_clears_ceiling_buffer(self, engine):
        receiver = self.make(engine, k=10)
        receiver.on_receive(Message(seq=500))
        assert receiver.buffered_for_ceiling == 1
        receiver.reset(down_for=0.0)
        engine.run(until=engine.now + 1.0)
        # The buffered packet died with the host: not delivered later.
        assert receiver.delivered_total == 0


class TestCeilingEndToEnd:
    def test_harness_run_converges(self):
        harness = build_protocol(variant="ceiling", k_p=25, k_q=25)
        harness.sender.start_traffic(count=300)
        harness.engine.call_at(0.0005, harness.sender.reset, 0.0002)
        harness.run(until=1.0)
        report = harness.score(check_bounds=False)
        assert report.replays_accepted == 0
        seqs = [seq for _, seq in harness.receiver.delivered_log]
        assert len(seqs) == len(set(seqs))

    def test_dual_reset_with_replay_safe(self):
        harness = build_protocol(variant="ceiling", k_p=25, k_q=25,
                                 with_adversary=True)
        harness.sender.start_traffic(count=300)

        def dual():
            harness.sender.reset(0.0002)
            harness.receiver.reset(0.0002)

        harness.engine.call_at(0.0005, dual)

        def replay():
            assert harness.adversary is not None
            harness.adversary.replay_history(rate=1e6)

        harness.receiver.add_resume_listener(replay)
        harness.run(until=1.0)
        assert harness.score(check_bounds=False).replays_accepted == 0
