"""Tests for the delivery auditor."""

from repro.core.audit import DeliveryAuditor
from repro.ipsec.replay_window import Verdict
from repro.net.message import Message


def fresh(auditor: DeliveryAuditor, uid: int) -> Message:
    packet = Message(seq=uid).with_meta(uid=uid)
    auditor.register_send(packet, uid)
    return packet


class TestScoring:
    def test_clean_delivery(self):
        auditor = DeliveryAuditor()
        packet = fresh(auditor, 1)
        auditor.note_processed(packet, Verdict.ACCEPT_ADVANCE)
        report = auditor.report()
        assert report.fresh_sent == 1
        assert report.delivered_uids == 1
        assert report.duplicate_deliveries == 0
        assert report.fresh_discarded == 0
        assert report.never_arrived == 0

    def test_duplicate_delivery_is_replay_accepted(self):
        auditor = DeliveryAuditor()
        packet = fresh(auditor, 1)
        auditor.note_processed(packet, Verdict.ACCEPT_ADVANCE)
        auditor.note_processed(packet, Verdict.ACCEPT_IN_WINDOW)  # replayed copy
        report = auditor.report()
        assert report.duplicate_deliveries == 1
        assert report.replays_accepted == 1

    def test_rejected_replay_not_a_fresh_discard(self):
        """A replayed copy discarded after the original was delivered is a
        success, not collateral."""
        auditor = DeliveryAuditor()
        packet = fresh(auditor, 1)
        auditor.note_processed(packet, Verdict.ACCEPT_ADVANCE)
        auditor.note_processed(packet, Verdict.STALE)
        assert auditor.report().fresh_discarded == 0

    def test_fresh_discard(self):
        auditor = DeliveryAuditor()
        packet = fresh(auditor, 1)
        auditor.note_processed(packet, Verdict.STALE)
        assert auditor.report().fresh_discarded == 1

    def test_never_arrived(self):
        auditor = DeliveryAuditor()
        fresh(auditor, 1)
        report = auditor.report()
        assert report.never_arrived == 1
        assert report.fresh_discarded == 0  # loss is out of scope

    def test_integrity_failures_counted(self):
        auditor = DeliveryAuditor()
        packet = fresh(auditor, 1)
        auditor.note_processed(packet, DeliveryAuditor.INTEGRITY_FAIL)
        report = auditor.report()
        assert report.integrity_rejections == 1
        assert report.fresh_discarded == 1

    def test_unknown_packets_tolerated(self):
        auditor = DeliveryAuditor()
        auditor.note_processed(Message(seq=9), Verdict.ACCEPT_ADVANCE)
        assert auditor.unknown_packets == 1
        assert auditor.report().deliveries_total == 0

    def test_many_duplicates_counted_each(self):
        auditor = DeliveryAuditor()
        packet = fresh(auditor, 1)
        for _ in range(4):
            auditor.note_processed(packet, Verdict.ACCEPT_ADVANCE)
        assert auditor.report().duplicate_deliveries == 3

    def test_properties_match_report(self):
        auditor = DeliveryAuditor()
        packet = fresh(auditor, 1)
        auditor.note_processed(packet, Verdict.ACCEPT_ADVANCE)
        auditor.note_processed(packet, Verdict.ACCEPT_ADVANCE)
        assert auditor.replays_accepted == 1
        assert auditor.fresh_discarded == 0

    def test_identical_payload_distinct_uids(self):
        """Two equal-content packets must still be distinguishable."""
        auditor = DeliveryAuditor()
        a = Message(seq=1)
        b = Message(seq=1)
        auditor.register_send(a, 1)
        auditor.register_send(b, 2)
        assert auditor.uid_of(a) == 1
        assert auditor.uid_of(b) == 2
