"""Tests for the one-call protocol harness."""

import pytest

from repro.core.ceiling import CeilingReceiver, CeilingSender
from repro.core.protocol import build_protocol
from repro.core.receiver import SaveFetchReceiver, UnprotectedReceiver
from repro.core.sender import SaveFetchSender, UnprotectedSender


class TestVariants:
    def test_protected_default(self):
        harness = build_protocol()
        assert isinstance(harness.sender, SaveFetchSender)
        assert isinstance(harness.receiver, SaveFetchReceiver)

    def test_unprotected(self):
        harness = build_protocol(protected=False)
        assert isinstance(harness.sender, UnprotectedSender)
        assert isinstance(harness.receiver, UnprotectedReceiver)

    def test_ceiling_variant(self):
        harness = build_protocol(variant="ceiling")
        assert isinstance(harness.sender, CeilingSender)
        assert isinstance(harness.receiver, CeilingReceiver)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            build_protocol(variant="quantum")

    def test_adversary_optional(self):
        assert build_protocol().adversary is None
        assert build_protocol(with_adversary=True).adversary is not None

    def test_reorder_stage_wiring(self):
        harness = build_protocol(reorder_degree=4, reorder_probability=0.5)
        assert harness.reorder_stage is not None
        assert harness.pipe is harness.reorder_stage

    def test_esp_mode_builds_sa(self):
        harness = build_protocol(encap="esp")
        assert harness.sa_pair is not None
        assert harness.sender.sa is harness.sa_pair.forward


class TestEndToEnd:
    def test_clean_run_delivers_everything(self):
        harness = build_protocol()
        harness.sender.start_traffic(count=500)
        harness.run(until=1.0)
        report = harness.score()
        assert report.audit.fresh_sent == 500
        assert report.audit.delivered_uids == 500
        assert report.converged

    def test_esp_run_delivers_everything(self):
        harness = build_protocol(encap="esp")
        harness.sender.start_traffic(count=100)
        harness.run(until=1.0)
        report = harness.score()
        assert report.audit.delivered_uids == 100
        assert harness.receiver.integrity_failures == 0

    def test_ah_run_delivers_everything(self):
        harness = build_protocol(encap="ah")
        harness.sender.start_traffic(count=100)
        harness.run(until=1.0)
        assert harness.score().audit.delivered_uids == 100

    def test_deterministic_given_seed(self):
        def run_once() -> tuple:
            harness = build_protocol(seed=5, loss=None)
            harness.sender.start_traffic(count=200)
            harness.engine.call_at(0.0003, harness.sender.reset, 0.0001)
            harness.run(until=1.0)
            report = harness.score()
            return (
                report.audit.delivered_uids,
                tuple(report.gaps_sender),
                tuple(report.lost_seqnums_per_reset),
            )

        assert run_once() == run_once()

    def test_sender_reset_converges(self):
        harness = build_protocol(k_p=25, k_q=25)
        harness.sender.start_traffic(count=500)
        harness.engine.call_at(0.0006, harness.sender.reset, 0.0002)
        harness.run(until=1.0)
        report = harness.score()
        assert report.converged, report.bound_violations
        assert report.sender_resets == 1

    def test_metrics_snapshot(self):
        harness = build_protocol(with_adversary=True)
        harness.sender.start_traffic(count=300)
        harness.engine.call_at(0.0005, harness.sender.reset, 0.0001)
        harness.run(until=1.0)
        exported = harness.metrics().as_dict()
        counters = exported["counters"]
        assert counters["sender.sent"] == counters["link.offered"]
        assert counters["receiver.delivered"] == counters["audit.delivered_uids"]
        assert counters["sender.resets"] == 1
        assert counters["audit.replays_accepted"] == 0
        assert exported["stats"]["sender.gap"]["count"] == 1
        assert exported["stats"]["sender.gap"]["max"] <= 50

    def test_receiver_reset_converges(self):
        harness = build_protocol(k_p=25, k_q=25)
        harness.sender.start_traffic(count=500)
        harness.engine.call_at(0.0006, harness.receiver.reset, 0.0002)
        harness.run(until=1.0)
        report = harness.score()
        assert report.converged, report.bound_violations
        assert report.receiver_resets == 1
        assert report.time_to_converge  # traffic resumed after the wake
