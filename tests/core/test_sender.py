"""Tests for the sender endpoints (Sections 2 and 4, process p)."""

import pytest

from repro.core.audit import DeliveryAuditor
from repro.core.sender import SaveFetchSender, UnprotectedSender
from repro.ipsec.costs import CostModel
from repro.net.link import Link


@pytest.fixture
def costs():
    return CostModel(t_save=100e-6, t_send=4e-6, t_fetch=0.0)


@pytest.fixture
def wire(engine):
    received = []
    link = Link(engine, "link", sink=received.append)
    return link, received


class TestUnprotectedSender:
    def test_sends_increasing_seqs_from_one(self, engine, wire, costs):
        link, received = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        sender.send_burst(3)
        engine.run()
        assert [m.seq for m in received] == [1, 2, 3]
        assert sender.s == 4

    def test_reset_restarts_at_one(self, engine, wire, costs):
        link, received = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        sender.send_burst(5)
        sender.reset(down_for=0.01)
        engine.run()
        sender.send_burst(2)
        engine.run()
        assert [m.seq for m in received][-2:] == [1, 2]
        record = sender.reset_records[0]
        assert record.last_used_seq == 5
        assert record.fetched is None
        assert record.resumed_seq == 1

    def test_suppressed_while_down(self, engine, wire, costs):
        link, _ = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        sender.reset(down_for=None)
        assert not sender.send_one()
        assert sender.sends_suppressed == 1
        sender.wake()
        assert sender.send_one()

    def test_wake_idempotent(self, engine, wire, costs):
        link, _ = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        sender.wake()  # already up: no-op
        assert sender.is_up


class TestTrafficClocking:
    def test_start_traffic_count_limits_attempts(self, engine, wire, costs):
        link, received = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        sender.start_traffic(count=10)
        engine.run(until=1.0)
        assert len(received) == 10

    def test_default_interval_is_t_send(self, engine, wire, costs):
        link, received = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        sender.start_traffic(count=5)
        engine.run(until=1.0)
        assert engine.now >= 5 * costs.t_send

    def test_stop_traffic(self, engine, wire, costs):
        link, received = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        sender.start_traffic()
        engine.run(until=10 * costs.t_send)
        sender.stop_traffic()
        count = len(received)
        engine.run(until=1.0)
        assert len(received) == count

    def test_send_listener(self, engine, wire, costs):
        link, _ = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        calls = []
        sender.add_send_listener(lambda total, packet: calls.append(total))
        sender.send_burst(3)
        assert calls == [1, 2, 3]


class TestSaveFetchSenderSaves:
    def test_background_save_every_k(self, engine, wire, costs):
        link, _ = wire
        sender = SaveFetchSender(engine, "p", link, k=25, costs=costs)
        sender.send_burst(24)
        assert sender.store.saves_started == 0
        sender.send_burst(1)  # s reaches 26 = 25 + lst(1)
        assert sender.store.saves_started == 1
        assert sender.lst == 26
        sender.send_burst(24)
        assert sender.store.saves_started == 1
        sender.send_burst(1)
        assert sender.store.saves_started == 2

    def test_saves_do_not_block_sending(self, engine, wire, costs):
        link, received = wire
        sender = SaveFetchSender(engine, "p", link, k=25, costs=costs)
        sender.start_traffic(count=60)
        engine.run(until=1.0)
        assert len(received) == 60  # traffic continued through both saves

    def test_rejects_bad_k(self, engine, wire, costs):
        link, _ = wire
        with pytest.raises(ValueError):
            SaveFetchSender(engine, "p", link, k=0, costs=costs)

    def test_rejects_negative_leap(self, engine, wire, costs):
        link, _ = wire
        with pytest.raises(ValueError):
            SaveFetchSender(engine, "p", link, k=5, leap_factor=-1, costs=costs)


class TestSaveFetchSenderRecovery:
    def test_wake_fetches_and_leaps(self, engine, wire, costs):
        link, received = wire
        sender = SaveFetchSender(engine, "p", link, k=25, costs=costs)
        sender.start_traffic(count=30)
        engine.run(until=1.0)  # save(26) committed
        sender.reset(down_for=0.001)
        engine.run(until=1.1)
        record = sender.reset_records[0]
        assert record.fetched == 26
        assert record.resumed_seq == 26 + 50
        assert sender.s == 76
        assert sender.lst == 76

    def test_resume_waits_for_wake_save(self, engine, wire, costs):
        """'it will wait for the SAVE to finish before it sends'."""
        link, _ = wire
        sender = SaveFetchSender(engine, "p", link, k=25, costs=costs)
        sender.send_burst(30)
        engine.run(until=1.0)
        sender.reset(down_for=0.0)
        engine.run(max_events=1)  # the wake event only
        assert sender.is_up
        assert sender.wait  # still recovering: wake save in flight
        assert not sender.send_one()
        engine.run(until=2.0)
        assert not sender.wait
        record = sender.reset_records[0]
        assert record.resume_time == pytest.approx(
            record.wake_time + costs.t_save
        )

    def test_wake_save_persisted_before_use(self, engine, wire, costs):
        link, _ = wire
        sender = SaveFetchSender(engine, "p", link, k=25, costs=costs)
        sender.send_burst(30)
        engine.run(until=1.0)
        sender.reset(down_for=0.0)
        engine.run(until=2.0)
        assert sender.store.committed_value == sender.s

    def test_gap_bounded_by_2k_when_sized(self, engine, wire, costs):
        link, _ = wire
        sender = SaveFetchSender(engine, "p", link, k=50, costs=costs)
        sender.start_traffic(count=137)
        engine.run(until=1.0)
        sender.reset(down_for=0.001)
        engine.run(until=2.0)
        record = sender.reset_records[0]
        assert record.gap is not None and record.gap <= 100
        assert record.lost_seqnums is not None
        assert 0 <= record.lost_seqnums <= 100

    def test_no_seq_reused_across_reset(self, engine, wire, costs):
        link, received = wire
        sender = SaveFetchSender(engine, "p", link, k=50, costs=costs)
        sender.start_traffic(count=130)
        engine.run(until=1.0)
        sender.reset(down_for=0.001)
        engine.run(until=1.5)
        sender.start_traffic(count=130)
        engine.run(until=3.0)
        seqs = [m.seq for m in received]
        assert len(seqs) == len(set(seqs))

    def test_skip_wake_save_ablation_resumes_without_save(
        self, engine, wire, costs
    ):
        link, _ = wire
        sender = SaveFetchSender(
            engine, "p", link, k=25, costs=costs, skip_wake_save=True
        )
        sender.send_burst(30)
        engine.run(until=1.0)
        committed_before = sender.store.committed_value
        sender.reset(down_for=0.0)
        engine.run(until=2.0)
        assert not sender.wait
        assert sender.store.committed_value == committed_before  # nothing saved

    def test_resume_listener_fires(self, engine, wire, costs):
        link, _ = wire
        sender = SaveFetchSender(engine, "p", link, k=25, costs=costs)
        resumed = []
        sender.add_resume_listener(lambda: resumed.append(engine.now))
        sender.send_burst(30)
        engine.run(until=1.0)
        sender.reset(down_for=0.0)
        engine.run(until=2.0)
        assert len(resumed) == 1

    def test_crash_aborts_background_save(self, engine, wire, costs):
        link, _ = wire
        sender = SaveFetchSender(engine, "p", link, k=25, costs=costs)
        sender.send_burst(26)  # save(27) now in flight
        assert sender.store.save_in_flight
        record = sender.reset(down_for=None)
        assert record.save_in_flight
        assert sender.store.saves_aborted == 1

    def test_auditor_registration(self, engine, wire, costs):
        link, _ = wire
        auditor = DeliveryAuditor()
        sender = SaveFetchSender(
            engine, "p", link, k=25, costs=costs, auditor=auditor
        )
        sender.send_burst(3)
        assert auditor.report().fresh_sent == 3


class TestSendBatch:
    """send_batch must be protocol-equivalent to send_burst — only the
    link handoff is batched."""

    def make_pair(self, engine, costs, k=None):
        def build():
            received = []
            link = Link(engine, "link", sink=received.append)
            if k is None:
                sender = UnprotectedSender(engine, "p", link, costs=costs)
            else:
                sender = SaveFetchSender(engine, "p", link, k=k, costs=costs)
            return sender, received
        return build(), build()

    @pytest.mark.parametrize("k", [None, 5])
    def test_batch_matches_burst(self, engine, costs, k):
        (burst_sender, burst_rx), (batch_sender, batch_rx) = \
            self.make_pair(engine, costs, k=k)
        assert burst_sender.send_burst(20) == batch_sender.send_batch(20)
        engine.run()
        assert [m.seq for m in batch_rx] == [m.seq for m in burst_rx]
        assert batch_sender.s == burst_sender.s
        assert batch_sender.sent_total == burst_sender.sent_total
        assert batch_sender.last_sent_seq == burst_sender.last_sent_seq

    def test_batch_save_checkpoints_match_burst(self, engine, costs):
        (burst_sender, _), (batch_sender, _) = \
            self.make_pair(engine, costs, k=3)
        burst_sender.send_burst(10)
        batch_sender.send_batch(10)
        engine.run()
        assert batch_sender.lst == burst_sender.lst
        assert (batch_sender.store.saves_started
                == burst_sender.store.saves_started)

    def test_batch_suppressed_while_down(self, engine, wire, costs):
        link, received = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        sender.reset(down_for=None)
        assert sender.send_batch(7) == 0
        assert sender.sends_suppressed == 7
        engine.run()
        assert received == []

    def test_guard_rechecked_mid_batch(self, engine, wire, costs):
        # A listener takes the sender down after the third message: the
        # batch must stop there, exactly as a burst of send_one would.
        link, received = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        sender.add_send_listener(
            lambda total, packet: total == 3 and sender.reset(down_for=None)
        )
        assert sender.send_batch(10) == 3
        assert sender.sends_suppressed == 7
        engine.run()
        assert [m.seq for m in received] == [1, 2, 3]

    def test_falls_back_without_offer_many(self, engine, costs):
        received = []

        class PlainPipe:
            def send(self, packet):
                received.append(packet)

        sender = UnprotectedSender(engine, "p", PlainPipe(), costs=costs)
        assert sender.send_batch(4) == 4
        assert [m.seq for m in received] == [1, 2, 3, 4]

    def test_non_positive_batch_is_noop(self, engine, wire, costs):
        link, _ = wire
        sender = UnprotectedSender(engine, "p", link, costs=costs)
        assert sender.send_batch(0) == 0
        assert sender.send_batch(-3) == 0
        assert sender.sent_total == 0

    def test_batch_registers_audit_uids(self, engine, wire, costs):
        link, _ = wire
        auditor = DeliveryAuditor()
        sender = UnprotectedSender(
            engine, "p", link, costs=costs, auditor=auditor
        )
        sender.send_batch(5)
        assert auditor.report().fresh_sent == 5
