"""Variable SAVE durations: the paper sizes K by an *upper bound* on the
save time; faster individual saves must never weaken the guarantees."""

import random

import pytest

from repro.core.persistent import PersistentStore
from repro.core.protocol import build_protocol
from repro.core.sender import SaveFetchSender
from repro.ipsec.costs import CostModel
from repro.net.link import Link

COSTS = CostModel(t_save=100e-6, t_send=4e-6, t_fetch=0.0)


class TestDurationModel:
    def test_faster_saves_commit_earlier(self, engine):
        store = PersistentStore(
            engine, "d", t_save=0.1, duration_model=lambda: 0.02
        )
        store.begin_save(5)
        engine.run(until=0.03)
        assert store.committed_value == 5

    def test_durations_clamped_to_upper_bound(self, engine):
        store = PersistentStore(
            engine, "d", t_save=0.1, duration_model=lambda: 10.0
        )
        record = store.begin_save(5)
        assert record.commit_due_at == pytest.approx(0.1)

    def test_negative_durations_clamped_to_zero(self, engine):
        store = PersistentStore(
            engine, "d", t_save=0.1, duration_model=lambda: -1.0
        )
        record = store.begin_save(5)
        assert record.commit_due_at == pytest.approx(0.0)

    def test_busy_time_uses_actual_durations(self, engine):
        store = PersistentStore(
            engine, "d", t_save=0.1, duration_model=lambda: 0.04
        )
        store.begin_save(1)
        engine.run()
        store.begin_save(2)
        engine.run()
        assert store.busy_time == pytest.approx(0.08)


class TestGuaranteesUnderJitter:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_sender_reset_bounds_hold_with_jittery_disk(self, engine, seed):
        """K sized by the upper bound; actual saves take 20-100% of it."""
        rng = random.Random(seed)
        store = PersistentStore(
            engine,
            "disk:p",
            t_save=COSTS.t_save,
            initial_value=1,
            duration_model=lambda: COSTS.t_save * rng.uniform(0.2, 1.0),
        )
        received = []
        link = Link(engine, "link", sink=received.append)
        sender = SaveFetchSender(engine, "p", link, k=50, store=store, costs=COSTS)
        sender.start_traffic(count=700)
        engine.call_at(0.0011, sender.reset, 0.0002)
        engine.run(until=1.0)
        record = sender.reset_records[0]
        assert record.gap is not None and record.gap <= 100
        assert record.lost_seqnums is not None and 0 <= record.lost_seqnums <= 100
        seqs = [m.seq for m in received]
        assert len(seqs) == len(set(seqs))

    def test_full_harness_with_jitter_converges(self):
        harness = build_protocol(k_p=50, k_q=50, costs=COSTS, seed=7)
        rng = random.Random(7)
        for endpoint in (harness.sender, harness.receiver):
            endpoint.store.duration_model = (  # type: ignore[attr-defined]
                lambda: COSTS.t_save * rng.uniform(0.1, 1.0)
            )
        harness.sender.start_traffic(count=1500)
        harness.engine.call_at(0.002, harness.sender.reset, 0.0003)
        harness.engine.call_at(0.004, harness.receiver.reset, 0.0003)
        harness.run(until=1.0)
        report = harness.score()
        assert report.converged, report.bound_violations
