"""Tests for the persistent-memory model (SAVE/FETCH semantics)."""

import pytest

from repro.core.persistent import PersistentStore


@pytest.fixture
def store(engine):
    return PersistentStore(engine, "disk", t_save=0.1, t_fetch=0.05, initial_value=1)


class TestCommitLatency:
    def test_save_commits_after_t_save(self, engine, store):
        store.begin_save(10)
        assert store.committed_value == 1  # not yet
        assert store.save_in_flight
        engine.run()
        assert store.committed_value == 10
        assert not store.save_in_flight

    def test_commit_callback_fires_at_commit_time(self, engine, store):
        times = []
        store.begin_save(10, on_commit=lambda: times.append(engine.now))
        engine.run()
        assert times == [0.1]

    def test_fetch_returns_committed_only(self, engine, store):
        store.begin_save(5)
        assert store.fetch() == 1  # mid-save: previous value
        engine.run()
        assert store.fetch() == 5
        assert store.fetches == 2

    def test_fetch_delay(self, store):
        assert store.fetch_delay() == 0.05

    def test_initial_value_is_committed(self, store):
        """The SA-establishment write: FETCH works before any SAVE."""
        assert store.fetch() == 1


class TestCrashSemantics:
    def test_crash_aborts_in_flight(self, engine, store):
        store.begin_save(10)
        aborted = store.crash()
        assert aborted == 1
        engine.run()
        assert store.committed_value == 1  # previous value survives
        assert store.saves_aborted == 1
        assert store.saves_committed == 0

    def test_crash_with_nothing_in_flight(self, engine, store):
        store.begin_save(10)
        engine.run()
        assert store.crash() == 0
        assert store.committed_value == 10

    def test_committed_value_survives_crash(self, engine, store):
        store.begin_save(7)
        engine.run()
        store.crash()
        assert store.fetch() == 7

    def test_crash_aborts_all_overlapping(self, engine, store):
        store.begin_save(5)
        store.begin_save(6)
        assert store.crash() == 2

    def test_aborted_commit_callback_never_fires(self, engine, store):
        fired = []
        store.begin_save(10, on_commit=lambda: fired.append(True))
        store.crash()
        engine.run()
        assert fired == []


class TestOverlapAccounting:
    def test_max_concurrent_tracks_overlap(self, engine, store):
        store.begin_save(2)
        store.begin_save(3)
        store.begin_save(4)
        assert store.max_concurrent_saves == 3
        engine.run()
        assert store.committed_value == 4

    def test_sequential_saves_no_overlap(self, engine, store):
        store.begin_save(2)
        engine.run()
        store.begin_save(3)
        engine.run()
        assert store.max_concurrent_saves == 1

    def test_busy_time_accumulates(self, engine, store):
        store.begin_save(2)
        engine.run()
        store.begin_save(3)
        engine.run()
        assert store.busy_time == pytest.approx(0.2)


class TestListeners:
    def test_listener_sees_start_and_commit(self, engine, store):
        events = []
        store.add_listener(
            lambda record: events.append(
                ("commit" if record.committed else "start", record.value)
            )
        )
        store.begin_save(9)
        engine.run()
        assert events == [("start", 9), ("commit", 9)]

    def test_synchronous_flag_recorded(self, engine, store):
        record = store.begin_save(9, synchronous=True)
        assert record.synchronous
        engine.run()
        assert store.history[0].committed


class TestValidation:
    def test_negative_t_save_rejected(self, engine):
        with pytest.raises(ValueError):
            PersistentStore(engine, "d", t_save=-1.0)

    def test_zero_t_save_commits_via_event(self, engine):
        store = PersistentStore(engine, "d", t_save=0.0, initial_value=0)
        store.begin_save(3)
        assert store.committed_value == 0  # still event-ordered
        engine.run()
        assert store.committed_value == 3
