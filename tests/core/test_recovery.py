"""Tests for the Section 6 prolonged-reset recovery session."""

import pytest

from repro.core.recovery import (
    ProlongedResetSession,
    ResetNotice,
    ResetNoticeReceiver,
    send_reset_notice,
)
from repro.ipsec.costs import CostModel
from repro.net.link import Link
from repro.net.message import Message

FAST = CostModel(t_save=100e-6, t_send=4e-6, t_fetch=0.0)


def make_session(**kwargs):
    defaults = dict(k=25, costs=FAST, keep_alive_timeout=0.5, rtt=0.002, seed=0)
    defaults.update(kwargs)
    return ProlongedResetSession(**defaults)


class TestSteadyState:
    def test_bidirectional_traffic_flows(self):
        session = make_session()
        session.start_traffic()
        session.run(until=0.05)
        session.stop_traffic()
        session.run(until=0.1)
        assert session.host_a.receiver.delivered_total > 100
        assert session.host_b.receiver.delivered_total > 100
        report = session.report()
        assert report.replays_accepted_total == 0


class TestOutageRecovery:
    def test_icmp_detection_and_resync(self):
        session = make_session()
        session.start_traffic()
        outage = 0.05
        session.engine.call_at(0.02, session.host_b.reset_host, outage)
        session.run(until=0.02 + outage + 0.3)
        session.stop_traffic()
        session.run(until=0.02 + outage + 0.4)
        report = session.report()
        a = report.host_a
        assert a.peer_down_detected_at is not None
        assert a.peer_down_detected_at >= 0.02
        assert not a.keepalive_expired
        assert a.peer_back_up_at is not None
        assert a.peer_back_up_at >= 0.02 + outage
        assert a.resync_seq is not None
        assert report.recovered

    def test_resync_seq_is_leaped(self):
        session = make_session()
        session.start_traffic()
        session.engine.call_at(0.02, session.host_b.reset_host, 0.05)
        session.run(until=0.3)
        session.stop_traffic()
        session.run(until=0.4)
        record = session.host_b.sender.reset_records[0]
        assert session.report().host_a.resync_seq == record.resumed_seq

    def test_traffic_resumes_both_ways(self):
        session = make_session()
        session.start_traffic()
        session.engine.call_at(0.02, session.host_b.reset_host, 0.05)
        session.run(until=0.4)
        session.stop_traffic()
        session.run(until=0.5)
        post = [
            seq for t, seq in session.host_a.receiver.delivered_log if t > 0.08
        ]
        assert post  # b -> a resumed
        post_b = [
            seq for t, seq in session.host_b.receiver.delivered_log if t > 0.08
        ]
        assert post_b  # a -> b resumed

    def test_keepalive_expiry_on_long_outage(self):
        session = make_session(keep_alive_timeout=0.1)
        session.start_traffic()
        session.engine.call_at(0.02, session.host_b.reset_host, 0.5)
        session.run(until=1.0)
        session.stop_traffic()
        session.run(until=1.2)
        assert session.report().host_a.keepalive_expired

    def test_replays_during_outage_rejected(self):
        session = make_session(with_adversary=True)
        session.start_traffic()
        session.engine.call_at(0.02, session.host_b.reset_host, 0.1)
        session.engine.call_at(0.05, lambda: session.adversary.replay_history(rate=5000.0))
        session.run(until=0.5)
        session.stop_traffic()
        session.run(until=0.6)
        report = session.report()
        assert report.replayed_into_live_host > 0
        assert report.replays_accepted_total == 0

    def test_no_replays_across_esp_integrity(self):
        session = make_session()
        session.start_traffic()
        session.run(until=0.02)
        session.stop_traffic()
        session.run(until=0.05)
        assert session.host_a.receiver.integrity_failures == 0


class TestResetNoticeStrawman:
    def test_genuine_notice_reopens_window(self, engine):
        receiver = ResetNoticeReceiver(engine, "q", w=8, costs=FAST)
        link = Link(engine, "link", sink=receiver.on_receive)
        for seq in range(1, 10):
            link.send(Message(seq=seq))
        engine.run()
        assert receiver.delivered_total == 9
        send_reset_notice("p", link, engine.now)
        engine.run()
        assert receiver.notices_honoured == 1
        link.send(Message(seq=1))  # restarted sender
        engine.run()
        assert receiver.delivered_total == 10

    def test_replayed_notice_reopens_window_again(self, engine):
        """The paper's objection, mechanically."""
        receiver = ResetNoticeReceiver(engine, "q", w=8, costs=FAST)
        link = Link(engine, "link", sink=receiver.on_receive)
        notice = ResetNotice(origin="p", sent_at=0.0)
        for seq in range(1, 6):
            link.send(Message(seq=seq))
        link.send(notice)
        engine.run()
        # An attacker replays both the notice and the old messages.
        link.inject(notice)
        old = Message(seq=3)
        link.inject(old)
        engine.run()
        assert receiver.notices_honoured == 2
        assert receiver.delivered_total == 6  # seq 3 accepted again

    def test_notice_dropped_while_down(self, engine):
        receiver = ResetNoticeReceiver(engine, "q", w=8, costs=FAST)
        receiver.reset(down_for=None)
        receiver.on_receive(ResetNotice(origin="p", sent_at=0.0))
        assert receiver.notices_honoured == 0
        assert receiver.dropped_while_down == 1
