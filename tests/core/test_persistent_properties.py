"""Property tests on the persistent store: the SAVE/FETCH axioms hold
under arbitrary interleavings of saves, crashes and time.

Axioms (the ones the paper's proofs lean on):

1. FETCH returns a value that some SAVE was *initiated* with (or the
   initial SA-establishment value) — never garbage.
2. A crash never changes the committed value.
3. Commits happen exactly ``t_save`` after initiation, in order, and
   only for saves no crash intervened on.
4. With monotonically increasing saved values, the committed value is
   monotone over time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.persistent import PersistentStore
from repro.sim.engine import Engine

#: One scripted step: ("save", gap_to_next) | ("crash", gap) | ("wait", gap)
STEP = st.tuples(
    st.sampled_from(["save", "crash", "wait"]),
    st.floats(min_value=0.0, max_value=3e-4, allow_nan=False),
)


@given(steps=st.lists(STEP, max_size=40))
@settings(max_examples=200, deadline=None)
def test_savefetch_axioms(steps):
    engine = Engine()
    store = PersistentStore(engine, "disk", t_save=1e-4, initial_value=0)
    initiated = [0]  # values ever handed to SAVE (plus the initial)
    fetch_history = []
    value = 0

    for action, gap in steps:
        if action == "save":
            value += 1
            initiated.append(value)
            store.begin_save(value)
        elif action == "crash":
            committed_before = store.committed_value
            store.crash()
            assert store.committed_value == committed_before  # axiom 2
        engine.run(until=engine.now + gap)
        fetched = store.fetch()
        fetch_history.append(fetched)
        assert fetched in initiated  # axiom 1
        assert fetched <= value

    # Axiom 4: monotone committed value for monotone saved values.
    assert fetch_history == sorted(fetch_history)
    # Bookkeeping is consistent.
    engine.run()
    assert (
        store.saves_committed + store.saves_aborted + len(store._in_flight)
        == store.saves_started
    )


@given(
    n_saves=st.integers(min_value=1, max_value=20),
    crash_after=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=100, deadline=None)
def test_crash_loses_at_most_in_flight_saves(n_saves, crash_after):
    """After a crash, the committed value is the last save initiated at
    least ``t_save`` before the crash (sequential saves)."""
    engine = Engine()
    store = PersistentStore(engine, "disk", t_save=1e-4, initial_value=0)
    for i in range(1, n_saves + 1):
        store.begin_save(i)
        engine.run(until=engine.now + 1e-4)  # commits before the next
    # One more save, crash partway through.
    store.begin_save(n_saves + 1)
    engine.run(until=engine.now + 0.5e-4)
    store.crash()
    engine.run()
    assert store.fetch() == n_saves  # the in-flight one was lost, no more
