"""Tests for the reset fault injectors."""

import pytest

from repro.core.protocol import build_protocol
from repro.core.reset import (
    ResetSchedule,
    reset_at_count,
    reset_at_time,
    reset_during_save,
)
from repro.ipsec.costs import PAPER_COSTS


class TestResetAtTime:
    def test_fires_at_time(self):
        harness = build_protocol()
        reset_at_time(harness.engine, harness.sender, at=0.001, down_for=0.0001)
        harness.sender.start_traffic(count=500)
        harness.run(until=1.0)
        assert len(harness.sender.reset_records) == 1
        assert harness.sender.reset_records[0].reset_time == pytest.approx(0.001)


class TestResetAtCount:
    def test_sender_count(self):
        harness = build_protocol()
        reset_at_count(harness.sender, count=100, down_for=0.0001)
        harness.sender.start_traffic(count=300)
        harness.run(until=1.0)
        record = harness.sender.reset_records[0]
        assert record.last_used_seq == 100

    def test_receiver_count(self):
        harness = build_protocol()
        reset_at_count(harness.receiver, count=50, down_for=0.0001)
        harness.sender.start_traffic(count=300)
        harness.run(until=1.0)
        record = harness.receiver.reset_records[0]
        assert record.right_edge_at_reset == 50

    def test_fires_only_once(self):
        harness = build_protocol()
        reset_at_count(harness.sender, count=10, down_for=0.0)
        harness.sender.start_traffic(count=100)
        harness.run(until=1.0)
        assert len(harness.sender.reset_records) == 1

    def test_rejects_bad_count(self):
        harness = build_protocol()
        with pytest.raises(ValueError):
            reset_at_count(harness.sender, count=0)

    def test_rejects_unsupported_target(self):
        with pytest.raises(TypeError):
            reset_at_count(object(), count=5)


class TestResetDuringSave:
    def test_strikes_inside_nth_save(self):
        harness = build_protocol(k_p=50)
        store = harness.sender.store
        reset_during_save(
            harness.engine, harness.sender, store, nth_save=2, fraction=0.5,
            down_for=0.0001,
        )
        harness.sender.start_traffic(count=400)
        harness.run(until=1.0)
        record = harness.sender.reset_records[0]
        assert record.save_in_flight
        # Second background save stores 101; struck halfway through.
        aborted = [r for r in store.history if r.aborted]
        assert [r.value for r in aborted] == [101]
        assert record.reset_time == pytest.approx(
            aborted[0].started_at + 0.5 * store.t_save
        )

    def test_fraction_validated(self):
        harness = build_protocol()
        with pytest.raises(ValueError):
            reset_during_save(
                harness.engine, harness.sender, harness.sender.store, fraction=1.0
            )

    def test_nth_validated(self):
        harness = build_protocol()
        with pytest.raises(ValueError):
            reset_during_save(
                harness.engine, harness.sender, harness.sender.store, nth_save=0
            )

    def test_synchronous_saves_skipped_by_default(self):
        harness = build_protocol(k_p=25)
        fired = []
        harness.sender.add_resume_listener(lambda: fired.append("resume"))
        # Arm on save #2; reset manually first so save #2 would be the
        # post-wake synchronous one — which must NOT trigger the injector.
        reset_during_save(
            harness.engine,
            harness.sender,
            harness.sender.store,
            nth_save=2,
            down_for=0.0,
        )
        harness.sender.send_burst(26)  # background save #1
        harness.run(until=0.01)
        harness.sender.reset(down_for=0.0)  # wake save is synchronous
        harness.run(until=0.02)
        assert fired == ["resume"]  # recovered; injector did not strike it
        assert len(harness.sender.reset_records) == 1


class TestResetSchedule:
    def test_periodic_schedule(self):
        schedule = ResetSchedule.periodic(first_at=0.001, period=0.002, count=3,
                                          down_for=0.0001)
        assert len(schedule.faults) == 3
        harness = build_protocol()
        schedule.apply(harness.engine, harness.sender)
        harness.sender.start_traffic(count=2000)
        harness.run(until=1.0)
        assert len(harness.sender.reset_records) == 3

    def test_reset_storm_still_converges(self):
        """Repeated resets: every cycle recovers, nothing replayable."""
        harness = build_protocol(k_p=25, k_q=25)
        ResetSchedule.periodic(0.001, 0.002, 4, 0.0003).apply(
            harness.engine, harness.sender
        )
        harness.sender.start_traffic(count=3000)
        harness.run(until=1.0)
        report = harness.score()
        assert report.sender_resets == 4
        assert report.converged, report.bound_violations

    def test_validation(self):
        with pytest.raises(ValueError):
            ResetSchedule([(-1.0, 0.0)])
        with pytest.raises(ValueError):
            ResetSchedule.periodic(0.0, 0.0, 2, 0.0)
