"""Tests for dead-peer detection."""

import pytest

from repro.core.dpd import HeartbeatDpd, TrafficDpd, detection_time


class Probes:
    """Test double: a probe channel with a controllable peer."""

    def __init__(self, engine, rtt=0.01):
        self.engine = engine
        self.rtt = rtt
        self.peer_up = True
        self.dpd = None
        self.sent = []

    def send_probe(self, token):
        self.sent.append(token)
        if self.peer_up:
            self.engine.call_later(self.rtt, self.dpd.on_probe_ack, token)


class TestHeartbeatDpd:
    def make(self, engine, **kwargs):
        probes = Probes(engine)
        dead = []
        dpd = HeartbeatDpd(
            engine,
            "dpd",
            send_probe=probes.send_probe,
            on_dead=lambda: dead.append(engine.now),
            interval=kwargs.get("interval", 0.1),
            timeout=kwargs.get("timeout", 0.05),
            max_misses=kwargs.get("max_misses", 3),
        )
        probes.dpd = dpd
        return probes, dpd, dead

    def test_live_peer_never_declared_dead(self, engine):
        probes, dpd, dead = self.make(engine)
        dpd.start()
        engine.run(until=2.0)
        dpd.stop()
        assert dead == []
        assert dpd.peer_alive
        assert dpd.acks_received > 10

    def test_dead_peer_detected_after_max_misses(self, engine):
        probes, dpd, dead = self.make(engine)
        dpd.start()
        engine.run(until=0.55)
        probes.peer_up = False
        engine.run(until=2.0)
        dpd.stop()
        assert len(dead) == 1
        assert not dpd.peer_alive
        # Worst case: interval + max_misses * interval after the failure.
        assert dead[0] - 0.55 <= 0.1 + 3 * 0.1 + 0.05 + 1e-9

    def test_detection_time_helper(self, engine):
        probes, dpd, dead = self.make(engine)
        dpd.start()
        probes.peer_up = False
        engine.run(until=1.0)
        dpd.stop()
        assert detection_time(dpd, reset_time=0.0) == pytest.approx(dead[0])

    def test_detection_time_none_while_alive(self, engine):
        probes, dpd, dead = self.make(engine)
        dpd.start()
        engine.run(until=0.5)
        dpd.stop()
        assert detection_time(dpd, reset_time=0.0) is None

    def test_revival_detected(self, engine):
        probes, dpd, dead = self.make(engine)
        dpd.start()
        probes.peer_up = False
        engine.run(until=1.0)
        assert not dpd.peer_alive
        probes.peer_up = True
        engine.run(until=2.0)
        dpd.stop()
        assert dpd.peer_alive
        assert len(dead) == 1  # declared dead only once

    def test_late_ack_ignored(self, engine):
        probes, dpd, dead = self.make(engine)
        dpd.start()
        engine.run(until=0.2)
        dpd.stop()
        dpd.on_probe_ack(9999)  # unknown token: no crash, no state change
        assert dpd.peer_alive


class TestTrafficDpd:
    def make(self, engine, rtt=0.01):
        probes = Probes(engine, rtt=rtt)
        dead = []
        dpd = TrafficDpd(
            engine,
            "dpd",
            send_probe=probes.send_probe,
            on_dead=lambda: dead.append(engine.now),
            idle_threshold=0.1,
            timeout=0.05,
            max_misses=2,
        )
        probes.dpd = dpd
        return probes, dpd, dead

    def test_no_probe_without_outbound_traffic(self, engine):
        probes, dpd, dead = self.make(engine)
        dpd.start()
        engine.run(until=1.0)
        dpd.stop()
        assert probes.sent == []  # nothing to protect, nothing to prove

    def test_no_probe_when_peer_talking(self, engine):
        probes, dpd, dead = self.make(engine)
        dpd.start()

        def chat():
            dpd.note_sent()
            dpd.note_received()

        from repro.sim.process import Timer

        chatter = Timer(engine, 0.02, chat)
        chatter.start()
        engine.run(until=1.0)
        chatter.stop()
        dpd.stop()
        assert probes.sent == []

    def test_probes_when_outbound_but_silent_peer(self, engine):
        probes, dpd, dead = self.make(engine)
        probes.peer_up = False
        dpd.start()
        engine.call_later(0.01, dpd.note_sent)
        engine.call_later(0.06, dpd.note_sent)  # keep the conversation fresh
        engine.run(until=1.0)
        dpd.stop()
        assert probes.sent  # probed
        assert dead  # and declared dead after 2 misses

    def test_inbound_traffic_acks_probes_implicitly(self, engine):
        probes, dpd, dead = self.make(engine)
        probes.peer_up = False  # probes themselves are never answered
        dpd.start()
        dpd.note_sent()
        engine.call_later(0.08, dpd.note_received)  # data arrives instead
        engine.run(until=0.3)
        dpd.stop()
        assert dpd.peer_alive
        assert dead == []

    def test_fully_idle_conversation_not_probed(self, engine):
        probes, dpd, dead = self.make(engine)
        dpd.start()
        dpd.note_sent()  # one send, then silence from us too
        engine.run(until=2.0)
        dpd.stop()
        # Once the conversation itself has been idle past the threshold,
        # probing stops (at most the checks inside the threshold probe).
        assert len(probes.sent) <= 2
