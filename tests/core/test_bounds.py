"""Tests for the closed-form bounds, incl. hypothesis checks that the
piecewise predictions never exceed the paper's 2K bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    discarded_fresh_bound,
    gap_bound,
    lost_seq_bound,
    messages_lost_during_outage,
    min_safe_save_interval,
    predicted_sender_gap,
    predicted_sender_loss,
    rekey_recovery_time,
    save_overhead_fraction,
    savefetch_recovery_time,
    unprotected_fresh_discards,
    unprotected_replay_exposure,
)
from repro.ipsec.costs import PAPER_COSTS, CostModel


class TestPaperBounds:
    def test_gap_bound(self):
        assert gap_bound(25) == 50

    def test_lost_bound(self):
        assert lost_seq_bound(25) == 50

    def test_discard_bound(self):
        assert discarded_fresh_bound(25) == 50


class TestPredictedGap:
    def test_in_flight_case(self):
        # Fig. 1 case 1: fetched = s - K, gap = K + t.
        assert predicted_sender_gap(k=50, offset=10, save_duration_msgs=25) == 60

    def test_committed_case(self):
        # Fig. 1 case 2: fetched = s, gap = t.
        assert predicted_sender_gap(k=50, offset=30, save_duration_msgs=25) == 30

    def test_rejects_offset_outside_cycle(self):
        with pytest.raises(ValueError):
            predicted_sender_gap(k=50, offset=50, save_duration_msgs=25)

    @given(
        k=st.integers(min_value=1, max_value=500),
        offset=st.integers(min_value=0, max_value=499),
        duration=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=300, deadline=None)
    def test_gap_never_exceeds_2k(self, k, offset, duration):
        """Section 5's theorem, over the whole parameter space (with the
        sizing rule duration <= k)."""
        offset = offset % k
        duration = min(duration, k)
        assert predicted_sender_gap(k, offset, duration) < gap_bound(k)

    @given(
        k=st.integers(min_value=1, max_value=500),
        offset=st.integers(min_value=0, max_value=499),
        duration=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=300, deadline=None)
    def test_loss_in_bounds_and_non_negative(self, k, offset, duration):
        offset = offset % k
        duration = min(duration, k)
        loss = predicted_sender_loss(k, offset, duration)
        assert 0 <= loss <= lost_seq_bound(k)


class TestUnprotectedFormulas:
    def test_replay_exposure_is_traffic(self):
        assert unprotected_replay_exposure(1234) == 1234
        assert unprotected_replay_exposure(-5) == 0

    def test_fresh_discards(self):
        assert unprotected_fresh_discards(right_edge=1000, w=64) == 936
        assert unprotected_fresh_discards(right_edge=10, w=64) == 0


class TestCostFormulas:
    def test_overhead_fraction(self):
        # One 100us save per 25 * 4us of sending = 100%.
        assert save_overhead_fraction(25, PAPER_COSTS) == pytest.approx(1.0)
        assert save_overhead_fraction(100, PAPER_COSTS) == pytest.approx(0.25)

    def test_min_safe_interval_paper(self):
        assert min_safe_save_interval(PAPER_COSTS) == 25

    def test_savefetch_recovery(self):
        costs = CostModel(t_save=100e-6, t_fetch=50e-6)
        assert savefetch_recovery_time(costs) == pytest.approx(150e-6)

    def test_rekey_scales_linearly_in_sas(self):
        one = rekey_recovery_time(PAPER_COSTS, rtt=0.01, n_sas=1)
        four = rekey_recovery_time(PAPER_COSTS, rtt=0.01, n_sas=4)
        assert four == pytest.approx(4 * one)

    def test_rekey_scales_with_rtt(self):
        slow = rekey_recovery_time(PAPER_COSTS, rtt=0.1, n_sas=1)
        fast = rekey_recovery_time(PAPER_COSTS, rtt=0.001, n_sas=1)
        assert slow - fast == pytest.approx(4.5 * (0.1 - 0.001))

    def test_messages_lost_during_outage(self):
        assert messages_lost_during_outage(0.001, 4e-6) == 250

    def test_messages_lost_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            messages_lost_during_outage(1.0, 0.0)
