"""Tests for the receiver endpoints (Sections 2 and 4, process q)."""

import pytest

from repro.core.receiver import SaveFetchReceiver, UnprotectedReceiver
from repro.ipsec.costs import CostModel
from repro.ipsec.replay_window import Verdict
from repro.net.message import Message


@pytest.fixture
def costs():
    return CostModel(t_save=100e-6, t_send=4e-6, t_fetch=0.0)


def msg(seq: int) -> Message:
    return Message(seq=seq)


class TestUnprotectedReceiver:
    def test_delivers_in_order_stream(self, engine, costs):
        receiver = UnprotectedReceiver(engine, "q", w=8, costs=costs)
        delivered = []
        receiver.on_deliver = lambda seq, payload: delivered.append(seq)
        for seq in range(1, 6):
            receiver.on_receive(msg(seq))
        assert delivered == [1, 2, 3, 4, 5]
        assert receiver.right_edge == 5

    def test_discards_duplicates(self, engine, costs):
        receiver = UnprotectedReceiver(engine, "q", w=8, costs=costs)
        receiver.on_receive(msg(3))
        receiver.on_receive(msg(3))
        assert receiver.delivered_total == 1
        assert receiver.verdict_counts[Verdict.DUPLICATE] == 1

    def test_reset_loses_window(self, engine, costs):
        receiver = UnprotectedReceiver(engine, "q", w=8, costs=costs)
        for seq in range(1, 20):
            receiver.on_receive(msg(seq))
        receiver.reset(down_for=0.01)
        engine.run()
        # Cold window: the old traffic is acceptable again (the Section 3
        # failure this class exists to demonstrate).
        receiver.on_receive(msg(1))
        assert receiver.delivered_total == 20
        record = receiver.reset_records[0]
        assert record.right_edge_at_reset == 19
        assert record.resumed_right_edge == 0

    def test_down_drops(self, engine, costs):
        receiver = UnprotectedReceiver(engine, "q", w=8, costs=costs)
        receiver.reset(down_for=None)
        receiver.on_receive(msg(1))
        assert receiver.dropped_while_down == 1
        receiver.wake()
        receiver.on_receive(msg(1))
        assert receiver.delivered_total == 1

    def test_window_impl_selectable(self, engine, costs):
        from repro.ipsec.replay_window import ArrayReplayWindow

        receiver = UnprotectedReceiver(
            engine, "q", w=8, window_impl="array", costs=costs
        )
        assert isinstance(receiver.window, ArrayReplayWindow)

    def test_bad_window_impl_rejected(self, engine, costs):
        with pytest.raises(ValueError, match="unknown window impl"):
            UnprotectedReceiver(engine, "q", w=8, window_impl="magic", costs=costs)


class TestSaveFetchReceiverSaves:
    def test_background_save_every_k_advance(self, engine, costs):
        receiver = SaveFetchReceiver(engine, "q", k=10, w=8, costs=costs)
        for seq in range(1, 10):
            receiver.on_receive(msg(seq))
        assert receiver.store.saves_started == 0
        receiver.on_receive(msg(10))  # r = 10 >= 10 + 0
        assert receiver.store.saves_started == 1
        assert receiver.lst == 10

    def test_save_triggered_by_jump(self, engine, costs):
        receiver = SaveFetchReceiver(engine, "q", k=10, w=8, costs=costs)
        receiver.on_receive(msg(35))  # single message jumps r past k
        assert receiver.store.saves_started == 1
        assert receiver.lst == 35


class TestSaveFetchReceiverRecovery:
    def drive(self, engine, receiver, upto: int) -> None:
        for seq in range(1, upto + 1):
            receiver.on_receive(msg(seq))
        engine.run(until=engine.now + 1.0)  # commit outstanding saves

    def test_wake_fetches_leaps_and_floods(self, engine, costs):
        receiver = SaveFetchReceiver(engine, "q", k=10, w=8, costs=costs)
        self.drive(engine, receiver, 23)
        receiver.reset(down_for=0.001)
        engine.run(until=engine.now + 1.0)
        record = receiver.reset_records[0]
        assert record.fetched == 20
        assert record.resumed_right_edge == 40
        assert receiver.right_edge == 40
        # Everything at or below the resumed edge is assumed received.
        receiver.on_receive(msg(40))
        receiver.on_receive(msg(35))
        assert receiver.delivered_total == 23
        # The next fresh number is deliverable.
        receiver.on_receive(msg(41))
        assert receiver.delivered_total == 24

    def test_wake_buffering_until_save_commits(self, engine, costs):
        """Section 4: messages during the wake SAVE go to a buffer."""
        receiver = SaveFetchReceiver(engine, "q", k=10, w=8, costs=costs)
        self.drive(engine, receiver, 23)
        receiver.reset(down_for=0.0)
        engine.run(max_events=1)  # wake fires; sync save in flight
        assert receiver.is_up and receiver.wait
        receiver.on_receive(msg(41))
        receiver.on_receive(msg(42))
        assert receiver.delivered_total == 23  # buffered, not processed
        assert receiver.reset_records[0].buffered_during_wake == 2
        engine.run(until=engine.now + 1.0)
        assert receiver.delivered_total == 25  # drained in order
        assert [seq for _, seq in receiver.delivered_log[-2:]] == [41, 42]

    def test_buffer_lost_if_second_reset_hits(self, engine, costs):
        receiver = SaveFetchReceiver(engine, "q", k=10, w=8, costs=costs)
        self.drive(engine, receiver, 23)
        receiver.reset(down_for=0.0)
        engine.run(max_events=1)
        receiver.on_receive(msg(41))
        receiver.reset(down_for=0.0)  # second reset during recovery
        engine.run(until=engine.now + 1.0)
        # The buffered message died with the host; no double delivery.
        assert receiver.delivered_total == 23

    def test_wake_save_persists_leaped_edge(self, engine, costs):
        receiver = SaveFetchReceiver(engine, "q", k=10, w=8, costs=costs)
        self.drive(engine, receiver, 23)
        receiver.reset(down_for=0.0)
        engine.run(until=engine.now + 1.0)
        assert receiver.store.committed_value == 40

    def test_replay_of_entire_history_rejected_after_wake(self, engine, costs):
        receiver = SaveFetchReceiver(engine, "q", k=10, w=8, costs=costs)
        history = [msg(seq) for seq in range(1, 24)]
        for packet in history:
            receiver.on_receive(packet)
        engine.run(until=engine.now + 1.0)
        receiver.reset(down_for=0.0)
        engine.run(until=engine.now + 1.0)
        before = receiver.delivered_total
        for packet in history:
            receiver.on_receive(packet)
        assert receiver.delivered_total == before

    def test_fresh_discards_bounded_by_2k(self, engine, costs):
        receiver = SaveFetchReceiver(engine, "q", k=10, w=8, costs=costs)
        self.drive(engine, receiver, 23)
        receiver.reset(down_for=0.0)
        engine.run(until=engine.now + 1.0)
        # Fresh messages 24..40 look replayed (<= resumed edge 40): that is
        # at most 2k = 20 losses; 41 is accepted.
        discarded = 0
        for seq in range(24, 42):
            before = receiver.delivered_total
            receiver.on_receive(msg(seq))
            if receiver.delivered_total == before:
                discarded += 1
        assert discarded == 17
        assert discarded <= 20

    def test_resume_listener_fires_after_drain(self, engine, costs):
        receiver = SaveFetchReceiver(engine, "q", k=10, w=8, costs=costs)
        self.drive(engine, receiver, 23)
        receiver.reset(down_for=0.0)
        engine.run(max_events=1)
        order = []
        receiver.add_resume_listener(lambda: order.append("resumed"))
        receiver.on_receive(msg(41))
        receiver.on_deliver = lambda seq, payload: order.append(seq)
        engine.run(until=engine.now + 1.0)
        assert order == [41, "resumed"]

    def test_rejects_bad_k(self, engine, costs):
        with pytest.raises(ValueError):
            SaveFetchReceiver(engine, "q", k=0, costs=costs)
