"""Tests for run scoring / convergence reports."""

from repro.core.convergence import score_run
from repro.core.protocol import build_protocol


class TestScoring:
    def test_clean_run_converged(self):
        harness = build_protocol()
        harness.sender.start_traffic(count=100)
        harness.run(until=1.0)
        report = score_run(harness.auditor, harness.sender, harness.receiver)
        assert report.converged
        assert report.sender_resets == 0
        assert "CONVERGED" in report.summary()

    def test_gap_violation_detected(self):
        """Ablated leap (0) produces reuse, which the scorer flags."""
        harness = build_protocol(leap_factor=0)
        harness.sender.start_traffic(count=200)
        harness.engine.call_at(0.0003, harness.sender.reset, 0.0001)
        harness.run(until=1.0)
        report = harness.score()
        assert not report.converged
        assert any("reused" in v for v in report.bound_violations)

    def test_unprotected_not_held_to_bounds(self):
        harness = build_protocol(protected=False)
        harness.sender.start_traffic(count=200)
        harness.engine.call_at(0.0003, harness.sender.reset, 0.0001)
        harness.run(until=1.0)
        report = harness.score()
        # The unprotected sender reuses numbers, but the paper makes no
        # claim for it; the scorer records, it does not flag.
        assert report.sender_resets == 1
        assert not report.bound_violations

    def test_check_bounds_false_never_flags(self):
        harness = build_protocol(leap_factor=0)
        harness.sender.start_traffic(count=200)
        harness.engine.call_at(0.0003, harness.sender.reset, 0.0001)
        harness.run(until=1.0)
        report = harness.score(check_bounds=False)
        assert not report.bound_violations

    def test_time_to_converge_measured(self):
        harness = build_protocol()
        harness.sender.start_traffic(count=1000)
        harness.engine.call_at(0.001, harness.receiver.reset, 0.0002)
        harness.run(until=1.0)
        report = harness.score()
        assert len(report.time_to_converge) == 1
        assert report.time_to_converge[0] >= 0

    def test_summary_mentions_gaps(self):
        harness = build_protocol()
        harness.sender.start_traffic(count=300)
        harness.engine.call_at(0.0005, harness.sender.reset, 0.0001)
        harness.run(until=1.0)
        text = harness.score().summary()
        assert "sender gaps=" in text
        assert "lost seqnums per reset=" in text

    def test_partial_scoring_without_receiver(self):
        harness = build_protocol()
        harness.sender.start_traffic(count=100)
        harness.run(until=1.0)
        report = score_run(harness.auditor, sender=harness.sender, receiver=None)
        assert report.receiver_resets == 0
