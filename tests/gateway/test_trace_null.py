"""NullTraceRecorder guards at gateway scale (PR satellite).

A 50-SA gateway multiplies every per-message trace site by N, so an
untraced run leaking even one record-per-delivery would quietly tax the
whole fleet.  Pin both properties: the untraced run records *nothing*,
and tracing is observation-only — the traced run's convergence reports
match the untraced run's bit for bit.
"""

from __future__ import annotations

from repro.core.convergence import report_metrics
from repro.gateway import Gateway, GatewayCrash
from repro.ipsec.costs import PAPER_COSTS
from repro.sim.trace import NULL_TRACE, TraceRecorder


def run_gateway(trace) -> "Gateway":
    gateway = Gateway(n_sas=50, k=50, store_policy="batched", trace=trace)
    GatewayCrash(after_sends=60, down_time=2 * PAPER_COSTS.t_save).apply(gateway)
    gateway.start_traffic(count=200)
    gateway.run(until=0.002)
    return gateway


class TestNullTraceAtGatewayScale:
    def test_untraced_50_sa_run_records_nothing_and_matches_traced(self):
        untraced = run_gateway(NULL_TRACE)
        recorder = TraceRecorder()
        traced = run_gateway(recorder)

        assert len(untraced.engine.trace) == 0
        # The traced run saw real per-message volume across all 50 SAs.
        assert recorder.count(kind="send") > 1000
        assert recorder.count(kind="reset") == 50

        untraced_reports = [
            report_metrics(o.report) for o in untraced.score().sa_outcomes
        ]
        traced_reports = [
            report_metrics(o.report) for o in traced.score().sa_outcomes
        ]
        assert untraced_reports == traced_reports
        assert untraced.score().metrics() == traced.score().metrics()
