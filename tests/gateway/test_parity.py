"""Acceptance pins for the gateway subsystem.

1. **Golden parity** — a ``gateway_crash`` with one SA is exactly the
   single-pair ``sender_reset`` scenario: same trigger, traffic budget
   and horizon, and (serial policy, uncontended) the shared store's
   timing is bit-identical to a private ``PersistentStore``.  The
   flattened per-SA ``ConvergenceReport`` must match field for field.

2. **Store determinism at scale** — a 50-SA crash grid run through the
   fleet writes byte-identical result stores modulo ``wall_time``
   across ``--jobs 1`` and ``--jobs 4``: the shared store's recovery
   ordering (the FETCH-storm queue) is part of the deterministic event
   schedule, not an artifact of execution parallelism.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.convergence import report_metrics
from repro.fleet.results import ResultStore
from repro.fleet.runner import FleetRunner
from repro.fleet.spec import CampaignSpec, ScenarioGrid
from repro.workloads.scenarios import (
    run_gateway_crash_scenario,
    run_sender_reset_scenario,
)


class TestGoldenParity:
    def test_one_sa_gateway_crash_is_exactly_sender_reset(self):
        single = run_sender_reset_scenario()  # all paper defaults
        gateway = run_gateway_crash_scenario(n_sas=1)  # all gateway defaults
        assert gateway["sa_reports"][0] == report_metrics(single.report)

    def test_one_sa_parity_holds_off_the_defaults(self):
        kwargs = dict(reset_after_sends=120, messages_after_reset=80, k=25)
        single = run_sender_reset_scenario(**kwargs)
        gateway = run_gateway_crash_scenario(
            n_sas=1, crash_after_sends=120, messages_after_reset=80, k=25
        )
        assert gateway["sa_reports"][0] == report_metrics(single.report)
        assert gateway["recovery_spreads"] == [0.0]


def canonical_lines(path: Path) -> list[str]:
    return [
        re.sub(r'"wall_time":[0-9eE.+-]+', '"wall_time":0', line)
        for line in path.read_text().splitlines()
    ]


class TestStoreDeterminismAtScale:
    def test_fifty_sa_crash_grid_identical_across_jobs_1_and_4(self, tmp_path):
        spec = CampaignSpec(
            name="gw-50sa",
            base_seed=2003,
            grids=(ScenarioGrid(
                scenario="gateway_crash",
                params={
                    "n_sas": 50,
                    "k": 50,
                    "store_policy": ["serial", "batched"],
                    "crash_after_sends": 60,
                    "messages_after_reset": 60,
                },
            ),),
        )
        stores = {}
        for jobs in (1, 4):
            store = ResultStore(tmp_path / f"jobs{jobs}" / "results.jsonl")
            outcome = FleetRunner(spec, store, jobs=jobs).run()
            assert len(outcome.executed) == 2
            assert {r.status for r in outcome.executed} == {"ok"}
            stores[jobs] = store
        assert canonical_lines(stores[1].path) == canonical_lines(stores[4].path)
        # The contention model really ran: 50 queued recovery fetches.
        records = list(stores[1].records())
        for record in records:
            assert record.metrics["n_sas"] == 50
            assert record.metrics["store"]["fetches"] == 50
            assert max(record.metrics["recovery_spreads"]) > 0
