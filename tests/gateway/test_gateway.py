"""Tests for the Gateway node: lifecycle, correlated faults, scoring."""

from __future__ import annotations

import pytest

from repro.gateway import (
    Gateway,
    GatewayCrash,
    RollingRestart,
    SAChurn,
    fault_from_dict,
)
from repro.ipsec.costs import PAPER_COSTS

T_SAVE = PAPER_COSTS.t_save
T_SEND = PAPER_COSTS.t_send


def run_crash_gateway(n_sas: int = 4, policy: str = "batched", **kwargs):
    gateway = Gateway(n_sas=n_sas, k=50, store_policy=policy, **kwargs)
    GatewayCrash(after_sends=100, down_time=2 * T_SAVE).apply(gateway)
    gateway.start_traffic(count=400)
    gateway.run(until=500 * T_SEND + 20 * T_SAVE + n_sas * T_SAVE)
    return gateway


class TestConstruction:
    def test_builds_n_independent_pairs_on_one_engine(self):
        gateway = Gateway(n_sas=3)
        assert len(gateway.sas) == 3
        engines = {unit.harness.engine for unit in gateway.sas}
        assert engines == {gateway.engine}
        senders = {unit.harness.sender.name for unit in gateway.sas}
        assert senders == {"p0", "p1", "p2"}

    def test_protected_sas_share_the_store_device(self):
        gateway = Gateway(n_sas=3)
        stores = {unit.gateway_end.store.shared for unit in gateway.sas}
        assert stores == {gateway.store}

    def test_remote_side_keeps_private_stores(self):
        gateway = Gateway(n_sas=2)
        for unit in gateway.sas:
            assert not hasattr(unit.remote_end.store, "shared")

    def test_receiver_side_gateway(self):
        gateway = Gateway(n_sas=2, side="receiver")
        for unit in gateway.sas:
            assert unit.gateway_end is unit.harness.receiver
            assert unit.gateway_end.store.shared is gateway.store

    def test_default_k_follows_the_sizing_rule(self):
        assert Gateway(n_sas=1).k == 25
        assert Gateway(n_sas=4).k == 100  # serial scales with N
        assert Gateway(n_sas=16, store_policy="batched").k == 50
        assert Gateway(n_sas=16, store_policy="write_ahead").k == 100

    def test_default_k_keeps_the_guarantees_at_scale(self):
        gateway = Gateway(n_sas=16, store_policy="write_ahead")
        GatewayCrash(after_sends=200, down_time=2 * T_SAVE).apply(gateway)
        gateway.start_traffic(count=600)
        gateway.run(until=0.01)
        report = gateway.score()
        assert report.converged, report.bound_violations
        assert min(report.sa_outcomes[0].report.lost_seqnums_per_reset) >= 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="n_sas"):
            Gateway(n_sas=0)
        with pytest.raises(ValueError, match="unknown gateway side"):
            Gateway(n_sas=1, side="middle")
        with pytest.raises(ValueError, match="unknown store policy"):
            Gateway(n_sas=1, store_policy="mmap")


class TestGatewayCrash:
    def test_crash_resets_every_sa_at_the_same_instant(self):
        gateway = run_crash_gateway(n_sas=4)
        reset_times = {
            unit.gateway_end.reset_records[0].reset_time
            for unit in gateway.sas
        }
        assert len(reset_times) == 1
        assert gateway.crash_times == [reset_times.pop()]
        assert gateway.store.crashes == 1

    def test_all_sas_recover_and_converge(self):
        gateway = run_crash_gateway(n_sas=4)
        report = gateway.score()
        assert report.converged
        assert report.replays_accepted == 0
        assert report.n_sas == 4
        assert report.gateway_crashes == 1

    def test_recovery_spread_reflects_fetch_storm(self):
        serial = run_crash_gateway(n_sas=4, policy="serial").score()
        solo = run_crash_gateway(n_sas=1, policy="serial").score()
        assert solo.recovery_spreads == [0.0]
        # Four SAs fetch back-to-back: the last resumes ~3 fetches later.
        assert serial.recovery_spreads[0] == pytest.approx(
            3 * PAPER_COSTS.t_fetch
        )

    def test_batched_policy_flattens_the_spread(self):
        serial = run_crash_gateway(n_sas=4, policy="serial").score()
        batched = run_crash_gateway(n_sas=4, policy="batched").score()
        assert batched.recovery_spreads[0] < serial.recovery_spreads[0]
        assert batched.store_stats["batched_saves"] > 0

    def test_receiver_side_crash_converges_with_queued_recovery(self):
        from repro.workloads.scenarios import run_gateway_crash_scenario

        metrics = run_gateway_crash_scenario(
            n_sas=4, side="receiver",
            crash_after_sends=150, messages_after_reset=150,
        )
        assert metrics["converged"]
        assert metrics["receiver_resets"] == 4
        assert metrics["sender_resets"] == 0
        assert max(metrics["recovery_spreads"]) > 0

    def test_at_time_trigger(self):
        gateway = Gateway(n_sas=2, k=50)
        GatewayCrash(at=0.001, down_time=2 * T_SAVE).apply(gateway)
        gateway.start_traffic(count=500)
        gateway.run(until=0.004)
        assert gateway.crash_times == [0.001]

    def test_fault_override_with_long_outage_still_exercises_recovery(self):
        from repro.workloads.scenarios import run_gateway_crash_scenario

        # The override's 50ms outage dwarfs the scenario default
        # (2 * t_save = 200us); the budget/horizon must follow the fault
        # or the run ends mid-outage with convergence untested.
        metrics = run_gateway_crash_scenario(
            n_sas=2,
            crash_after_sends=60,
            messages_after_reset=60,
            fault=GatewayCrash(after_sends=60, down_time=0.05),
        )
        assert metrics["gateway_crashes"] == 1
        # Recovery completed: the spread was measured, every SA's reset
        # resolved to a resumed sequence (lost_seqnums requires resume),
        # and traffic flowed after the outage.
        assert metrics["recovery_spreads"]
        assert len(metrics["lost_seqnums_per_reset"]) == 2
        assert metrics["delivered_uids"] > 2 * 60
        assert metrics["converged"]

    def test_trigger_must_be_exactly_one(self):
        gateway = Gateway(n_sas=1)
        with pytest.raises(ValueError, match="exactly one trigger"):
            GatewayCrash().apply(gateway)
        with pytest.raises(ValueError, match="exactly one trigger"):
            GatewayCrash(at=0.1, after_sends=5).apply(gateway)


class TestRollingRestart:
    def test_resets_are_staggered_not_correlated(self):
        gateway = Gateway(n_sas=3, k=75)
        stagger = 4 * T_SAVE
        RollingRestart(at=0.001, stagger=stagger, down_time=T_SAVE).apply(gateway)
        gateway.start_traffic(count=800)
        gateway.run(until=0.006)
        times = [
            unit.gateway_end.reset_records[0].reset_time
            for unit in gateway.sas
        ]
        assert times == pytest.approx([0.001, 0.001 + stagger, 0.001 + 2 * stagger])
        assert gateway.store.crashes == 0  # the store stays up
        report = gateway.score()
        assert report.converged
        # The wave's recovery spread is measured; it carries the stagger
        # (minus whatever queueing hit the earlier SAs' recoveries).
        assert len(report.recovery_spreads) == 1
        assert report.recovery_spreads[0] > stagger


class TestSAChurn:
    def test_crash_aborts_churned_out_sas_queued_saves(self):
        gateway = Gateway(n_sas=2, k=50)
        gateway.start_traffic(count=100)
        gateway.run(until=55 * T_SEND)  # first background saves in flight
        retired = gateway.live_sas()[0]
        gateway.tear_down_sa(retired)
        retired_store = retired.gateway_end.store
        if not retired_store.save_in_flight:
            retired_store.begin_save(999)
        gateway.crash(down_for=2 * T_SAVE)
        assert not retired_store.save_in_flight
        committed_at_crash = retired_store.committed_value
        gateway.run(until=0.01)
        # The retired SA's queued write died with the device queue.
        assert retired_store.committed_value == committed_at_crash

    def test_cycles_retire_and_establish(self):
        gateway = Gateway(n_sas=2, k=75)
        SAChurn(start=0.0005, interval=0.0005, cycles=2, messages=100).apply(gateway)
        gateway.start_traffic(count=200)
        gateway.run(until=0.004)
        assert gateway.churn_events == 2
        assert len(gateway.sas) == 4
        assert len(gateway.live_sas()) == 2
        retired = [unit for unit in gateway.sas if not unit.live]
        assert [unit.index for unit in retired] == [0, 1]
        assert all(unit.torn_down_at is not None for unit in retired)
        assert gateway.score().converged

    def test_churned_sa_uses_traffic_defaults_interval(self):
        gateway = Gateway(n_sas=1, k=75)
        gateway.start_traffic(count=50, interval=2 * T_SEND)
        gateway.engine.run(until=10 * T_SEND)
        created = gateway.churn(messages=30)
        gateway.run(until=0.01)
        assert created.traffic == {"count": 30, "interval": 2 * T_SEND}
        assert created.harness.sender.sent_total == 30


class TestFaultRoundTrip:
    def test_every_kind_round_trips(self):
        faults = [
            GatewayCrash(after_sends=10, down_time=0.001),
            RollingRestart(at=0.5, stagger=0.002),
            SAChurn(start=0.1, interval=0.2, cycles=3, messages=50),
        ]
        for fault in faults:
            rebuilt = fault_from_dict(fault.to_dict())
            assert rebuilt == fault

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown gateway fault kind"):
            fault_from_dict({"kind": "meteor"})


class TestDeterminism:
    def test_same_configuration_twice_is_identical(self):
        a = run_crash_gateway(n_sas=4, policy="serial").score().metrics()
        b = run_crash_gateway(n_sas=4, policy="serial").score().metrics()
        assert a == b

    def test_metrics_are_json_safe(self):
        import json

        metrics = run_crash_gateway(n_sas=2).score().metrics()
        assert json.loads(json.dumps(metrics)) == metrics


class TestPulseAll:
    def test_pulse_sends_n_on_every_live_sa(self):
        gateway = Gateway(n_sas=3)
        assert gateway.pulse_all(5) == 15
        gateway.run(until=1.0)
        for unit in gateway.sas:
            assert unit.harness.sender.sent_total == 5
            assert unit.harness.receiver.delivered_total == 5

    def test_pulse_default_is_one(self):
        gateway = Gateway(n_sas=4)
        assert gateway.pulse_all() == 4

    def test_pulse_matches_burst_deliveries(self):
        # The batched fan-out must deliver exactly what per-message
        # bursts deliver on an identical gateway.
        pulsed = Gateway(n_sas=2, seed=77)
        pulsed.pulse_all(20)
        pulsed.run(until=1.0)
        bursted = Gateway(n_sas=2, seed=77)
        for unit in bursted.sas:
            unit.harness.sender.send_burst(20)
        bursted.run(until=1.0)
        for a, b in zip(pulsed.sas, bursted.sas):
            assert (a.harness.receiver.delivered_total
                    == b.harness.receiver.delivered_total)
            assert (a.harness.sender.last_sent_seq
                    == b.harness.sender.last_sent_seq)
