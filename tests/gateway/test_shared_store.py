"""Unit tests for the shared persistence device (repro.gateway.store)."""

from __future__ import annotations

import pytest

from repro.gateway.store import (
    STORE_POLICIES,
    WAL_APPEND_FRACTION,
    WAL_SCAN_FACTOR,
    SharedStore,
    safe_save_interval,
)
from repro.ipsec.costs import PAPER_COSTS
from repro.sim.engine import Engine
from repro.sim.trace import NULL_TRACE

T_SAVE = PAPER_COSTS.t_save
T_FETCH = PAPER_COSTS.t_fetch


def make_store(policy: str = "serial") -> tuple[Engine, SharedStore]:
    engine = Engine(trace=NULL_TRACE)
    return engine, SharedStore(engine, costs=PAPER_COSTS, policy=policy)


class TestSerialPolicy:
    def test_uncontended_save_matches_private_store_timing(self):
        engine, store = make_store()
        client = store.client("disk:p0", initial_value=1)
        record = client.begin_save(10)
        assert record.commit_due_at == pytest.approx(T_SAVE)
        engine.run(until=T_SAVE)
        assert record.committed
        assert client.committed_value == 10

    def test_contended_saves_serialize_fifo(self):
        engine, store = make_store()
        a = store.client("disk:p0")
        b = store.client("disk:p1")
        first = a.begin_save(5)
        second = b.begin_save(7)
        assert first.commit_due_at == pytest.approx(T_SAVE)
        assert second.commit_due_at == pytest.approx(2 * T_SAVE)
        engine.run(until=3 * T_SAVE)
        assert a.committed_value == 5
        assert b.committed_value == 7
        assert store.max_save_wait == pytest.approx(T_SAVE)

    def test_fetch_storm_queues(self):
        _, store = make_store()
        clients = [store.client(f"disk:p{i}") for i in range(4)]
        delays = [client.shared.reserve_fetch() for client in clients]
        assert delays == pytest.approx(
            [T_FETCH, 2 * T_FETCH, 3 * T_FETCH, 4 * T_FETCH]
        )
        assert store.max_fetch_wait == pytest.approx(3 * T_FETCH)

    def test_client_fetch_charges_queue_delay(self):
        _, store = make_store()
        a = store.client("disk:p0", initial_value=3)
        b = store.client("disk:p1", initial_value=9)
        assert a.fetch() == 3
        assert b.fetch() == 9
        assert a.fetch_delay() == pytest.approx(T_FETCH)
        assert b.fetch_delay() == pytest.approx(2 * T_FETCH)

    def test_values_stay_per_client(self):
        engine, store = make_store()
        a = store.client("disk:p0", initial_value=1)
        b = store.client("disk:p1", initial_value=1)
        a.begin_save(100)
        b.begin_save(200)
        engine.run(until=3 * T_SAVE)
        assert (a.committed_value, b.committed_value) == (100, 200)


class TestBatchedPolicy:
    def test_saves_behind_busy_device_coalesce(self):
        engine, store = make_store("batched")
        clients = [store.client(f"disk:p{i}") for i in range(4)]
        leader = clients[0].begin_save(1)  # device idle: starts writing now
        followers = [c.begin_save(2) for c in clients[1:]]
        # The three followers form one batch scheduled behind the leader.
        assert leader.commit_due_at == pytest.approx(T_SAVE)
        assert all(
            record.commit_due_at == pytest.approx(2 * T_SAVE)
            for record in followers
        )
        assert store.batches == 1
        assert store.batched_saves == 2  # joins beyond the batch opener
        assert store.device_writes == 2
        engine.run(until=3 * T_SAVE)
        assert all(c.committed_value == 2 for c in clients[1:])

    def test_batch_closes_once_write_starts(self):
        engine, store = make_store("batched")
        a = store.client("disk:p0")
        b = store.client("disk:p1")
        a.begin_save(1)
        batched = b.begin_save(2)  # waits, commits at 2 * T_SAVE
        engine.run(until=batched.commit_due_at)
        late = a.begin_save(3)  # batch already started: a fresh write
        assert late.commit_due_at == pytest.approx(3 * T_SAVE)

    def test_uncontended_batched_equals_serial(self):
        _, store = make_store("batched")
        client = store.client("disk:p0")
        record = client.begin_save(4)
        assert record.commit_due_at == pytest.approx(T_SAVE)
        assert store.batches == 0


class TestWriteAheadPolicy:
    def test_append_is_cheap_and_fetch_is_expensive(self):
        _, store = make_store("write_ahead")
        client = store.client("disk:p0")
        record = client.begin_save(4)
        assert record.commit_due_at == pytest.approx(
            T_SAVE * WAL_APPEND_FRACTION
        )
        client.fetch()
        assert client.fetch_delay() == pytest.approx(
            T_SAVE * WAL_APPEND_FRACTION + T_FETCH * WAL_SCAN_FACTOR
        )


class TestCrash:
    def test_device_crash_frees_the_queue(self):
        _, store = make_store()
        a = store.client("disk:p0")
        a.begin_save(5)
        a.begin_save(6)
        store.crash()
        a.crash()  # endpoint-side abort of a's in-flight records
        assert not a.save_in_flight
        # The recovery fetch finds an idle device.
        a.fetch()
        assert a.fetch_delay() == pytest.approx(T_FETCH)

    def test_client_crash_leaves_other_clients_in_flight(self):
        engine, store = make_store()
        a = store.client("disk:p0")
        b = store.client("disk:p1")
        a.begin_save(5)
        record_b = b.begin_save(7)
        a.crash()
        assert not a.save_in_flight
        assert b.save_in_flight
        engine.run(until=3 * T_SAVE)
        assert record_b.committed
        assert b.committed_value == 7
        assert a.committed_value == 0  # aborted save never committed


class TestSizingRule:
    def test_one_sa_is_the_papers_interval_for_every_policy(self):
        for policy in STORE_POLICIES:
            assert safe_save_interval(1, policy=policy) == 25

    def test_serial_scales_linearly(self):
        assert safe_save_interval(4) == 100
        assert safe_save_interval(50) == 1250

    def test_batched_caps_at_two_saves(self):
        assert safe_save_interval(4, policy="batched") == 50
        assert safe_save_interval(50, policy="batched") == 50

    def test_write_ahead_scales_by_append_fraction(self):
        assert safe_save_interval(16, policy="write_ahead") == 100
        assert safe_save_interval(50, policy="write_ahead") == 313

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown store policy"):
            safe_save_interval(4, policy="mmap")
        engine = Engine(trace=NULL_TRACE)
        with pytest.raises(ValueError, match="unknown store policy"):
            SharedStore(engine, policy="mmap")


class TestLoadDependentSaveDuration:
    """The load_factor hook: SAVE duration grows linearly with the queue."""

    def test_default_off_is_the_fixed_upper_bound(self):
        engine, store = make_store()
        assert store.load_factor == 0.0
        a = store.client("disk:p0")
        b = store.client("disk:p1")
        a.begin_save(10)
        record = b.begin_save(20)  # queued behind a's write
        assert record.commit_due_at == pytest.approx(2 * T_SAVE)
        assert store.busy_time == pytest.approx(2 * T_SAVE)

    def test_queued_write_slows_by_its_wait(self):
        engine = Engine(trace=NULL_TRACE)
        store = SharedStore(engine, costs=PAPER_COSTS, load_factor=0.5)
        a = store.client("disk:p0")
        b = store.client("disk:p1")
        first = a.begin_save(10)  # uncontended: no wait, no surcharge
        assert first.commit_due_at == pytest.approx(T_SAVE)
        second = b.begin_save(20)  # waits T_SAVE -> +0.5 * T_SAVE duration
        assert second.commit_due_at == pytest.approx(T_SAVE + 1.5 * T_SAVE)

    def test_deep_queue_degrades_super_linearly(self):
        engine = Engine(trace=NULL_TRACE)
        store = SharedStore(engine, costs=PAPER_COSTS, load_factor=0.5)
        clients = [store.client(f"disk:p{i}") for i in range(4)]
        commits = [c.begin_save(5).commit_due_at for c in clients]
        # Each write waits out everything ahead of it *including* the
        # surcharges already accumulated: 1, 2.5, 4.75, 8.125 x T_SAVE.
        assert commits == pytest.approx(
            [T_SAVE, 2.5 * T_SAVE, 4.75 * T_SAVE, 8.125 * T_SAVE]
        )

    def test_uncontended_timing_unchanged_at_any_factor(self):
        engine = Engine(trace=NULL_TRACE)
        store = SharedStore(engine, costs=PAPER_COSTS, load_factor=2.0)
        client = store.client("disk:p0")
        record = client.begin_save(10)
        assert record.commit_due_at == pytest.approx(T_SAVE)

    def test_rejects_negative_factor(self):
        engine = Engine(trace=NULL_TRACE)
        with pytest.raises(ValueError, match="load_factor"):
            SharedStore(engine, costs=PAPER_COSTS, load_factor=-0.1)

    def test_scenario_forwarding(self):
        from repro.workloads.scenarios import run_gateway_crash_scenario

        base = run_gateway_crash_scenario(
            n_sas=4, k=25, crash_after_sends=60, messages_after_reset=60,
        )
        loaded = run_gateway_crash_scenario(
            n_sas=4, k=25, crash_after_sends=60, messages_after_reset=60,
            store_load_factor=0.5,
        )
        # Under-provisioned K with load-dependent saves keeps the device
        # busier than the fixed-bound model says.
        assert loaded["store"]["busy_time"] > base["store"]["busy_time"]
