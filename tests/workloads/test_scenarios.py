"""Tests for the named scenarios."""

from repro.workloads.scenarios import (
    run_dual_reset_scenario,
    run_receiver_reset_scenario,
    run_sender_reset_scenario,
)


class TestSenderResetScenario:
    def test_protected_converges(self):
        result = run_sender_reset_scenario(
            protected=True, k=25, reset_after_sends=100, messages_after_reset=100
        )
        assert result.report.converged, result.report.bound_violations
        assert result.report.sender_resets == 1
        assert result.report.fresh_discarded == 0

    def test_reset_placement_exact(self):
        result = run_sender_reset_scenario(
            protected=True, k=25, reset_after_sends=137, messages_after_reset=50
        )
        assert result.harness.sender.reset_records[0].last_used_seq == 137

    def test_unprotected_discards_fresh(self):
        result = run_sender_reset_scenario(
            protected=False, k=25, reset_after_sends=200, messages_after_reset=150
        )
        assert result.report.fresh_discarded >= 150

    def test_ablated_leap_flagged(self):
        result = run_sender_reset_scenario(
            protected=True, k=25, reset_after_sends=100, messages_after_reset=100,
            leap_factor=0,
        )
        assert not result.report.converged


class TestReceiverResetScenario:
    def test_protected_rejects_history_replay(self):
        result = run_receiver_reset_scenario(
            protected=True,
            k=25,
            reset_after_receives=150,
            messages_after_reset=0,
            replay_history_after=True,
        )
        assert result.harness.adversary is not None
        assert result.harness.adversary.injections >= 150
        assert result.report.replays_accepted == 0

    def test_unprotected_accepts_history_replay(self):
        result = run_receiver_reset_scenario(
            protected=False,
            k=25,
            reset_after_receives=150,
            messages_after_reset=0,
            replay_history_after=True,
        )
        assert result.report.replays_accepted >= 150

    def test_discards_bounded(self):
        result = run_receiver_reset_scenario(
            protected=True, k=25, reset_after_receives=150, messages_after_reset=200
        )
        assert result.report.fresh_discarded <= 50


class TestDualResetScenario:
    def test_protected_survives_window_jump(self):
        result = run_dual_reset_scenario(
            protected=True, k=25, reset_after_sends=200, messages_after_reset=200
        )
        assert result.report.replays_accepted == 0
        assert result.report.fresh_discarded <= 50

    def test_unprotected_desynchronised_by_window_jump(self):
        result = run_dual_reset_scenario(
            protected=False, k=25, reset_after_sends=300, messages_after_reset=250
        )
        assert result.report.fresh_discarded > 100

    def test_stagger_parameter(self):
        result = run_dual_reset_scenario(
            protected=True,
            k=25,
            reset_after_sends=200,
            stagger=0.001,
            messages_after_reset=200,
        )
        assert result.report.sender_resets == 1
        assert result.report.receiver_resets == 1
