"""Tests for the named scenarios."""

import pytest

from repro.workloads.scenarios import (
    SCENARIOS,
    get_scenario,
    run_dual_reset_scenario,
    run_loss_reset_scenario,
    run_receiver_reset_scenario,
    run_sender_reset_scenario,
)


class TestSenderResetScenario:
    def test_protected_converges(self):
        result = run_sender_reset_scenario(
            protected=True, k=25, reset_after_sends=100, messages_after_reset=100
        )
        assert result.report.converged, result.report.bound_violations
        assert result.report.sender_resets == 1
        assert result.report.fresh_discarded == 0

    def test_reset_placement_exact(self):
        result = run_sender_reset_scenario(
            protected=True, k=25, reset_after_sends=137, messages_after_reset=50
        )
        assert result.harness.sender.reset_records[0].last_used_seq == 137

    def test_unprotected_discards_fresh(self):
        result = run_sender_reset_scenario(
            protected=False, k=25, reset_after_sends=200, messages_after_reset=150
        )
        assert result.report.fresh_discarded >= 150

    def test_ablated_leap_flagged(self):
        result = run_sender_reset_scenario(
            protected=True, k=25, reset_after_sends=100, messages_after_reset=100,
            leap_factor=0,
        )
        assert not result.report.converged


class TestReceiverResetScenario:
    def test_protected_rejects_history_replay(self):
        result = run_receiver_reset_scenario(
            protected=True,
            k=25,
            reset_after_receives=150,
            messages_after_reset=0,
            replay_history_after=True,
        )
        assert result.harness.adversary is not None
        assert result.harness.adversary.injections >= 150
        assert result.report.replays_accepted == 0

    def test_unprotected_accepts_history_replay(self):
        result = run_receiver_reset_scenario(
            protected=False,
            k=25,
            reset_after_receives=150,
            messages_after_reset=0,
            replay_history_after=True,
        )
        assert result.report.replays_accepted >= 150

    def test_discards_bounded(self):
        result = run_receiver_reset_scenario(
            protected=True, k=25, reset_after_receives=150, messages_after_reset=200
        )
        assert result.report.fresh_discarded <= 50


class TestDualResetScenario:
    def test_protected_survives_window_jump(self):
        result = run_dual_reset_scenario(
            protected=True, k=25, reset_after_sends=200, messages_after_reset=200
        )
        assert result.report.replays_accepted == 0
        assert result.report.fresh_discarded <= 50

    def test_unprotected_desynchronised_by_window_jump(self):
        result = run_dual_reset_scenario(
            protected=False, k=25, reset_after_sends=300, messages_after_reset=250
        )
        assert result.report.fresh_discarded > 100

    def test_stagger_parameter(self):
        result = run_dual_reset_scenario(
            protected=True,
            k=25,
            reset_after_sends=200,
            stagger=0.001,
            messages_after_reset=200,
        )
        assert result.report.sender_resets == 1
        assert result.report.receiver_resets == 1


class TestLossResetScenario:
    def test_protected_pair_survives_loss_plus_reset(self):
        result = run_loss_reset_scenario(
            k=25, loss_rate=0.05, reset_after_sends=60,
            messages_after_reset=60, seed=9,
        )
        assert result.report.replays_accepted == 0
        assert result.report.sender_resets == 1
        # Outside the lossless hypothesis no Section 5 bound is checked.
        assert result.report.bound_violations == []

    def test_zero_loss_matches_plain_sender_reset_deliveries(self):
        lossless = run_loss_reset_scenario(
            loss_rate=0.0, reset_after_sends=60, messages_after_reset=60, seed=4,
        )
        assert lossless.report.audit.never_arrived == 0

    def test_deterministic_given_seed(self):
        kwargs = dict(loss_rate=0.1, reset_after_sends=50,
                      messages_after_reset=50, seed=21)
        a = run_loss_reset_scenario(**kwargs).report
        b = run_loss_reset_scenario(**kwargs).report
        assert a.audit.never_arrived == b.audit.never_arrived
        assert a.time_to_converge == b.time_to_converge


class TestScenarioRegistry:
    def test_registry_names_are_stable(self):
        assert set(SCENARIOS) == {
            "sender_reset", "receiver_reset", "dual_reset", "loss_reset",
            "reorder", "rekey", "staggered_reset", "prolonged_reset",
            "recovery_ablation", "reset_notice", "dpd", "save_policy",
            "loss_hole", "gateway_crash", "rolling_restart", "sa_churn",
            "nat_rebinding", "path_flap", "mobile_handover", "rekey_storm",
        }

    def test_every_run_callable_is_registered(self):
        # Acceptance invariant: every run_* scenario in the module is
        # reachable by name through the registry.
        import repro.workloads.scenarios as scenarios_module

        run_callables = {
            obj for name, obj in vars(scenarios_module).items()
            if name.startswith("run_") and name.endswith("_scenario")
        }
        assert run_callables == set(SCENARIOS.values())

    def test_get_scenario_returns_the_callable(self):
        assert get_scenario("sender_reset") is run_sender_reset_scenario

    def test_unknown_name_lists_known_scenarios(self):
        with pytest.raises(KeyError, match="known scenarios: dpd, dual_reset"):
            get_scenario("bogus")
