"""Tests for the traffic generators."""

import pytest

from repro.core.sender import UnprotectedSender
from repro.ipsec.costs import CostModel
from repro.net.link import Link
from repro.workloads.traffic import BurstyTraffic, ConstantRateTraffic, PoissonTraffic

FAST = CostModel(t_save=100e-6, t_send=4e-6)


@pytest.fixture
def sender(engine):
    received = []
    link = Link(engine, "link", sink=received.append)
    sender = UnprotectedSender(engine, "p", link, costs=FAST)
    sender.received = received  # type: ignore[attr-defined]
    return sender


class TestConstantRate:
    def test_exact_spacing(self, engine, sender):
        traffic = ConstantRateTraffic(engine, sender, interval=0.001)
        traffic.start(count=5)
        engine.run(until=1.0)
        times = [t for t, _ in ((m.sent_at, m) for m in sender.received)]
        assert times == pytest.approx([0.001 * i for i in range(1, 6)])

    def test_stop(self, engine, sender):
        traffic = ConstantRateTraffic(engine, sender, interval=0.001)
        traffic.start()
        engine.run(until=0.0055)
        traffic.stop()
        engine.run(until=1.0)
        assert len(sender.received) == 5

    def test_attempts_counted_even_when_suppressed(self, engine, sender):
        traffic = ConstantRateTraffic(engine, sender, interval=0.001)
        sender.reset(down_for=None)  # host down: sends suppressed
        traffic.start(count=3)
        engine.run(until=1.0)
        assert traffic.attempts == 3
        assert sender.received == []


class TestPoisson:
    def test_mean_rate(self, engine, sender):
        traffic = PoissonTraffic(engine, sender, rate=10_000, seed=1)
        traffic.start()
        engine.run(until=1.0)
        traffic.stop()
        assert 9_000 < len(sender.received) < 11_000

    def test_deterministic_under_seed(self, engine):
        def arrival_times(seed):
            from repro.sim.engine import Engine

            local = Engine()
            received = []
            link = Link(local, "link", sink=received.append)
            s = UnprotectedSender(local, "p", link, costs=FAST)
            traffic = PoissonTraffic(local, s, rate=1000, seed=seed)
            traffic.start(count=20)
            local.run(until=10.0)
            return [m.sent_at for m in received]

        assert arrival_times(3) == arrival_times(3)
        assert arrival_times(3) != arrival_times(4)


class TestBursty:
    def test_on_off_pattern(self, engine, sender):
        traffic = BurstyTraffic(
            engine, sender, burst_len=5, burst_interval=0.001, idle_time=0.1
        )
        traffic.start(count=10)
        engine.run(until=10.0)
        times = [m.sent_at for m in sender.received]
        assert len(times) == 10
        # A long idle gap separates the two bursts of five.
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert sum(1 for g in gaps if g > 0.05) == 1

    def test_validation(self, engine, sender):
        with pytest.raises(ValueError):
            BurstyTraffic(engine, sender, burst_len=0, burst_interval=1, idle_time=1)
