"""Breadth-first exhaustive state-space exploration.

Plain explicit-state model checking: a frontier queue, a visited set of
canonical states, invariant evaluation per state, and parent pointers so a
violation can be reported as a minimal-length counterexample trace (BFS
order guarantees minimality in steps).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.apn.core import ApnSystem, State, canon


@dataclass
class Violation:
    """One invariant violation with its shortest witness trace."""

    error: str
    state: State
    trace: list[str]  # action labels from the initial state

    def __str__(self) -> str:
        steps = " -> ".join(self.trace) if self.trace else "(initial state)"
        return f"{self.error}\n  via: {steps}"


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive exploration."""

    states_explored: int
    transitions_explored: int
    violations: list[Violation] = field(default_factory=list)
    truncated: bool = False  # hit max_states before exhausting the space

    @property
    def ok(self) -> bool:
        """No invariant violated anywhere reachable (and not truncated)."""
        return not self.violations and not self.truncated

    def summary(self) -> str:
        status = "OK" if self.ok else ("TRUNCATED" if self.truncated else "VIOLATED")
        lines = [
            f"{status}: {self.states_explored} states, "
            f"{self.transitions_explored} transitions"
        ]
        lines.extend(str(v) for v in self.violations[:5])
        return "\n".join(lines)


class StateExplorer:
    """Exhaustive BFS over an :class:`ApnSystem`'s reachable states.

    Args:
        system: the APN system to explore.
        max_states: safety valve; exploration stops (and reports
            ``truncated``) after visiting this many states.
        stop_at_first_violation: return as soon as one violation is found
            (with its shortest trace) instead of collecting all of them.
    """

    def __init__(
        self,
        system: ApnSystem,
        max_states: int = 2_000_000,
        stop_at_first_violation: bool = True,
    ) -> None:
        self.system = system
        self.max_states = max_states
        self.stop_at_first_violation = stop_at_first_violation

    def explore(self) -> ExplorationResult:
        """Run the exhaustive search; see :class:`ExplorationResult`."""
        initial = dict(self.system.initial)
        initial_key = canon(initial)
        visited: set = {initial_key}
        # parent[state_key] = (parent_key, label) for counterexample replay.
        parent: dict = {initial_key: None}
        frontier: deque = deque([initial])
        result = ExplorationResult(states_explored=0, transitions_explored=0)

        def trace_to(key) -> list[str]:
            labels: list[str] = []
            while parent[key] is not None:
                key, label = parent[key][0], parent[key][1]
                labels.append(label)
            labels.reverse()
            return labels

        def check(state: State, key) -> bool:
            """Record violations; returns True if exploration should stop."""
            for error in self.system.check_invariants(state):
                result.violations.append(
                    Violation(error=error, state=state, trace=trace_to(key))
                )
                if self.stop_at_first_violation:
                    return True
            return False

        if check(initial, initial_key):
            result.states_explored = 1
            return result

        while frontier:
            state = frontier.popleft()
            state_key = canon(state)
            result.states_explored += 1
            if result.states_explored > self.max_states:
                result.truncated = True
                break
            for transition in self.system.successors(state):
                result.transitions_explored += 1
                next_key = canon(transition.state)
                if next_key in visited:
                    continue
                visited.add(next_key)
                parent[next_key] = (state_key, transition.label)
                if check(transition.state, next_key):
                    return result
                frontier.append(transition.state)
        return result
