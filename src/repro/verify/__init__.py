"""Bounded model checking of the APN protocol specs (system S16).

:class:`~repro.verify.explorer.StateExplorer` walks *every* reachable
state of an :class:`~repro.apn.core.ApnSystem` (breadth-first, with a
visited set over canonical states) and checks the system's invariants on
each.  Because the APN receive action branches over every in-flight
message and the adversary over every recorded one, this covers all
reorders, losses, replays and reset placements the bounded configuration
permits.

Used two ways:

* against :func:`~repro.apn.specs.make_unprotected_system` it *finds* the
  Section 3 attacks as concrete counterexample traces (duplicate delivery
  after a q reset; sequence-number reuse after a p reset);
* against :func:`~repro.apn.specs.make_savefetch_system` it verifies that
  no reachable state violates Discrimination or reuses a sequence number
  — the Section 5 theorems, machine-checked for the bounded instance.
"""

from repro.verify.explorer import ExplorationResult, StateExplorer

__all__ = ["ExplorationResult", "StateExplorer"]
