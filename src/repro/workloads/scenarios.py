"""Named end-to-end scenarios composed from the protocol harness.

Each scenario runs one complete fault story and returns a
:class:`ScenarioResult` bundling the harness (for deeper inspection) with
the scored :class:`~repro.core.convergence.ConvergenceReport`.  The
experiment modules in :mod:`repro.experiments` sweep these over parameter
grids; tests pin individual cases.

All scenarios are deterministic given their arguments.  The module-level
:data:`SCENARIOS` registry maps stable names to the ``run_*`` callables so
that declarative drivers — the fleet campaign specs in
:mod:`repro.fleet` — can reference scenarios by string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.convergence import ConvergenceReport
from repro.core.protocol import ProtocolHarness, build_protocol
from repro.core.reset import reset_at_count
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.net.loss import BernoulliLoss


@dataclass
class ScenarioResult:
    """A finished scenario: the harness plus its scored report."""

    harness: ProtocolHarness
    report: ConvergenceReport


def _run_to_completion(harness: ProtocolHarness, horizon: float) -> None:
    harness.engine.run(until=horizon)
    if harness.reorder_stage is not None:
        harness.reorder_stage.flush()
        harness.engine.run(until=horizon)


def run_sender_reset_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    reset_after_sends: int = 500,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    leap_factor: int = 2,
    skip_wake_save: bool = False,
) -> ScenarioResult:
    """Claim (i) scenario: steady traffic, one sender reset, more traffic.

    The channel is in-order and lossless (the claim's hypothesis).  The
    reset lands immediately after the ``reset_after_sends``-th
    transmission; the sweep over that count is what traces Fig. 1, since
    it moves the reset across the SAVE cycle.
    """
    harness = build_protocol(
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        leap_factor=leap_factor,
        skip_wake_save=skip_wake_save,
    )
    if down_time is None:
        down_time = 2 * costs.t_save
    reset_at_count(harness.sender, reset_after_sends, down_for=down_time)
    total_attempts = reset_after_sends + messages_after_reset
    # Generous attempt budget: attempts during down/recovery are suppressed.
    slack = int(2 * down_time / costs.t_send) + 10 * k
    harness.sender.start_traffic(count=total_attempts + slack)
    horizon = (total_attempts + slack + 10) * costs.t_send + 10 * costs.t_save
    _run_to_completion(harness, horizon)
    return ScenarioResult(harness=harness, report=harness.score())


def run_receiver_reset_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    reset_after_receives: int = 500,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    leap_factor: int = 2,
    replay_history_after: bool = False,
) -> ScenarioResult:
    """Claim (ii) scenario: steady traffic, one receiver reset.

    With ``replay_history_after`` the Section 3 adversary replays the
    entire recorded history right after the receiver wakes — accepted
    wholesale by the unprotected receiver, rejected entirely by the
    SAVE/FETCH one.
    """
    harness = build_protocol(
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        leap_factor=leap_factor,
        with_adversary=True,
    )
    if down_time is None:
        down_time = 2 * costs.t_save
    reset_at_count(harness.receiver, reset_after_receives, down_for=down_time)

    # Fire the replay as soon as the receiver is back up (its window is
    # at its most vulnerable then).
    if replay_history_after:
        def on_wake_replay() -> None:
            assert harness.adversary is not None
            harness.adversary.replay_history(rate=1.0 / costs.t_recv)

        harness.receiver.add_resume_listener(on_wake_replay)

    # The sender is never suppressed by a *receiver* reset, so no slack:
    # exactly the messages lost to the downtime stay lost (they are
    # "never arrived", outside claim (ii)'s scope), and with
    # ``messages_after_reset=0`` the channel is quiet when the replay
    # lands — the Section 3 attack conditions.
    total_attempts = reset_after_receives + messages_after_reset
    harness.sender.start_traffic(count=total_attempts)
    horizon = (total_attempts + 10) * costs.t_send + down_time + 10 * costs.t_save
    replay_budget = (total_attempts + 10) * costs.t_recv
    _run_to_completion(harness, horizon + replay_budget)
    return ScenarioResult(harness=harness, report=harness.score())


def run_dual_reset_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    reset_after_sends: int = 500,
    stagger: float = 0.0,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    window_jump_attack: bool = True,
) -> ScenarioResult:
    """Section 5's third case: both p and q reset (optionally staggered).

    With ``window_jump_attack`` the adversary replays the
    highest-sequence recorded message right after q wakes — the Section 3
    attack that permanently desynchronises the unprotected pair by
    shifting q's right edge above p's restarted counter.
    """
    harness = build_protocol(
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        with_adversary=True,
    )
    if down_time is None:
        down_time = 2 * costs.t_save

    def dual_reset(sent_total: int, packet: object) -> None:
        if sent_total == reset_after_sends:
            harness.sender.reset(down_for=down_time)
            if stagger == 0.0:
                harness.receiver.reset(down_for=down_time)
            else:
                harness.engine.call_later(
                    stagger, harness.receiver.reset, down_time
                )

    harness.sender.add_send_listener(dual_reset)

    if window_jump_attack:
        def on_wake_jump() -> None:
            assert harness.adversary is not None
            harness.adversary.replay_max()

        harness.receiver.add_resume_listener(on_wake_jump)

    total_attempts = reset_after_sends + messages_after_reset
    slack = int(2 * (down_time + stagger) / costs.t_send) + 10 * k
    harness.sender.start_traffic(count=total_attempts + slack)
    horizon = (total_attempts + slack + 10) * costs.t_send + 10 * costs.t_save + stagger
    _run_to_completion(harness, horizon)
    return ScenarioResult(harness=harness, report=harness.score())


def run_loss_reset_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    loss_rate: float = 0.05,
    reset_after_sends: int = 500,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ScenarioResult:
    """Mixed fault story: Bernoulli channel loss plus one sender reset.

    Outside the paper's lossless hypothesis, so the run is scored without
    the Section 5 bound checks (the claims are conditioned on "no message
    loss"); the report still carries the raw gap / discard / replay
    counts, which is what loss-robustness campaigns aggregate.
    """
    harness = build_protocol(
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        loss=BernoulliLoss(loss_rate),
        with_adversary=True,
    )
    if down_time is None:
        down_time = 2 * costs.t_save
    reset_at_count(harness.sender, reset_after_sends, down_for=down_time)
    total_attempts = reset_after_sends + messages_after_reset
    slack = int(2 * down_time / costs.t_send) + 10 * k
    harness.sender.start_traffic(count=total_attempts + slack)
    horizon = (total_attempts + slack + 10) * costs.t_send + 10 * costs.t_save
    _run_to_completion(harness, horizon)
    return ScenarioResult(harness=harness, report=harness.score(check_bounds=False))


#: Stable scenario names for declarative drivers (fleet campaign specs).
SCENARIOS: dict[str, Callable[..., ScenarioResult]] = {
    "sender_reset": run_sender_reset_scenario,
    "receiver_reset": run_receiver_reset_scenario,
    "dual_reset": run_dual_reset_scenario,
    "loss_reset": run_loss_reset_scenario,
}


def get_scenario(name: str) -> Callable[..., ScenarioResult]:
    """Look up a scenario by registry name.

    Raises:
        KeyError: with the list of known names, if ``name`` is unknown.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None
