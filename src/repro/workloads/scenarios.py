"""Named end-to-end scenarios composed from the protocol harness.

Each scenario runs one complete fault story.  Harness-backed scenarios
return a :class:`ScenarioResult` bundling the harness (for deeper
inspection) with the scored
:class:`~repro.core.convergence.ConvergenceReport` plus JSON-safe
``extra`` metrics; simulation scenarios without a protocol harness
(rekey cost, DPD probing, SAVE-policy comparison, ...) return a plain
metrics dict.  The experiment sweeps in :mod:`repro.experiments` reduce
these over parameter grids; tests pin individual cases.

All scenarios are deterministic given their arguments.  The module-level
:data:`SCENARIOS` registry maps stable names to the ``run_*`` callables so
that declarative drivers — the fleet campaign specs in :mod:`repro.fleet`
and the experiment sweeps in :mod:`repro.experiments.sweep` — can
reference every scenario by string.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.audit import DeliveryAuditor
from repro.core.baselines import RekeySimulation, savefetch_recovery_outcome
from repro.core.convergence import ConvergenceReport
from repro.core.dpd import HeartbeatDpd, TrafficDpd
from repro.core.protocol import ProtocolHarness, build_protocol
from repro.core.recovery import (
    ProlongedResetSession,
    ResetNoticeReceiver,
    send_reset_notice,
)
from repro.core.reset import call_at_count, reset_at_count, reset_during_save
from repro.core.sender import SaveFetchSender, UnprotectedSender
from repro.gateway import (
    Gateway,
    GatewayCrash,
    GatewayFault,
    RollingRestart,
    SAChurn,
    safe_save_interval,
)
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.ipsec.ike import IkeConfig, IkeInitiator, IkeResponder, SerialCompute
from repro.net.adversary import ReplayAdversary
from repro.net.delay import FixedDelay
from repro.net.link import Link
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, NoLoss
from repro.netpath import (
    NatGate,
    NatRebinding,
    PathEnv,
    PathFlap,
    PathPhase,
    PathProfile,
)
from repro.sim.engine import Engine
from repro.sim.process import Timer
from repro.sim.trace import NULL_TRACE
from repro.util.rng import derive_seed
from repro.workloads.traffic import BurstyTraffic


@dataclass
class ScenarioResult:
    """A finished scenario: the harness plus its scored report.

    ``extra`` carries scenario-specific JSON-safe metrics (reset-record
    details, adversary counters, ...) that the fleet runner merges into
    the flattened task metrics, so sweep reducers can reach them without
    the harness object.
    """

    harness: ProtocolHarness
    report: ConvergenceReport
    extra: dict[str, Any] = field(default_factory=dict)


def _sender_reset_extras(harness: ProtocolHarness) -> dict[str, Any]:
    """JSON-safe sender-side reset details (feeds E1/E3/E5/E6 reducers)."""
    store = getattr(harness.sender, "store", None)
    return {
        "sender_reset_records": [
            {
                "gap": record.gap,
                "lost_seqnums": record.lost_seqnums,
                "save_in_flight": record.save_in_flight,
                "last_used_seq": record.last_used_seq,
                "fetched": record.fetched,
                "resumed_seq": record.resumed_seq,
            }
            for record in harness.sender.reset_records
        ],
        "max_concurrent_saves": store.max_concurrent_saves if store else 0,
    }


def _receiver_reset_extras(harness: ProtocolHarness) -> dict[str, Any]:
    """JSON-safe receiver-side reset details (feeds E2/E4 reducers)."""
    return {
        "receiver_reset_records": [
            {
                "gap": record.gap,
                "save_in_flight": record.save_in_flight,
                "right_edge_at_reset": record.right_edge_at_reset,
                "fetched": record.fetched,
                "resumed_right_edge": record.resumed_right_edge,
            }
            for record in harness.receiver.reset_records
        ],
        "adversary_injections": (
            harness.adversary.injections if harness.adversary is not None else 0
        ),
    }


def _run_to_completion(harness: ProtocolHarness, horizon: float) -> None:
    harness.engine.run(until=horizon)
    if harness.reorder_stage is not None:
        harness.reorder_stage.flush()
        harness.engine.run(until=horizon)


def run_sender_reset_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    reset_after_sends: int = 500,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    leap_factor: int = 2,
    skip_wake_save: bool = False,
    path: PathProfile | None = None,
) -> ScenarioResult:
    """Claim (i) scenario: steady traffic, one sender reset, more traffic.

    The channel is in-order and lossless (the claim's hypothesis).  The
    reset lands immediately after the ``reset_after_sends``-th
    transmission; the sweep over that count is what traces Fig. 1, since
    it moves the reset across the SAVE cycle.  ``path`` attaches a
    :class:`~repro.netpath.PathProfile` to the channel; a static
    single-phase profile reproduces the default link byte-for-byte (the
    netpath golden-parity guarantee).
    """
    harness = build_protocol(
        trace=NULL_TRACE,
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        leap_factor=leap_factor,
        skip_wake_save=skip_wake_save,
        path=path,
    )
    if down_time is None:
        down_time = 2 * costs.t_save
    reset_at_count(harness.sender, reset_after_sends, down_for=down_time)
    total_attempts = reset_after_sends + messages_after_reset
    # Generous attempt budget: attempts during down/recovery are suppressed.
    slack = int(2 * down_time / costs.t_send) + 10 * k
    harness.sender.start_traffic(count=total_attempts + slack)
    horizon = (total_attempts + slack + 10) * costs.t_send + 10 * costs.t_save
    _run_to_completion(harness, horizon)
    return ScenarioResult(
        harness=harness,
        report=harness.score(),
        extra=_sender_reset_extras(harness),
    )


def run_receiver_reset_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    reset_after_receives: int = 500,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    leap_factor: int = 2,
    replay_history_after: bool = False,
) -> ScenarioResult:
    """Claim (ii) scenario: steady traffic, one receiver reset.

    With ``replay_history_after`` the Section 3 adversary replays the
    entire recorded history right after the receiver wakes — accepted
    wholesale by the unprotected receiver, rejected entirely by the
    SAVE/FETCH one.
    """
    harness = build_protocol(
        trace=NULL_TRACE,
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        leap_factor=leap_factor,
        with_adversary=True,
    )
    if down_time is None:
        down_time = 2 * costs.t_save
    reset_at_count(harness.receiver, reset_after_receives, down_for=down_time)

    # Fire the replay as soon as the receiver is back up (its window is
    # at its most vulnerable then).
    if replay_history_after:
        def on_wake_replay() -> None:
            assert harness.adversary is not None
            harness.adversary.replay_history(rate=1.0 / costs.t_recv)

        harness.receiver.add_resume_listener(on_wake_replay)

    # The sender is never suppressed by a *receiver* reset, so no slack:
    # exactly the messages lost to the downtime stay lost (they are
    # "never arrived", outside claim (ii)'s scope), and with
    # ``messages_after_reset=0`` the channel is quiet when the replay
    # lands — the Section 3 attack conditions.
    total_attempts = reset_after_receives + messages_after_reset
    harness.sender.start_traffic(count=total_attempts)
    horizon = (total_attempts + 10) * costs.t_send + down_time + 10 * costs.t_save
    replay_budget = (total_attempts + 10) * costs.t_recv
    _run_to_completion(harness, horizon + replay_budget)
    return ScenarioResult(
        harness=harness,
        report=harness.score(),
        extra=_receiver_reset_extras(harness),
    )


def run_dual_reset_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    reset_after_sends: int = 500,
    stagger: float = 0.0,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    window_jump_attack: bool = True,
) -> ScenarioResult:
    """Section 5's third case: both p and q reset (optionally staggered).

    With ``window_jump_attack`` the adversary replays the
    highest-sequence recorded message right after q wakes — the Section 3
    attack that permanently desynchronises the unprotected pair by
    shifting q's right edge above p's restarted counter.
    """
    harness = build_protocol(
        trace=NULL_TRACE,
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        with_adversary=True,
    )
    if down_time is None:
        down_time = 2 * costs.t_save

    def dual_reset(sent_total: int, packet: object) -> None:
        if sent_total == reset_after_sends:
            harness.sender.reset(down_for=down_time)
            if stagger == 0.0:
                harness.receiver.reset(down_for=down_time)
            else:
                harness.engine.call_later(
                    stagger, harness.receiver.reset, down_time
                )

    harness.sender.add_send_listener(dual_reset)

    if window_jump_attack:
        def on_wake_jump() -> None:
            assert harness.adversary is not None
            harness.adversary.replay_max()

        harness.receiver.add_resume_listener(on_wake_jump)

    total_attempts = reset_after_sends + messages_after_reset
    slack = int(2 * (down_time + stagger) / costs.t_send) + 10 * k
    harness.sender.start_traffic(count=total_attempts + slack)
    horizon = (total_attempts + slack + 10) * costs.t_send + 10 * costs.t_save + stagger
    _run_to_completion(harness, horizon)
    return ScenarioResult(harness=harness, report=harness.score())


def run_loss_reset_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    loss_rate: float = 0.05,
    reset_after_sends: int = 500,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ScenarioResult:
    """Mixed fault story: Bernoulli channel loss plus one sender reset.

    Outside the paper's lossless hypothesis, so the run is scored without
    the Section 5 bound checks (the claims are conditioned on "no message
    loss"); the report still carries the raw gap / discard / replay
    counts, which is what loss-robustness campaigns aggregate.
    """
    harness = build_protocol(
        trace=NULL_TRACE,
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        loss=BernoulliLoss(loss_rate),
        with_adversary=True,
    )
    if down_time is None:
        down_time = 2 * costs.t_save
    reset_at_count(harness.sender, reset_after_sends, down_for=down_time)
    total_attempts = reset_after_sends + messages_after_reset
    slack = int(2 * down_time / costs.t_send) + 10 * k
    harness.sender.start_traffic(count=total_attempts + slack)
    horizon = (total_attempts + slack + 10) * costs.t_send + 10 * costs.t_save
    _run_to_completion(harness, horizon)
    return ScenarioResult(harness=harness, report=harness.score(check_bounds=False))


# ----------------------------------------------------------------------
# Reorder (E10): w-Delivery under controlled reorder
# ----------------------------------------------------------------------
def run_reorder_scenario(
    protected: bool = True,
    w: int = 64,
    degree: int = 8,
    messages: int = 2000,
    probability: float = 0.05,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ScenarioResult:
    """Section 2 w-Delivery story: a reorder stage of fixed degree.

    Messages are held back with the given probability and released
    ``degree`` positions late; ``degree < w`` must be delivered, while
    ``degree >= w`` falls off the window's left edge and is discarded
    despite being fresh (the reference-[2] observation E10 sweeps).
    """
    harness = build_protocol(
        trace=NULL_TRACE,
        protected=protected,
        w=w,
        costs=costs,
        seed=seed,
        reorder_degree=degree,
        reorder_probability=probability,
    )
    harness.sender.start_traffic(count=messages)
    horizon = (messages + 10) * costs.t_send + 1.0
    harness.run(until=horizon)
    assert harness.reorder_stage is not None
    harness.reorder_stage.flush()
    harness.run(until=horizon + 1.0)
    return ScenarioResult(
        harness=harness,
        report=harness.score(check_bounds=False),
        extra={"reordered": harness.reorder_stage.held_total},
    )


# ----------------------------------------------------------------------
# Rekey baseline (E7): IETF full renegotiation vs SAVE/FETCH recovery
# ----------------------------------------------------------------------
def run_rekey_scenario(
    n_sas: int = 1,
    rtt: float = 0.001,
    detection_delay: float = 0.0,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> dict[str, Any]:
    """Measure both reset-recovery paths for one (SA count, RTT) point.

    The rekey side simulates every ISAKMP message of the simplified
    main+quick handshake over a latency link; the SAVE/FETCH side is one
    FETCH plus one synchronous SAVE per SA, no network at all.
    """
    rekey = RekeySimulation(
        n_sas=n_sas,
        rtt=rtt,
        detection_delay=detection_delay,
        costs=costs,
        seed=seed,
    ).run()
    savefetch = savefetch_recovery_outcome(n_sas=n_sas, costs=costs)
    return {
        "rekey_time_s": rekey.total_recovery_time,
        "rekey_messages": rekey.messages_exchanged,
        "savefetch_time_s": savefetch.recovery_time,
    }


# ----------------------------------------------------------------------
# Staggered dual reset (E8): the model-checker's vulnerable window
# ----------------------------------------------------------------------
def run_staggered_reset_scenario(
    variant: str = "savefetch",
    k_p: int = 100,
    k_q: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> dict[str, Any]:
    """The staggered-reset replay attack against one receiver variant.

    p resets and leaps by ``2Kp``; the first post-leap message jumps q's
    right edge by more than ``Kq``; q is then reset halfway through the
    checkpoint of that jump, and the adversary replays the exposed range
    the instant q wakes.  Requires ``k_p > k_q`` for the hole to open;
    the ``ceiling`` variant closes it.
    """
    harness = build_protocol(
        trace=NULL_TRACE,
        variant=variant,
        k_p=k_p,
        k_q=k_q,
        costs=costs,
        seed=seed,
        with_adversary=True,
    )
    down = 5 * costs.t_save

    # Reset p right after it has sent 2 * k_p messages.
    def on_send(sent_total: int, packet: object) -> None:
        if sent_total == 2 * k_p:
            harness.sender.reset(down_for=down)

    harness.sender.add_send_listener(on_send)

    # q checkpoints every k_q receives; the (2*k_p/k_q + 1)-th save is the
    # one triggered by the first post-leap jump message.  Strike q halfway
    # through it.
    store = getattr(harness.receiver, "store", None)
    jump_save_index = (2 * k_p) // k_q + 1
    if store is not None:
        reset_during_save(
            harness.engine,
            harness.receiver,
            store,
            nth_save=jump_save_index,
            fraction=0.5,
            down_for=down,
        )

    # The winning adversary strategy: the instant q is back up, replay the
    # *most recently* recorded messages (a plain replay-newest-first
    # policy) so they land before fresh traffic re-advances the window.
    # Messages delivered above q's resumed right edge are the prize.
    def on_q_resume() -> None:
        assert harness.adversary is not None
        record = harness.receiver.reset_records[-1]
        lo = (record.resumed_right_edge or 0) + 1
        hi = record.right_edge_at_reset
        harness.adversary.replay_range(lo, hi, rate=1e9)

    harness.receiver.add_resume_listener(on_q_resume)

    # Low-rate traffic (inter-send gap well above the outage + recovery
    # time): at line rate, fresh messages buffered during q's post-wake
    # SAVE drain first and push the window past the vulnerable range
    # before any replay can land — the hole only opens when the channel
    # is quiet at wake-up, as it is on a lightly loaded SA.
    interval = 4 * down
    attempts = 2 * k_p + k_p // 2
    harness.sender.start_traffic(count=attempts, interval=interval)
    horizon = (attempts + 5) * interval + 4 * down
    harness.run(until=horizon)
    report = harness.score(check_bounds=False)
    return {
        "replays_accepted": report.replays_accepted,
        "fresh_discarded": report.fresh_discarded,
        "q_resets": len(harness.receiver.reset_records),
    }


# ----------------------------------------------------------------------
# Prolonged reset (E9): keep-alive + secured resync over a dual SA
# ----------------------------------------------------------------------
def run_prolonged_reset_scenario(
    outage: float = 0.2,
    keep_alive_timeout: float = 1.0,
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> dict[str, Any]:
    """Section 6 recovery story for one outage duration.

    The live host learns of the outage from ICMP, holds its SAs for the
    keep-alive period, and accepts the reset host's secured resync
    announcement; a replay adversary injects recorded b->a traffic into
    the live host midway through the outage.
    """
    session = ProlongedResetSession(
        k=k,
        costs=costs,
        keep_alive_timeout=keep_alive_timeout,
        seed=seed,
        with_adversary=True,
        trace=NULL_TRACE,
    )
    session.start_traffic()
    warmup = 0.02
    reset_at = warmup
    session.engine.call_at(reset_at, session.host_b.reset_host, outage)

    # The adversary replays recorded b->a traffic into the live host
    # midway through the outage (b cannot answer for itself then).
    def replay_midway() -> None:
        assert session.adversary is not None
        session.adversary.replay_history(rate=1000.0)

    session.engine.call_at(reset_at + outage / 2, replay_midway)

    session.run(until=reset_at + outage + keep_alive_timeout + 0.5)
    session.stop_traffic()
    session.run(until=reset_at + outage + keep_alive_timeout + 1.0)

    report = session.report()
    a = report.host_a
    detected = a.peer_down_detected_at is not None
    resumed = a.peer_back_up_at is not None
    recovery = (
        a.peer_back_up_at - reset_at if a.peer_back_up_at is not None else -1.0
    )
    return {
        "detected": detected,
        "keepalive_expired": a.keepalive_expired,
        "resync_accepted": resumed,
        "resync_seq": a.resync_seq,
        "recovery_s": recovery,
        "replays_injected": report.replayed_into_live_host,
        "replays_accepted": report.replays_accepted_total,
    }


# ----------------------------------------------------------------------
# Recovery-design ablation (E11): the 2K leap and the synchronous wake SAVE
# ----------------------------------------------------------------------
def run_recovery_ablation_scenario(
    leap_factor: int = 2,
    skip_wake_save: bool = False,
    double_reset: bool = False,
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> dict[str, Any]:
    """One cell of the Section 4 design ablation (see E11).

    The first reset strikes inside the second background save; under
    ``double_reset`` a second reset strikes inside the synchronous wake
    save of the first recovery (or, when that save is skipped, right
    after the first messages of the resumed stream).
    """
    harness = build_protocol(
        trace=NULL_TRACE,
        protected=True,
        k_p=2 * k,  # save spans half the interval: both Fig. 1 cases live
        k_q=2 * k,
        costs=costs,
        seed=seed,
        leap_factor=leap_factor,
        skip_wake_save=skip_wake_save,
    )
    down = costs.t_save  # wake quickly so recovery overlaps traffic

    # First reset: strike inside the second background save.
    reset_during_save(
        harness.engine,
        harness.sender,
        harness.sender.store,  # type: ignore[attr-defined]
        nth_save=2,
        fraction=0.5,
        down_for=down,
    )
    if double_reset:
        # Second reset: strike inside the *synchronous wake save* of the
        # first recovery (or, when that save is skipped, immediately
        # after the first messages of the resumed stream).
        fired = {"done": False}

        def second_strike() -> None:
            if fired["done"]:
                return
            fired["done"] = True
            harness.sender.reset(down_for=down)

        if skip_wake_save:
            def on_resume() -> None:
                if not fired["done"]:
                    # Let a handful of post-recovery messages out first so
                    # there is something to reuse.
                    harness.engine.call_later(
                        5 * costs.t_send, second_strike
                    )

            harness.sender.add_resume_listener(on_resume)
        else:
            reset_during_save(
                harness.engine,
                harness.sender,
                harness.sender.store,  # type: ignore[attr-defined]
                nth_save=3,  # the wake save is the 3rd start
                fraction=0.5,
                down_for=down,
                include_synchronous=True,
            )

    messages = 20 * k
    harness.sender.start_traffic(count=messages)
    harness.run(until=(messages + 10) * costs.t_send + 10 * (down + costs.t_save))
    report = harness.score(check_bounds=False)
    reuse = sum(
        1
        for record in harness.sender.reset_records
        if record.lost_seqnums is not None and record.lost_seqnums < 0
    )
    min_lost = min(
        (
            record.lost_seqnums
            for record in harness.sender.reset_records
            if record.lost_seqnums is not None
        ),
        default=0,
    )
    return {
        "resets": len(harness.sender.reset_records),
        "reuse_events": reuse,
        "min_lost": min_lost,
        "replays_accepted": report.replays_accepted,
        "safe": reuse == 0 and report.replays_accepted == 0,
    }


# ----------------------------------------------------------------------
# Reset-notice strawman (E12): the replayable "I was reset" message
# ----------------------------------------------------------------------
def run_reset_notice_scenario(
    pre_reset_messages: int = 500,
    post_reset_messages: int = 200,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> dict[str, Any]:
    """Section 6's rejected strawman, run through the paper's attack.

    Phase 1: traffic, a genuine sender reset announced with a
    ``ResetNotice`` the receiver honours (recovery appears to work).
    Phase 2: the adversary replays the recorded notice — the receiver
    obediently reopens its window — then replays the recorded history,
    accepted wholesale.
    """
    engine = Engine(trace=NULL_TRACE)
    auditor = DeliveryAuditor()
    receiver = ResetNoticeReceiver(engine, "q", auditor=auditor, costs=costs)
    link = Link(engine, "link:p->q", sink=receiver.on_receive, fifo=True, seed=seed)
    sender = UnprotectedSender(engine, "p", link, costs=costs, auditor=auditor)
    adversary = ReplayAdversary(engine, link, seed=seed + 1)

    # Phase 1: traffic, then a genuine sender reset announced by notice.
    sender.start_traffic(count=pre_reset_messages)
    engine.run(until=(pre_reset_messages + 5) * costs.t_send)

    sender.reset(down_for=costs.t_save)

    def announce() -> None:
        send_reset_notice("p", link, engine.now)

    sender.add_resume_listener(announce)
    engine.run(until=engine.now + 10 * costs.t_save)

    # Post-recovery traffic works: the receiver honoured the real notice.
    sender.start_traffic(count=post_reset_messages)
    engine.run(until=engine.now + (post_reset_messages + 5) * costs.t_send)
    delivered_after_recovery = receiver.delivered_total
    notices_after_phase1 = receiver.notices_honoured

    # Phase 2: the attack.  Replay the notice, then the whole history.
    notice_packets = [
        packet
        for _, packet in adversary.recorded
        if type(packet).__name__ == "ResetNotice"
    ]
    for notice in notice_packets:
        adversary.inject_now(notice)
    engine.run(until=engine.now + 10 * costs.t_recv)
    adversary.replay_history(rate=1.0 / costs.t_recv)
    engine.run(until=engine.now + 4 * (pre_reset_messages + post_reset_messages) * costs.t_recv)

    report = auditor.report()
    return {
        "notices_honoured": receiver.notices_honoured,
        "genuine_notice_worked": delivered_after_recovery > pre_reset_messages
        and notices_after_phase1 == 1,
        "replays_accepted": report.duplicate_deliveries,
    }


# ----------------------------------------------------------------------
# Dead-peer detection (E13): detection time vs probing parameters
# ----------------------------------------------------------------------
class _DpdPeer:
    """Answers probes (after half an RTT) until reset."""

    def __init__(self, engine: Engine, rtt: float) -> None:
        self.engine = engine
        self.rtt = rtt
        self.up = True
        self.reply_to = None

    def on_probe(self, token: int) -> None:
        if self.up and self.reply_to is not None:
            self.engine.call_later(self.rtt / 2, self.reply_to, token)


def run_dpd_scenario(
    mechanism: str = "heartbeat",
    cadence: float = 0.5,
    rtt: float = 0.01,
    reset_at: float = 1.0,
    seed: int = 0,
) -> dict[str, Any]:
    """Measure dead-peer detection time for one probing configuration.

    ``mechanism`` is ``"heartbeat"`` (fixed-interval probing) or
    ``"traffic"`` (probe only after a silence threshold).  ``detection_s``
    is ``None`` when the peer death was never detected (the undetected
    case has no finite detection time, and ``None`` stays JSON-safe).
    The ``seed`` argument is accepted for registry uniformity; the
    simulation is fully deterministic without it.
    """
    if mechanism not in ("heartbeat", "traffic"):
        raise ValueError(
            f"unknown DPD mechanism {mechanism!r}; "
            "expected 'heartbeat' or 'traffic'"
        )
    engine = Engine(trace=NULL_TRACE)
    peer = _DpdPeer(engine, rtt)
    dead_at: list[float] = []

    def send_probe(token: int) -> None:
        engine.call_later(rtt / 2, peer.on_probe, token)

    if mechanism == "heartbeat":
        dpd = HeartbeatDpd(
            engine, "dpd", send_probe, lambda: dead_at.append(engine.now),
            interval=cadence, timeout=4 * rtt, max_misses=3,
        )
        peer.reply_to = dpd.on_probe_ack
        dpd.start()
        chatter = None
    else:
        dpd = TrafficDpd(
            engine, "dpd", send_probe, lambda: dead_at.append(engine.now),
            idle_threshold=cadence, timeout=4 * rtt, max_misses=3,
        )
        peer.reply_to = dpd.on_probe_ack

        def chat() -> None:
            dpd.note_sent()
            if peer.up:
                engine.call_later(rtt / 2, dpd.note_received)

        chatter = Timer(engine, cadence / 4, chat)
        chatter.start()
        dpd.start()

    probes_before = {"n": 0}

    def mark_reset() -> None:
        peer.up = False
        probes_before["n"] = dpd.probes_sent

    engine.call_at(reset_at, mark_reset)
    engine.run(until=reset_at + 80 * cadence)
    dpd.stop()
    if chatter is not None:
        chatter.stop()
    return {
        "detection_s": dead_at[0] - reset_at if dead_at else None,
        "probes_while_healthy": probes_before["n"],
        "detected": bool(dead_at),
    }


# ----------------------------------------------------------------------
# SAVE-policy comparison (E6b): count-based vs time-based SAVEs
# ----------------------------------------------------------------------
class _TimerSaveSender(SaveFetchSender):
    """Ablation sender: SAVEs on a wall-clock timer, not a message count.

    The timer period equals ``k * t_send`` — the cadence the count-based
    policy exhibits at full line rate — so the two policies are identical
    under CBR and differ exactly where the paper predicts: idle periods.
    """

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self.wasteful_saves = 0
        self._last_saved_value = self.lst
        period = self.k * self.costs.t_send
        self._save_timer = Timer(self.engine, period, self._timer_save)
        self._save_timer.start()

    def _after_send(self) -> None:  # disable the count-based trigger
        return

    def _timer_save(self) -> None:
        if not self.is_up:
            return
        advance = self.s - self._last_saved_value
        if advance < self.k:
            self.wasteful_saves += 1
        self._last_saved_value = self.s
        self.lst = self.s
        self.store.begin_save(self.s)


@dataclass
class PolicyComparison:
    """Outcome of the count-vs-time policy comparison."""

    k: int
    messages_sent: int
    count_based_saves: int
    time_based_saves: int
    time_based_wasteful: int

    @property
    def waste_fraction(self) -> float:
        """Share of timer-policy saves that were wasteful."""
        if not self.time_based_saves:
            return 0.0
        return self.time_based_wasteful / self.time_based_saves


def compare_policies(
    k: int = 25,
    bursts: int = 40,
    burst_len: int = 50,
    idle_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
) -> PolicyComparison:
    """Drive both policies with identical bursty traffic; count saves."""
    if idle_time is None:
        idle_time = 20 * k * costs.t_send  # idle dwarfs the burst
    total = bursts * burst_len

    def run_one(use_timer: bool) -> SaveFetchSender:
        engine = Engine(trace=NULL_TRACE)
        sink_count = [0]

        link = Link(engine, "link", sink=lambda packet: sink_count.__setitem__(0, sink_count[0] + 1))
        cls = _TimerSaveSender if use_timer else SaveFetchSender
        sender = cls(engine, "p", link, k=k, costs=costs)
        traffic = BurstyTraffic(
            engine,
            sender,
            burst_len=burst_len,
            burst_interval=costs.t_send,
            idle_time=idle_time,
        )
        traffic.start(count=total)
        # Horizon covers exactly the traffic window (plus a short drain)
        # so the timer policy is not additionally penalised for a long
        # quiet tail after the workload ends.
        horizon = bursts * (burst_len * costs.t_send + idle_time) + 50 * costs.t_save
        engine.run(until=horizon)
        if use_timer:
            sender._save_timer.stop()  # let later engine use drain cleanly
        return sender

    count_sender = run_one(use_timer=False)
    timer_sender = run_one(use_timer=True)
    assert isinstance(timer_sender, _TimerSaveSender)
    return PolicyComparison(
        k=k,
        messages_sent=count_sender.sent_total,
        count_based_saves=count_sender.store.saves_started,
        time_based_saves=timer_sender.store.saves_started,
        time_based_wasteful=timer_sender.wasteful_saves,
    )


def run_save_policy_scenario(
    k: int = 25,
    bursts: int = 40,
    burst_len: int = 50,
    idle_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> dict[str, Any]:
    """Fleet-callable wrapper around :func:`compare_policies`.

    The ``seed`` argument is accepted for registry uniformity; both
    policy runs are fully deterministic without it.
    """
    comparison = compare_policies(
        k=k, bursts=bursts, burst_len=burst_len, idle_time=idle_time, costs=costs
    )
    return {
        "k": comparison.k,
        "messages_sent": comparison.messages_sent,
        "count_based_saves": comparison.count_based_saves,
        "time_based_saves": comparison.time_based_saves,
        "time_based_wasteful": comparison.time_based_wasteful,
        "waste_fraction": comparison.waste_fraction,
    }


# ----------------------------------------------------------------------
# Loss hole (E14): replay exposure under bursty loss
# ----------------------------------------------------------------------
def run_loss_hole_scenario(
    variant: str = "savefetch",
    burst_g2b: float = 0.02,
    k: int = 25,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> dict[str, Any]:
    """One run of the loss-hole exposure experiment (see E14).

    Gilbert-Elliott bursty loss of the given severity; the fault injector
    strikes the receiver inside the first checkpoint save whose value
    leapt more than ``2Kq`` past the committed value (the vulnerable
    window), and the adversary replays the exposed range at wake-up.
    """
    loss = (
        NoLoss()
        if burst_g2b == 0.0
        else GilbertElliottLoss(
            p_good_to_bad=burst_g2b, p_bad_to_good=0.015, loss_bad=1.0
        )
    )
    harness = build_protocol(
        trace=NULL_TRACE,
        variant=variant,
        k_p=k,
        k_q=k,
        costs=costs,
        seed=seed,
        loss=loss,
        with_adversary=True,
    )
    down = 5 * costs.t_save
    store = harness.receiver.store  # both variants have one
    state = {"armed": True, "fired": False}

    def on_save(record) -> None:
        # React to *starts* of background saves whose value leapt more
        # than 2Kq past the committed checkpoint: the vulnerable window.
        if record.committed or record.aborted or record.synchronous:
            return
        if state["armed"] and record.value - store.committed_value > 2 * k:
            state["armed"] = False
            state["fired"] = True
            harness.engine.call_later(
                0.5 * store.t_save, harness.receiver.reset, down
            )

    store.add_listener(on_save)

    def on_q_resume() -> None:
        assert harness.adversary is not None
        record = harness.receiver.reset_records[-1]
        lo = (record.resumed_right_edge or 0) + 1
        hi = record.right_edge_at_reset
        if hi >= lo:
            harness.adversary.replay_range(lo, hi, rate=1e9)
        harness.adversary.replay_max()

    harness.receiver.add_resume_listener(on_q_resume)

    interval = 4 * down  # low-rate traffic: the vulnerable regime (E8)
    attempts = 16 * k
    harness.sender.start_traffic(count=attempts, interval=interval)
    harness.run(until=(attempts + 5) * interval + 4 * down)
    return {
        "vulnerable_window": state["fired"],
        "replays_accepted": harness.score(check_bounds=False).replays_accepted,
    }


# ----------------------------------------------------------------------
# Gateway scenarios (E15): correlated resets over a shared store
# ----------------------------------------------------------------------
def _gateway_recovery_slack(gateway: Gateway, extra_sas: int = 0) -> float:
    """Extra quiet time the shared store's recovery queueing can add.

    Bounded by every SA paying one policy-priced FETCH plus one
    synchronous SAVE, serialized.  Zero for one SA, so the N=1 gateway
    crash keeps exactly the single-pair scenario's schedule (the
    golden-parity guarantee).
    """
    n_sas = len(gateway.sas) + extra_sas
    return (n_sas - 1) * (gateway.store.fetch_cost + gateway.store.save_cost)


def run_gateway_crash_scenario(
    n_sas: int = 4,
    side: str = "sender",
    protected: bool = True,
    k: int | None = None,
    w: int = 64,
    store_policy: str = "serial",
    crash_after_sends: int = 500,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    fault: GatewayFault | None = None,
    path: PathProfile | None = None,
    store_load_factor: float = 0.0,
) -> dict[str, Any]:
    """One gateway crash: every SA resets at one instant, recovery storms.

    The per-SA story is exactly :func:`run_sender_reset_scenario` (same
    trigger, traffic budget and horizon — with ``n_sas=1`` the flattened
    per-SA report is bit-identical); the gateway story is what N adds:
    the shared store serializes the wake-up FETCH storm, so the
    ``recovery_spreads`` metric grows with N and shrinks under the
    batched/write-ahead policies.

    ``k=None`` applies the gateway sizing rule
    (:func:`repro.gateway.safe_save_interval`) — the paper's 25 scaled
    to the shared device; pin ``k=25`` at ``n_sas > 1`` under the serial
    policy to watch the under-provisioned store break the 2K gap bound.
    ``fault`` overrides the built-in :class:`~repro.gateway.GatewayCrash`
    (e.g. an absolute-time trigger from a JSON campaign spec).  ``path``
    attaches a :class:`~repro.netpath.PathProfile` to every SA's link;
    ``store_load_factor`` turns on the shared store's load-dependent
    SAVE duration (see :class:`~repro.gateway.SharedStore`).
    """
    if k is None:
        k = safe_save_interval(n_sas, costs, store_policy)
    if down_time is None:
        down_time = 2 * costs.t_save
    gateway = Gateway(
        n_sas=n_sas,
        side=side,
        protected=protected,
        k=k,
        w=w,
        costs=costs,
        store_policy=store_policy,
        seed=seed,
        path=path,
        store_load_factor=store_load_factor,
    )
    if fault is None:
        fault = GatewayCrash(after_sends=crash_after_sends, down_time=down_time)
    else:
        # The traffic budget and horizon must cover the fault that will
        # actually run, not this scenario's defaults — otherwise an
        # override with a long outage (or a late trigger) ends the run
        # mid-recovery and the record claims convergence untested.
        # (getattr: any GatewayFault kind is accepted here.)
        if getattr(fault, "down_time", None) is not None:
            down_time = fault.down_time
        if getattr(fault, "after_sends", None) is not None:
            crash_after_sends = fault.after_sends
        elif getattr(fault, "at", None) is not None:
            crash_after_sends = max(
                crash_after_sends, int(fault.at / costs.t_send) + 1
            )
    fault.apply(gateway)
    total_attempts = crash_after_sends + messages_after_reset
    recovery_slack = _gateway_recovery_slack(gateway)
    slack = int((2 * down_time + recovery_slack) / costs.t_send) + 10 * k
    gateway.start_traffic(count=total_attempts + slack)
    horizon = (
        (total_attempts + slack + 10) * costs.t_send
        + 10 * costs.t_save
        + recovery_slack
    )
    gateway.run(until=horizon)
    return gateway.score().metrics()


def run_rolling_restart_scenario(
    n_sas: int = 4,
    side: str = "sender",
    k: int | None = None,
    w: int = 64,
    store_policy: str = "serial",
    restart_after_sends: int = 500,
    stagger: float | None = None,
    messages_after_reset: int = 500,
    down_time: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    fault: GatewayFault | None = None,
) -> dict[str, Any]:
    """A restart wave: SA ``i`` resets ``i * stagger`` after the trigger.

    The store stays up, so each recovering SA's FETCH and synchronous
    SAVE contend with the *live* SAs' background saves instead of with a
    storm of other recoveries — the operator's alternative to a cold
    crash, and measurably gentler on the recovery spread.  ``k=None``
    applies the gateway sizing rule (see
    :func:`repro.gateway.safe_save_interval`).
    """
    if k is None:
        k = safe_save_interval(n_sas, costs, store_policy)
    if down_time is None:
        down_time = 2 * costs.t_save
    if stagger is None:
        stagger = 2 * down_time
    gateway = Gateway(
        n_sas=n_sas,
        side=side,
        protected=True,
        k=k,
        w=w,
        costs=costs,
        store_policy=store_policy,
        seed=seed,
    )
    if fault is None:
        fault = RollingRestart(
            after_sends=restart_after_sends, stagger=stagger, down_time=down_time
        )
    else:
        # Budget/horizon follow the overriding fault (see gateway_crash).
        if getattr(fault, "down_time", None) is not None:
            down_time = fault.down_time
        stagger = getattr(fault, "stagger", stagger)
        if getattr(fault, "after_sends", None) is not None:
            restart_after_sends = fault.after_sends
        elif getattr(fault, "at", None) is not None:
            restart_after_sends = max(
                restart_after_sends, int(fault.at / costs.t_send) + 1
            )
    fault.apply(gateway)
    total_attempts = restart_after_sends + messages_after_reset
    wave = (n_sas - 1) * stagger + 2 * down_time
    slack = int((wave + _gateway_recovery_slack(gateway)) / costs.t_send)
    slack += 10 * k
    gateway.start_traffic(count=total_attempts + slack)
    horizon = (total_attempts + slack + 10) * costs.t_send + 10 * costs.t_save + wave
    gateway.run(until=horizon)
    return gateway.score().metrics()


def run_sa_churn_scenario(
    n_sas: int = 4,
    side: str = "sender",
    k: int | None = None,
    w: int = 64,
    store_policy: str = "serial",
    messages: int = 600,
    churn_cycles: int = 3,
    churn_interval: float | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
    fault: GatewayFault | None = None,
) -> dict[str, Any]:
    """SA churn: tunnels are torn down and established mid-run.

    No resets — the question is whether multiplexing is clean: every SA
    (retired ones included) must converge with zero replays while
    creation/teardown reshuffles the shared store's save schedule.
    ``k=None`` sizes for the peak live SA count (initial plus one
    mid-churn overlap).
    """
    if k is None:
        k = safe_save_interval(n_sas + 1, costs, store_policy)
    gateway = Gateway(
        n_sas=n_sas,
        side=side,
        protected=True,
        k=k,
        w=w,
        costs=costs,
        store_policy=store_policy,
        seed=seed,
    )
    stream_time = messages * costs.t_send
    if churn_interval is None:
        # All cycles land inside the middle half of the initial streams.
        churn_interval = stream_time / (2 * max(1, churn_cycles))
    churn_start = stream_time / 4
    new_sa_messages = messages
    if fault is None:
        fault = SAChurn(
            start=churn_start,
            interval=churn_interval,
            cycles=churn_cycles,
            messages=messages,
        )
    else:
        # Horizon follows the overriding fault (see gateway_crash).
        churn_start = getattr(fault, "start", churn_start)
        churn_interval = getattr(fault, "interval", churn_interval)
        churn_cycles = getattr(fault, "cycles", churn_cycles)
        new_sa_messages = getattr(fault, "messages", messages)
    fault.apply(gateway)
    gateway.start_traffic(count=messages)
    horizon = (
        churn_start
        + churn_cycles * churn_interval
        + (max(messages, new_sa_messages) + 10) * costs.t_send
        + 10 * costs.t_save
        + _gateway_recovery_slack(gateway, extra_sas=churn_cycles)
    )
    gateway.run(until=horizon)
    return gateway.score().metrics()


# ----------------------------------------------------------------------
# Netpath scenarios (E16): time-varying paths under the protocol
# ----------------------------------------------------------------------
def _netpath_extras(harness: ProtocolHarness, gate: NatGate | None = None) -> dict[str, Any]:
    """JSON-safe path/NAT counters every netpath scenario reports."""
    extras: dict[str, Any] = {
        "blackholed": harness.link.blackholed,
        "path_transitions": harness.link.path_transitions,
        "regime_shifts": harness.link.regime_shifts,
        "adversary_injections": (
            harness.adversary.injections if harness.adversary is not None else 0
        ),
    }
    if gate is not None:
        extras["nat"] = gate.metrics()
    return extras


def _schedule_reset(
    harness: ProtocolHarness,
    reset_schedule: str,
    during_at: float,
    after_at: float,
    down_time: float,
) -> None:
    """Arm the E16 reset-schedule axis: no reset, a reset *during* the
    path impairment, or one safely *after* it settles."""
    if reset_schedule == "none":
        return
    if reset_schedule == "during":
        harness.engine.call_at(during_at, harness.sender.reset, down_time)
    elif reset_schedule == "after":
        harness.engine.call_at(after_at, harness.sender.reset, down_time)
    else:
        raise ValueError(
            f"unknown reset_schedule {reset_schedule!r}; "
            "expected 'none', 'during' or 'after'"
        )


def run_nat_rebinding_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    rebind_after_sends: int = 500,
    messages_after_rebind: int = 500,
    policy: str = "rebind_on_valid",
    replay_old_binding: bool = True,
    reset_schedule: str = "none",
    path: PathProfile | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ScenarioResult:
    """The peer's NAT mapping changes mid-SA; the receiver's policy decides.

    The sender starts bound to ``nat:a``; after ``rebind_after_sends``
    transmissions the NAT rebinds it to ``nat:b``, so later packets
    carry the new source while everything recorded earlier keeps the old
    one.  ``policy`` is one of :data:`repro.ipsec.sa.REBIND_POLICIES`:
    ``rebind_on_valid`` moves the binding on the first window-valid
    packet and converges cleanly; ``strict`` pins the tunnel and drops
    the entire post-rebinding stream at the gate (counted, not scored as
    discards — the messages never reach the window); ``static`` ignores
    addresses.  With ``replay_old_binding`` the Section 3 adversary
    replays the recorded (old-binding) history right after the rebinding
    — the anti-replay window, not the address check, must reject it.

    ``reset_schedule`` overlays the E16 reset axis: a sender reset
    landing at the rebinding instant (``"during"``) or well after the
    binding settled (``"after"``).
    """
    harness = build_protocol(
        trace=NULL_TRACE,
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        with_adversary=True,
        path=path,
        sender_address="nat:a",
    )
    gate = NatGate(harness.receiver, policy=policy, initial_binding="nat:a")
    harness.link.sink = gate.on_receive
    env = PathEnv(
        engine=harness.engine,
        link=harness.link,
        sender=harness.sender,
        gate=gate,
    )
    NatRebinding(after_sends=rebind_after_sends, new_address="nat:b").apply(env)

    if replay_old_binding:
        # Strike right after the first new-binding packet: the receiver
        # has just (maybe) rebound and the recorded history is entirely
        # old-binding traffic.
        def fire_replay() -> None:
            assert harness.adversary is not None
            harness.adversary.replay_history(rate=1.0 / costs.t_recv)

        call_at_count(harness.sender, rebind_after_sends + 1, fire_replay)

    down_time = 2 * costs.t_save
    rebind_at = rebind_after_sends * costs.t_send
    settle_at = (rebind_after_sends + messages_after_rebind // 2) * costs.t_send
    _schedule_reset(harness, reset_schedule, rebind_at, settle_at, down_time)

    total_attempts = rebind_after_sends + messages_after_rebind
    slack = 0 if reset_schedule == "none" else int(2 * down_time / costs.t_send) + 10 * k
    harness.sender.start_traffic(count=total_attempts + slack)
    horizon = (total_attempts + slack + 10) * costs.t_send + 10 * costs.t_save
    replay_budget = (total_attempts + 10) * costs.t_recv if replay_old_binding else 0.0
    _run_to_completion(harness, horizon + replay_budget)
    return ScenarioResult(
        harness=harness,
        report=harness.score(),
        extra=_netpath_extras(harness, gate),
    )


def run_path_flap_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    messages: int = 1000,
    flap_after_sends: int = 300,
    down_time: float | None = None,
    up_time: float | None = None,
    cycles: int = 3,
    reset_schedule: str = "none",
    path: PathProfile | None = None,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ScenarioResult:
    """A flapping route: repeated blackhole windows under steady traffic.

    Packets offered inside a window vanish without ICMP (scored as
    ``never_arrived`` — this is channel loss, outside the claims'
    lossless hypothesis, so bounds are not checked).  The interesting
    interaction is ``reset_schedule="during"``: the sender reset lands
    inside a blackhole window, so its recovery runs while the path is
    still dark and the first post-leap messages may fall into the next
    window.
    """
    if down_time is None:
        down_time = 2 * costs.t_save
    if up_time is None:
        up_time = down_time
    harness = build_protocol(
        trace=NULL_TRACE,
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        path=path,
    )
    flap = PathFlap(
        at=(flap_after_sends + 0.5) * costs.t_send,
        down_time=down_time,
        up_time=up_time,
        cycles=cycles,
    )
    flap.apply(PathEnv(engine=harness.engine, link=harness.link))

    _schedule_reset(
        harness,
        reset_schedule,
        during_at=flap.at + down_time / 2,  # inside the first window
        after_at=flap.ends_at + 2 * costs.t_save,
        down_time=2 * costs.t_save,
    )

    slack = 0
    if reset_schedule != "none":
        slack = int(4 * costs.t_save / costs.t_send) + 10 * k
    harness.sender.start_traffic(count=messages + slack)
    horizon = (
        (messages + slack + 10) * costs.t_send
        + cycles * (down_time + up_time)
        + 10 * costs.t_save
    )
    _run_to_completion(harness, horizon)
    return ScenarioResult(
        harness=harness,
        report=harness.score(check_bounds=False),
        extra=_netpath_extras(harness),
    )


def run_mobile_handover_scenario(
    protected: bool = True,
    k: int = 25,
    w: int = 64,
    handover_after_sends: int = 400,
    messages_after_handover: int = 400,
    outage: float | None = None,
    policy: str = "rebind_on_valid",
    replay_old_binding: bool = True,
    degraded_delay: float = 0.0002,
    degraded_loss: float = 0.01,
    reset_schedule: str = "none",
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> ScenarioResult:
    """A mobile peer hands over networks mid-SA: outage + new regime + NAT.

    At the handover instant three things happen at once, which is what
    distinguishes it from each fault alone: the path blackholes for
    ``outage`` seconds (association gap), the regime shifts to the
    visited network's conditions (``degraded_delay``/``degraded_loss``),
    and the peer's source address changes (``nat:home`` ->
    ``nat:visited``).  The adversary replays the recorded home-network
    history right after the gap — a window that must stay closed however
    the addresses moved.  ``reset_schedule="during"`` lands a sender
    reset inside the handover gap: recovery and rebinding interleave.
    """
    if outage is None:
        outage = 2 * costs.t_save
    harness = build_protocol(
        trace=NULL_TRACE,
        protected=protected,
        k_p=k,
        k_q=k,
        w=w,
        costs=costs,
        seed=seed,
        with_adversary=True,
        sender_address="nat:home",
    )
    gate = NatGate(harness.receiver, policy=policy, initial_binding="nat:home")
    harness.link.sink = gate.on_receive
    visited = PathPhase(
        name="visited",
        delay=FixedDelay(degraded_delay),
        loss=BernoulliLoss(degraded_loss) if degraded_loss > 0 else None,
    )

    def on_handover() -> None:
        harness.link.path_down()
        harness.engine.call_later(outage, harness.link.path_up)
        harness.link.shift_regime(visited)
        harness.sender.address = "nat:visited"

    call_at_count(harness.sender, handover_after_sends, on_handover)

    if replay_old_binding:
        def fire_replay() -> None:
            assert harness.adversary is not None
            harness.adversary.replay_history(rate=1.0 / costs.t_recv)

        # Right after the first visited-network packet leaves.
        call_at_count(harness.sender, handover_after_sends + 1, fire_replay)

    handover_at = handover_after_sends * costs.t_send
    _schedule_reset(
        harness,
        reset_schedule,
        during_at=handover_at + outage / 2,
        after_at=handover_at + outage + (messages_after_handover // 2) * costs.t_send,
        down_time=2 * costs.t_save,
    )

    total_attempts = handover_after_sends + messages_after_handover
    slack = int(2 * outage / costs.t_send) + (10 * k if reset_schedule != "none" else 0)
    harness.sender.start_traffic(count=total_attempts + slack)
    horizon = (
        (total_attempts + slack + 10) * (costs.t_send + degraded_delay)
        + outage
        + 10 * costs.t_save
    )
    replay_budget = (total_attempts + 10) * costs.t_recv if replay_old_binding else 0.0
    _run_to_completion(harness, horizon + replay_budget)
    return ScenarioResult(
        harness=harness,
        report=harness.score(check_bounds=False),
        extra=_netpath_extras(harness, gate),
    )


# ----------------------------------------------------------------------
# Rekey storm: N concurrent IKE renegotiations contending for one CPU
# ----------------------------------------------------------------------
def run_rekey_storm_scenario(
    n_sas: int = 8,
    rtt: float = 0.01,
    detection_delay: float = 0.0,
    contended: bool = True,
    costs: CostModel = PAPER_COSTS,
    seed: int = 0,
) -> dict[str, Any]:
    """The IETF remedy at gateway scale: N renegotiations at one instant.

    E7's :class:`~repro.core.baselines.RekeySimulation` renegotiates
    sequentially (one CPU, one session at a time).  A gateway reset
    drops N SAs at once, and an implementation would fire all N IKE
    exchanges concurrently: network round-trips overlap, but every DH
    exponentiation and PRF evaluation still serializes on the recovering
    host's CPU (:class:`~repro.ipsec.ike.SerialCompute` — the same
    FIFO-reservation shape as the shared store's FETCH storm).  Each
    remote peer is a distinct host, so responder compute is uncontended.

    Reported against both E7 baselines: the sequential train it
    improves on, and the SAVE/FETCH recovery that needs no network at
    all.  ``contended=False`` ablates the CPU model (pure overlap — the
    lower bound an infinitely parallel host could reach).
    """
    engine = Engine(trace=NULL_TRACE)
    config = IkeConfig(costs=costs)
    one_way = FixedDelay(rtt / 2.0)
    gateway_cpu = SerialCompute() if contended else None
    completions: list[float] = []
    messages = {"count": 0}

    initiators: list[IkeInitiator] = []
    links_out: list[Link] = []
    links_back: list[Link] = []
    for index in range(n_sas):
        pair_seed = derive_seed(seed, "rekey_storm", index)
        # send_fn closures bind the index, not the loop variable.
        responder = IkeResponder(
            engine,
            f"peer{index}",
            "gw",
            send_fn=lambda m, i=index: links_back[i].send(m),
            config=config,
            seed=pair_seed * 2 + 1,
        )
        initiator = IkeInitiator(
            engine,
            "gw",
            f"peer{index}",
            send_fn=lambda m, i=index: links_out[i].send(m),
            config=config,
            seed=pair_seed * 2 + 2,
            compute=gateway_cpu,
        )

        def on_complete(result) -> None:
            completions.append(result.completed_at)
            messages["count"] += result.messages_sent

        def count_responder(result) -> None:
            messages["count"] += result.messages_sent

        initiator.on_complete = on_complete
        responder.on_complete = count_responder
        links_out.append(Link(
            engine, f"link:gw->peer{index}", sink=responder.on_receive,
            delay=one_way,
        ))
        links_back.append(Link(
            engine, f"link:peer{index}->gw", sink=initiator.on_receive,
            delay=one_way,
        ))
        initiators.append(initiator)

    for initiator in initiators:
        engine.call_at(detection_delay, initiator.start)
    engine.run()
    if len(completions) != n_sas:
        raise RuntimeError(
            f"only {len(completions)}/{n_sas} storm negotiations completed"
        )
    storm_time = max(completions) - detection_delay

    sequential = RekeySimulation(
        n_sas=n_sas,
        rtt=rtt,
        detection_delay=detection_delay,
        costs=costs,
        seed=seed,
    ).run()
    savefetch = savefetch_recovery_outcome(n_sas=n_sas, costs=costs)
    return {
        "n_sas": n_sas,
        "rekey_storm_time_s": storm_time,
        "rekey_sequential_time_s": sequential.renegotiation_time,
        "savefetch_time_s": savefetch.recovery_time,
        "messages": messages["count"],
        "cpu_busy_s": gateway_cpu.busy_time if gateway_cpu is not None else 0.0,
        "cpu_max_wait_s": gateway_cpu.max_wait if gateway_cpu is not None else 0.0,
        "storm_speedup": (
            sequential.renegotiation_time / storm_time if storm_time > 0 else 0.0
        ),
    }


#: Stable scenario names for declarative drivers (fleet campaign specs
#: and experiment sweeps).  Every ``run_*`` scenario callable in this
#: module is reachable by name here.
SCENARIOS: dict[str, Callable[..., "ScenarioResult | dict[str, Any]"]] = {
    "sender_reset": run_sender_reset_scenario,
    "receiver_reset": run_receiver_reset_scenario,
    "dual_reset": run_dual_reset_scenario,
    "loss_reset": run_loss_reset_scenario,
    "reorder": run_reorder_scenario,
    "rekey": run_rekey_scenario,
    "staggered_reset": run_staggered_reset_scenario,
    "prolonged_reset": run_prolonged_reset_scenario,
    "recovery_ablation": run_recovery_ablation_scenario,
    "reset_notice": run_reset_notice_scenario,
    "dpd": run_dpd_scenario,
    "save_policy": run_save_policy_scenario,
    "loss_hole": run_loss_hole_scenario,
    "gateway_crash": run_gateway_crash_scenario,
    "rolling_restart": run_rolling_restart_scenario,
    "sa_churn": run_sa_churn_scenario,
    "nat_rebinding": run_nat_rebinding_scenario,
    "path_flap": run_path_flap_scenario,
    "mobile_handover": run_mobile_handover_scenario,
    "rekey_storm": run_rekey_storm_scenario,
}


def get_scenario(name: str) -> Callable[..., ScenarioResult]:
    """Look up a scenario by registry name.

    Raises:
        KeyError: with the list of known names, if ``name`` is unknown.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}") from None
