"""Traffic generators.

The paper motivates measuring the SAVE interval "in terms of the number of
messages, rather than in terms of time, because the rate of message
generation may change over time.  At some time, the rate of message
generation can be very low."  These generators provide exactly that
variability so experiments can confirm the message-count policy behaves
well where a time-based policy would not (E6's wasteful-SAVE comparison).

A generator owns the *pacing* only; the actual transmission is the
sender's :meth:`~repro.core.sender.BaseSender.send_one`, so suppressed
sends (host down / recovering) behave identically across generators.
"""

from __future__ import annotations

from repro.core.sender import BaseSender
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.util.rng import make_rng
from repro.util.validation import check_positive


class TrafficGenerator(SimProcess):
    """Base class: schedules :meth:`tick` times, sends on each tick."""

    def __init__(self, engine: Engine, name: str, sender: BaseSender) -> None:
        super().__init__(engine, name)
        self.sender = sender
        self.attempts = 0
        self._running = False
        self._remaining: int | None = None

    def start(self, count: int | None = None) -> None:
        """Begin generating; optionally stop after ``count`` attempts."""
        self._running = True
        self._remaining = count
        self.call_later(self.next_gap(), self._tick)

    def stop(self) -> None:
        """Stop generating (pending tick becomes a no-op)."""
        self._running = False

    def next_gap(self) -> float:
        """Time until the next send attempt (subclass-defined)."""
        raise NotImplementedError

    def _tick(self) -> None:
        if not self._running:
            return
        if self._remaining is not None:
            if self._remaining <= 0:
                self._running = False
                return
            self._remaining -= 1
        self.attempts += 1
        self.sender.send_one()
        self.call_later(self.next_gap(), self._tick)


class ConstantRateTraffic(TrafficGenerator):
    """One send attempt every ``interval`` seconds (CBR)."""

    def __init__(
        self, engine: Engine, sender: BaseSender, interval: float, name: str = "cbr"
    ) -> None:
        super().__init__(engine, name, sender)
        check_positive("interval", interval)
        self.interval = interval

    def next_gap(self) -> float:
        return self.interval


class PoissonTraffic(TrafficGenerator):
    """Poisson arrivals with mean rate ``rate`` attempts/second."""

    def __init__(
        self,
        engine: Engine,
        sender: BaseSender,
        rate: float,
        seed: int | None = None,
        name: str = "poisson",
    ) -> None:
        super().__init__(engine, name, sender)
        check_positive("rate", rate)
        self.rate = rate
        self._rng = make_rng(seed)

    def next_gap(self) -> float:
        return self._rng.expovariate(self.rate)


class BurstyTraffic(TrafficGenerator):
    """On/off bursts: ``burst_len`` sends at ``burst_interval`` pacing,
    then an idle period of ``idle_time`` — the regime where time-based
    SAVE policies waste writes (paper, Section 4)."""

    def __init__(
        self,
        engine: Engine,
        sender: BaseSender,
        burst_len: int,
        burst_interval: float,
        idle_time: float,
        name: str = "bursty",
    ) -> None:
        super().__init__(engine, name, sender)
        check_positive("burst_len", burst_len)
        check_positive("burst_interval", burst_interval)
        check_positive("idle_time", idle_time)
        self.burst_len = int(burst_len)
        self.burst_interval = burst_interval
        self.idle_time = idle_time
        # next_gap is called once before the first send; start at -1 so
        # the idle gap lands after exactly burst_len sends.
        self._in_burst = -1

    def next_gap(self) -> float:
        self._in_burst += 1
        if self._in_burst >= self.burst_len:
            self._in_burst = 0
            return self.idle_time
        return self.burst_interval
