"""Workload and scenario library (system S17).

* :mod:`~repro.workloads.traffic` — traffic generators that drive a
  sender: constant bit rate, Poisson arrivals, and bursty on/off.
* :mod:`~repro.workloads.scenarios` — named, parameterised end-to-end
  scenarios composed from the protocol harness, reset injectors and
  adversary strategies; the experiment modules are built from these.
"""

from repro.workloads.scenarios import (
    SCENARIOS,
    ScenarioResult,
    get_scenario,
    run_dual_reset_scenario,
    run_loss_reset_scenario,
    run_receiver_reset_scenario,
    run_sender_reset_scenario,
)
from repro.workloads.traffic import (
    BurstyTraffic,
    ConstantRateTraffic,
    PoissonTraffic,
    TrafficGenerator,
)

__all__ = [
    "BurstyTraffic",
    "ConstantRateTraffic",
    "PoissonTraffic",
    "SCENARIOS",
    "ScenarioResult",
    "TrafficGenerator",
    "get_scenario",
    "run_dual_reset_scenario",
    "run_loss_reset_scenario",
    "run_receiver_reset_scenario",
    "run_sender_reset_scenario",
]
