"""Unidirectional simulated links.

A :class:`Link` accepts packets via :meth:`Link.send`, applies its loss
model, samples a delay, and schedules delivery to its *sink* (any callable
taking the packet).  Optional pieces:

* **taps** observe every offered packet — this is how the
  :class:`~repro.net.adversary.ReplayAdversary` records traffic without
  the protocol knowing.
* **availability**: a callable reporting whether the destination host is
  currently up; packets offered while it is down are dropped and, if an
  ``icmp_sink`` is configured, converted into ICMP destination-unreachable
  notifications back toward the source (used by Section 6 recovery and by
  dead-peer detection).
* **fifo=True** forces in-order delivery (delivery time is clamped to be
  monotone), modelling the paper's "no message reorder occurs" hypothesis
  in claim (i).
* **path**: a :class:`~repro.netpath.PathProfile` makes the link's
  conditions *time-varying* — an ordered timeline of delay/loss/up
  regimes the link steps through lazily, per offered packet.  A static
  single-phase profile resolves at construction and runs the exact
  fixed-channel hot path (golden-parity pinned); path faults
  (:mod:`repro.netpath.faults`) drive the :meth:`Link.path_down` /
  :meth:`Link.path_up` / :meth:`Link.shift_regime` hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Protocol

from repro.net.delay import DelayModel, FixedDelay, delay_from_dict
from repro.net.icmp import IcmpMessage, IcmpType
from repro.net.loss import LossModel, NoLoss, loss_from_dict
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.util.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - layering guard (repro.netpath
    # imports repro.net; the runtime coupling here is duck-typed via
    # PathProfile.bind() so no import cycle exists)
    from repro.netpath.profile import PathPhase, PathProfile


class _RegimeView:
    """Adapter presenting a bare phase to :meth:`Link._apply_regime`
    with freshly cloned models (same semantics as a profile transition)."""

    __slots__ = ("delay", "loss", "up", "fifo")

    def __init__(self, phase: "PathPhase") -> None:
        self.delay = (
            None if phase.delay is None else delay_from_dict(phase.delay.to_dict())
        )
        self.loss = (
            None if phase.loss is None else loss_from_dict(phase.loss.to_dict())
        )
        self.up = phase.up
        self.fifo = phase.fifo

#: A tap receives ``(time, packet, injected)`` for every packet offered to
#: the link; ``injected`` is True for adversary insertions.
TapFn = Callable[[float, Any, bool], None]


class PacketPipe(Protocol):
    """Anything that accepts packets via ``send`` (links, reorder stages)."""

    def send(self, packet: Any) -> None:  # pragma: no cover - protocol
        ...


class Link(SimProcess):
    """A unidirectional lossy, delaying link from one host to another.

    Args:
        engine: the simulation engine.
        name: trace name, conventionally ``"link:p->q"``.
        sink: callable invoked with each delivered packet.
        delay: per-packet delay model (default: zero-latency).
        loss: packet loss model (default: reliable).
        seed: RNG seed or generator for loss/delay draws.
        fifo: if True, delivery order equals send order regardless of the
            delay model (delivery times are clamped to be monotone).
        availability: optional callable; when it returns False the
            destination is down and offered packets are undeliverable.
        icmp_sink: optional callable receiving :class:`IcmpMessage` when a
            packet is undeliverable.
        path: optional :class:`~repro.netpath.PathProfile`.  Phase
            models override ``delay``/``loss`` while active (``None``
            fields inherit them); a static profile resolves here and
            adds nothing to the hot path.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        sink: Callable[[Any], None],
        delay: DelayModel | None = None,
        loss: LossModel | None = None,
        seed: int | None = None,
        fifo: bool = False,
        availability: Callable[[], bool] | None = None,
        icmp_sink: Callable[[IcmpMessage], None] | None = None,
        path: "PathProfile | None" = None,
    ) -> None:
        super().__init__(engine, name)
        self.sink = sink
        self.delay = delay if delay is not None else FixedDelay(0.0)
        self.loss = loss if loss is not None else NoLoss()
        self.fifo = fifo
        self.availability = availability
        self.icmp_sink = icmp_sink
        self._rng = make_rng(seed)
        self._taps: list[TapFn] = []
        self._last_delivery_time = 0.0
        # Statistics (monotonic; experiments read these).
        self.offered = 0
        self.dropped = 0
        self.delivered = 0
        self.undeliverable = 0
        self.injected = 0
        self.blackholed = 0
        self.regime_shifts = 0
        # Path dynamics.  The base models are what phases with delay=None
        # / loss=None fall back to; _path_up is the profile's up flag,
        # _forced_down a depth counter driven by PathOutage/PathFlap.
        self.path_profile = path
        self._base_delay = self.delay
        self._base_loss = self.loss
        self._base_fifo = fifo
        self._path_up = True
        self._forced_down = 0
        self._timeline = None
        if path is not None:
            timeline = path.bind(seed)
            self._apply_regime(timeline)
            # Static profiles resolve once; only a timeline that will
            # actually transition earns the per-packet check.
            if not timeline.is_static:
                self._timeline = timeline

    # ------------------------------------------------------------------
    # Taps
    # ------------------------------------------------------------------
    def add_tap(self, tap: TapFn) -> None:
        """Register a tap; it sees every packet offered to the link."""
        self._taps.append(tap)

    def remove_tap(self, tap: TapFn) -> None:
        """Unregister a tap previously added with :meth:`add_tap`."""
        self._taps.remove(tap)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, packet: Any) -> None:
        """Offer a packet from the legitimate sender."""
        self._transmit(packet, injected=False)

    def inject(self, packet: Any) -> None:
        """Offer a packet inserted by an adversary.

        Injected packets traverse the same loss/delay path as legitimate
        ones (the adversary is on-path, not omnipotent), but are flagged in
        traces and not re-recorded by taps that ignore injections.
        """
        self.injected += 1
        self._transmit(packet, injected=True)

    # ------------------------------------------------------------------
    # Path dynamics
    # ------------------------------------------------------------------
    def _apply_regime(self, regime: Any) -> None:
        """Adopt a timeline/phase-like regime (duck-typed: ``delay``,
        ``loss``, ``up``, ``fifo`` attributes, ``None`` = inherit)."""
        self.delay = regime.delay if regime.delay is not None else self._base_delay
        self.loss = regime.loss if regime.loss is not None else self._base_loss
        self.fifo = regime.fifo if regime.fifo is not None else self._base_fifo
        self._path_up = regime.up

    @property
    def path_is_up(self) -> bool:
        """Whether packets offered right now would traverse the path."""
        return self._path_up and not self._forced_down

    @property
    def path_transitions(self) -> int:
        """Profile phase transitions taken so far (0 without a profile)."""
        return self._timeline.transitions if self._timeline is not None else 0

    def path_down(self) -> None:
        """A fault blackholes the path (nestable; see :meth:`path_up`)."""
        self._forced_down += 1
        self.trace("path_down", depth=self._forced_down)

    def path_up(self) -> None:
        """Undo one :meth:`path_down`; the path carries again at depth 0."""
        if self._forced_down > 0:
            self._forced_down -= 1
        self.trace("path_up", depth=self._forced_down)

    def shift_regime(self, phase: "PathPhase") -> None:
        """Switch the link's conditions to ``phase`` immediately.

        A profile transition scheduled later still overrides — a shift
        splices a regime into the timeline, it does not replace it.  The
        phase's models enter fresh (same clone semantics as a profile
        transition); its duration/jitter are ignored.
        """
        self.regime_shifts += 1
        self._apply_regime(_RegimeView(phase))
        self.trace("regime_shift", phase=phase.name)

    def _transmit(self, packet: Any, injected: bool) -> None:
        self.offered += 1
        for tap in self._taps:
            tap(self.now, packet, injected)
        timeline = self._timeline
        if timeline is not None and self.now >= timeline.next_change:
            timeline.advance(self.now)
            self._apply_regime(timeline)
        if self._forced_down or not self._path_up:
            self.blackholed += 1
            self.dropped += 1
            if self.traced:
                self.trace("blackhole", packet=repr(packet), injected=injected)
            return
        if self.loss.should_drop(self._rng):
            self.dropped += 1
            if self.traced:
                self.trace("drop", packet=repr(packet), injected=injected)
            return
        delay = self.delay.sample(self._rng)
        delivery_time = self.now + delay
        if self.fifo and delivery_time < self._last_delivery_time:
            delivery_time = self._last_delivery_time
        self._last_delivery_time = max(self._last_delivery_time, delivery_time)
        # Deliveries are never cancelled, so they ride the zero-alloc
        # post path (no Event handle).
        self.engine.post_at(delivery_time, self._deliver, packet, injected)

    def offer_many(self, packets: list[Any], injected: bool = False) -> None:
        """Offer a batch of packets at the current instant.

        Semantically identical to offering each packet in order — the
        per-packet loss/delay draws happen in the same sequence, so RNG
        state, statistics, and delivery ordering match the sequential
        path exactly — but the fixed-channel common case (no taps, no
        path timeline, untraced) pays the per-offer overhead once per
        batch instead of once per packet.  This is the N-SA gateway
        fan-out path (:meth:`repro.gateway.core.Gateway.pulse_all` /
        :meth:`repro.core.sender.BaseSender.send_batch`).
        """
        if self._taps or self._timeline is not None or self.traced:
            # Taps, a live path timeline, or tracing want the exact
            # per-packet sequence of side effects.
            if injected:
                self.injected += len(packets)
            for packet in packets:
                self._transmit(packet, injected)
            return
        n = len(packets)
        self.offered += n
        if injected:
            self.injected += n
        if self._forced_down or not self._path_up:
            self.blackholed += n
            self.dropped += n
            return
        rng = self._rng
        should_drop = self.loss.should_drop
        sample = self.delay.sample
        post_at = self.engine.post_at
        deliver = self._deliver
        now = self.now
        fifo = self.fifo
        last = self._last_delivery_time
        dropped = 0
        for packet in packets:
            if should_drop(rng):
                dropped += 1
                continue
            delivery_time = now + sample(rng)
            if fifo and delivery_time < last:
                delivery_time = last
            elif delivery_time > last:
                last = delivery_time
            post_at(delivery_time, deliver, packet, injected)
        self._last_delivery_time = last
        self.dropped += dropped

    def _deliver(self, packet: Any, injected: bool) -> None:
        if self.availability is not None and not self.availability():
            self.undeliverable += 1
            if self.traced:
                self.trace("unreachable", packet=repr(packet), injected=injected)
            if self.icmp_sink is not None:
                self.icmp_sink(
                    IcmpMessage(
                        icmp_type=IcmpType.DESTINATION_UNREACHABLE,
                        about=packet,
                        time=self.now,
                    )
                )
            return
        self.delivered += 1
        if self.traced:
            self.trace("deliver", packet=repr(packet), injected=injected)
        self.sink(packet)
