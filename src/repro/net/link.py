"""Unidirectional simulated links.

A :class:`Link` accepts packets via :meth:`Link.send`, applies its loss
model, samples a delay, and schedules delivery to its *sink* (any callable
taking the packet).  Optional pieces:

* **taps** observe every offered packet — this is how the
  :class:`~repro.net.adversary.ReplayAdversary` records traffic without
  the protocol knowing.
* **availability**: a callable reporting whether the destination host is
  currently up; packets offered while it is down are dropped and, if an
  ``icmp_sink`` is configured, converted into ICMP destination-unreachable
  notifications back toward the source (used by Section 6 recovery and by
  dead-peer detection).
* **fifo=True** forces in-order delivery (delivery time is clamped to be
  monotone), modelling the paper's "no message reorder occurs" hypothesis
  in claim (i).
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

from repro.net.delay import DelayModel, FixedDelay
from repro.net.icmp import IcmpMessage, IcmpType
from repro.net.loss import LossModel, NoLoss
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.util.rng import make_rng

#: A tap receives ``(time, packet, injected)`` for every packet offered to
#: the link; ``injected`` is True for adversary insertions.
TapFn = Callable[[float, Any, bool], None]


class PacketPipe(Protocol):
    """Anything that accepts packets via ``send`` (links, reorder stages)."""

    def send(self, packet: Any) -> None:  # pragma: no cover - protocol
        ...


class Link(SimProcess):
    """A unidirectional lossy, delaying link from one host to another.

    Args:
        engine: the simulation engine.
        name: trace name, conventionally ``"link:p->q"``.
        sink: callable invoked with each delivered packet.
        delay: per-packet delay model (default: zero-latency).
        loss: packet loss model (default: reliable).
        seed: RNG seed or generator for loss/delay draws.
        fifo: if True, delivery order equals send order regardless of the
            delay model (delivery times are clamped to be monotone).
        availability: optional callable; when it returns False the
            destination is down and offered packets are undeliverable.
        icmp_sink: optional callable receiving :class:`IcmpMessage` when a
            packet is undeliverable.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        sink: Callable[[Any], None],
        delay: DelayModel | None = None,
        loss: LossModel | None = None,
        seed: int | None = None,
        fifo: bool = False,
        availability: Callable[[], bool] | None = None,
        icmp_sink: Callable[[IcmpMessage], None] | None = None,
    ) -> None:
        super().__init__(engine, name)
        self.sink = sink
        self.delay = delay if delay is not None else FixedDelay(0.0)
        self.loss = loss if loss is not None else NoLoss()
        self.fifo = fifo
        self.availability = availability
        self.icmp_sink = icmp_sink
        self._rng = make_rng(seed)
        self._taps: list[TapFn] = []
        self._last_delivery_time = 0.0
        # Statistics (monotonic; experiments read these).
        self.offered = 0
        self.dropped = 0
        self.delivered = 0
        self.undeliverable = 0
        self.injected = 0

    # ------------------------------------------------------------------
    # Taps
    # ------------------------------------------------------------------
    def add_tap(self, tap: TapFn) -> None:
        """Register a tap; it sees every packet offered to the link."""
        self._taps.append(tap)

    def remove_tap(self, tap: TapFn) -> None:
        """Unregister a tap previously added with :meth:`add_tap`."""
        self._taps.remove(tap)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, packet: Any) -> None:
        """Offer a packet from the legitimate sender."""
        self._transmit(packet, injected=False)

    def inject(self, packet: Any) -> None:
        """Offer a packet inserted by an adversary.

        Injected packets traverse the same loss/delay path as legitimate
        ones (the adversary is on-path, not omnipotent), but are flagged in
        traces and not re-recorded by taps that ignore injections.
        """
        self.injected += 1
        self._transmit(packet, injected=True)

    def _transmit(self, packet: Any, injected: bool) -> None:
        self.offered += 1
        for tap in self._taps:
            tap(self.now, packet, injected)
        if self.loss.should_drop(self._rng):
            self.dropped += 1
            if self.traced:
                self.trace("drop", packet=repr(packet), injected=injected)
            return
        delay = self.delay.sample(self._rng)
        delivery_time = self.now + delay
        if self.fifo and delivery_time < self._last_delivery_time:
            delivery_time = self._last_delivery_time
        self._last_delivery_time = max(self._last_delivery_time, delivery_time)
        self.engine.call_at(delivery_time, self._deliver, packet, injected)

    def _deliver(self, packet: Any, injected: bool) -> None:
        if self.availability is not None and not self.availability():
            self.undeliverable += 1
            if self.traced:
                self.trace("unreachable", packet=repr(packet), injected=injected)
            if self.icmp_sink is not None:
                self.icmp_sink(
                    IcmpMessage(
                        icmp_type=IcmpType.DESTINATION_UNREACHABLE,
                        about=packet,
                        time=self.now,
                    )
                )
            return
        self.delivered += 1
        if self.traced:
            self.trace("deliver", packet=repr(packet), injected=injected)
        self.sink(packet)
