"""Network substrate (systems S2-S4).

The paper's channel model is a unidirectional message stream from sender
``p`` to receiver ``q`` in which messages "may be lost or reordered", plus
an adversary that "can insert in the message stream from p to q a copy of
any message t that was sent earlier by p".

This package provides exactly that, as composable pieces:

* :class:`~repro.net.link.Link` — a unidirectional lossy, delaying link
  that delivers packets to a sink callable via engine events.
* :mod:`~repro.net.loss` — loss models (none, Bernoulli, Gilbert-Elliott
  bursts, deterministic index sets).
* :mod:`~repro.net.delay` — delay models (fixed, uniform jitter,
  exponential jitter); jitter on a non-FIFO link produces reordering.
* :class:`~repro.net.reorder.DegreeReorderStage` — a pipeline stage that
  produces *controlled* reorders of a chosen degree, matching the paper's
  definition ("a message m suffers a reorder of degree w iff the w-th
  message sent after m is received before m").
* :class:`~repro.net.adversary.ReplayAdversary` — records link traffic and
  replays it with the attack strategies of Section 3.
* :mod:`~repro.net.icmp` — ICMP destination-unreachable generation used by
  the Section 6 prolonged-reset recovery and dead-peer detection.
"""

from repro.net.adversary import ReplayAdversary
from repro.net.delay import DelayModel, ExponentialJitterDelay, FixedDelay, UniformJitterDelay
from repro.net.icmp import IcmpMessage, IcmpSink, IcmpType
from repro.net.link import Link, PacketPipe, TapFn
from repro.net.loss import BernoulliLoss, DeterministicLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.net.message import Message
from repro.net.pool import EnvelopePool, esp_packet_pool, message_pool
from repro.net.reorder import DegreeReorderStage

__all__ = [
    "BernoulliLoss",
    "DegreeReorderStage",
    "DelayModel",
    "DeterministicLoss",
    "EnvelopePool",
    "ExponentialJitterDelay",
    "FixedDelay",
    "GilbertElliottLoss",
    "IcmpMessage",
    "IcmpSink",
    "IcmpType",
    "Link",
    "LossModel",
    "Message",
    "NoLoss",
    "PacketPipe",
    "ReplayAdversary",
    "TapFn",
    "UniformJitterDelay",
    "esp_packet_pool",
    "message_pool",
]
