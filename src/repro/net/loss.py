"""Packet-loss models.

A loss model answers one question per packet: drop it or not.  Models are
stateful where the model demands it (Gilbert-Elliott), and every stochastic
decision draws from the :class:`random.Random` handed in by the link, never
from global state.

Every model round-trips through a tagged plain dict (:meth:`LossModel.to_dict`
/ :func:`loss_from_dict`) so :class:`repro.netpath.PathProfile` phases can
carry loss regimes through JSON campaign specs.  Only *construction
parameters* are serialised — a decoded model starts in its reset state.
"""

from __future__ import annotations

import json
import random
from typing import Any, Iterable, Mapping

from repro.util.validation import check_probability


class LossModel:
    """Base class: decides, per packet, whether the link drops it."""

    #: Stable tag used by the JSON codec (set per subclass).
    kind: str = ""

    def should_drop(self, rng: random.Random) -> bool:
        """Return ``True`` if the next packet should be dropped."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset internal state (for models that have any)."""

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form: the ``kind`` tag plus the constructor kwargs."""
        return {"kind": self.kind}

    # Structural equality over the serialised form, so profiles and
    # faults holding models compare by configuration, not identity.
    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.to_dict() == self.to_dict()

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_dict(), sort_keys=True))


class NoLoss(LossModel):
    """A perfectly reliable link."""

    kind = "none"

    def should_drop(self, rng: random.Random) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent per-packet loss with probability ``p``."""

    kind = "bernoulli"

    def __init__(self, p: float) -> None:
        self.p = check_probability("p", p)

    def should_drop(self, rng: random.Random) -> bool:
        return rng.random() < self.p

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "p": self.p}

    def __repr__(self) -> str:
        return f"BernoulliLoss(p={self.p})"


class GilbertElliottLoss(LossModel):
    """Two-state bursty loss (Gilbert-Elliott channel).

    The channel alternates between a GOOD and a BAD state with given
    transition probabilities evaluated per packet; each state has its own
    loss probability.  This produces correlated loss bursts, the regime in
    which a receiver reset overlapping a loss burst stresses the
    window-resynchronisation logic hardest.

    Args:
        p_good_to_bad: probability of moving GOOD -> BAD before a packet.
        p_bad_to_good: probability of moving BAD -> GOOD before a packet.
        loss_good: drop probability while GOOD (often 0).
        loss_bad: drop probability while BAD (often near 1).
    """

    kind = "gilbert_elliott"

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        self.p_good_to_bad = check_probability("p_good_to_bad", p_good_to_bad)
        self.p_bad_to_good = check_probability("p_bad_to_good", p_bad_to_good)
        self.loss_good = check_probability("loss_good", loss_good)
        self.loss_bad = check_probability("loss_bad", loss_bad)
        self._in_bad_state = False

    @property
    def in_bad_state(self) -> bool:
        """Whether the channel is currently in the BAD (bursty-loss) state."""
        return self._in_bad_state

    def should_drop(self, rng: random.Random) -> bool:
        if self._in_bad_state:
            if rng.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if rng.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss_p = self.loss_bad if self._in_bad_state else self.loss_good
        return rng.random() < loss_p

    def reset(self) -> None:
        self._in_bad_state = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "p_good_to_bad": self.p_good_to_bad,
            "p_bad_to_good": self.p_bad_to_good,
            "loss_good": self.loss_good,
            "loss_bad": self.loss_bad,
        }

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(g2b={self.p_good_to_bad}, b2g={self.p_bad_to_good}, "
            f"lg={self.loss_good}, lb={self.loss_bad})"
        )


class DeterministicLoss(LossModel):
    """Drop exactly the packets whose (0-based) index is in ``drop_indices``.

    Used by tests and by experiments that need a *specific* loss pattern
    (e.g. "lose exactly the first fresh message after the receiver wakes").
    """

    kind = "deterministic"

    def __init__(self, drop_indices: Iterable[int]) -> None:
        self.drop_indices = frozenset(int(i) for i in drop_indices)
        self._next_index = 0

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "drop_indices": sorted(self.drop_indices)}

    def should_drop(self, rng: random.Random) -> bool:
        index = self._next_index
        self._next_index += 1
        return index in self.drop_indices

    def reset(self) -> None:
        self._next_index = 0

    def __repr__(self) -> str:
        shown = sorted(self.drop_indices)[:8]
        return f"DeterministicLoss({shown}{'...' if len(self.drop_indices) > 8 else ''})"


#: kind tag -> loss class (the JSON codec's dispatch table).
LOSS_KINDS: dict[str, type[LossModel]] = {
    cls.kind: cls
    for cls in (NoLoss, BernoulliLoss, GilbertElliottLoss, DeterministicLoss)
}


def loss_from_dict(data: Mapping[str, Any]) -> LossModel:
    """Rebuild a loss model (in its reset state) from its ``to_dict`` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in LOSS_KINDS:
        known = ", ".join(sorted(LOSS_KINDS))
        raise ValueError(f"unknown loss model kind {kind!r}; known: {known}")
    return LOSS_KINDS[kind](**payload)
