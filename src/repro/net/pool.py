"""Opt-in envelope pooling for wire objects (PR 7 zero-alloc hot path).

:class:`Message` and :class:`~repro.ipsec.esp.EspPacket` are frozen —
an adversary's recorded copy must be byte-for-byte the original — so the
protocol allocates a fresh envelope per transmission.  For throughput
runs that dominate on allocation, :class:`EnvelopePool` keeps a bounded
free list of envelopes and *re-arms* a recycled one in place (through
``object.__setattr__``, the sanctioned escape hatch for frozen
dataclasses) instead of allocating.

Pooling is **strictly opt-in** and caller-managed:

* Nothing in the library releases envelopes implicitly.  A consumer that
  retains packets — the :class:`~repro.core.audit.DeliveryAuditor` keeps
  every registered packet, adversaries record traffic — must never share
  a pool with a releasing consumer, or a retained "immutable" packet
  would be re-armed under it.  Release only envelopes you know dropped
  out of every retaining structure.
* The default protocol paths do not touch a pool at all; enabled-off
  parity is trivially byte-identical.

``hits`` / ``misses`` / ``recycled`` counters mirror the event core's
pool counters and publish through the same obs probe
(:class:`repro.obs.probe.EventCoreProbe`), so one sample shows both
pools' effectiveness.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.ipsec.esp import EspPacket
from repro.net.message import Message

#: Default free-list bound (envelopes, per pool).
DEFAULT_POOL_CAP = 1024

_set = object.__setattr__


class EnvelopePool:
    """A bounded free list of reusable envelope objects.

    Args:
        factory: builds a fresh envelope from the acquire arguments
            (pool miss).
        rearm: re-initialises a recycled envelope in place from the same
            arguments (pool hit).
        cap: free-list bound; :meth:`release` beyond it drops the
            envelope to the garbage collector.
    """

    __slots__ = ("_factory", "_rearm", "_free", "cap",
                 "hits", "misses", "recycled")

    def __init__(
        self,
        factory: Callable[..., Any],
        rearm: Callable[..., None],
        cap: int = DEFAULT_POOL_CAP,
    ) -> None:
        self._factory = factory
        self._rearm = rearm
        self._free: list[Any] = []
        self.cap = cap
        self.hits = 0
        self.misses = 0
        self.recycled = 0

    def acquire(self, *args: Any, **kwargs: Any) -> Any:
        """Return an envelope built from the arguments (recycled or fresh)."""
        free = self._free
        if free:
            envelope = free.pop()
            self.hits += 1
            self._rearm(envelope, *args, **kwargs)
            return envelope
        self.misses += 1
        return self._factory(*args, **kwargs)

    def release(self, envelope: Any) -> None:
        """Hand an envelope back for reuse.

        The caller asserts nothing retains it (see module docstring);
        beyond ``cap`` the envelope is simply dropped.
        """
        if len(self._free) < self.cap:
            self._free.append(envelope)
            self.recycled += 1

    def stats(self) -> dict[str, int]:
        """Effectiveness counters (JSON-safe, obs-probe shape)."""
        return {
            "pool_hits": self.hits,
            "pool_misses": self.misses,
            "pool_recycled": self.recycled,
            "pool_size": len(self._free),
        }


def _rearm_message(
    msg: Message,
    seq: int,
    payload: bytes = b"",
    sent_at: float = 0.0,
    meta: tuple = (),
    src: str | None = None,
) -> None:
    _set(msg, "seq", seq)
    _set(msg, "payload", payload)
    _set(msg, "sent_at", sent_at)
    _set(msg, "meta", meta)
    _set(msg, "src", src)


def _rearm_esp(
    packet: EspPacket,
    spi: int,
    seq: int,
    ciphertext: bytes,
    icv: bytes,
    src: str | None = None,
) -> None:
    _set(packet, "spi", spi)
    _set(packet, "seq", seq)
    _set(packet, "ciphertext", ciphertext)
    _set(packet, "icv", icv)
    _set(packet, "src", src)


def message_pool(cap: int = DEFAULT_POOL_CAP) -> EnvelopePool:
    """An :class:`EnvelopePool` of :class:`~repro.net.message.Message`."""
    return EnvelopePool(Message, _rearm_message, cap=cap)


def esp_packet_pool(cap: int = DEFAULT_POOL_CAP) -> EnvelopePool:
    """An :class:`EnvelopePool` of :class:`~repro.ipsec.esp.EspPacket`."""
    return EnvelopePool(EspPacket, _rearm_esp, cap=cap)


__all__ = [
    "DEFAULT_POOL_CAP",
    "EnvelopePool",
    "esp_packet_pool",
    "message_pool",
]
