"""The replay adversary of Section 3.

The paper's threat model: "At any instant, an adversary can insert in the
message stream from p to q a copy of any message t that was sent earlier by
p."  The adversary cannot forge messages (integrity is protected by the
SA's keys) — it can only *record and replay*.

:class:`ReplayAdversary` taps a link to record every legitimately sent
packet, then mounts the concrete attacks the paper describes:

* :meth:`replay_history` — Section 3, receiver-reset attack: "an adversary
  can replay in order all the messages with sequence numbers within the
  range from 1 to x".
* :meth:`replay_max` — Section 3, dual-reset attack: replay the message
  with the *largest* recorded sequence number to force q to shift its
  window past the sender's current counter ("forces q to shift the right
  edge of its anti-replay window to z").
* :meth:`replay_range` — gap-targeted: replay exactly the messages whose
  sequence numbers fall in the save gap ``(fetched, last_used]``, the
  window the leap number must cover.
* :meth:`replay_random` — background replay noise.

Every injection goes through :meth:`Link.inject`, so replays experience the
same loss and delay as legitimate traffic.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.net.link import Link
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.util.rng import make_rng
from repro.util.validation import check_non_negative, check_positive


def _default_seq_of(packet: Any) -> int | None:
    """Extract a sequence number from common packet shapes."""
    seq = getattr(packet, "seq", None)
    return seq if isinstance(seq, int) else None


class ReplayAdversary(SimProcess):
    """An on-path attacker that records and replays link traffic.

    Args:
        engine: the simulation engine.
        link: the link to tap and inject into.
        name: trace name (default ``"adversary"``).
        seq_of: callable extracting a packet's sequence number (used by the
            targeted strategies); defaults to reading ``packet.seq``.
        seed: RNG seed for the randomised strategies.

    Attributes:
        recorded: every (time, packet) pair observed on the tapped link,
            in transmission order.  Replayed copies are not re-recorded.
        injections: number of packets this adversary has inserted.
    """

    def __init__(
        self,
        engine: Engine,
        link: Link,
        name: str = "adversary",
        seq_of: Callable[[Any], int | None] = _default_seq_of,
        seed: int | None = None,
    ) -> None:
        super().__init__(engine, name)
        self.link = link
        self.seq_of = seq_of
        self.recorded: list[tuple[float, Any]] = []
        self.injections = 0
        self._rng = make_rng(seed)
        link.add_tap(self._observe)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _observe(self, time: float, packet: Any, injected: bool) -> None:
        if injected:
            return  # do not re-record our own (or another attacker's) insertions
        self.recorded.append((time, packet))

    @property
    def recorded_packets(self) -> list[Any]:
        """All recorded packets, in transmission order."""
        return [packet for _, packet in self.recorded]

    def highest_seq_packet(self) -> Any | None:
        """The recorded packet with the largest sequence number, if any."""
        best = None
        best_seq: int | None = None
        for _, packet in self.recorded:
            seq = self.seq_of(packet)
            if seq is None:
                continue
            if best_seq is None or seq > best_seq:
                best, best_seq = packet, seq
        return best

    # ------------------------------------------------------------------
    # Injection primitives
    # ------------------------------------------------------------------
    def inject_now(self, packet: Any) -> None:
        """Insert one recorded packet into the stream immediately."""
        self.injections += 1
        self.trace("inject", packet=repr(packet))
        self.link.inject(packet)

    def _inject_sequence(self, packets: list[Any], rate: float, start_delay: float) -> int:
        """Schedule ``packets`` for injection at ``rate`` packets/second."""
        check_positive("rate", rate)
        check_non_negative("start_delay", start_delay)
        gap = 1.0 / rate
        for index, packet in enumerate(packets):
            self.engine.call_later(start_delay + index * gap, self.inject_now, packet)
        return len(packets)

    # ------------------------------------------------------------------
    # Attack strategies (Section 3)
    # ------------------------------------------------------------------
    def replay_history(
        self,
        rate: float = 1e6,
        start_delay: float = 0.0,
        limit: int | None = None,
    ) -> int:
        """Replay the entire recorded history, in original order.

        This is the receiver-reset attack: after q restarts with ``r = 0``,
        "all these replayed messages will be unsuspectedly accepted by q".

        Returns:
            The number of injections scheduled.
        """
        packets = self.recorded_packets
        if limit is not None:
            packets = packets[:limit]
        return self._inject_sequence(packets, rate, start_delay)

    def replay_max(self, start_delay: float = 0.0) -> int:
        """Replay the recorded packet with the highest sequence number.

        This is the dual-reset window-jump attack: forcing q's right edge
        to a value z above the sender's restarted counter desynchronises
        the unprotected protocol permanently.

        Returns:
            1 if a packet was scheduled, 0 if nothing has been recorded.
        """
        packet = self.highest_seq_packet()
        if packet is None:
            return 0
        self.engine.call_later(start_delay, self.inject_now, packet)
        return 1

    def replay_range(
        self,
        lo: int,
        hi: int,
        rate: float = 1e6,
        start_delay: float = 0.0,
    ) -> int:
        """Replay every recorded packet with sequence number in ``[lo, hi]``.

        Gap-targeted attack: aimed at the sequence numbers between the
        fetched checkpoint and the last counter value used before a reset —
        exactly the numbers the ``2K`` leap must render unusable.
        """
        packets = [
            packet
            for _, packet in self.recorded
            if (seq := self.seq_of(packet)) is not None and lo <= seq <= hi
        ]
        return self._inject_sequence(packets, rate, start_delay)

    def replay_random(
        self,
        count: int,
        rate: float = 1e6,
        start_delay: float = 0.0,
    ) -> int:
        """Replay ``count`` uniformly chosen recorded packets (with repeats)."""
        check_non_negative("count", count)
        if not self.recorded or count == 0:
            return 0
        packets = [self._rng.choice(self.recorded)[1] for _ in range(count)]
        return self._inject_sequence(packets, rate, start_delay)
