"""Minimal ICMP substrate (RFC 792 subset).

Section 6 of the paper relies on one ICMP behaviour: "after one host in an
IPsec communication detects the unavailability of its peer by receiving the
ICMP undeliverable message, this host keeps the SAs alive for a certain
period of time".  We model exactly the destination-unreachable message plus
an optional echo pair used by heartbeat-style dead-peer detection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

#: Type of a callable that consumes ICMP messages.
IcmpSink = Callable[["IcmpMessage"], None]


class IcmpType(enum.Enum):
    """The ICMP message types the simulation uses."""

    DESTINATION_UNREACHABLE = 3
    ECHO_REQUEST = 8
    ECHO_REPLY = 0


@dataclass(frozen=True)
class IcmpMessage:
    """An ICMP notification.

    Attributes:
        icmp_type: which ICMP message this is.
        about: for DESTINATION_UNREACHABLE, the undeliverable packet; for
            echo messages, an opaque probe token.
        time: simulated time the message was generated.
    """

    icmp_type: IcmpType
    about: Any
    time: float

    def __repr__(self) -> str:
        return f"icmp({self.icmp_type.name}, about={self.about!r})"
