"""Per-packet delay models.

A delay model samples the one-way latency of each packet.  On a link with
``fifo=False`` (the default — IP does not guarantee ordering), independent
per-packet jitter is what produces natural reordering.  For *controlled*
reorder degrees, use :class:`repro.net.reorder.DegreeReorderStage` instead.

Every model round-trips through a tagged plain dict (:meth:`DelayModel.to_dict`
/ :func:`delay_from_dict`), which is how :class:`repro.netpath.PathProfile`
phases travel through JSON campaign specs and the fleet result store.
"""

from __future__ import annotations

import json
import random
from typing import Any, Mapping

from repro.util.validation import check_non_negative


class DelayModel:
    """Base class: samples a one-way delay per packet."""

    #: Stable tag used by the JSON codec (set per subclass).
    kind: str = ""

    def sample(self, rng: random.Random) -> float:
        """Return the delay (seconds, >= 0) for the next packet."""
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form: the ``kind`` tag plus the constructor kwargs."""
        return {"kind": self.kind, **vars(self)}

    # Structural equality over the serialised form, so profiles and
    # faults holding models compare by configuration, not identity.
    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.to_dict() == self.to_dict()

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_dict(), sort_keys=True))


class FixedDelay(DelayModel):
    """Every packet takes exactly ``latency`` seconds (no reordering)."""

    kind = "fixed"

    def __init__(self, latency: float = 0.0) -> None:
        self.latency = check_non_negative("latency", latency)

    def sample(self, rng: random.Random) -> float:
        return self.latency

    def __repr__(self) -> str:
        return f"FixedDelay({self.latency})"


class UniformJitterDelay(DelayModel):
    """Delay uniformly distributed in ``[base, base + jitter]``."""

    kind = "uniform_jitter"

    def __init__(self, base: float, jitter: float) -> None:
        self.base = check_non_negative("base", base)
        self.jitter = check_non_negative("jitter", jitter)

    def sample(self, rng: random.Random) -> float:
        return self.base + rng.random() * self.jitter

    def __repr__(self) -> str:
        return f"UniformJitterDelay(base={self.base}, jitter={self.jitter})"


class ExponentialJitterDelay(DelayModel):
    """Delay = ``base`` + Exp(mean=``mean_jitter``) — heavy-ish tail.

    Approximates queueing delay; occasionally produces large reorders,
    which is the regime Experiment E10 sweeps.
    """

    kind = "exponential_jitter"

    def __init__(self, base: float, mean_jitter: float) -> None:
        self.base = check_non_negative("base", base)
        self.mean_jitter = check_non_negative("mean_jitter", mean_jitter)

    def sample(self, rng: random.Random) -> float:
        jitter = rng.expovariate(1.0 / self.mean_jitter) if self.mean_jitter > 0 else 0.0
        return self.base + jitter

    def __repr__(self) -> str:
        return f"ExponentialJitterDelay(base={self.base}, mean_jitter={self.mean_jitter})"


#: kind tag -> delay class (the JSON codec's dispatch table).
DELAY_KINDS: dict[str, type[DelayModel]] = {
    cls.kind: cls for cls in (FixedDelay, UniformJitterDelay, ExponentialJitterDelay)
}


def delay_from_dict(data: Mapping[str, Any]) -> DelayModel:
    """Rebuild a delay model from its :meth:`DelayModel.to_dict` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in DELAY_KINDS:
        known = ", ".join(sorted(DELAY_KINDS))
        raise ValueError(f"unknown delay model kind {kind!r}; known: {known}")
    return DELAY_KINDS[kind](**payload)
