"""Per-packet delay models.

A delay model samples the one-way latency of each packet.  On a link with
``fifo=False`` (the default — IP does not guarantee ordering), independent
per-packet jitter is what produces natural reordering.  For *controlled*
reorder degrees, use :class:`repro.net.reorder.DegreeReorderStage` instead.
"""

from __future__ import annotations

import random

from repro.util.validation import check_non_negative


class DelayModel:
    """Base class: samples a one-way delay per packet."""

    def sample(self, rng: random.Random) -> float:
        """Return the delay (seconds, >= 0) for the next packet."""
        raise NotImplementedError


class FixedDelay(DelayModel):
    """Every packet takes exactly ``latency`` seconds (no reordering)."""

    def __init__(self, latency: float = 0.0) -> None:
        self.latency = check_non_negative("latency", latency)

    def sample(self, rng: random.Random) -> float:
        return self.latency

    def __repr__(self) -> str:
        return f"FixedDelay({self.latency})"


class UniformJitterDelay(DelayModel):
    """Delay uniformly distributed in ``[base, base + jitter]``."""

    def __init__(self, base: float, jitter: float) -> None:
        self.base = check_non_negative("base", base)
        self.jitter = check_non_negative("jitter", jitter)

    def sample(self, rng: random.Random) -> float:
        return self.base + rng.random() * self.jitter

    def __repr__(self) -> str:
        return f"UniformJitterDelay(base={self.base}, jitter={self.jitter})"


class ExponentialJitterDelay(DelayModel):
    """Delay = ``base`` + Exp(mean=``mean_jitter``) — heavy-ish tail.

    Approximates queueing delay; occasionally produces large reorders,
    which is the regime Experiment E10 sweeps.
    """

    def __init__(self, base: float, mean_jitter: float) -> None:
        self.base = check_non_negative("base", base)
        self.mean_jitter = check_non_negative("mean_jitter", mean_jitter)

    def sample(self, rng: random.Random) -> float:
        jitter = rng.expovariate(1.0 / self.mean_jitter) if self.mean_jitter > 0 else 0.0
        return self.base + jitter

    def __repr__(self) -> str:
        return f"ExponentialJitterDelay(base={self.base}, mean_jitter={self.mean_jitter})"
