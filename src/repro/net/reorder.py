"""Controlled message reordering.

The paper defines reorder *degree*: "A message m is said to suffer a
reorder of degree w iff the w-th message sent (by p) after m is received
(by q) before m."  The anti-replay window then guarantees *w-Delivery*:
every message with reorder degree < w (and not lost) is delivered.

:class:`DegreeReorderStage` produces reorders of an exact chosen degree:
with probability ``probability`` it holds a packet back and releases it
only after ``degree`` subsequent packets have passed it.  Placing the stage
in front of a FIFO link gives full control of the reorder pattern, which is
what Experiment E10 sweeps to reproduce the discard-vs-window-size
behaviour that motivates reference [2] of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.link import PacketPipe
from repro.util.rng import make_rng
from repro.util.validation import check_non_negative, check_probability


@dataclass
class _HeldPacket:
    """A packet being held back, and how many more passes it must suffer."""

    packet: Any
    remaining: int = field(default=0)


class DegreeReorderStage:
    """Hold selected packets back so they suffer a reorder of exact degree.

    Args:
        downstream: the pipe (usually a FIFO :class:`~repro.net.link.Link`)
            that receives the possibly-permuted stream.
        degree: how many later packets overtake a held packet.  A held
            packet is re-offered immediately after the ``degree``-th
            subsequent packet, i.e. it suffers a reorder of exactly
            ``degree`` (assuming the downstream is FIFO and lossless).
        probability: chance that any given packet is selected for holding.
        seed: RNG seed or generator for the selection draws.

    Notes:
        Every subsequent *offer* (held or not) counts toward a held
        packet's passage, so the suffered reorder degree is exactly
        ``degree`` when holds do not overlap and **at most** ``degree``
        when they do — guaranteeing that ``degree < w`` never causes a
        w-Delivery discard.  :meth:`flush` releases everything held
        (call it at the end of a scenario so no packet is stranded).
    """

    def __init__(
        self,
        downstream: PacketPipe,
        degree: int,
        probability: float,
        seed: int | None = None,
    ) -> None:
        check_non_negative("degree", degree)
        self.downstream = downstream
        self.degree = int(degree)
        self.probability = check_probability("probability", probability)
        self._rng = make_rng(seed)
        self._held: list[_HeldPacket] = []
        self.held_total = 0

    def send(self, packet: Any) -> None:
        """Offer a packet; it may be delayed behind ``degree`` successors."""
        prior_held = list(self._held)
        if self.degree > 0 and self._rng.random() < self.probability:
            self._held.append(_HeldPacket(packet, remaining=self.degree))
            self.held_total += 1
        else:
            self.downstream.send(packet)
        # This offer is one more "message sent after m" for every packet
        # that was already being held (but not for the one just added).
        released: list[Any] = []
        for held in prior_held:
            held.remaining -= 1
            if held.remaining <= 0:
                released.append(held.packet)
        if released:
            self._held = [h for h in self._held if h.remaining > 0]
            for held_packet in released:
                self.downstream.send(held_packet)

    def flush(self) -> int:
        """Release all held packets immediately; return how many."""
        count = len(self._held)
        for held in self._held:
            self.downstream.send(held.packet)
        self._held.clear()
        return count

    @property
    def currently_held(self) -> int:
        """Number of packets currently being held back."""
        return len(self._held)
