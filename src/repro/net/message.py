"""The plain protocol message ``msg(s)`` of the paper.

The anti-replay protocol of Section 2 exchanges messages that carry only a
sequence number; real IPsec packets (with SPI, ICV, payload) live in
:mod:`repro.ipsec.esp`.  :class:`Message` is frozen so that an adversary's
recorded copy is byte-for-byte the original — replaying cannot accidentally
mutate anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Message:
    """An application message ``msg(seq)`` from sender to receiver.

    Attributes:
        seq: the sequence number attached by the sender.
        payload: opaque application payload (defaults to ``b""``).
        sent_at: simulated time of the *original* transmission.  A replayed
            copy keeps the original ``sent_at``, which is how traces
            distinguish fresh deliveries from replays post hoc.
        meta: free-form annotations (never interpreted by protocol logic;
            used by experiments, e.g. ``{"epoch": 0}`` to mark pre-reset
            traffic).
        src: source address the packet was sent from (``None`` — the
            paper's address-less model — unless the sender is given an
            address).  A NAT rebinding changes the sender's address
            mid-SA, so packets sealed before the rebinding keep the old
            binding: exactly the in-flight traffic that exercises the
            receiver-side rebinding policy (:mod:`repro.netpath.nat`).
    """

    seq: int
    payload: bytes = b""
    sent_at: float = 0.0
    meta: tuple[tuple[str, Any], ...] = field(default=())
    src: str | None = None

    def with_meta(self, **annotations: Any) -> "Message":
        """Return a copy with extra ``meta`` annotations appended."""
        return Message(
            seq=self.seq,
            payload=self.payload,
            sent_at=self.sent_at,
            meta=self.meta + tuple(sorted(annotations.items())),
            src=self.src,
        )

    def get_meta(self, key: str, default: Any = None) -> Any:
        """Look up a ``meta`` annotation (last write wins)."""
        value = default
        for meta_key, meta_value in self.meta:
            if meta_key == key:
                value = meta_value
        return value

    def __repr__(self) -> str:
        return f"msg({self.seq})"
