"""RFC 6479-style block-based anti-replay window.

A third, production-grade window implementation: the received-flags live
in a ring of fixed-size integer blocks, and sliding the window only
*clears whole blocks* instead of shifting a bitmask, which makes the slide
cost O(jump/block_size) with a tiny constant instead of O(w) — the design
adopted by RFC 6479 (and the Linux xfrm stack) for large windows.

Semantics are identical to :class:`~repro.ipsec.replay_window.ArrayReplayWindow`
/ :class:`~repro.ipsec.replay_window.BitmapReplayWindow`; the property
tests in ``tests/ipsec/test_replay_window_blocked.py`` check equivalence
against both on random traffic, resumes included.

The usable window size is ``w`` as configured; internally one extra block
is kept so that clearing-ahead never erases live history (the RFC 6479
trick: the ring holds ``w/block_bits + 1`` blocks).
"""

from __future__ import annotations

from repro.ipsec.replay_window import ReplayWindow, Verdict

#: Bits per block; 32 matches the RFC 6479 reference implementation.
BLOCK_BITS = 32


class BlockedReplayWindow(ReplayWindow):
    """Block-ring anti-replay window (RFC 6479 style).

    Args:
        w: usable window size; must be a multiple of :data:`BLOCK_BITS`
            (RFC 6479 imposes the same restriction).
    """

    def __init__(self, w: int) -> None:
        super().__init__(w)
        if w % BLOCK_BITS != 0:
            raise ValueError(
                f"w must be a multiple of {BLOCK_BITS} for the blocked "
                f"window, got {w}"
            )
        self._blocks_count = w // BLOCK_BITS + 1  # one spare block
        self._blocks = [0] * self._blocks_count
        self._r = 0  # right edge; paper initial state: all seen, r = 0
        # Everything at or below the floor counts as already received;
        # this encodes both the paper's all-true initial window and the
        # post-wake flood without per-bit state.
        self._floor = 0

    # ------------------------------------------------------------------
    # Bit addressing
    # ------------------------------------------------------------------
    def _locate(self, seq: int) -> tuple[int, int]:
        """(ring block index, bit index) holding ``seq``'s flag."""
        block = (seq // BLOCK_BITS) % self._blocks_count
        bit = seq % BLOCK_BITS
        return block, bit

    def _get_bit(self, seq: int) -> bool:
        block, bit = self._locate(seq)
        return bool(self._blocks[block] & (1 << bit))

    def _set_bit(self, seq: int) -> None:
        block, bit = self._locate(seq)
        self._blocks[block] |= 1 << bit

    # ------------------------------------------------------------------
    # ReplayWindow interface
    # ------------------------------------------------------------------
    @property
    def right_edge(self) -> int:
        return self._r

    def check(self, seq: int) -> Verdict:
        if seq <= self._r - self.w:
            return Verdict.STALE
        if seq <= self._floor:
            return Verdict.DUPLICATE
        if seq <= self._r:
            return Verdict.DUPLICATE if self._get_bit(seq) else Verdict.ACCEPT_IN_WINDOW
        return Verdict.ACCEPT_ADVANCE

    def update(self, seq: int) -> Verdict:
        verdict = self.check(seq)
        if verdict is Verdict.ACCEPT_IN_WINDOW:
            self._set_bit(seq)
        elif verdict is Verdict.ACCEPT_ADVANCE:
            self._advance_to(seq)
            self._set_bit(seq)
        return verdict

    def _advance_to(self, seq: int) -> None:
        """Clear every block the right edge rolls past (RFC 6479 core)."""
        current_top = self._r // BLOCK_BITS
        new_top = seq // BLOCK_BITS
        blocks_forward = min(new_top - current_top, self._blocks_count)
        for i in range(1, blocks_forward + 1):
            self._blocks[(current_top + i) % self._blocks_count] = 0
        self._r = seq

    def resume(self, new_right_edge: int) -> None:
        self._r = new_right_edge
        self._floor = new_right_edge
        self._blocks = [0] * self._blocks_count

    def snapshot(self) -> tuple[int, tuple[bool, ...]]:
        flags = tuple(
            seq <= self._floor or self._get_bit(seq)
            for seq in range(self._r - self.w + 1, self._r + 1)
        )
        return self._r, flags
