"""Extended sequence numbers (ESN, RFC 4304 model).

The paper models sequence numbers as unbounded integers; real ESP carries
only 32 bits on the wire and either rekeys before wrap or negotiates
*extended sequence numbers*: a 64-bit counter of which only the low 32
bits are transmitted, with the receiver *inferring* the high half from
its anti-replay window position.

This module supplies that inference so the reproduction's protocols can
be run over a 32-bit wire without violating the paper's unbounded-counter
model:

* :func:`infer_esn` — RFC 4304 Appendix A's reconstruction: given the
  receiver's last known 64-bit right edge and a received low-32 value,
  pick the candidate high half (``h-1``, ``h`` or ``h+1``) that places
  the sequence number closest to the window.
* :class:`EsnCodec` — stateful wrapper pairing a sender-side truncation
  with a receiver-side reconstruction, for use in front of any
  :class:`~repro.ipsec.replay_window.ReplayWindow`.

The SAVE/FETCH interaction is the interesting part: after a reset the
receiver's right edge *leaps*, and the inference must keep tracking —
property-tested in ``tests/ipsec/test_esn.py`` including wrap boundaries.
"""

from __future__ import annotations

#: Width of the on-wire sequence number field.
WIRE_BITS = 32
_WIRE_MOD = 1 << WIRE_BITS
_HALF = 1 << (WIRE_BITS - 1)


def truncate_esn(seq64: int) -> int:
    """Sender side: the low 32 bits that actually travel."""
    if seq64 < 0:
        raise ValueError(f"sequence numbers are non-negative, got {seq64}")
    return seq64 & (_WIRE_MOD - 1)


def infer_esn(right_edge64: int, wire_seq: int, w: int) -> int:
    """Receiver side: reconstruct the 64-bit value of ``wire_seq``.

    Args:
        right_edge64: the receiver's current 64-bit right edge ``r``.
        wire_seq: the received low-32 value.
        w: anti-replay window size (the inference needs it to decide
            whether a smaller low-half means "behind, same epoch" or
            "ahead, next epoch", per RFC 4304).

    Returns:
        The inferred 64-bit sequence number.

    The rule (RFC 4304 Appendix A, case analysis collapsed): consider the
    candidates sharing the wire value in the current, previous and next
    32-bit epochs, and return the one closest to the right edge, with the
    tie broken toward accepting plausible fresh traffic (the same rule
    real implementations use; against an adversary the ICV check is what
    actually authenticates the guessed high half).
    """
    if not 0 <= wire_seq < _WIRE_MOD:
        raise ValueError(f"wire_seq must fit {WIRE_BITS} bits, got {wire_seq}")
    epoch = right_edge64 >> WIRE_BITS
    candidates = [
        (candidate_epoch << WIRE_BITS) | wire_seq
        for candidate_epoch in (epoch - 1, epoch, epoch + 1)
        if candidate_epoch >= 0
    ]
    # Closest to the window: prefer in-window/just-ahead over far-away.
    def distance(candidate: int) -> tuple[int, int]:
        if candidate > right_edge64:
            return (candidate - right_edge64, 0)  # ahead: plausible fresh
        return (right_edge64 - candidate, 1)  # behind: plausible replay

    best = min(candidates, key=distance)
    return best


class EsnCodec:
    """Stateful sender/receiver pair over a 32-bit wire.

    The receiver side must be fed its window's right edge before each
    decode (the window owns the authoritative 64-bit position).
    """

    def __init__(self, w: int) -> None:
        self.w = w

    def encode(self, seq64: int) -> int:
        """Sender: wire representation of ``seq64``."""
        return truncate_esn(seq64)

    def decode(self, right_edge64: int, wire_seq: int) -> int:
        """Receiver: 64-bit reconstruction given the current right edge."""
        return infer_esn(right_edge64, wire_seq, self.w)
