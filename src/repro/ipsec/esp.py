"""ESP encapsulation (RFC 2406 model, simulation form).

An :class:`EspPacket` carries the SPI, the sequence number, the
(simulated-cipher) ciphertext and a real HMAC-SHA-256 ICV over
``SPI || seq || ciphertext``.  :func:`esp_open` verifies the ICV before
anything else — which is exactly why, under the IETF rekey baseline, a
packet recorded under an old SA generation cannot be replayed into a new
one: its ICV fails under the new keys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ipsec.crypto import IntegrityError, encode_seq, hmac_digest, hmac_verify, xor_stream
from repro.ipsec.sa import SecurityAssociation


@dataclass(frozen=True)
class EspPacket:
    """A sealed ESP packet.

    The sequence number rides outside the ciphertext (as in real ESP) so
    the receiver can run the anti-replay check before decrypting.
    """

    spi: int
    seq: int
    ciphertext: bytes
    icv: bytes
    #: Outer-header source address (NOT covered by the ICV — a NAT
    #: rewrites it in flight; see ``repro.netpath.nat``).
    src: str | None = None

    def __repr__(self) -> str:
        return f"esp(spi={self.spi:#x}, seq={self.seq})"


def _auth_data(spi: int, seq: int, ciphertext: bytes) -> bytes:
    return spi.to_bytes(8, "big") + encode_seq(seq) + ciphertext


def esp_seal(
    sa: SecurityAssociation, seq: int, payload: bytes, src: str | None = None
) -> EspPacket:
    """Encrypt and authenticate ``payload`` as sequence number ``seq``.

    ``src`` rides the (unauthenticated) outer header: integrity holds
    regardless of the address a NAT stamped on the packet.
    """
    nonce = encode_seq(seq)
    ciphertext = xor_stream(sa.enc_key, payload, nonce=nonce)
    icv = hmac_digest(sa.auth_key, _auth_data(sa.spi, seq, ciphertext))
    return EspPacket(spi=sa.spi, seq=seq, ciphertext=ciphertext, icv=icv, src=src)


def esp_open(sa: SecurityAssociation, packet: EspPacket) -> bytes:
    """Verify and decrypt; raises :class:`IntegrityError` on any mismatch.

    SPI mismatch is an integrity failure too: a packet for another SA must
    never decrypt under this one.
    """
    if packet.spi != sa.spi:
        raise IntegrityError(
            f"SPI mismatch: packet {packet.spi:#x} vs SA {sa.spi:#x}"
        )
    if not hmac_verify(
        sa.auth_key, _auth_data(packet.spi, packet.seq, packet.ciphertext), packet.icv
    ):
        raise IntegrityError(f"bad ICV on {packet!r} (wrong or rekeyed SA)")
    return xor_stream(sa.enc_key, packet.ciphertext, nonce=encode_seq(packet.seq))
