"""Cryptographic primitives for the simulated IPsec stack.

Integrity is real: ICVs are HMAC-SHA-256 (stdlib :mod:`hmac`), verified
with a constant-time compare.  This matters because the IETF-rekey
baseline's correctness argument — "all old messages cannot pass integrity
check under the new SA" — is *enforced* here rather than assumed.

Confidentiality is a stand-in: :func:`xor_stream` is a deterministic
keystream XOR built from SHA-256.  It exercises the encrypt/decrypt code
path and key separation, but is **not cryptographically secure** and is
labelled as such; the anti-replay results do not depend on encryption
strength.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random

from repro.util.rng import make_rng

#: Byte length of generated keys.
KEY_LENGTH = 32
#: Byte length of the HMAC-SHA-256 ICV carried in packets.
ICV_LENGTH = 32


class IntegrityError(Exception):
    """Raised when a packet's ICV does not verify under the SA's key."""


def generate_key(seed_or_rng: int | random.Random | None = None) -> bytes:
    """Generate a ``KEY_LENGTH``-byte key from a seeded generator.

    Simulation keys are *reproducible by design* (seeded), which a real
    system must never do; determinism is what lets tests assert on
    specific packet bytes.
    """
    rng = make_rng(seed_or_rng)
    return bytes(rng.getrandbits(8) for _ in range(KEY_LENGTH))


def derive_key(master: bytes, label: str) -> bytes:
    """Derive a labelled subkey from ``master`` (HKDF-like, one step)."""
    return _hmac.new(master, label.encode("utf-8"), hashlib.sha256).digest()


def hmac_digest(key: bytes, data: bytes) -> bytes:
    """Compute the HMAC-SHA-256 ICV of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def hmac_verify(key: bytes, data: bytes, icv: bytes) -> bool:
    """Constant-time verification of an ICV."""
    return _hmac.compare_digest(hmac_digest(key, data), icv)


def xor_stream(key: bytes, data: bytes, nonce: bytes = b"") -> bytes:
    """XOR ``data`` with a SHA-256-derived keystream (NOT secure crypto).

    The same call decrypts what it encrypted.  Used only so that the ESP
    code path round-trips payload bytes through a key-dependent transform.
    """
    out = bytearray(len(data))
    block = b""
    counter = 0
    for i in range(len(data)):
        if i % hashlib.sha256().digest_size == 0:
            block = hashlib.sha256(
                key + nonce + counter.to_bytes(8, "big")
            ).digest()
            counter += 1
        out[i] = data[i] ^ block[i % len(block)]
    return bytes(out)


def encode_seq(seq: int) -> bytes:
    """Encode an unbounded non-negative sequence number for MACing.

    Length-prefixed big-endian so that distinct integers never collide as
    byte strings (the paper's model uses unbounded sequence numbers).
    """
    if seq < 0:
        raise ValueError(f"sequence numbers are non-negative, got {seq}")
    body = seq.to_bytes((seq.bit_length() + 7) // 8 or 1, "big")
    return len(body).to_bytes(4, "big") + body
