"""AH encapsulation (RFC 2402 model, simulation form).

AH provides integrity without confidentiality: the payload travels in the
clear, covered (together with SPI and sequence number) by the ICV.  The
anti-replay experiments run identically over AH and ESP; AH exists so the
substrate matches the standard's two protection protocols and so tests can
confirm the replay logic is agnostic to which encapsulation is in use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ipsec.crypto import IntegrityError, encode_seq, hmac_digest, hmac_verify
from repro.ipsec.sa import SecurityAssociation


@dataclass(frozen=True)
class AhPacket:
    """An authenticated (cleartext) AH packet."""

    spi: int
    seq: int
    payload: bytes
    icv: bytes
    #: Outer-header source address (NOT covered by the ICV — a NAT
    #: rewrites it in flight; see ``repro.netpath.nat``).
    src: str | None = None

    def __repr__(self) -> str:
        return f"ah(spi={self.spi:#x}, seq={self.seq})"


def _auth_data(spi: int, seq: int, payload: bytes) -> bytes:
    return b"AH" + spi.to_bytes(8, "big") + encode_seq(seq) + payload


def ah_seal(
    sa: SecurityAssociation, seq: int, payload: bytes, src: str | None = None
) -> AhPacket:
    """Authenticate ``payload`` as sequence number ``seq``.

    ``src`` rides the (unauthenticated) outer header: integrity holds
    regardless of the address a NAT stamped on the packet.
    """
    icv = hmac_digest(sa.auth_key, _auth_data(sa.spi, seq, payload))
    return AhPacket(spi=sa.spi, seq=seq, payload=payload, icv=icv, src=src)


def ah_open(sa: SecurityAssociation, packet: AhPacket) -> bytes:
    """Verify the ICV and return the payload; raises on mismatch."""
    if packet.spi != sa.spi:
        raise IntegrityError(
            f"SPI mismatch: packet {packet.spi:#x} vs SA {sa.spi:#x}"
        )
    if not hmac_verify(
        sa.auth_key, _auth_data(packet.spi, packet.seq, packet.payload), packet.icv
    ):
        raise IntegrityError(f"bad ICV on {packet!r} (wrong or rekeyed SA)")
    return packet.payload
