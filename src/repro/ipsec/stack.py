"""A per-host IPsec processing stack (RFC 2401 processing model).

The endpoint classes in :mod:`repro.core` implement the paper's abstract
(p, q) pair over a single SA.  :class:`IpsecStack` is the next layer up —
the piece a *host* runs, tying the substrates together the way RFC 2401
prescribes:

* **outbound**: consult the SPD (PROTECT / BYPASS / DISCARD); for PROTECT
  look up the newest outbound SA in the SAD, take the next sequence
  number from the per-SA :class:`SaveFetchSender`-style counter state,
  ESP-seal, and emit on the route to the destination;
* **inbound**: look the SA up by (SPI, this host) in the SAD, verify
  integrity, run the per-SA anti-replay window, and deliver upward.

Counters and windows live in per-SA :class:`OutboundSaState` /
:class:`InboundSaState` records, each with its own persistent store, so a
host-wide reset erases *all* volatile counter state at once and each SA
recovers independently via FETCH + leap — which is exactly the multi-SA
scenario whose rekey cost E7 prices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.persistent import PersistentStore
from repro.core.receiver import make_window
from repro.ipsec.crypto import IntegrityError
from repro.ipsec.esp import EspPacket, esp_open, esp_seal
from repro.ipsec.replay_window import ReplayWindow
from repro.ipsec.sa import SecurityAssociation
from repro.ipsec.sad import SecurityAssociationDatabase
from repro.ipsec.spd import PolicyAction, SecurityPolicyDatabase
from repro.sim.engine import Engine
from repro.sim.process import SimProcess


@dataclass
class OutboundSaState:
    """Volatile + persistent sender-side state for one SA."""

    sa: SecurityAssociation
    store: PersistentStore
    k: int
    s: int = 1  # next sequence number (volatile)
    lst: int = 1  # last initiated checkpoint (volatile)

    def next_seq(self) -> int:
        """Take the next sequence number, checkpointing every ``k``."""
        seq = self.s
        self.s += 1
        if self.s >= self.k + self.lst:
            self.lst = self.s
            self.store.begin_save(self.s)
        return seq

    def crash(self) -> None:
        self.store.crash()

    def recover(self) -> None:
        """FETCH + 2K leap; the stack awaits the synchronous SAVE."""
        fetched = self.store.fetch()
        self.s = fetched + 2 * self.k
        self.lst = self.s


@dataclass
class InboundSaState:
    """Volatile + persistent receiver-side state for one SA."""

    sa: SecurityAssociation
    store: PersistentStore
    k: int
    w: int
    window: ReplayWindow = field(init=False)
    lst: int = 0

    def __post_init__(self) -> None:
        self.window = make_window(self.w)

    def offer(self, seq: int):
        verdict = self.window.update(seq)
        r = self.window.right_edge
        if r >= self.k + self.lst:
            self.lst = r
            self.store.begin_save(r)
        return verdict

    def crash(self) -> None:
        self.store.crash()

    def recover(self) -> None:
        fetched = self.store.fetch()
        leaped = fetched + 2 * self.k
        self.window = make_window(self.w)
        self.window.resume(leaped)
        self.lst = leaped


@dataclass
class StackStats:
    """Counters the stack maintains."""

    sent_protected: int = 0
    sent_bypassed: int = 0
    outbound_discarded: int = 0
    delivered: int = 0
    replay_discarded: int = 0
    integrity_failures: int = 0
    no_sa: int = 0
    dropped_while_down: int = 0


class IpsecStack(SimProcess):
    """One host's IPsec processing: SPD -> SAD -> ESP -> anti-replay.

    Args:
        engine: simulation engine.
        name: this host's name (selector matching and SAD lookups use it).
        spd: the host's security policy database.
        sad: the host's SA database (shared with IKE/rekey machinery).
        k: SAVE interval for every per-SA counter.
        w: anti-replay window size for every inbound SA.
        t_save: persistent-write latency for the per-SA stores.
        deliver_upward: callback ``(src_host, payload)`` for accepted
            inbound traffic.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        spd: SecurityPolicyDatabase,
        sad: SecurityAssociationDatabase,
        k: int = 25,
        w: int = 64,
        t_save: float = 100e-6,
        deliver_upward: Callable[[str, bytes], None] | None = None,
    ) -> None:
        super().__init__(engine, name)
        self.spd = spd
        self.sad = sad
        self.k = k
        self.w = w
        self.t_save = t_save
        self.deliver_upward = deliver_upward
        self.routes: dict[str, Callable[[Any], None]] = {}
        self.stats = StackStats()
        self.is_up = True
        self._outbound: dict[int, OutboundSaState] = {}  # by SPI
        self._inbound: dict[int, InboundSaState] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_route(self, destination: str, send_fn: Callable[[Any], None]) -> None:
        """Register the link used to reach ``destination``."""
        self.routes[destination] = send_fn

    def _outbound_state(self, sa: SecurityAssociation) -> OutboundSaState:
        state = self._outbound.get(sa.spi)
        if state is None:
            store = PersistentStore(
                self.engine,
                f"disk:{self.name}:out:{sa.spi:#x}",
                t_save=self.t_save,
                initial_value=1,
            )
            state = OutboundSaState(sa=sa, store=store, k=self.k)
            self._outbound[sa.spi] = state
        return state

    def _inbound_state(self, sa: SecurityAssociation) -> InboundSaState:
        state = self._inbound.get(sa.spi)
        if state is None:
            store = PersistentStore(
                self.engine,
                f"disk:{self.name}:in:{sa.spi:#x}",
                t_save=self.t_save,
                initial_value=0,
            )
            state = InboundSaState(sa=sa, store=store, k=self.k, w=self.w)
            self._inbound[sa.spi] = state
        return state

    # ------------------------------------------------------------------
    # Outbound path (RFC 2401 section 5.1)
    # ------------------------------------------------------------------
    def send(self, destination: str, payload: bytes, protocol: str = "any") -> bool:
        """Send application ``payload`` to ``destination`` per policy.

        Returns whether anything was emitted.
        """
        if not self.is_up:
            self.stats.dropped_while_down += 1
            return False
        action = self.spd.match(self.name, destination, protocol)
        if action is PolicyAction.DISCARD:
            self.stats.outbound_discarded += 1
            self.trace("spd_discard", dst=destination)
            return False
        route = self.routes.get(destination)
        if route is None:
            self.stats.outbound_discarded += 1
            self.trace("no_route", dst=destination)
            return False
        if action is PolicyAction.BYPASS:
            self.stats.sent_bypassed += 1
            route(("cleartext", self.name, payload))
            return True
        sa = self.sad.lookup_outbound(self.name, destination)
        if sa is None:
            # RFC 2401: PROTECT with no SA triggers IKE; here the caller
            # is responsible for negotiating (see RekeySimulation).
            self.stats.no_sa += 1
            self.trace("no_sa", dst=destination)
            return False
        state = self._outbound_state(sa)
        packet = esp_seal(sa, state.next_seq(), payload)
        self.stats.sent_protected += 1
        route(packet)
        return True

    # ------------------------------------------------------------------
    # Inbound path (RFC 2401 section 5.2)
    # ------------------------------------------------------------------
    def on_receive(self, packet: Any) -> None:
        """Link sink for anything arriving at this host."""
        if not self.is_up:
            self.stats.dropped_while_down += 1
            return
        if isinstance(packet, tuple) and packet and packet[0] == "cleartext":
            _tag, src, payload = packet
            if self.spd.match(src, self.name) is PolicyAction.BYPASS:
                self.stats.delivered += 1
                if self.deliver_upward is not None:
                    self.deliver_upward(src, payload)
            else:
                # Cleartext arriving where policy demands protection.
                self.stats.outbound_discarded += 1
            return
        if not isinstance(packet, EspPacket):
            self.trace("unknown_packet", packet=repr(packet))
            return
        sa = self.sad.lookup_inbound(packet.spi, self.name)
        if sa is None:
            self.stats.no_sa += 1
            self.trace("no_sa_for_spi", spi=packet.spi)
            return
        try:
            payload = esp_open(sa, packet)
        except IntegrityError:
            self.stats.integrity_failures += 1
            self.trace("integrity_fail", spi=packet.spi)
            return
        state = self._inbound_state(sa)
        verdict = state.offer(packet.seq)
        if verdict.accepted:
            self.stats.delivered += 1
            self.trace("deliver", seq=packet.seq, src=sa.src)
            if self.deliver_upward is not None:
                self.deliver_upward(sa.src, payload)
        else:
            self.stats.replay_discarded += 1
            self.trace("replay_discard", seq=packet.seq, verdict=verdict.value)

    # ------------------------------------------------------------------
    # Faults (host-wide)
    # ------------------------------------------------------------------
    def reset(self, down_for: float | None = 0.0) -> None:
        """A host reset: every SA's volatile counter state is lost."""
        self.trace("host_reset", sas=len(self._outbound) + len(self._inbound))
        self.is_up = False
        for state in self._outbound.values():
            state.crash()
        for state in self._inbound.values():
            state.crash()
        if down_for is not None:
            self.call_later(down_for, self.wake)

    def wake(self) -> None:
        """Recover every SA independently: FETCH + leap + synchronous SAVE.

        The host resumes traffic only after the slowest wake SAVE commits
        (they run concurrently on the simulated disk — a deliberate
        simplification noted in DESIGN.md; sequential IO would add
        ``n_sas * t_save``, still microseconds against E7's rekey train).
        """
        if self.is_up:
            return
        pending = {"count": 0}

        def one_done() -> None:
            pending["count"] -= 1
            if pending["count"] <= 0:
                self.is_up = True
                self.trace("host_up")

        states = list(self._outbound.values()) + list(self._inbound.values())
        if not states:
            self.is_up = True
            return
        for state in states:
            state.recover()
            pending["count"] += 1
            value = state.s if isinstance(state, OutboundSaState) else state.lst
            state.store.begin_save(value, on_commit=one_done, synchronous=True)
