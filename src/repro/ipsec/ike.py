"""Simplified IKE (ISAKMP/Oakley) over the simulated network (system S6).

The IETF remedy for a reset — "the entire IPsec SA should be deleted and
reestablished once the reset is detected" — pays one full IKE negotiation
per SA.  Experiment E7 measures that cost against SAVE/FETCH, so the
handshake here is *message-faithful*: real packets cross the simulated
links with real latency, and the crypto steps consume simulated compute
time from the :class:`~repro.ipsec.costs.CostModel`.

Shape (following RFC 2409 main mode + quick mode):

====  =========  =======================================================
step  direction  contents / compute charged before sending
====  =========  =======================================================
 1    I -> R     SA proposal
 2    R -> I     SA accept
 3    I -> R     KE_i (DH public), nonce_i        [t_dh_exp]
 4    R -> I     KE_r (DH public), nonce_r        [t_dh_exp]
 5    I -> R     ID_i, AUTH_i                     [t_dh_exp + t_sig + t_prf]
 6    R -> I     ID_r, AUTH_r                     [t_dh_exp + t_sig + t_prf]
 7    I -> R     quick-mode 1 (hash, proposal)    [t_prf]
 8    R -> I     quick-mode 2                     [t_prf]
 9    I -> R     quick-mode 3 (ack)               [t_prf]
====  =========  =======================================================

The Diffie-Hellman exchange is *real* (Oakley Group 2, 1024-bit MODP, done
with Python big ints) so both sides independently derive the same master
secret, and the AUTH payloads are real HMACs over the transcript that each
peer verifies.  Only the *timing* is simulated (a 1024-bit modexp costs
``t_dh_exp`` of virtual time, not the microseconds Python actually needs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.ipsec.crypto import hmac_digest, hmac_verify
from repro.ipsec.sa import SaPair, make_sa_pair
from repro.sim.engine import Engine
from repro.sim.process import SimProcess
from repro.util.rng import make_rng

#: Oakley Group 2 (RFC 2409, section 6.2): 1024-bit MODP prime, generator 2.
OAKLEY_GROUP2_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)
OAKLEY_GENERATOR = 2


@dataclass(frozen=True)
class IkeMessage:
    """One ISAKMP message on the wire."""

    session_id: int
    step: int
    sender: str
    body: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        """Look up a body field."""
        for field_key, value in self.body:
            if field_key == key:
                return value
        return default

    def __repr__(self) -> str:
        return f"ike(session={self.session_id}, step={self.step}, from={self.sender})"


@dataclass(frozen=True)
class IkeConfig:
    """Negotiation parameters shared by both peers."""

    costs: CostModel = PAPER_COSTS
    sa_lifetime_seconds: float = 3600.0
    proposal: str = "esp-hmac-sha256"


class SerialCompute:
    """One CPU's crypto timeline, shared by concurrent negotiations.

    The sequential rekey train of E7 models a single-CPU host implicitly
    (one negotiation at a time).  A *rekey storm* — N renegotiations in
    flight at once after a gateway reset — needs the contention modeled
    explicitly: DH exponentiations and PRF evaluations from different
    sessions serialize on the host CPU exactly like SAVE/FETCH requests
    serialize on the shared store device.  Same FIFO-reservation shape
    as :class:`repro.gateway.store.SharedStore`: an operation issued
    while the CPU is busy starts late, and its *wall* duration is the
    queue wait plus its own compute.

    Wire one instance into every peer living on the recovering host
    (``compute=`` on the peer constructors); remote responders each get
    their own CPU (or ``None`` — uncontended, the E7 behaviour).
    """

    def __init__(self) -> None:
        self._busy_until = 0.0
        self.operations = 0
        self.busy_time = 0.0
        self.max_wait = 0.0

    def reserve(self, now: float, duration: float) -> float:
        """Reserve ``duration`` of CPU starting FIFO-earliest; returns
        the wall-clock delay until the operation completes."""
        self.operations += 1
        starts_at = max(now, self._busy_until)
        self._busy_until = starts_at + duration
        self.busy_time += duration
        self.max_wait = max(self.max_wait, starts_at - now)
        return self._busy_until - now


@dataclass
class IkeResult:
    """Outcome of one completed negotiation."""

    sa_pair: SaPair
    session_id: int
    messages_sent: int
    started_at: float
    completed_at: float
    compute_time: float = 0.0

    @property
    def latency(self) -> float:
        """Wall-clock (simulated) duration of the whole handshake."""
        return self.completed_at - self.started_at


class _IkePeer(SimProcess):
    """State shared by initiator and responder."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        peer_name: str,
        send_fn: Callable[[IkeMessage], None],
        config: IkeConfig | None = None,
        seed: int | None = None,
        on_complete: Callable[[IkeResult], None] | None = None,
        compute: SerialCompute | None = None,
    ) -> None:
        super().__init__(engine, name)
        self.peer_name = peer_name
        self.send_fn = send_fn
        self.config = config if config is not None else IkeConfig()
        self.on_complete = on_complete
        self.compute = compute
        self._rng = make_rng(seed)
        self.result: IkeResult | None = None
        # Per-session negotiation state.
        self._session_id: int | None = None
        self._started_at = 0.0
        self._messages_sent = 0
        self._compute_time = 0.0
        self._dh_private = 0
        self._dh_public = 0
        self._nonce = b""
        self._peer_nonce = b""
        self._peer_public = 0
        self._master_secret = b""
        self._expected_step = 0
        self._sa_generation = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _begin_session(self, session_id: int) -> None:
        self._session_id = session_id
        self._started_at = self.now
        self._messages_sent = 0
        self._compute_time = 0.0
        self._dh_private = self._rng.getrandbits(256) | 1
        self._dh_public = pow(OAKLEY_GENERATOR, self._dh_private, OAKLEY_GROUP2_PRIME)
        self._nonce = self._rng.getrandbits(128).to_bytes(16, "big")
        self.result = None

    def _send_after(self, compute: float, step: int, **body: Any) -> None:
        """Charge ``compute`` virtual time, then transmit message ``step``.

        With a shared :class:`SerialCompute`, the charge is a FIFO CPU
        reservation: the wall delay includes the queue wait in front of
        it (a rekey storm's contention).  Without one, compute runs
        uncontended — the E7 sequential-train behaviour, unchanged.
        """
        self._compute_time += compute

        def transmit() -> None:
            assert self._session_id is not None
            message = IkeMessage(
                session_id=self._session_id,
                step=step,
                sender=self.name,
                body=tuple(sorted(body.items())),
            )
            self._messages_sent += 1
            self.trace("ike_send", step=step)
            self.send_fn(message)

        if compute > 0:
            delay = (
                self.compute.reserve(self.now, compute)
                if self.compute is not None
                else compute
            )
            self.call_later(delay, transmit)
        else:
            transmit()

    def _derive_master(self) -> None:
        shared = pow(self._peer_public, self._dh_private, OAKLEY_GROUP2_PRIME)
        shared_bytes = shared.to_bytes((shared.bit_length() + 7) // 8 or 1, "big")
        nonce_i, nonce_r = sorted([self._nonce, self._peer_nonce])
        self._master_secret = hashlib.sha256(
            shared_bytes + nonce_i + nonce_r
        ).digest()

    def _transcript_auth(self, signer: str) -> bytes:
        data = (
            signer.encode()
            + self._dh_public.to_bytes(128, "big")
            + self._peer_public.to_bytes(128, "big")
        )
        return hmac_digest(self._master_secret, data)

    def _peer_auth_expected(self) -> bytes:
        data = (
            self.peer_name.encode()
            + self._peer_public.to_bytes(128, "big")
            + self._dh_public.to_bytes(128, "big")
        )
        return hmac_digest(self._master_secret, data)

    def _finish(self, initiator_name: str, responder_name: str) -> None:
        assert self._session_id is not None
        sa_pair = make_sa_pair(
            initiator_name,
            responder_name,
            seed_or_rng=self._rng,
            now=self.now,
            lifetime_seconds=self.config.sa_lifetime_seconds,
            generation=self._sa_generation,
            master_secret=self._master_secret,
        )
        self._sa_generation += 1
        self.result = IkeResult(
            sa_pair=sa_pair,
            session_id=self._session_id,
            messages_sent=self._messages_sent,
            started_at=self._started_at,
            completed_at=self.now,
            compute_time=self._compute_time,
        )
        self.trace("ike_complete", session=self._session_id, latency=self.result.latency)
        if self.on_complete is not None:
            self.on_complete(self.result)

    def _protocol_error(self, message: IkeMessage, reason: str) -> None:
        self.trace("ike_error", step=message.step, reason=reason)
        raise ValueError(f"{self.name}: IKE protocol error at {message!r}: {reason}")


class IkeInitiator(_IkePeer):
    """The peer that starts the negotiation (steps 1, 3, 5, 7, 9)."""

    _next_session = 1

    def start(self) -> int:
        """Begin a new negotiation; returns the session id."""
        session_id = IkeInitiator._next_session
        IkeInitiator._next_session += 1
        self._begin_session(session_id)
        self._expected_step = 2
        self._send_after(0.0, 1, proposal=self.config.proposal)
        return session_id

    def on_receive(self, message: IkeMessage) -> None:
        """Handle a responder message."""
        costs = self.config.costs
        if message.session_id != self._session_id or message.step != self._expected_step:
            self.trace("ike_ignored", step=message.step)
            return
        if message.step == 2:
            if message.get("proposal") != self.config.proposal:
                self._protocol_error(message, "proposal rejected")
            self._expected_step = 4
            self._send_after(
                costs.t_dh_exp, 3, ke=self._dh_public, nonce=self._nonce
            )
        elif message.step == 4:
            self._peer_public = message.get("ke")
            self._peer_nonce = message.get("nonce")
            self._derive_master()
            self._expected_step = 6
            self._send_after(
                costs.t_dh_exp + costs.t_sig + costs.t_prf,
                5,
                auth=self._transcript_auth(self.name),
            )
        elif message.step == 6:
            if message.get("auth") != self._peer_auth_expected():
                self._protocol_error(message, "responder authentication failed")
            self._expected_step = 8
            self._send_after(costs.t_prf, 7, proposal=self.config.proposal)
        elif message.step == 8:
            self._expected_step = 0
            self._send_after(costs.t_prf, 9, ack=True)
            # Initiator derives SAs as soon as QM3 is on the wire.
            self.call_later(costs.t_prf, self._finish, self.name, self.peer_name)


class IkeResponder(_IkePeer):
    """The peer that answers the negotiation (steps 2, 4, 6, 8)."""

    def on_receive(self, message: IkeMessage) -> None:
        """Handle an initiator message."""
        costs = self.config.costs
        if message.step == 1:
            self._begin_session(message.session_id)
            self._expected_step = 3
            if message.get("proposal") != self.config.proposal:
                self._protocol_error(message, "unacceptable proposal")
            self._send_after(0.0, 2, proposal=self.config.proposal)
            return
        if message.session_id != self._session_id or message.step != self._expected_step:
            self.trace("ike_ignored", step=message.step)
            return
        if message.step == 3:
            self._peer_public = message.get("ke")
            self._peer_nonce = message.get("nonce")
            self._expected_step = 5
            self._send_after(
                costs.t_dh_exp, 4, ke=self._dh_public, nonce=self._nonce
            )
        elif message.step == 5:
            self._derive_master()
            if message.get("auth") != self._peer_auth_expected():
                self._protocol_error(message, "initiator authentication failed")
            self._expected_step = 7
            self._send_after(
                costs.t_dh_exp + costs.t_sig + costs.t_prf,
                6,
                auth=self._transcript_auth(self.name),
            )
        elif message.step == 7:
            self._expected_step = 9
            self._send_after(costs.t_prf, 8, ack=True)
        elif message.step == 9:
            self._expected_step = 0
            self._finish(self.peer_name, self.name)


def negotiate(
    engine: Engine,
    initiator_name: str,
    responder_name: str,
    initiator_link_send: Callable[[IkeMessage], None],
    responder_link_send: Callable[[IkeMessage], None],
    config: IkeConfig | None = None,
    seed: int = 0,
    initiator_compute: SerialCompute | None = None,
    responder_compute: SerialCompute | None = None,
) -> tuple[IkeInitiator, IkeResponder]:
    """Wire up an initiator/responder pair over caller-supplied links.

    The caller connects each peer's ``on_receive`` to the corresponding
    link sink and then calls :meth:`IkeInitiator.start`.  Provided as a
    convenience for experiments; see E7.  The optional
    :class:`SerialCompute` queues model CPU contention — pass one shared
    ``initiator_compute`` to every pair of a rekey storm.
    """
    initiator = IkeInitiator(
        engine,
        initiator_name,
        responder_name,
        initiator_link_send,
        config=config,
        seed=seed * 2 + 1,
        compute=initiator_compute,
    )
    responder = IkeResponder(
        engine,
        responder_name,
        initiator_name,
        responder_link_send,
        config=config,
        seed=seed * 2 + 2,
        compute=responder_compute,
    )
    return initiator, responder
