"""The Security Association Database (SAD) of RFC 2401.

Inbound IPsec processing looks an SA up by ``(spi, destination)``; outbound
processing by ``(src, dst)``.  The database also supports bulk deletion for
a peer — the operation the IETF reset remedy performs ("the entire IPsec SA
should be deleted and reestablished once the reset is detected"), whose
cost E7 measures when a host holds many SAs.

The SAD also tracks each SA's *current peer network binding* — the
address the peer last spoke from.  The binding is volatile SA state
(like the window, unlike the keys) and moves only as the SA's
``rebind_policy`` allows (see :data:`repro.ipsec.sa.REBIND_POLICIES`):
a NAT rebinding mid-SA is a :meth:`rebind_peer` call that the
``rebind_on_valid`` policy honours and ``static``/``strict`` refuse.
"""

from __future__ import annotations

from typing import Iterator

from repro.ipsec.sa import SecurityAssociation


class SecurityAssociationDatabase:
    """An in-memory SAD with the lookups IPsec processing needs."""

    def __init__(self) -> None:
        self._by_spi: dict[tuple[int, str], SecurityAssociation] = {}
        self._peer_binding: dict[tuple[int, str], str] = {}
        #: Peer rebindings honoured so far (NAT traversal statistics).
        self.rebinds = 0
        #: Rebind attempts refused by the SA's policy.
        self.rebinds_refused = 0

    def __len__(self) -> int:
        return len(self._by_spi)

    def __iter__(self) -> Iterator[SecurityAssociation]:
        return iter(list(self._by_spi.values()))

    def add(self, sa: SecurityAssociation) -> None:
        """Insert an SA; replacing a live (spi, dst) binding is an error."""
        key = (sa.spi, sa.dst)
        if key in self._by_spi:
            raise ValueError(f"SA with spi={sa.spi:#x} dst={sa.dst!r} already exists")
        self._by_spi[key] = sa

    def lookup_inbound(self, spi: int, dst: str) -> SecurityAssociation | None:
        """Inbound lookup by (SPI, destination); ``None`` if absent."""
        return self._by_spi.get((spi, dst))

    def lookup_outbound(self, src: str, dst: str) -> SecurityAssociation | None:
        """Outbound lookup: the newest-generation SA from ``src`` to ``dst``."""
        best: SecurityAssociation | None = None
        for sa in self._by_spi.values():
            if sa.src == src and sa.dst == dst:
                if best is None or sa.generation > best.generation:
                    best = sa
        return best

    def remove(self, sa: SecurityAssociation) -> bool:
        """Delete one SA; returns whether it was present."""
        self._peer_binding.pop((sa.spi, sa.dst), None)
        return self._by_spi.pop((sa.spi, sa.dst), None) is not None

    # ------------------------------------------------------------------
    # Peer network bindings (NAT traversal)
    # ------------------------------------------------------------------
    def bind_peer(self, sa: SecurityAssociation, address: str) -> None:
        """Record the address the SA's peer is (initially) speaking from."""
        self._peer_binding[(sa.spi, sa.dst)] = address

    def peer_binding(self, sa: SecurityAssociation) -> str | None:
        """The peer's current network binding (``None`` if never bound)."""
        return self._peer_binding.get((sa.spi, sa.dst))

    def rebind_peer(self, sa: SecurityAssociation, new_address: str) -> bool:
        """Move the SA's peer binding to ``new_address``, policy permitting.

        Returns whether the binding moved.  ``static`` SAs have no
        binding to move (addresses are ignored), ``strict`` SAs refuse
        (the tunnel is pinned), ``rebind_on_valid`` SAs honour the move
        — the caller is responsible for only invoking this after the
        new address produced a window-valid packet.
        """
        if sa.rebind_policy != "rebind_on_valid":
            self.rebinds_refused += 1
            return False
        self._peer_binding[(sa.spi, sa.dst)] = new_address
        self.rebinds += 1
        return True

    def remove_peer(self, host_a: str, host_b: str) -> int:
        """Delete every SA between two hosts (either direction).

        This is the IETF remedy's bulk teardown; returns how many SAs were
        dropped (each must then be renegotiated via IKE).
        """
        doomed = [
            key
            for key, sa in self._by_spi.items()
            if {sa.src, sa.dst} == {host_a, host_b}
        ]
        for key in doomed:
            del self._by_spi[key]
            self._peer_binding.pop(key, None)
        return len(doomed)

    def sas_involving(self, host: str) -> list[SecurityAssociation]:
        """Every SA in which ``host`` is the source or destination."""
        return [
            sa for sa in self._by_spi.values() if host in (sa.src, sa.dst)
        ]

    def expire(self, now: float) -> list[SecurityAssociation]:
        """Remove and return SAs whose soft lifetime has elapsed."""
        expired = [sa for sa in self._by_spi.values() if sa.expired(now)]
        for sa in expired:
            self.remove(sa)
        return expired
