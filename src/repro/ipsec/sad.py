"""The Security Association Database (SAD) of RFC 2401.

Inbound IPsec processing looks an SA up by ``(spi, destination)``; outbound
processing by ``(src, dst)``.  The database also supports bulk deletion for
a peer — the operation the IETF reset remedy performs ("the entire IPsec SA
should be deleted and reestablished once the reset is detected"), whose
cost E7 measures when a host holds many SAs.
"""

from __future__ import annotations

from typing import Iterator

from repro.ipsec.sa import SecurityAssociation


class SecurityAssociationDatabase:
    """An in-memory SAD with the lookups IPsec processing needs."""

    def __init__(self) -> None:
        self._by_spi: dict[tuple[int, str], SecurityAssociation] = {}

    def __len__(self) -> int:
        return len(self._by_spi)

    def __iter__(self) -> Iterator[SecurityAssociation]:
        return iter(list(self._by_spi.values()))

    def add(self, sa: SecurityAssociation) -> None:
        """Insert an SA; replacing a live (spi, dst) binding is an error."""
        key = (sa.spi, sa.dst)
        if key in self._by_spi:
            raise ValueError(f"SA with spi={sa.spi:#x} dst={sa.dst!r} already exists")
        self._by_spi[key] = sa

    def lookup_inbound(self, spi: int, dst: str) -> SecurityAssociation | None:
        """Inbound lookup by (SPI, destination); ``None`` if absent."""
        return self._by_spi.get((spi, dst))

    def lookup_outbound(self, src: str, dst: str) -> SecurityAssociation | None:
        """Outbound lookup: the newest-generation SA from ``src`` to ``dst``."""
        best: SecurityAssociation | None = None
        for sa in self._by_spi.values():
            if sa.src == src and sa.dst == dst:
                if best is None or sa.generation > best.generation:
                    best = sa
        return best

    def remove(self, sa: SecurityAssociation) -> bool:
        """Delete one SA; returns whether it was present."""
        return self._by_spi.pop((sa.spi, sa.dst), None) is not None

    def remove_peer(self, host_a: str, host_b: str) -> int:
        """Delete every SA between two hosts (either direction).

        This is the IETF remedy's bulk teardown; returns how many SAs were
        dropped (each must then be renegotiated via IKE).
        """
        doomed = [
            key
            for key, sa in self._by_spi.items()
            if {sa.src, sa.dst} == {host_a, host_b}
        ]
        for key in doomed:
            del self._by_spi[key]
        return len(doomed)

    def sas_involving(self, host: str) -> list[SecurityAssociation]:
        """Every SA in which ``host`` is the source or destination."""
        return [
            sa for sa in self._by_spi.values() if host in (sa.src, sa.dst)
        ]

    def expire(self, now: float) -> list[SecurityAssociation]:
        """Remove and return SAs whose soft lifetime has elapsed."""
        expired = [sa for sa in self._by_spi.values() if sa.expired(now)]
        for sa in expired:
            self.remove(sa)
        return expired
