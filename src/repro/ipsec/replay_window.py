"""The anti-replay window of Section 2 — the paper's central data structure.

The receiver ``q`` maintains a window of ``w`` consecutive sequence
numbers.  ``r`` is the *right edge*: the largest sequence number in the
window.  For each in-window sequence number the receiver remembers whether
it has already been received.  On receiving ``msg(s)`` there are three
cases (quoting the paper):

1. ``s <= r - w`` — *stale*: "q cannot determine whether it has received
   this message before, and to be on the safe side ... discards it".
2. ``r - w < s <= r`` — *in window*: deliver iff not already marked
   received (then mark it).
3. ``r < s`` — *advance*: deliver, slide the window so ``s`` becomes the
   new right edge.

Two interchangeable implementations are provided and property-tested for
equivalence:

* :class:`ArrayReplayWindow` — a boolean array indexed exactly as the
  paper's APN code (``wdw[i]`` holds the status of ``s = r - w + i``).
* :class:`BitmapReplayWindow` — an RFC 2401-style integer bitmap, the form
  a production implementation would use.

Initial state follows the paper: ``r = 0`` and the whole window marked
*received*, so no sequence number ``<= 0`` is ever deliverable.

.. note::
   The paper's APN slide code shifts and zero-fills but never explicitly
   marks the just-received ``s`` (position ``w``) as received; taken
   literally, an immediate duplicate of ``s`` could be accepted, violating
   Discrimination.  Both implementations here mark ``s`` received after a
   slide — the clearly intended semantics (and what RFC 2401 prescribes).
   This is the one deviation from the paper's literal text; it is also
   exercised by ``tests/ipsec/test_replay_window.py``.
"""

from __future__ import annotations

import enum

from repro.util.validation import check_positive


class Verdict(enum.Enum):
    """Outcome of offering a sequence number to the window."""

    #: ``s > r``: fresh, window slid forward.
    ACCEPT_ADVANCE = "accept_advance"
    #: in-window and not seen before: fresh, delivered.
    ACCEPT_IN_WINDOW = "accept_in_window"
    #: in-window but already marked received: replay/duplicate, discarded.
    DUPLICATE = "duplicate"
    #: at or below the left edge: too old to judge, discarded.
    STALE = "stale"

    @property
    def accepted(self) -> bool:
        """Whether the message is delivered to the application."""
        return self in (Verdict.ACCEPT_ADVANCE, Verdict.ACCEPT_IN_WINDOW)


class ReplayWindow:
    """Abstract anti-replay window; see module docstring for semantics."""

    def __init__(self, w: int) -> None:
        check_positive("w", w)
        self.w = int(w)

    # -- interface ------------------------------------------------------
    @property
    def right_edge(self) -> int:
        """The largest sequence number covered by the window (``r``)."""
        raise NotImplementedError

    @property
    def left_edge(self) -> int:
        """``r - w + 1``, the smallest judgeable sequence number."""
        return self.right_edge - self.w + 1

    def check(self, seq: int) -> Verdict:
        """Classify ``seq`` without mutating the window."""
        raise NotImplementedError

    def update(self, seq: int) -> Verdict:
        """Classify ``seq`` and record its receipt if accepted."""
        raise NotImplementedError

    def resume(self, new_right_edge: int) -> None:
        """Post-reset wake-up: jump to ``new_right_edge``, all marked seen.

        This is the receiver's third action in Section 4: after FETCH and
        the leap, "every sequence number up to r should be assumed to be
        already received", so the whole window is set to *received*.
        """
        raise NotImplementedError

    def is_seen(self, seq: int) -> bool:
        """Whether ``seq`` is currently marked received (stale counts as seen)."""
        verdict = self.check(seq)
        return verdict in (Verdict.DUPLICATE, Verdict.STALE)

    def snapshot(self) -> tuple[int, tuple[bool, ...]]:
        """Return ``(r, received-flags for left_edge..r)`` for comparison."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} w={self.w} r={self.right_edge}>"


class ArrayReplayWindow(ReplayWindow):
    """Paper-literal boolean-array window.

    ``self._wdw[i]`` for ``i in 1..w`` (stored 0-based as ``i-1``) is True
    iff ``msg(r - w + i)`` has been received — the exact indexing of the
    paper's process ``q``.
    """

    def __init__(self, w: int) -> None:
        super().__init__(w)
        self._r = 0
        self._wdw = [True] * self.w  # paper initial value: all true

    @property
    def right_edge(self) -> int:
        return self._r

    def check(self, seq: int) -> Verdict:
        if seq <= self._r - self.w:
            return Verdict.STALE
        if seq <= self._r:
            i = seq - self._r + self.w  # 1-based index, as in the paper
            return Verdict.DUPLICATE if self._wdw[i - 1] else Verdict.ACCEPT_IN_WINDOW
        return Verdict.ACCEPT_ADVANCE

    def update(self, seq: int) -> Verdict:
        verdict = self.check(seq)
        if verdict is Verdict.ACCEPT_IN_WINDOW:
            i = seq - self._r + self.w
            self._wdw[i - 1] = True
        elif verdict is Verdict.ACCEPT_ADVANCE:
            self._slide_to(seq)
        return verdict

    def _slide_to(self, seq: int) -> None:
        shift = seq - self._r
        if shift >= self.w:
            self._wdw = [False] * self.w
        else:
            # Paper's two loops: copy wdw[shift+1..w] down to wdw[1..w-shift],
            # then clear the vacated middle positions.
            self._wdw = self._wdw[shift:] + [False] * shift
        self._r = seq
        self._wdw[self.w - 1] = True  # mark s received (see module note)

    def resume(self, new_right_edge: int) -> None:
        self._r = new_right_edge
        self._wdw = [True] * self.w

    def snapshot(self) -> tuple[int, tuple[bool, ...]]:
        return self._r, tuple(self._wdw)


class BitmapReplayWindow(ReplayWindow):
    """RFC 2401-style integer-bitmap window (production form).

    Bit ``k`` of ``self._mask`` (for ``0 <= k < w``) holds the received
    flag of sequence number ``r - k``; bit 0 is the right edge.
    """

    def __init__(self, w: int) -> None:
        super().__init__(w)
        self._r = 0
        self._mask = (1 << self.w) - 1  # all seen, matching the paper init

    @property
    def right_edge(self) -> int:
        return self._r

    def check(self, seq: int) -> Verdict:
        if seq <= self._r - self.w:
            return Verdict.STALE
        if seq <= self._r:
            bit = self._r - seq
            if self._mask & (1 << bit):
                return Verdict.DUPLICATE
            return Verdict.ACCEPT_IN_WINDOW
        return Verdict.ACCEPT_ADVANCE

    def update(self, seq: int) -> Verdict:
        verdict = self.check(seq)
        if verdict is Verdict.ACCEPT_IN_WINDOW:
            self._mask |= 1 << (self._r - seq)
        elif verdict is Verdict.ACCEPT_ADVANCE:
            shift = seq - self._r
            if shift >= self.w:
                self._mask = 0
            else:
                self._mask = (self._mask << shift) & ((1 << self.w) - 1)
            self._mask |= 1  # mark s itself received
            self._r = seq
        return verdict

    def resume(self, new_right_edge: int) -> None:
        self._r = new_right_edge
        self._mask = (1 << self.w) - 1

    def snapshot(self) -> tuple[int, tuple[bool, ...]]:
        flags = tuple(
            bool(self._mask & (1 << (self.w - 1 - i))) for i in range(self.w)
        )
        return self._r, flags
