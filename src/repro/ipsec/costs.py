"""Operation cost model, with the paper's measured constants.

Section 4: "on a Pentium III 730-MHz machine running Linux 2.4.18, a
write-to-file operation takes 100 us and sending a 1000-byte message takes
4 us on average. In this case, we can set the interval between two SAVEs to
be at least 25."

The paper's sizing rule: the SAVE interval ``K`` (in messages) must be at
least the maximum number of messages that can be sent during one SAVE, so
that at most one SAVE is ever in flight.  :meth:`CostModel.min_save_interval`
computes it; with the paper's constants it is exactly 25.

IKE costs are era-plausible defaults for a Pentium-III-class host (modular
exponentiation dominated); E7 sweeps them, so only their order of magnitude
relative to ``t_save`` matters for the reproduced shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import microseconds, milliseconds


@dataclass(frozen=True)
class CostModel:
    """Simulated durations (seconds) of the operations the paper times.

    Attributes:
        t_save: one SAVE (persistent write) — paper: 100 us.
        t_send: sending one message — paper: 4 us (1000-byte message).
        t_recv: receiving/processing one message.
        t_fetch: one FETCH (persistent read on wake-up).
        t_dh_exp: one Diffie-Hellman exponentiation (IKE main mode).
        t_prf: one PRF/derivation step (IKE).
        t_sig: one signature/verification (IKE authentication).
    """

    t_save: float = microseconds(100)
    t_send: float = microseconds(4)
    t_recv: float = microseconds(4)
    t_fetch: float = microseconds(100)
    t_dh_exp: float = milliseconds(20)
    t_prf: float = microseconds(50)
    t_sig: float = milliseconds(5)

    def min_save_interval(self) -> int:
        """Smallest safe ``K``: messages sendable during one SAVE.

        ``K >= ceil(t_save / t_send)`` guarantees the previous background
        SAVE has committed before the next one starts (the property the
        2K-gap analysis of Section 5 relies on).  Paper constants give 25.
        """
        return max(1, math.ceil(self.t_save / self.t_send))

    def send_rate(self) -> float:
        """Maximum message send rate (messages/second)."""
        return 1.0 / self.t_send

    def ike_handshake_compute_time(self) -> float:
        """Total local compute both peers spend in one main+quick handshake.

        Main mode: 2 DH exponentiations per peer (own + shared), 1
        signature + 1 verification per peer, plus PRF steps; quick mode:
        PRF-only (no PFS).  This is the per-SA renegotiation cost the IETF
        remedy pays and SAVE/FETCH avoids.
        """
        per_peer = 2 * self.t_dh_exp + 2 * self.t_sig + 6 * self.t_prf
        return 2 * per_peer


#: The paper's measured constants (Pentium III 730 MHz, Linux 2.4.18).
PAPER_COSTS = CostModel()
