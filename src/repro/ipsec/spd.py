"""The Security Policy Database (SPD) of RFC 2401.

Per RFC 2401 every packet is matched against an ordered policy list whose
actions are PROTECT (apply IPsec), BYPASS (send in the clear) or DISCARD.
The simulation uses the SPD to decide which host pairs run the anti-replay
protocol; the reproduction keeps selectors simple (host names and a
protocol label, with ``"*"`` wildcards) since port-level granularity adds
nothing to the paper's experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PolicyAction(enum.Enum):
    """What the SPD tells IPsec to do with a matching packet."""

    PROTECT = "protect"
    BYPASS = "bypass"
    DISCARD = "discard"


@dataclass(frozen=True)
class SpdEntry:
    """One ordered SPD rule.

    Attributes:
        src: source selector (host name or ``"*"``).
        dst: destination selector (host name or ``"*"``).
        protocol: protocol selector (e.g. ``"esp"``, ``"any"``, ``"*"``).
        action: what to do on match.
    """

    src: str
    dst: str
    protocol: str
    action: PolicyAction

    def matches(self, src: str, dst: str, protocol: str) -> bool:
        """Whether this entry's selectors cover the given packet."""
        return (
            self.src in ("*", src)
            and self.dst in ("*", dst)
            and self.protocol in ("*", "any", protocol)
        )


class SecurityPolicyDatabase:
    """An ordered list of :class:`SpdEntry`, first match wins."""

    def __init__(self, default_action: PolicyAction = PolicyAction.DISCARD) -> None:
        self.default_action = default_action
        self._entries: list[SpdEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, entry: SpdEntry) -> None:
        """Append a rule at the end of the ordered list."""
        self._entries.append(entry)

    def add_rule(
        self, src: str, dst: str, protocol: str, action: PolicyAction
    ) -> SpdEntry:
        """Convenience: build and append a rule, returning it."""
        entry = SpdEntry(src=src, dst=dst, protocol=protocol, action=action)
        self.add(entry)
        return entry

    def match(self, src: str, dst: str, protocol: str = "any") -> PolicyAction:
        """First-match policy decision (``default_action`` if none match)."""
        for entry in self._entries:
            if entry.matches(src, dst, protocol):
                return entry.action
        return self.default_action

    def entries(self) -> list[SpdEntry]:
        """The ordered rule list (copy)."""
        return list(self._entries)
