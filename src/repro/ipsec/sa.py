"""Security associations (RFC 2401 model, simulation form).

An SA is unidirectional: "a selected computer pair (p, q) ... has to
establish a unidirectional security association before computer p can start
sending messages to computer q."  Its components per the paper include
authentication and encryption keys and shared secrets, algorithms, key
lifetimes, the sender's sequence number and the receiver's anti-replay
window.

Here :class:`SecurityAssociation` holds the *stable* attributes — the ones
the paper observes "remain the same during the lifetime of this SA" and
that make full re-establishment expensive.  The *volatile* attributes (the
sequence counter and the window) live in the protocol endpoints
(:mod:`repro.core.sender` / :mod:`repro.core.receiver`), because they are
precisely the state a reset erases; keeping them separate makes the fault
model explicit.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.ipsec.crypto import derive_key, generate_key
from repro.util.rng import make_rng

_spi_counter = itertools.count(0x1000)

#: Default algorithm labels (simulated; see crypto module).
AUTH_ALG = "hmac-sha256"
ENC_ALG = "xor-stream-sim"

#: Peer-address rebinding policies (RFC 3947/4555-style NAT handling,
#: simulation form; enforced by the SAD and by
#: :class:`repro.netpath.NatGate`):
#:
#: * ``"static"`` — addresses are ignored entirely (the paper's model:
#:   an SA names hosts, not network bindings).
#: * ``"strict"`` — the SA is pinned to the address it was established
#:   from; traffic from any other source is dropped.  Safe, but a NAT
#:   rebinding mid-SA silently kills the tunnel.
#: * ``"rebind_on_valid"`` — MOBIKE-style: the binding moves to a new
#:   source address the first time a packet from it passes the
#:   anti-replay window.  In-flight packets from the old binding are
#:   still processed — the window, not the address, remains the replay
#:   authority.
REBIND_POLICIES = ("static", "strict", "rebind_on_valid")


@dataclass(frozen=True)
class SecurityAssociation:
    """The stable attributes of one unidirectional SA.

    Attributes:
        spi: Security Parameter Index identifying the SA at the receiver.
        src: name of the sending host.
        dst: name of the receiving host.
        auth_key: HMAC key for the ICV.
        enc_key: key for the (simulated) cipher.
        auth_alg / enc_alg: algorithm labels.
        lifetime_seconds: soft lifetime after which rekeying is due.
        created_at: simulated establishment time.
        generation: how many times this (p, q, direction) SA slot has been
            re-established; the IETF-rekey baseline bumps it.
        rebind_policy: what happens when the peer's *network binding*
            (not its identity) changes mid-SA — one of
            :data:`REBIND_POLICIES`.  Stable like the other attributes:
            the policy is negotiated at establishment, the *current*
            binding is volatile state tracked by the SAD.
    """

    spi: int
    src: str
    dst: str
    auth_key: bytes
    enc_key: bytes
    auth_alg: str = AUTH_ALG
    enc_alg: str = ENC_ALG
    lifetime_seconds: float = 3600.0
    created_at: float = 0.0
    generation: int = 0
    rebind_policy: str = "static"

    def __post_init__(self) -> None:
        if self.rebind_policy not in REBIND_POLICIES:
            raise ValueError(
                f"unknown rebind policy {self.rebind_policy!r}; "
                f"expected one of {REBIND_POLICIES}"
            )

    def expired(self, now: float) -> bool:
        """Whether the soft lifetime has elapsed at simulated time ``now``."""
        return now - self.created_at >= self.lifetime_seconds

    def __repr__(self) -> str:
        return (
            f"SA(spi={self.spi:#x}, {self.src}->{self.dst}, gen={self.generation})"
        )


@dataclass(frozen=True)
class SaPair:
    """The two unidirectional SAs of a bidirectional IPsec conversation."""

    forward: SecurityAssociation  #: p -> q
    backward: SecurityAssociation  #: q -> p

    def for_sender(self, host: str) -> SecurityAssociation:
        """The outbound SA when ``host`` is sending."""
        if host == self.forward.src:
            return self.forward
        if host == self.backward.src:
            return self.backward
        raise KeyError(f"host {host!r} is not an endpoint of {self!r}")


def make_sa(
    src: str,
    dst: str,
    seed_or_rng: int | random.Random | None = None,
    now: float = 0.0,
    lifetime_seconds: float = 3600.0,
    generation: int = 0,
    master_secret: bytes | None = None,
    spi: int | None = None,
    rebind_policy: str = "static",
) -> SecurityAssociation:
    """Create one unidirectional SA with fresh (seeded) key material.

    If ``master_secret`` is given (e.g. a real Diffie-Hellman result from
    :mod:`repro.ipsec.ike`), keys **and the SPI** are derived from it, so
    the two peers of a negotiation independently construct byte-identical
    SAs.  Otherwise keys come from the seed and the SPI from a process-
    local counter.
    """
    rng = make_rng(seed_or_rng)
    if spi is None:
        if master_secret is not None:
            spi = int.from_bytes(
                derive_key(master_secret, f"spi:{src}->{dst}:{generation}")[:4],
                "big",
            )
        else:
            spi = next(_spi_counter)
    if master_secret is None:
        master_secret = generate_key(rng)
    return SecurityAssociation(
        spi=spi,
        src=src,
        dst=dst,
        auth_key=derive_key(master_secret, f"auth:{src}->{dst}:{generation}"),
        enc_key=derive_key(master_secret, f"enc:{src}->{dst}:{generation}"),
        lifetime_seconds=lifetime_seconds,
        created_at=now,
        generation=generation,
        rebind_policy=rebind_policy,
    )


def make_sa_pair(
    host_a: str,
    host_b: str,
    seed_or_rng: int | random.Random | None = None,
    now: float = 0.0,
    lifetime_seconds: float = 3600.0,
    generation: int = 0,
    master_secret: bytes | None = None,
    rebind_policy: str = "static",
) -> SaPair:
    """Create the forward (a->b) and backward (b->a) SAs of a conversation."""
    rng = make_rng(seed_or_rng)
    if master_secret is None:
        master_secret = generate_key(rng)
    return SaPair(
        forward=make_sa(
            host_a,
            host_b,
            rng,
            now=now,
            lifetime_seconds=lifetime_seconds,
            generation=generation,
            master_secret=master_secret,
            rebind_policy=rebind_policy,
        ),
        backward=make_sa(
            host_b,
            host_a,
            rng,
            now=now,
            lifetime_seconds=lifetime_seconds,
            generation=generation,
            master_secret=master_secret,
            rebind_policy=rebind_policy,
        ),
    )
