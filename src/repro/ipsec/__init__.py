"""IPsec substrate (systems S5-S7).

The paper's protocol runs over an IPsec security association (SA).  The
anti-replay logic itself only needs sequence numbers, but two other parts
of the reproduction need *real* (simulated-but-enforced) IPsec machinery:

* the IETF baseline ("delete and re-establish the SA on reset") relies on
  old packets *actually failing* integrity verification under the new SA's
  keys — so ESP/AH here carry real HMAC-SHA-256 integrity check values
  over simulated encapsulation;
* the rekey-cost experiment (E7) needs a message-faithful IKE handshake
  with a crypto cost model.

Contents:

* :mod:`~repro.ipsec.crypto` — keys, HMAC integrity, a clearly-labelled
  non-cryptographic stream-cipher stand-in.
* :mod:`~repro.ipsec.sa` — :class:`SecurityAssociation` records and the
  per-direction endpoint state.
* :mod:`~repro.ipsec.sad` / :mod:`~repro.ipsec.spd` — the SA database and
  security policy database of RFC 2401.
* :mod:`~repro.ipsec.esp` / :mod:`~repro.ipsec.ah` — packet encapsulation
  with enforced integrity.
* :mod:`~repro.ipsec.replay_window` — the anti-replay window, in both the
  paper-literal boolean-array form and an RFC-style integer bitmap form.
* :mod:`~repro.ipsec.ike` — simplified ISAKMP main + quick mode over the
  simulated network, used by the rekey baseline.
* :mod:`~repro.ipsec.costs` — the paper's measured cost constants
  (T_save = 100 us, T_send = 4 us on a Pentium III 730 MHz) and derived
  quantities such as the minimum SAVE interval K >= 25.
"""

from repro.ipsec.ah import AhPacket, ah_open, ah_seal
from repro.ipsec.costs import PAPER_COSTS, CostModel
from repro.ipsec.crypto import (
    IntegrityError,
    derive_key,
    generate_key,
    hmac_digest,
    hmac_verify,
    xor_stream,
)
from repro.ipsec.esp import EspPacket, esp_open, esp_seal
from repro.ipsec.ike import IkeConfig, IkeInitiator, IkeMessage, IkeResponder, IkeResult
from repro.ipsec.replay_window import (
    ArrayReplayWindow,
    BitmapReplayWindow,
    ReplayWindow,
    Verdict,
)
from repro.ipsec.replay_window_blocked import BlockedReplayWindow
from repro.ipsec.sa import SaPair, SecurityAssociation, make_sa_pair
from repro.ipsec.sad import SecurityAssociationDatabase
from repro.ipsec.spd import PolicyAction, SecurityPolicyDatabase, SpdEntry

__all__ = [
    "AhPacket",
    "ArrayReplayWindow",
    "BitmapReplayWindow",
    "BlockedReplayWindow",
    "CostModel",
    "EspPacket",
    "IkeConfig",
    "IkeInitiator",
    "IkeMessage",
    "IkeResponder",
    "IkeResult",
    "IntegrityError",
    "PAPER_COSTS",
    "PolicyAction",
    "ReplayWindow",
    "SaPair",
    "SecurityAssociation",
    "SecurityAssociationDatabase",
    "SecurityPolicyDatabase",
    "SpdEntry",
    "Verdict",
    "ah_open",
    "ah_seal",
    "derive_key",
    "esp_open",
    "esp_seal",
    "generate_key",
    "hmac_digest",
    "hmac_verify",
    "make_sa_pair",
    "xor_stream",
]
