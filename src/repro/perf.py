"""Shared benchmark timing and machine-normalized rate reporting.

Every ``benchmarks/bench_m*`` file reports throughput through this module
so the numbers are comparable across files *and* across machines:

* :class:`Stopwatch` — a ``with``-block wall-clock timer.
* :func:`machine_score` — a quick calibration of the host: millions of
  heap-push/pop operations per second on the same kind of
  ``(int, int)``-tuple heap the simulation engine runs on.  Dividing a
  raw rate by the score yields a *normalized* rate that is stable across
  hosts of different speeds (the workload and the calibration scale
  together), which is what the CI regression gate compares.
* :class:`RateReport` / :func:`measure_rate` — one stable reporting line
  per benchmark: raw events/s or sessions/s plus the normalized rate.
* :func:`check_report` / :func:`main` — the CI gate:
  ``python -m repro.perf check BENCH.json --baseline baseline.json``
  reads pytest-benchmark JSON output, recomputes normalized rates on the
  current host, prints the signed percentage delta per gated benchmark,
  and fails if any gated benchmark dropped more than the baseline's
  tolerance below its checked-in normalized rate.  Exit codes are
  distinct so CI can tell failure modes apart: 0 ok, 1 regression,
  2 a gated benchmark is absent from the results JSON, 3 the baseline
  file itself is missing or unreadable (see ``EXIT_*``).
  ``python -m repro.perf update`` refreshes the baseline in place after
  an intentional perf change.

The baseline file (checked in under ``benchmarks/baselines/``) maps each
gated benchmark name to the per-round workload size (``count``) and the
``normalized_rate`` captured when the baseline was seeded::

    {
      "metric": "events/s",
      "tolerance": 0.20,
      "benchmarks": {
        "bench_engine_event_rate": {"count": 50000, "normalized_rate": 123.4}
      }
    }
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass
from heapq import heappop, heappush
from pathlib import Path
from typing import Any


def current_git_sha() -> str | None:
    """The commit the working tree is at, or ``None`` outside a repo.

    Prefers ``GITHUB_SHA`` (set on every Actions runner, and correct in
    detached checkouts) over asking git, so provenance works even when
    the ``git`` binary is unavailable.  Stamped into every
    :class:`RateReport` and every archived run snapshot.
    """
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


class Stopwatch:
    """Wall-clock context-manager timer.

    ``elapsed`` reads the running total mid-block and the final duration
    after the block exits::

        with Stopwatch() as clock:
            work()
        rate = jobs / clock.elapsed
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._elapsed = None
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        assert self._start is not None
        self._elapsed = time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Seconds elapsed (running total while the block is active)."""
        if self._elapsed is not None:
            return self._elapsed
        if self._start is None:
            raise RuntimeError("Stopwatch has not been started")
        return time.perf_counter() - self._start


# ----------------------------------------------------------------------
# Machine calibration
# ----------------------------------------------------------------------
_CALIBRATION_OPS = 100_000
_CALIBRATION_ROUNDS = 3
_machine_score: float | None = None


def _calibration_workload(ops: int) -> int:
    """Heap churn shaped like the engine hot path: push ``(key, seq)``
    tuples, pop half along the way, drain at the end."""
    heap: list[tuple[int, int]] = []
    total = 0
    for i in range(ops):
        heappush(heap, ((i * 2654435761) & 0xFFFFF, i))
        if i & 1:
            total += heappop(heap)[0]
    while heap:
        total += heappop(heap)[0]
    return total


def machine_score(recalibrate: bool = False) -> float:
    """Millions of calibration heap-ops per second on this host.

    Best of :data:`_CALIBRATION_ROUNDS` timed rounds (the minimum is the
    least noisy estimator of what the machine can do), cached for the
    process lifetime.
    """
    global _machine_score
    if _machine_score is None or recalibrate:
        best = min(
            _timed_calibration_round() for _ in range(_CALIBRATION_ROUNDS)
        )
        _machine_score = _CALIBRATION_OPS / best / 1e6
    return _machine_score


def _timed_calibration_round() -> float:
    started = time.perf_counter()
    _calibration_workload(_CALIBRATION_OPS)
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# Rate reporting
# ----------------------------------------------------------------------
#: Schema tag stamped into :meth:`RateReport.as_dict` exports.
RATE_SCHEMA = "repro.perf/rate@1"


@dataclass(frozen=True)
class RateReport:
    """One benchmark's throughput, raw and machine-normalized.

    Attributes:
        name: benchmark identifier (the ``bench_*`` function name).
        metric: unit of ``count`` per second (``"events/s"``, ...).
        count: work items completed in ``seconds``.
        seconds: wall time for ``count`` items.
        score: the :func:`machine_score` used for normalization.
        git_sha: the commit the numbers were captured at (provenance;
            ``None`` outside a repo).
    """

    name: str
    metric: str
    count: int
    seconds: float
    score: float
    git_sha: str | None = None

    @property
    def rate(self) -> float:
        """Raw items per second."""
        return self.count / self.seconds

    @property
    def normalized(self) -> float:
        """Machine-normalized rate (items per million calibration ops)."""
        return self.rate / self.score

    def format(self) -> str:
        """The stable one-line report all bench files print."""
        return (
            f"{self.name}: {self.rate:,.0f} {self.metric} "
            f"(normalized {self.normalized:,.1f} @ machine score "
            f"{self.score:.2f})"
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe export, carried into pytest-benchmark ``extra_info``.

        The ``schema`` tag makes archived BENCH_*.json artifacts
        self-describing: a consumer can tell these fields came from this
        reporter (and which revision of it) without guessing from shape.
        """
        return {
            "schema": RATE_SCHEMA,
            "name": self.name,
            "metric": self.metric,
            "count": self.count,
            "seconds": self.seconds,
            "rate": self.rate,
            "machine_score": self.score,
            "normalized_rate": self.normalized,
            "git_sha": self.git_sha,
        }


def measure_rate(
    name: str, metric: str, count: int, seconds: float
) -> RateReport:
    """Build a :class:`RateReport` using the cached machine score."""
    return RateReport(
        name=name, metric=metric, count=count, seconds=seconds,
        score=machine_score(), git_sha=current_git_sha(),
    )


# ----------------------------------------------------------------------
# Baselines and the CI gate
# ----------------------------------------------------------------------
#: Gate exit codes.  Kept distinct so CI steps can branch on the failure
#: mode: a regression wants a red build, a missing baseline usually
#: means a bootstrap/update step should run instead.
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_MISSING_BENCH = 2
EXIT_MISSING_BASELINE = 3


@dataclass(frozen=True)
class GateResult:
    """Verdict for one gated benchmark.

    ``current_raw`` is the un-normalized rate on this host — not gated
    (it is machine-dependent), but printed so a green run still reports
    what the hardware actually did.
    """

    name: str
    current_normalized: float
    baseline_normalized: float
    floor: float
    current_raw: float | None = None

    @property
    def ok(self) -> bool:
        return self.current_normalized >= self.floor

    @property
    def ratio(self) -> float:
        return self.current_normalized / self.baseline_normalized

    @property
    def delta_pct(self) -> float:
        """Signed percent change vs the baseline (+4.2 means 4.2% faster)."""
        return (self.ratio - 1.0) * 100.0

    def format(self) -> str:
        verdict = "ok" if self.ok else "REGRESSION"
        arrow = "↑" if self.delta_pct >= 0 else "↓"
        raw = (
            f" [{self.current_raw:,.0f} raw]"
            if self.current_raw is not None else ""
        )
        return (
            f"  {self.name}: normalized {self.current_normalized:,.1f} "
            f"vs baseline {self.baseline_normalized:,.1f} "
            f"({arrow}{self.delta_pct:+.1f}%, floor {self.floor:,.1f})"
            f"{raw} {verdict}"
        )


def load_benchmark_json(path: Path) -> dict[str, float]:
    """Map benchmark name -> best-round seconds from pytest-benchmark JSON.

    The per-round minimum is used: it is the least noisy estimator on a
    shared CI runner (the mean absorbs scheduler hiccups).
    """
    data = json.loads(path.read_text())
    times: dict[str, float] = {}
    for entry in data.get("benchmarks", []):
        times[entry["name"]] = entry["stats"]["min"]
    return times


def load_benchmark_provenance(path: Path) -> dict[str, dict[str, Any]]:
    """Map benchmark name -> :data:`RATE_SCHEMA` provenance payload.

    Only entries whose ``extra_info`` carries the schema tag are
    returned — those are the ones the ``report_rate`` fixture stamped
    with the capture-time machine score and git sha.
    """
    data = json.loads(path.read_text())
    provenance: dict[str, dict[str, Any]] = {}
    for entry in data.get("benchmarks", []):
        extra = entry.get("extra_info") or {}
        if extra.get("schema") == RATE_SCHEMA:
            provenance[entry["name"]] = dict(extra)
    return provenance


def check_report(
    bench_times: dict[str, float],
    baseline: dict[str, Any],
    tolerance: float | None = None,
    score: float | None = None,
) -> tuple[list[GateResult], list[str]]:
    """Compare measured benchmark times against a baseline.

    Args:
        bench_times: name -> seconds per round (see
            :func:`load_benchmark_json`).
        baseline: parsed baseline file (``benchmarks`` maps gated names to
            ``{"count": N, "normalized_rate": R}``).
        tolerance: allowed fractional drop; defaults to the baseline's
            ``tolerance`` (and to 0.20 if the file has none).
        score: machine score override (tests); defaults to calibrating the
            current host.

    Returns:
        ``(results, missing)`` — verdicts for every gated benchmark found,
        and the names of gated benchmarks absent from ``bench_times``.
    """
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", 0.20))
    if score is None:
        score = machine_score()
    results: list[GateResult] = []
    missing: list[str] = []
    for name, spec in baseline["benchmarks"].items():
        if name not in bench_times:
            missing.append(name)
            continue
        raw = spec["count"] / bench_times[name]
        normalized = raw / score
        base = float(spec["normalized_rate"])
        results.append(
            GateResult(
                name=name,
                current_normalized=normalized,
                baseline_normalized=base,
                floor=base * (1.0 - tolerance),
                current_raw=raw,
            )
        )
    return results, missing


def _load_baseline(path: Path) -> dict[str, Any] | None:
    """Parse a baseline file; ``None`` (not an exception) if it is
    missing or unreadable, so the CLI can exit :data:`EXIT_MISSING_BASELINE`
    instead of a traceback."""
    try:
        baseline = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read baseline {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(baseline.get("benchmarks"), dict):
        print(f"error: baseline {path} has no 'benchmarks' mapping",
              file=sys.stderr)
        return None
    return baseline


def _print_provenance_mismatch(
    bench_json: Path, gated_names: set[str], score: float
) -> None:
    """Explain normalized-vs-raw when the results came off another host.

    When a gated benchmark's capture-time machine score (stamped into
    ``extra_info`` by the ``report_rate`` fixture) disagrees with the
    current host's, the raw rates in the file are not comparable here —
    say so, and say which numbers the gate actually compares.
    """
    try:
        provenance = load_benchmark_provenance(bench_json)
    except (OSError, json.JSONDecodeError):
        return
    for name, info in sorted(provenance.items()):
        if name not in gated_names:
            continue
        captured = info.get("machine_score")
        if not isinstance(captured, (int, float)) or captured <= 0:
            continue
        if abs(captured - score) / captured > 0.05:
            sha = info.get("git_sha") or "unknown commit"
            print(
                f"provenance: {name} was captured at machine score "
                f"{captured:.2f} ({sha}); this host scores {score:.2f} — "
                "raw rates are not comparable across hosts, the gate "
                "compares normalized rates only"
            )


def _archive_bench(bench_json: str, archive_dir: str) -> None:
    """``check --archive DIR``: land the bench report in a run warehouse."""
    from repro.obs.archive import RunArchive

    try:
        snapshot, created = RunArchive(archive_dir).ingest(Path(bench_json))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"warning: could not archive {bench_json}: {exc}",
              file=sys.stderr)
        return
    status = "archived" if created else "already archived"
    print(f"{status}: {bench_json} -> {archive_dir} "
          f"[{snapshot.short_id}]")


def _cmd_check(args: argparse.Namespace) -> int:
    baseline = _load_baseline(Path(args.baseline))
    if baseline is None:
        print("restore the checked-in baseline (benchmarks/baselines/) or "
              "seed one, then re-run the gate", file=sys.stderr)
        return EXIT_MISSING_BASELINE
    bench_times = load_benchmark_json(Path(args.bench_json))
    score = machine_score()
    results, missing = check_report(
        bench_times, baseline, tolerance=args.tolerance, score=score
    )
    metric = baseline.get("metric", "items/s")
    print(f"perf gate: {args.bench_json} vs {args.baseline} "
          f"({metric}, machine score {score:.2f})")
    for result in results:
        print(result.format())
    _print_provenance_mismatch(
        Path(args.bench_json), set(baseline["benchmarks"]), score
    )
    if getattr(args, "archive", None):
        # Archive before the verdict: a regressed run's evidence is the
        # run most worth keeping.
        _archive_bench(args.bench_json, args.archive)
    if missing:
        print(f"error: gated benchmarks missing from {args.bench_json}: "
              f"{', '.join(missing)}", file=sys.stderr)
        return EXIT_MISSING_BENCH
    failed = [result for result in results if not result.ok]
    if failed:
        print(f"FAILED: {len(failed)} benchmark(s) regressed more than "
              f"{float(baseline.get('tolerance', 0.20)):.0%} below baseline",
              file=sys.stderr)
        print("if this change moved throughput intentionally, refresh the "
              "baseline and commit the diff:\n"
              f"  python -m repro.perf update {args.bench_json} "
              f"--baseline {args.baseline}",
              file=sys.stderr)
        return EXIT_REGRESSION
    print("all gated benchmarks within tolerance")
    return EXIT_OK


def _cmd_update(args: argparse.Namespace) -> int:
    baseline_path = Path(args.baseline)
    baseline = _load_baseline(baseline_path)
    if baseline is None:
        return EXIT_MISSING_BASELINE
    bench_times = load_benchmark_json(Path(args.bench_json))
    score = machine_score()
    missing = [n for n in baseline["benchmarks"] if n not in bench_times]
    if missing:
        print(f"error: gated benchmarks missing from {args.bench_json}: "
              f"{', '.join(missing)}", file=sys.stderr)
        return EXIT_MISSING_BENCH
    for name, spec in baseline["benchmarks"].items():
        rate = spec["count"] / bench_times[name]
        spec["normalized_rate"] = round(rate / score, 3)
        spec["raw_rate_at_capture"] = round(rate, 1)
    baseline["machine_score_at_capture"] = round(score, 3)
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"baseline {baseline_path} refreshed "
          f"(machine score {score:.2f})")
    return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="benchmark baseline gate (see module docstring)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="fail if gated benchmarks regressed below baseline"
    )
    check.add_argument("bench_json", help="pytest-benchmark JSON output")
    check.add_argument("--baseline", required=True,
                       help="checked-in baseline JSON")
    check.add_argument("--tolerance", type=float, default=None,
                       help="override the baseline's allowed drop fraction")
    check.add_argument("--archive", default=None, metavar="DIR",
                       help="also ingest the bench report into this run "
                            "warehouse (see repro.obs.archive)")
    check.set_defaults(func=_cmd_check)

    update = sub.add_parser(
        "update", help="rewrite the baseline's rates from a bench run"
    )
    update.add_argument("bench_json", help="pytest-benchmark JSON output")
    update.add_argument("--baseline", required=True,
                        help="baseline JSON to refresh in place")
    update.set_defaults(func=_cmd_update)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
