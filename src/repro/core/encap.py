"""Encapsulation helpers shared by the sender and receiver endpoints.

The anti-replay protocol is agnostic to whether messages travel as plain
``msg(s)`` records, ESP packets or AH packets; these helpers give the
endpoints one seal/open interface over all three.  ``"plain"`` is the
paper's abstract model; ``"esp"``/``"ah"`` add enforced integrity, which
the IETF-rekey baseline requires.
"""

from __future__ import annotations

from typing import Any

from repro.ipsec.ah import ah_open, ah_seal
from repro.ipsec.crypto import IntegrityError
from repro.ipsec.esp import esp_open, esp_seal
from repro.ipsec.sa import SecurityAssociation
from repro.net.message import Message

#: Supported encapsulation modes.
ENCAP_MODES = ("plain", "esp", "ah")


def seal(
    encap: str,
    sa: SecurityAssociation | None,
    seq: int,
    payload: bytes,
    now: float,
    uid: int,
    src: str | None = None,
) -> Any:
    """Build the wire packet for sequence number ``seq``.

    ``uid`` is instrumentation (see :mod:`repro.core.audit`); for plain
    messages it rides in ``meta``, for ESP/AH it is implicit in the packet
    object identity tracked by the auditor.  ``src`` is the sender's
    current network binding (``None`` in the paper's address-less
    model); it rides the outer header, so for ESP/AH it is outside the
    authenticated payload — which is precisely why a NAT can change it
    mid-SA without breaking the ICV (see :mod:`repro.netpath.nat`).
    """
    if encap == "plain":
        return Message(seq=seq, payload=payload, sent_at=now, src=src).with_meta(uid=uid)
    if sa is None:
        raise ValueError(f"encap={encap!r} requires a SecurityAssociation")
    if encap == "esp":
        return esp_seal(sa, seq, payload, src=src)
    if encap == "ah":
        return ah_seal(sa, seq, payload, src=src)
    raise ValueError(f"unknown encap mode {encap!r}; expected one of {ENCAP_MODES}")


def open_packet(
    encap: str, sa: SecurityAssociation | None, packet: Any
) -> tuple[int, bytes]:
    """Return ``(seq, payload)`` of a wire packet.

    Raises:
        IntegrityError: if ESP/AH verification fails (wrong SA/keys).
    """
    if encap == "plain":
        return packet.seq, packet.payload
    if sa is None:
        raise ValueError(f"encap={encap!r} requires a SecurityAssociation")
    if encap == "esp":
        return packet.seq, esp_open(sa, packet)
    if encap == "ah":
        return packet.seq, ah_open(sa, packet)
    raise ValueError(f"unknown encap mode {encap!r}; expected one of {ENCAP_MODES}")


__all__ = ["ENCAP_MODES", "IntegrityError", "open_packet", "seal"]
