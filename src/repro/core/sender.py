"""Process ``p`` — the sender (Sections 2 and 4 of the paper).

Two concrete senders share :class:`BaseSender`:

* :class:`UnprotectedSender` — the Section 2 process.  Its only state is
  the counter ``s`` (next to be sent, initially 1).  On a reset this state
  is lost and, per Section 3, "p resumes its operation with s set to 1" —
  the behaviour that produces unbounded fresh-message discards at the
  receiver.

* :class:`SaveFetchSender` — the Section 4 process.  In addition to ``s``
  it keeps ``lst`` (sequence number stored by the last *initiated* SAVE)
  and ``wait``.  After each send, "p checks whether s has become Kp
  greater than the last stored sequence number, lst.  If so, p executes
  SAVE(s)" *in the background*.  On wake-up after a reset it runs
  ``FETCH(s); SAVE(s + 2Kp); s := s + 2Kp; lst := s; wait := false`` —
  waiting for that synchronous SAVE to finish before sending again.

The `2Kp` leap is configurable (``leap_factor``) so experiment E11 can
ablate it and show that a `1Kp` leap (or skipping the post-wake SAVE)
breaks the guarantee.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.audit import DeliveryAuditor
from repro.core.encap import seal
from repro.core.persistent import PersistentStore
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.ipsec.sa import SecurityAssociation
from repro.net.link import PacketPipe
from repro.sim.engine import Engine
from repro.sim.process import SimProcess, Timer
from repro.util.validation import check_positive

#: Global uid source for fresh transmissions (instrumentation only).
_uid_counter = itertools.count(1)

#: Listener signature for :meth:`BaseSender.add_send_listener`:
#: ``(sent_total, packet)`` after each fresh transmission.
SendListener = Callable[[int, Any], None]


@dataclass
class SenderResetRecord:
    """Everything about one sender reset/wake cycle (feeds Fig. 1 / E1 / E3).

    Attributes:
        reset_time: when the reset hit.
        last_used_seq: the last sequence number actually sent before the
            reset (``s - 1`` at crash time), or 0 if nothing was sent.
        save_in_flight: whether a background SAVE was in flight when the
            reset hit (Fig. 1 distinguishes the two cases).
        fetched: value FETCH returned on wake (None for the unprotected
            sender, which has nothing to fetch).
        resumed_seq: first sequence number used after recovery.
        wake_time: when the host came back up.
        resume_time: when sending actually resumed (after the post-wake
            synchronous SAVE for the protected sender).
    """

    reset_time: float
    last_used_seq: int
    save_in_flight: bool
    fetched: int | None
    resumed_seq: int | None = None
    wake_time: float | None = None
    resume_time: float | None = None

    @property
    def gap(self) -> int | None:
        """Fig. 1's gap: last used sequence number minus the fetched one."""
        if self.fetched is None:
            return None
        return self.last_used_seq - self.fetched

    @property
    def lost_seqnums(self) -> int | None:
        """Sequence numbers rendered unusable by the leap (claim (i)).

        ``resumed_seq - (last_used_seq + 1)``; negative values mean the
        sender *reused* sequence numbers (only possible in ablations that
        shrink the leap — the bug the paper's 2K leap prevents).
        """
        if self.resumed_seq is None:
            return None
        return self.resumed_seq - (self.last_used_seq + 1)


class BaseSender(SimProcess):
    """Common sender machinery: transmission, traffic clocking, fault hooks.

    Args:
        engine: simulation engine.
        name: trace name (conventionally ``"p"``).
        pipe: where packets go (a :class:`~repro.net.link.Link` or a
            reorder stage in front of one).
        costs: operation cost model (``t_send`` paces ``start_traffic``).
        auditor: optional :class:`DeliveryAuditor` to register sends with.
        sa: security association for ESP/AH encapsulation.
        encap: ``"plain"`` (default), ``"esp"`` or ``"ah"``.
        payload: application payload placed in every message.
        address: the sender's current network binding, stamped on every
            fresh packet's ``src`` (default ``None`` — the paper's
            address-less model).  A NAT rebinding
            (:class:`repro.netpath.NatRebinding`) reassigns it mid-run;
            packets sealed earlier keep the old binding.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        pipe: PacketPipe,
        costs: CostModel = PAPER_COSTS,
        auditor: DeliveryAuditor | None = None,
        sa: SecurityAssociation | None = None,
        encap: str = "plain",
        payload: bytes = b"",
        address: str | None = None,
    ) -> None:
        super().__init__(engine, name)
        self.pipe = pipe
        self.costs = costs
        self.auditor = auditor
        self.sa = sa
        self.encap = encap
        self.payload = payload
        self.address = address
        # Volatile protocol state (erased by a reset).
        self.s = 1  # next sequence number to be sent, initially 1 (paper)
        self.wait = False
        # Host/fault state.
        self.is_up = True
        # Statistics and instrumentation.
        self.sent_total = 0
        self.sends_suppressed = 0
        self.last_sent_seq = 0
        self.reset_records: list[SenderResetRecord] = []
        self._send_listeners: list[SendListener] = []
        self._resume_listeners: list[Callable[[], None]] = []
        self._traffic_timer: Timer | None = None
        self._traffic_remaining: int | None = None

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    @property
    def can_send(self) -> bool:
        """Whether the first action's guard (``~wait`` and host up) holds."""
        return self.is_up and not self.wait

    def add_send_listener(self, listener: SendListener) -> None:
        """Register a callback invoked after every fresh transmission."""
        self._send_listeners.append(listener)

    def add_resume_listener(self, listener: Callable[[], None]) -> None:
        """Register a callback invoked when post-reset recovery completes."""
        self._resume_listeners.append(listener)

    def _notify_resumed(self) -> None:
        for listener in self._resume_listeners:
            listener()

    def send_one(self) -> bool:
        """Attempt to send the next message; returns whether it was sent.

        A suppressed attempt (host down, or ``wait`` set during post-wake
        recovery) is counted but has no protocol effect — the paper's
        guard simply keeps the action disabled.
        """
        if not self.can_send:
            self.sends_suppressed += 1
            return False
        self._transmit()
        return True

    def _transmit(self) -> None:
        uid = next(_uid_counter)
        packet = seal(
            self.encap, self.sa, self.s, self.payload, self.now, uid,
            src=self.address,
        )
        if self.auditor is not None:
            self.auditor.register_send(packet, uid)
        if self.traced:
            self.trace("send", seq=self.s)
        self.last_sent_seq = self.s
        self.sent_total += 1
        self.pipe.send(packet)
        self.s += 1
        self._after_send()
        for listener in self._send_listeners:
            listener(self.sent_total, packet)

    def _after_send(self) -> None:
        """Hook for subclasses (the SAVE check of Section 4)."""

    # ------------------------------------------------------------------
    # Traffic clocking
    # ------------------------------------------------------------------
    def start_traffic(
        self, count: int | None = None, interval: float | None = None
    ) -> None:
        """Send continuously, one message every ``interval`` seconds.

        Defaults to the cost model's ``t_send`` (the paper's maximum send
        rate).  ``count`` bounds the number of *attempts* (suppressed
        attempts count — the stream is clocked, not work-conserving).
        """
        if interval is None:
            interval = self.costs.t_send
        check_positive("interval", interval)
        self.stop_traffic()
        self._traffic_remaining = count
        self._traffic_timer = Timer(self.engine, interval, self._traffic_tick)
        self._traffic_timer.start(first_delay=interval)

    def stop_traffic(self) -> None:
        """Stop the clocked traffic stream."""
        if self._traffic_timer is not None:
            self._traffic_timer.stop()
            self._traffic_timer = None
        self._traffic_remaining = None

    def _traffic_tick(self) -> None:
        if self._traffic_remaining is not None:
            if self._traffic_remaining <= 0:
                self.stop_traffic()
                return
            self._traffic_remaining -= 1
        self.send_one()

    def send_burst(self, n: int) -> int:
        """Send ``n`` messages back-to-back at the current instant.

        Convenience for untimed tests; returns how many were actually sent.
        """
        return sum(1 for _ in range(n) if self.send_one())

    def send_batch(self, n: int) -> int:
        """Send ``n`` messages at the current instant as one link batch.

        Per-message protocol state (sequence numbers, the SAVE check,
        audit registration, send listeners) advances in order exactly as
        with :meth:`send_burst`, but the sealed packets are handed to the
        pipe together through ``offer_many`` when it supports it, so the
        per-offer link overhead is amortized across the batch — the
        gateway N-SA fan-out path.  Falls back to :meth:`send_burst` on
        pipes without batch support.  Returns how many were sent.
        """
        if n <= 0:
            return 0
        offer_many = getattr(self.pipe, "offer_many", None)
        if offer_many is None:
            return self.send_burst(n)
        packets = []
        append = packets.append
        auditor = self.auditor
        sent = 0
        for _ in range(n):
            # Re-checked per message, exactly like send_burst: the SAVE
            # check in _after_send may raise ``wait`` mid-batch (a window
            # boundary), and the guard must stop the batch there too.
            if not self.can_send:
                self.sends_suppressed += n - sent
                break
            uid = next(_uid_counter)
            packet = seal(
                self.encap, self.sa, self.s, self.payload, self.now, uid,
                src=self.address,
            )
            if auditor is not None:
                auditor.register_send(packet, uid)
            if self.traced:
                self.trace("send", seq=self.s)
            self.last_sent_seq = self.s
            self.sent_total += 1
            append(packet)
            self.s += 1
            sent += 1
            self._after_send()
            for listener in self._send_listeners:
                listener(self.sent_total, packet)
        if packets:
            offer_many(packets)
        return sent

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def reset(self, down_for: float | None = 0.0) -> SenderResetRecord:
        """A reset hits the host: volatile state is lost.

        Args:
            down_for: how long the host stays down before waking.  ``None``
                means "stay down until :meth:`wake` is called explicitly".

        Returns:
            The (still-incomplete) :class:`SenderResetRecord` for this cycle.
        """
        record = SenderResetRecord(
            reset_time=self.now,
            last_used_seq=self.s - 1,
            save_in_flight=self._save_in_flight(),
            fetched=None,
        )
        self.reset_records.append(record)
        self.trace("reset", last_used_seq=record.last_used_seq)
        self.is_up = False
        self.wait = True  # paper: second action sets wait := true
        self._on_crash(record)
        if down_for is not None:
            self.call_later(down_for, self.wake)
        return record

    def wake(self) -> None:
        """The host comes back up; run the recovery action."""
        if self.is_up:
            return
        self.is_up = True
        record = self.reset_records[-1]
        record.wake_time = self.now
        self.trace("wake")
        self._on_wake(record)

    def _save_in_flight(self) -> bool:
        """Whether a background SAVE is currently executing (subclass)."""
        return False

    def _on_crash(self, record: SenderResetRecord) -> None:
        """Subclass hook: abort in-flight persistent operations."""

    def _on_wake(self, record: SenderResetRecord) -> None:
        """Subclass hook: the paper's third action."""
        raise NotImplementedError


class UnprotectedSender(BaseSender):
    """The Section 2 sender: no persistent memory at all.

    On wake-up it restarts with ``s = 1`` (Section 3), immediately ready
    to send — and immediately colliding with the receiver's window.
    """

    def _on_wake(self, record: SenderResetRecord) -> None:
        self.s = 1
        record.resumed_seq = self.s
        record.resume_time = self.now
        self.wait = False
        self.trace("resume", s=self.s)
        self._notify_resumed()


class SaveFetchSender(BaseSender):
    """The Section 4 sender with SAVE and FETCH.

    Args:
        k: the SAVE interval ``Kp`` (messages between checkpoints).
        store: the persistent store; created from ``costs.t_save`` with
            initial value 1 (matching ``lst`` initially 1) when omitted.
        leap_factor: multiple of ``k`` added to the fetched value on wake.
            The paper proves 2 is sufficient; E11 ablates 0 and 1.
        skip_wake_save: ablation switch — if True, the post-wake
            synchronous SAVE is skipped (the "second reset" hazard of
            Section 4 then reintroduces sequence-number reuse).
        **base_kwargs: forwarded to :class:`BaseSender`.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        pipe: PacketPipe,
        k: int,
        store: PersistentStore | None = None,
        leap_factor: int = 2,
        skip_wake_save: bool = False,
        **base_kwargs: Any,
    ) -> None:
        super().__init__(engine, name, pipe, **base_kwargs)
        check_positive("k", k)
        self.k = int(k)
        if leap_factor < 0:
            raise ValueError(f"leap_factor must be >= 0, got {leap_factor}")
        self.leap_factor = int(leap_factor)
        self.skip_wake_save = skip_wake_save
        if store is None:
            store = PersistentStore(
                engine,
                f"disk:{name}",
                t_save=self.costs.t_save,
                t_fetch=self.costs.t_fetch,
                initial_value=1,
            )
        self.store = store
        self.lst = 1  # last stored sequence number, initially 1 (paper)

    # -- Section 4, first action: background SAVE every Kp messages -----
    def _after_send(self) -> None:
        if self.s >= self.k + self.lst:
            self.lst = self.s
            self.store.begin_save(self.s)  # "& SAVE(s)" — in the background

    def _save_in_flight(self) -> bool:
        return self.store.save_in_flight

    # -- Section 4, second action: reset --------------------------------
    def _on_crash(self, record: SenderResetRecord) -> None:
        self.store.crash()

    # -- Section 4, third action: wake-up recovery ----------------------
    def _on_wake(self, record: SenderResetRecord) -> None:
        fetched = self.store.fetch()
        record.fetched = fetched
        leaped = fetched + self.leap_factor * self.k

        def resume() -> None:
            self.s = leaped
            self.lst = leaped
            self.wait = False
            record.resumed_seq = self.s
            record.resume_time = self.now
            self.trace("resume", s=self.s, fetched=fetched)
            self._notify_resumed()

        if self.skip_wake_save:
            # Ablation: use the leaped number without persisting it first.
            self.call_later(self.store.fetch_delay(), resume)
            return

        def after_fetch() -> None:
            # "it will wait for the SAVE to finish before it sends the
            # next message" — resume only on commit.
            self.store.begin_save(leaped, on_commit=resume, synchronous=True)

        fetch_delay = self.store.fetch_delay()
        if fetch_delay > 0:
            self.call_later(fetch_delay, after_fetch)
        else:
            after_fetch()
