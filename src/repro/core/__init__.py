"""The paper's contribution: the SAVE/FETCH anti-replay protocol (S8-S14).

Modules:

* :mod:`~repro.core.persistent` — the persistent-memory model behind SAVE
  and FETCH: commit latency, crash-abort semantics, background vs
  synchronous saves.
* :mod:`~repro.core.sender` — process ``p``: the unprotected Section 2
  sender and the Section 4 SAVE/FETCH sender.
* :mod:`~repro.core.receiver` — process ``q``: unprotected and SAVE/FETCH
  receivers, including the post-wake buffering of Section 4.
* :mod:`~repro.core.audit` — the omniscient delivery auditor that scores
  runs (duplicate deliveries = replays accepted, fresh discards, losses).
* :mod:`~repro.core.protocol` — one-call wiring of engine + link + sender
  + receiver + auditor (+ adversary), the main experiment entry point.
* :mod:`~repro.core.reset` — fault injection: resets at a time, at a
  message count, or targeted inside an in-flight SAVE.
* :mod:`~repro.core.bounds` — the closed-form bounds of Section 5
  (gap <= 2K, lost <= 2Kp, discarded <= 2Kq) and of the failure analysis
  of Section 3, for experiments to compare against.
* :mod:`~repro.core.convergence` — run scoring and convergence reports.
* :mod:`~repro.core.baselines` — the IETF tear-down-and-rekey remedy.
* :mod:`~repro.core.dpd` — dead-peer detection (heartbeat and
  traffic-based, after the two cited IETF drafts).
* :mod:`~repro.core.recovery` — the Section 6 prolonged-reset recovery
  protocol over a bidirectional SA pair.
"""

from repro.core.audit import DeliveryAuditor
from repro.core.bounds import (
    discarded_fresh_bound,
    gap_bound,
    lost_seq_bound,
    predicted_sender_gap,
    rekey_recovery_time,
    savefetch_recovery_time,
    unprotected_fresh_discards,
    unprotected_replay_exposure,
)
from repro.core.convergence import ConvergenceReport, score_run
from repro.core.persistent import PersistentStore, SaveRecord
from repro.core.protocol import ProtocolHarness, build_protocol
from repro.core.receiver import ReceiverResetRecord, SaveFetchReceiver, UnprotectedReceiver
from repro.core.reset import ResetSchedule, reset_at_count, reset_at_time, reset_during_save
from repro.core.sender import SaveFetchSender, SenderResetRecord, UnprotectedSender

__all__ = [
    "ConvergenceReport",
    "DeliveryAuditor",
    "PersistentStore",
    "ProtocolHarness",
    "ReceiverResetRecord",
    "ResetSchedule",
    "SaveFetchReceiver",
    "SaveFetchSender",
    "SaveRecord",
    "SenderResetRecord",
    "UnprotectedReceiver",
    "UnprotectedSender",
    "build_protocol",
    "discarded_fresh_bound",
    "gap_bound",
    "lost_seq_bound",
    "predicted_sender_gap",
    "rekey_recovery_time",
    "reset_at_count",
    "reset_at_time",
    "reset_during_save",
    "savefetch_recovery_time",
    "score_run",
    "unprotected_fresh_discards",
    "unprotected_replay_exposure",
]
