"""The IETF tear-down-and-rekey baseline (system S10, experiment E7).

Section 3: "the IPsec Working Group at IETF suggests that if either peer
of an IPsec SA is reset ... the entire IPsec SA should be deleted and
reestablished once the reset is detected. ... However, reestablishing the
entire IPsec SA is very expensive. ... Moreover, a host may have multiple
SAs existing at the same time ... Requiring a host with multiple existing
SAs to drop and reestablish all the existing SAs because of a reset stands
for a huge amount of overhead."

:class:`RekeySimulation` measures that overhead with *real* simulated IKE
handshakes (every ISAKMP message crosses a latency link; every DH
exponentiation costs virtual compute time), renegotiating ``n_sas``
security associations sequentially on the recovering host, exactly as a
single-CPU host of the paper's era would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bounds import savefetch_recovery_time
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.ipsec.ike import IkeConfig, IkeInitiator, IkeResponder, IkeResult
from repro.ipsec.sa import SaPair
from repro.ipsec.sad import SecurityAssociationDatabase
from repro.net.delay import FixedDelay
from repro.net.link import Link
from repro.sim.engine import Engine
from repro.util.validation import check_non_negative, check_positive


@dataclass
class RekeyOutcome:
    """What the IETF remedy cost for one reset event."""

    n_sas: int
    rtt: float
    detection_delay: float
    renegotiation_time: float
    messages_exchanged: int
    compute_time: float
    sa_pairs: list[SaPair] = field(default_factory=list)

    @property
    def total_recovery_time(self) -> float:
        """Reset -> all SAs live again (detection + renegotiation)."""
        return self.detection_delay + self.renegotiation_time


class RekeySimulation:
    """Renegotiate ``n_sas`` SA pairs between two hosts after a reset.

    Args:
        n_sas: how many SA pairs the hosts shared (all torn down).
        rtt: round-trip time between the hosts.
        detection_delay: reset -> detection latency (from DPD, or a
            closed-form estimate).
        costs: crypto/IO cost model.
        seed: RNG seed for the IKE nonces/keys.
    """

    def __init__(
        self,
        n_sas: int = 1,
        rtt: float = 0.01,
        detection_delay: float = 0.0,
        costs: CostModel = PAPER_COSTS,
        seed: int = 0,
    ) -> None:
        check_positive("n_sas", n_sas)
        check_non_negative("rtt", rtt)
        check_non_negative("detection_delay", detection_delay)
        self.n_sas = int(n_sas)
        self.rtt = rtt
        self.detection_delay = detection_delay
        self.costs = costs
        self.seed = seed
        self.sad = SecurityAssociationDatabase()

    def run(self) -> RekeyOutcome:
        """Tear down and sequentially renegotiate every SA; measure it."""
        engine = Engine()
        config = IkeConfig(costs=self.costs)
        one_way = FixedDelay(self.rtt / 2.0)

        results: list[IkeResult] = []
        state: dict[str, float | int] = {"messages": 0, "done_at": 0.0}

        # The two hosts and the links between them (IKE runs in both
        # directions over these).
        responder = IkeResponder(
            engine,
            "b",
            "a",
            send_fn=lambda m: link_ba.send(m),
            config=config,
            seed=self.seed * 2 + 1,
        )
        initiator = IkeInitiator(
            engine,
            "a",
            "b",
            send_fn=lambda m: link_ab.send(m),
            config=config,
            seed=self.seed * 2 + 2,
        )
        link_ab = Link(engine, "link:a->b", sink=responder.on_receive, delay=one_way)
        link_ba = Link(engine, "link:b->a", sink=initiator.on_receive, delay=one_way)

        def negotiate_next() -> None:
            if len(results) >= self.n_sas:
                return
            initiator.start()

        def on_complete(result: IkeResult) -> None:
            results.append(result)
            self.sad.add(result.sa_pair.forward)
            self.sad.add(result.sa_pair.backward)
            state["messages"] += result.messages_sent
            state["done_at"] = result.completed_at
            negotiate_next()

        initiator.on_complete = on_complete

        def count_responder(result: IkeResult) -> None:
            state["messages"] += result.messages_sent

        responder.on_complete = count_responder

        # Detection happened `detection_delay` after the reset; the rekey
        # train starts then.
        engine.call_at(self.detection_delay, negotiate_next)
        engine.run()

        if len(results) != self.n_sas:
            raise RuntimeError(
                f"only {len(results)}/{self.n_sas} negotiations completed"
            )
        renegotiation_time = float(state["done_at"]) - self.detection_delay
        compute_time = sum(r.compute_time for r in results) + sum(
            r.compute_time for r in [responder.result] if r is not None
        )
        return RekeyOutcome(
            n_sas=self.n_sas,
            rtt=self.rtt,
            detection_delay=self.detection_delay,
            renegotiation_time=renegotiation_time,
            messages_exchanged=int(state["messages"]),
            compute_time=compute_time,
            sa_pairs=[r.sa_pair for r in results],
        )


@dataclass
class SaveFetchOutcome:
    """What SAVE/FETCH recovery costs for the same reset event.

    Recovery is local: one FETCH plus one synchronous SAVE, zero network
    messages, independent of how many SAs the host holds (each SA's
    counter is one more fetched integer; both IO costs are charged).
    """

    n_sas: int
    recovery_time: float
    messages_exchanged: int = 0
    compute_time: float = 0.0


def savefetch_recovery_outcome(
    n_sas: int = 1, costs: CostModel = PAPER_COSTS
) -> SaveFetchOutcome:
    """Closed-form SAVE/FETCH recovery cost for ``n_sas`` associations.

    Counter fetches/saves for distinct SAs are sequential disk operations
    on the recovering host — the honest comparison with the sequential
    IKE train.
    """
    check_positive("n_sas", n_sas)
    per_sa = savefetch_recovery_time(costs)
    return SaveFetchOutcome(
        n_sas=int(n_sas),
        recovery_time=n_sas * per_sa,
        messages_exchanged=0,
        compute_time=n_sas * per_sa,
    )
