"""The persistent-memory model behind SAVE and FETCH (system S8).

The paper's assumptions, made explicit:

* "The content of the persistent memory of a computer will not be
  corrupted or erased by a reset" — the committed value survives
  :meth:`PersistentStore.crash`.
* "The execution of SAVE takes some time, during which the computer can
  still send (or receive) messages" — a save begun at ``t`` with value
  ``v`` only becomes the committed value at ``t + t_save``.
* A reset during an in-flight save aborts it; the previously committed
  value remains (write-then-rename atomicity, as a real implementation
  would use).  This is precisely the case that makes the fetched value lag
  by up to ``K`` *two* intervals behind the live counter, giving the
  ``2K`` leap.

The store counts overlapping saves: the paper's sizing rule (``K`` at
least the number of messages sendable during one save) exists to keep
``max_concurrent_saves`` at 1, and experiment E6 shows it climbing when
``K`` is set below the rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.process import SimProcess
from repro.util.validation import check_non_negative

#: Listener signature: ``(record)`` invoked when a save starts or commits.
SaveListener = Callable[["SaveRecord"], None]


@dataclass
class SaveRecord:
    """The lifecycle of one SAVE operation."""

    value: int
    started_at: float
    commit_due_at: float
    committed: bool = False
    aborted: bool = False
    synchronous: bool = False


class PersistentStore(SimProcess):
    """Persistent memory holding one integer (a sequence-number checkpoint).

    Args:
        engine: the simulation engine.
        name: trace name, e.g. ``"disk:p"``.
        t_save: duration of a SAVE (paper: 100 us).  The paper notes "the
            amount of time taken by every execution of SAVE can be
            different according to the current load of CPU. Therefore, we
            pick a reasonable upper bound" — so ``t_save`` here is that
            *upper bound*, and ``duration_model`` can make individual
            saves faster.
        t_fetch: duration of a FETCH (charged by callers of
            :meth:`fetch_delay`; reading the value itself is synchronous).
        initial_value: the checkpoint written when the SA was established
            (the paper's processes start with ``lst`` = 1 at p / 0 at q,
            which must be on disk for the very first FETCH to work).
        duration_model: optional callable returning the duration of the
            next save; values are clamped to ``[0, t_save]`` so the
            sizing rule (computed from the upper bound) stays sound.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        t_save: float,
        t_fetch: float = 0.0,
        initial_value: int = 0,
        duration_model: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(engine, name)
        check_non_negative("t_save", t_save)
        check_non_negative("t_fetch", t_fetch)
        self.t_save = t_save
        self.t_fetch = t_fetch
        self.duration_model = duration_model
        self._committed = initial_value
        self._in_flight: list[tuple[SaveRecord, Event]] = []
        self._listeners: list[SaveListener] = []
        self.history: list[SaveRecord] = []
        # Statistics.
        self.saves_started = 0
        self.saves_committed = 0
        self.saves_aborted = 0
        self.fetches = 0
        self.max_concurrent_saves = 0
        self.busy_time = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def committed_value(self) -> int:
        """The value FETCH would return right now."""
        return self._committed

    @property
    def save_in_flight(self) -> bool:
        """Whether at least one SAVE has started but not committed."""
        return bool(self._in_flight)

    @property
    def in_flight_count(self) -> int:
        """How many SAVEs have started but not committed (obs signal:
        ``save_queue_depth``; >1 means the sizing rule is violated)."""
        return len(self._in_flight)

    def queue_wait(self) -> float:
        """Time until the newest in-flight SAVE commits (0 when idle).

        On a shared-store client this is the device queueing delay the
        obs ``save_wait`` gauge tracks; on a private store it never
        exceeds ``t_save``.
        """
        if not self._in_flight:
            return 0.0
        return max(
            0.0,
            max(record.commit_due_at for record, _ in self._in_flight) - self.now,
        )

    def add_listener(self, listener: SaveListener) -> None:
        """Register a callback fired at save start and at save commit."""
        self._listeners.append(listener)

    def _notify(self, record: SaveRecord) -> None:
        for listener in self._listeners:
            listener(record)

    # ------------------------------------------------------------------
    # SAVE
    # ------------------------------------------------------------------
    def begin_save(
        self,
        value: int,
        on_commit: Callable[[], None] | None = None,
        synchronous: bool = False,
    ) -> SaveRecord:
        """Start a SAVE of ``value``; it commits ``t_save`` later.

        The paper runs routine saves "in the background so that it does not
        block the normal communication"; ``synchronous`` marks the one
        blocking save performed on wake-up (semantics in the store are
        identical — blocking is the *caller's* behaviour — the flag exists
        for traces and statistics).
        """
        record = SaveRecord(
            value=value,
            started_at=self.now,
            commit_due_at=self._save_commit_time(),
            synchronous=synchronous,
        )
        self.saves_started += 1
        self.history.append(record)
        self.trace("save_start", value=value, synchronous=synchronous)
        self._notify(record)
        event = self.engine.call_at(
            record.commit_due_at, self._commit, record, on_commit
        )
        self._in_flight.append((record, event))
        self.max_concurrent_saves = max(self.max_concurrent_saves, len(self._in_flight))
        return record

    def _save_commit_time(self) -> float:
        """When the SAVE starting now will commit (subclass hook).

        The private store charges its own (possibly modelled) duration;
        a gateway's shared-store client instead reserves a slot on the
        contended device.
        """
        duration = self.t_save
        if self.duration_model is not None:
            duration = min(max(0.0, self.duration_model()), self.t_save)
        return self.now + duration

    def _commit(self, record: SaveRecord, on_commit: Callable[[], None] | None) -> None:
        self._in_flight = [(r, e) for r, e in self._in_flight if r is not record]
        record.committed = True
        self._committed = record.value
        self.saves_committed += 1
        self.busy_time += record.commit_due_at - record.started_at
        self.trace("save_commit", value=record.value)
        self._notify(record)
        if on_commit is not None:
            on_commit()

    # ------------------------------------------------------------------
    # FETCH
    # ------------------------------------------------------------------
    def fetch(self) -> int:
        """FETCH: return the last committed value."""
        self.fetches += 1
        self.trace("fetch", value=self._committed)
        return self._committed

    def fetch_delay(self) -> float:
        """The simulated duration callers charge for a FETCH."""
        return self.t_fetch

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def crash(self) -> int:
        """A reset hits the host: abort every in-flight save.

        The committed value is untouched (persistent memory survives).

        Returns:
            The number of saves aborted.
        """
        aborted = 0
        for record, event in self._in_flight:
            event.cancel()
            record.aborted = True
            aborted += 1
            self.trace("save_abort", value=record.value)
        self._in_flight.clear()
        self.saves_aborted += aborted
        return aborted
