"""Reset fault injection (system S11).

The paper's analysis distinguishes *where in the SAVE cycle* a reset
lands (Fig. 1 / Fig. 2: before vs after the in-flight SAVE commits), so
the injectors here can target resets:

* at an absolute simulated time (:func:`reset_at_time`);
* after the endpoint's N-th send / N-th processed message
  (:func:`reset_at_count`) — the natural unit for sweeping the reset
  offset ``t`` within a SAVE interval;
* at a chosen fraction of a chosen in-flight SAVE
  (:func:`reset_during_save`) — the Fig. 1/2 "reset occurs before the
  current SAVE finishes" case, hit exactly;
* on a repeating schedule (:class:`ResetSchedule`) — reset storms,
  including back-to-back resets that land before the post-wake SAVE
  commits (the Section 4 second-reset hazard, experiment E11).

All injectors accept anything with ``reset(down_for)`` — senders and
receivers alike.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.core.persistent import PersistentStore, SaveRecord
from repro.sim.engine import Engine
from repro.util.validation import check_non_negative


class Resettable(Protocol):
    """Anything that can suffer a reset (senders, receivers, hosts)."""

    def reset(self, down_for: float | None = 0.0) -> Any:  # pragma: no cover
        ...


def reset_at_time(
    engine: Engine,
    target: Resettable,
    at: float,
    down_for: float | None = 0.0,
) -> None:
    """Schedule a reset of ``target`` at absolute time ``at``."""
    engine.call_at(at, target.reset, down_for)


def call_at_count(
    target: Any,
    count: int,
    fire: Any,
) -> None:
    """Run ``fire()`` immediately after ``target``'s ``count``-th
    send/process.

    ``target`` must expose ``add_send_listener`` (senders) or
    ``add_process_listener`` (receivers).  ``fire`` runs synchronously
    inside the counted operation's aftermath — i.e. the counted message
    *was* sent/processed, and nothing later was — and exactly once.
    """
    if count <= 0:
        raise ValueError(f"count must be >= 1, got {count}")
    state = {"fired": False, "seen": 0}

    def on_send(sent_total: int, packet: Any) -> None:
        if not state["fired"] and sent_total >= count:
            state["fired"] = True
            fire()

    def on_process(packet: Any, verdict: Any) -> None:
        state["seen"] += 1
        if not state["fired"] and state["seen"] >= count:
            state["fired"] = True
            fire()

    if hasattr(target, "add_send_listener"):
        target.add_send_listener(on_send)
    elif hasattr(target, "add_process_listener"):
        target.add_process_listener(on_process)
    else:
        raise TypeError(
            f"{target!r} has neither add_send_listener nor add_process_listener"
        )


def reset_at_count(
    target: Any,
    count: int,
    down_for: float | None = 0.0,
) -> None:
    """Reset ``target`` immediately after its ``count``-th send/process.

    The counting/trigger contract is :func:`call_at_count`'s; gateway
    faults reuse it to strike a whole gateway at the same kind of
    instant.
    """
    call_at_count(target, count, lambda: target.reset(down_for))


def reset_during_save(
    engine: Engine,
    target: Resettable,
    store: PersistentStore,
    nth_save: int = 1,
    fraction: float = 0.5,
    down_for: float | None = 0.0,
    include_synchronous: bool = False,
) -> None:
    """Reset ``target`` partway through its ``nth_save``-th background SAVE.

    Args:
        engine: the simulation engine.
        target: the endpoint to reset.
        store: the persistent store to watch.
        nth_save: which save (1-based, counting starts) to strike.
        fraction: how far into the save window the reset lands
            (0 = at start, just under 1 = just before commit).
        down_for: the endpoint's down time.
        include_synchronous: whether post-wake synchronous saves count
            toward ``nth_save`` (E11 sets this to strike the recovery
            save itself).
    """
    if nth_save <= 0:
        raise ValueError(f"nth_save must be >= 1, got {nth_save}")
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must be in [0, 1), got {fraction}")
    state = {"starts": 0, "armed": True}

    def on_save_event(record: SaveRecord) -> None:
        if record.committed or record.aborted:
            return  # only react to starts
        if record.synchronous and not include_synchronous:
            return
        state["starts"] += 1
        if state["armed"] and state["starts"] == nth_save:
            state["armed"] = False
            delay = fraction * store.t_save
            engine.call_later(delay, target.reset, down_for)

    store.add_listener(on_save_event)


class ResetSchedule:
    """A pre-planned list of ``(reset_time, down_for)`` faults.

    Example — a reset storm every 50 ms with 1 ms outages::

        schedule = ResetSchedule([(0.05 * i, 0.001) for i in range(1, 10)])
        schedule.apply(engine, receiver)
    """

    def __init__(self, faults: list[tuple[float, float]]) -> None:
        for at, down_for in faults:
            check_non_negative("reset time", at)
            check_non_negative("down_for", down_for)
        self.faults = sorted(faults)

    def apply(self, engine: Engine, target: Resettable) -> int:
        """Schedule every fault against ``target``; returns the count."""
        for at, down_for in self.faults:
            reset_at_time(engine, target, at, down_for)
        return len(self.faults)

    @classmethod
    def periodic(
        cls, first_at: float, period: float, count: int, down_for: float
    ) -> "ResetSchedule":
        """Build ``count`` evenly spaced faults starting at ``first_at``."""
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        return cls([(first_at + i * period, down_for) for i in range(count)])
