"""One-call wiring of a complete anti-replay simulation (main public API).

:func:`build_protocol` assembles engine + sender + link (+ optional
controlled-reorder stage, adversary, ESP/AH encapsulation) + receiver +
auditor into a :class:`ProtocolHarness`.  Experiments, examples and most
tests start here::

    from repro import build_protocol

    harness = build_protocol(protected=True, k_p=25, k_q=25, w=64)
    harness.sender.start_traffic(count=1000)
    harness.engine.call_at(0.002, harness.sender.reset, 0.001)
    harness.run(until=0.1)
    report = harness.score()
    assert report.converged
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.audit import DeliveryAuditor
from repro.core.ceiling import CeilingReceiver, CeilingSender
from repro.core.convergence import ConvergenceReport, score_run
from repro.core.persistent import PersistentStore
from repro.core.receiver import BaseReceiver, SaveFetchReceiver, UnprotectedReceiver
from repro.core.sender import BaseSender, SaveFetchSender, UnprotectedSender
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.ipsec.sa import SaPair, make_sa_pair
from repro.net.adversary import ReplayAdversary
from repro.net.delay import DelayModel, FixedDelay
from repro.net.link import Link, PacketPipe
from repro.net.loss import LossModel, NoLoss
from repro.net.reorder import DegreeReorderStage
from repro.obs.hub import MetricsHub, default_hub
from repro.obs.probe import HealthProbe
from repro.obs.sampler import DEFAULT_SAMPLE_INTERVAL, Sampler
from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only (no import cycle)
    from repro.netpath.profile import PathProfile


@dataclass
class ProtocolHarness:
    """Handles on every component of one wired-up simulation."""

    engine: Engine
    sender: BaseSender
    receiver: BaseReceiver
    link: Link
    auditor: DeliveryAuditor
    pipe: PacketPipe  # what the sender writes to (reorder stage or link)
    adversary: ReplayAdversary | None = None
    reorder_stage: DegreeReorderStage | None = None
    sa_pair: SaPair | None = None
    hub: MetricsHub | None = None
    probe: HealthProbe | None = None
    sampler: Sampler | None = None

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run the engine; returns events fired (see :meth:`Engine.run`)."""
        return self.engine.run(until=until, max_events=max_events)

    def score(self, check_bounds: bool = True) -> ConvergenceReport:
        """Score the run so far against the paper's guarantees."""
        return score_run(
            self.auditor, self.sender, self.receiver, check_bounds=check_bounds
        )

    def metrics(self) -> MetricSet:
        """Export a snapshot of every component's counters and stats.

        Counters: sender/link/receiver/adversary activity plus the audit
        aggregates.  Stats: the per-reset gap and loss distributions.
        Useful for dashboards and for dumping run summaries as one dict
        (``harness.metrics().as_dict()``).
        """
        metrics = MetricSet()
        metrics.counter("sender.sent").increment(self.sender.sent_total)
        metrics.counter("sender.suppressed").increment(self.sender.sends_suppressed)
        metrics.counter("sender.resets").increment(len(self.sender.reset_records))
        metrics.counter("link.offered").increment(self.link.offered)
        metrics.counter("link.dropped").increment(self.link.dropped)
        metrics.counter("link.delivered").increment(self.link.delivered)
        metrics.counter("link.injected").increment(self.link.injected)
        metrics.counter("receiver.delivered").increment(self.receiver.delivered_total)
        metrics.counter("receiver.integrity_failures").increment(
            self.receiver.integrity_failures
        )
        metrics.counter("receiver.dropped_down").increment(
            self.receiver.dropped_while_down
        )
        metrics.counter("receiver.resets").increment(len(self.receiver.reset_records))
        for verdict, count in self.receiver.verdict_counts.items():
            metrics.counter(f"receiver.verdict.{verdict.value}").increment(count)
        report = self.auditor.report()
        metrics.counter("audit.fresh_sent").increment(report.fresh_sent)
        metrics.counter("audit.delivered_uids").increment(report.delivered_uids)
        metrics.counter("audit.replays_accepted").increment(
            report.duplicate_deliveries
        )
        metrics.counter("audit.fresh_discarded").increment(report.fresh_discarded)
        metrics.counter("audit.never_arrived").increment(report.never_arrived)
        if self.adversary is not None:
            metrics.counter("adversary.injections").increment(
                self.adversary.injections
            )
        for record in self.sender.reset_records:
            if record.gap is not None:
                metrics.stat("sender.gap").observe(record.gap)
            if record.lost_seqnums is not None:
                metrics.stat("sender.lost_seqnums").observe(record.lost_seqnums)
        for record in self.receiver.reset_records:
            if record.gap is not None:
                metrics.stat("receiver.gap").observe(record.gap)
        return metrics


def build_protocol(
    protected: bool = True,
    k_p: int = 25,
    k_q: int = 25,
    w: int = 64,
    window_impl: str = "bitmap",
    costs: CostModel = PAPER_COSTS,
    encap: str = "plain",
    seed: int = 0,
    delay: DelayModel | None = None,
    loss: LossModel | None = None,
    fifo_link: bool = True,
    with_adversary: bool = False,
    reorder_degree: int = 0,
    reorder_probability: float = 0.0,
    leap_factor: int = 2,
    skip_wake_save: bool = False,
    sender_name: str = "p",
    receiver_name: str = "q",
    variant: str | None = None,
    trace: TraceRecorder | None = None,
    engine: Engine | None = None,
    sender_store: PersistentStore | None = None,
    receiver_store: PersistentStore | None = None,
    path: "PathProfile | None" = None,
    sender_address: str | None = None,
    hub: MetricsHub | None = None,
    sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
) -> ProtocolHarness:
    """Build a ready-to-run p -> q anti-replay simulation.

    Args:
        protected: True for the Section 4 SAVE/FETCH protocol, False for
            the unprotected Section 2 baseline.
        variant: overrides ``protected`` when given: ``"savefetch"``,
            ``"unprotected"``, or ``"ceiling"`` (the write-ahead repair of
            :mod:`repro.core.ceiling`).
        k_p / k_q: SAVE intervals (ignored when ``protected`` is False).
            Defaults are the paper's minimum safe interval, 25.
        w: receiver window size.
        window_impl: ``"bitmap"`` or ``"array"`` (paper-literal).
        costs: operation cost model (timing of sends, saves, fetches).
        encap: ``"plain"``, ``"esp"`` or ``"ah"``; non-plain modes create
            a real SA pair and enforce integrity.
        seed: master seed for link/adversary/key randomness.
        delay: link delay model (default zero-latency fixed).
        loss: link loss model (default lossless).
        fifo_link: force in-order delivery (the paper's reorder-free
            hypothesis); set False with a jitter delay model for natural
            reordering.
        with_adversary: attach a recording :class:`ReplayAdversary`.
        reorder_degree / reorder_probability: insert a controlled
            :class:`DegreeReorderStage` in front of the link.
        leap_factor / skip_wake_save: ablation switches (paper: 2 / False).
        sender_name / receiver_name: trace names.
        trace: the engine's trace recorder (default: a fresh recording
            :class:`TraceRecorder`).  Batch drivers that never read the
            trace pass :data:`repro.sim.trace.NULL_TRACE` so hot paths
            skip record construction entirely.  Ignored when ``engine``
            is given (the engine already owns its recorder).
        engine: an existing engine to build onto.  The default (None)
            creates a fresh engine per harness — one simulation, one
            pair.  Multiplexing drivers (:class:`repro.gateway.Gateway`)
            pass one shared engine so many pairs run under a single
            clock and event heap.
        sender_store / receiver_store: persistent stores for the
            protected endpoints.  Default (None) builds a private
            :class:`PersistentStore` per endpoint, as the paper assumes;
            a gateway passes clients of its
            :class:`~repro.gateway.SharedStore` so SAVE/FETCH contend
            for one device.  Ignored by the unprotected variant.
        path: optional :class:`~repro.netpath.PathProfile` making the
            link's conditions time-varying; phase models override
            ``delay``/``loss`` while active.  A static single-phase
            profile is byte-identical to the default fixed channel.
        sender_address: the sender's initial network binding, stamped
            on every packet's ``src`` (default None — address-less, the
            paper's model).  NAT scenarios set it so a
            :class:`~repro.netpath.NatRebinding` has something to move.
        hub: the metrics hub to publish health signals under (default:
            the ambient :func:`repro.obs.default_hub`, which is
            :data:`~repro.obs.NULL_HUB` unless a driver installed one
            via :func:`repro.obs.use_hub`).  The zero-overhead-off
            invariant: ``hub.enabled`` is checked *once, here* — a
            disabled hub attaches no probe and no sampler, so the built
            simulation is object-for-object what it was before this
            parameter existed.
        sample_interval: the probe sampling period when the hub is
            enabled (simulated seconds).

    Returns:
        A :class:`ProtocolHarness` with every component exposed.
    """
    own_engine = engine is None
    if engine is None:
        engine = Engine(trace=trace)
    if hub is None:
        hub = default_hub()
    auditor = DeliveryAuditor()

    if variant is None:
        variant = "savefetch" if protected else "unprotected"
    if variant not in ("savefetch", "unprotected", "ceiling"):
        raise ValueError(f"unknown variant {variant!r}")

    sa_pair: SaPair | None = None
    sender_sa = receiver_sa = None
    if encap != "plain":
        sa_pair = make_sa_pair(sender_name, receiver_name, seed_or_rng=seed)
        sender_sa = receiver_sa = sa_pair.forward

    if variant == "savefetch":
        receiver: BaseReceiver = SaveFetchReceiver(
            engine,
            receiver_name,
            k=k_q,
            store=receiver_store,
            leap_factor=leap_factor,
            skip_wake_save=skip_wake_save,
            w=w,
            window_impl=window_impl,
            costs=costs,
            auditor=auditor,
            sa=receiver_sa,
            encap=encap,
        )
    elif variant == "ceiling":
        receiver = CeilingReceiver(
            engine,
            receiver_name,
            k=k_q,
            store=receiver_store,
            w=w,
            window_impl=window_impl,
            costs=costs,
            auditor=auditor,
            sa=receiver_sa,
            encap=encap,
        )
    else:
        receiver = UnprotectedReceiver(
            engine,
            receiver_name,
            w=w,
            window_impl=window_impl,
            costs=costs,
            auditor=auditor,
            sa=receiver_sa,
            encap=encap,
        )

    link = Link(
        engine,
        f"link:{sender_name}->{receiver_name}",
        sink=receiver.on_receive,
        delay=delay if delay is not None else FixedDelay(0.0),
        loss=loss if loss is not None else NoLoss(),
        seed=seed * 7919 + 1,
        fifo=fifo_link,
        path=path,
    )

    pipe: PacketPipe = link
    reorder_stage: DegreeReorderStage | None = None
    if reorder_degree > 0 and reorder_probability > 0:
        reorder_stage = DegreeReorderStage(
            downstream=link,
            degree=reorder_degree,
            probability=reorder_probability,
            seed=seed * 7919 + 2,
        )
        pipe = reorder_stage

    if variant == "savefetch":
        sender: BaseSender = SaveFetchSender(
            engine,
            sender_name,
            pipe,
            k=k_p,
            store=sender_store,
            leap_factor=leap_factor,
            skip_wake_save=skip_wake_save,
            costs=costs,
            auditor=auditor,
            sa=sender_sa,
            encap=encap,
            address=sender_address,
        )
    elif variant == "ceiling":
        sender = CeilingSender(
            engine,
            sender_name,
            pipe,
            k=k_p,
            store=sender_store,
            costs=costs,
            auditor=auditor,
            sa=sender_sa,
            encap=encap,
            address=sender_address,
        )
    else:
        sender = UnprotectedSender(
            engine,
            sender_name,
            pipe,
            costs=costs,
            auditor=auditor,
            sa=sender_sa,
            encap=encap,
            address=sender_address,
        )

    adversary: ReplayAdversary | None = None
    if with_adversary:
        adversary = ReplayAdversary(engine, link, seed=seed * 7919 + 3)

    # Observability: decided once at build time, never on the hot path.
    # A disabled hub attaches nothing — the harness is exactly the
    # pre-obs object graph and runs byte-identically.
    probe: HealthProbe | None = None
    sampler: Sampler | None = None
    if hub.enabled:
        probe = HealthProbe(hub, sender=sender, receiver=receiver, link=link)
        if own_engine:
            # A shared engine belongs to a multiplexing driver (the
            # gateway), which runs one sampler for all of its pairs.
            sampler = Sampler(engine, hub, interval=sample_interval)
            sampler.register(probe)
            sampler.start()

    return ProtocolHarness(
        engine=engine,
        sender=sender,
        receiver=receiver,
        link=link,
        auditor=auditor,
        pipe=pipe,
        adversary=adversary,
        reorder_stage=reorder_stage,
        sa_pair=sa_pair,
        hub=hub if hub.enabled else None,
        probe=probe,
        sampler=sampler,
    )
