"""Closed-form bounds and predictions from Sections 3 and 5 (system S14).

Experiments compare their *measured* values against these formulas; every
function cites the statement in the paper it encodes.
"""

from __future__ import annotations

import math

from repro.ipsec.costs import CostModel


def gap_bound(k: int) -> int:
    """Section 5: the gap between the reset-time counter and the fetched
    checkpoint is at most ``2K``.

    "(s + t) - (s - Kp) <= (s + Kp) - (s - Kp) = 2Kp".
    """
    return 2 * k


def lost_seq_bound(k_p: int) -> int:
    """Claim (i): "the total number of lost sequence number is bounded by
    2Kp" after a sender reset."""
    return 2 * k_p


def discarded_fresh_bound(k_q: int) -> int:
    """Claim (ii): "the total number of discarded fresh messages is
    bounded by 2Kq" after a receiver reset (no loss)."""
    return 2 * k_q


def predicted_sender_gap(k: int, offset: int, save_duration_msgs: int) -> int:
    """Fig. 1's gap as a function of where in the SAVE cycle the reset hits.

    Model the cycle in message counts.  ``SAVE(s)`` starts when the counter
    reaches ``s``; it commits after ``save_duration_msgs`` further messages
    (the number sendable during ``t_save``); the next save starts at
    ``s + k``.  A reset lands ``offset`` messages after the save started
    (``0 <= offset < k``).  Then:

    * ``offset < save_duration_msgs`` (save still in flight): FETCH returns
      the *previous* checkpoint ``s - k``, so the gap is
      ``(s + offset) - (s - k) = k + offset``  — at most ``2k - 1 < 2k``.
    * otherwise (save committed): FETCH returns ``s``, gap ``= offset < k``.

    Both branches respect :func:`gap_bound`.
    """
    if not 0 <= offset < k:
        raise ValueError(f"offset must be in [0, k), got {offset} (k={k})")
    if offset < save_duration_msgs:
        return k + offset
    return offset


def predicted_sender_loss(k: int, offset: int, save_duration_msgs: int) -> int:
    """Claim (i)'s lost-sequence-number count for a reset at ``offset``.

    Lost numbers = ``resumed - (last_used + 1)`` with ``resumed =
    fetched + 2k`` and ``last_used = s + offset - 1``:

    * save in flight: ``(s - k + 2k) - (s + offset) = k - offset``;
    * save committed: ``(s + 2k) - (s + offset) = 2k - offset``.
    """
    if not 0 <= offset < k:
        raise ValueError(f"offset must be in [0, k), got {offset} (k={k})")
    if offset < save_duration_msgs:
        return k - offset
    return 2 * k - offset


def unprotected_replay_exposure(last_delivered_seq: int) -> int:
    """Section 3, receiver reset, no SAVE/FETCH: "an adversary can replay
    in order all the messages with sequence numbers within the range from
    1 to x" — exposure grows linearly (and unboundedly) with traffic."""
    return max(0, last_delivered_seq)


def unprotected_fresh_discards(right_edge: int, w: int) -> int:
    """Section 3, sender reset, no SAVE/FETCH: every fresh message with a
    sequence number below the left edge ``y - w + 1`` is discarded, so at
    least ``y - w`` messages from a restarted sender (s = 1, 2, ...) die
    before one can land in the window."""
    return max(0, right_edge - w)


def save_overhead_fraction(k: int, costs: CostModel) -> float:
    """E6: fraction of wall-clock the disk spends saving at interval ``k``.

    One save (``t_save``) per ``k`` messages (``k * t_send``)."""
    return costs.t_save / (k * costs.t_send)


def min_safe_save_interval(costs: CostModel) -> int:
    """Section 4's sizing rule; paper constants give 25."""
    return costs.min_save_interval()


def savefetch_recovery_time(costs: CostModel) -> float:
    """Time from wake-up to first post-recovery send under SAVE/FETCH:
    one FETCH plus one synchronous SAVE."""
    return costs.t_fetch + costs.t_save


def rekey_recovery_time(
    costs: CostModel,
    rtt: float,
    n_sas: int = 1,
    messages: int = 9,
) -> float:
    """Time to recover by the IETF remedy: renegotiate every SA via IKE.

    Per SA: ``messages`` one-way transits (main mode 6 + quick mode 3,
    alternating directions, so ~``messages/2`` RTTs) plus both peers'
    compute.  Negotiations for distinct SAs are assumed sequential on the
    recovering host (single CPU — the Pentium III of the paper), which is
    the regime that makes multi-SA teardown painful.
    """
    per_sa = (messages / 2.0) * rtt + costs.ike_handshake_compute_time()
    return n_sas * per_sa


def messages_lost_during_outage(outage: float, send_interval: float) -> int:
    """How many clocked messages fall inside an outage window."""
    if send_interval <= 0:
        raise ValueError(f"send_interval must be > 0, got {send_interval}")
    return int(math.floor(outage / send_interval))
