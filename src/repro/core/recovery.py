"""Section 6: surviving *prolonged* resets over a bidirectional SA pair.

The concluding remarks sketch a recovery protocol for long outages:

1. "usually an IPsec communication between two hosts is bi-directional" —
   each host is both a sender and a receiver, over two SAs.
2. The live host "detects the unavailability of its peer by receiving the
   ICMP undeliverable message" and then "keeps the SAs (both the one for
   sending and the one for receiving) alive for a certain period of time"
   instead of tearing them down.
3. "When the reset host wakes up, it can send a secured message to inform
   its peer that it has become up. This message should contain the new
   sequence number resulting from adding the leap number to the reloaded
   sequence number."  The live host validates it "by comparing the
   sequence number of the message against the right edge of its
   anti-replay window" — a replayed old message fails that comparison.
4. "The waiting time for which SAs are kept alive cannot be too long" —
   if the keep-alive expires first, the host falls back to full rekeying.

:class:`ProlongedResetSession` wires all of that up: two hosts, four
SAVE/FETCH endpoints, availability-aware links that generate ICMP
unreachable messages while a host is down, keep-alive timers, the secured
resync message, and (optionally) an adversary replaying old traffic into
the live host during the outage.

The module also implements the strawman the paper rejects — the
unauthenticated-by-sequence "I was reset; let us both reset the sequence
number" notice (:class:`ResetNoticeReceiver`) — so experiment E12 can
demonstrate the replay attack against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.audit import DeliveryAuditor
from repro.core.receiver import SaveFetchReceiver, UnprotectedReceiver, make_window
from repro.core.sender import SaveFetchSender
from repro.ipsec.costs import CostModel, PAPER_COSTS
from repro.ipsec.sa import SaPair, make_sa_pair
from repro.net.adversary import ReplayAdversary
from repro.net.delay import FixedDelay
from repro.net.icmp import IcmpMessage
from repro.net.link import Link
from repro.net.message import Message
from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.process import SimProcess
from repro.sim.trace import TraceRecorder
from repro.util.validation import check_positive


@dataclass
class HostReport:
    """Per-host outcome of a prolonged-reset run."""

    name: str
    peer_down_detected_at: float | None = None
    peer_back_up_at: float | None = None
    keepalive_expired: bool = False
    resync_seq: int | None = None
    replays_accepted: int = 0
    fresh_discarded: int = 0


class RecoveryHost(SimProcess):
    """One endpoint of the bidirectional session: a sender plus a receiver
    sharing the host's fate (a reset takes both down)."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        peer_name: str,
        k: int,
        w: int,
        costs: CostModel,
        keep_alive_timeout: float,
        send_interval: float,
    ) -> None:
        super().__init__(engine, name)
        self.peer_name = peer_name
        self.k = k
        self.w = w
        self.costs = costs
        self.keep_alive_timeout = keep_alive_timeout
        self.send_interval = send_interval
        # Wired by the session after links exist.
        self.sender: SaveFetchSender | None = None
        self.receiver: SaveFetchReceiver | None = None
        # Peer liveness belief (Section 6 state).
        self.peer_believed_up = True
        self.report = HostReport(name=name)
        self._keepalive_event: Event | None = None

    @property
    def is_up(self) -> bool:
        """Host availability (drives the peer-facing link)."""
        return self.receiver is not None and self.receiver.is_up

    # ------------------------------------------------------------------
    # Section 6 step 2: ICMP-driven down detection + keep-alive
    # ------------------------------------------------------------------
    def on_icmp(self, icmp: IcmpMessage) -> None:
        """An outbound packet bounced: the peer is down."""
        if not self.peer_believed_up:
            return
        self.peer_believed_up = False
        self.report.peer_down_detected_at = self.now
        self.trace("peer_down_detected")
        assert self.sender is not None
        self.sender.stop_traffic()  # hold traffic; keep the SAs alive
        self._keepalive_event = self.call_later(
            self.keep_alive_timeout, self._keepalive_expired
        )

    def _keepalive_expired(self) -> None:
        if self.peer_believed_up:
            return
        self.report.keepalive_expired = True
        self.trace("keepalive_expired")
        # Beyond this point a real host would fall back to full IKE
        # renegotiation (measured separately by the rekey baseline).

    # ------------------------------------------------------------------
    # Section 6 step 3: accepting the peer's secured resync message
    # ------------------------------------------------------------------
    def on_deliver(self, seq: int, payload: bytes) -> None:
        """Any delivered message is proof of life; the resync message is
        simply the first one after an outage (its sequence number already
        passed the right-edge comparison inside the window)."""
        if self.peer_believed_up:
            return
        self.peer_believed_up = True
        self.report.peer_back_up_at = self.now
        self.report.resync_seq = seq
        if self._keepalive_event is not None:
            self._keepalive_event.cancel()
            self._keepalive_event = None
        self.trace("peer_back_up", resync_seq=seq)
        assert self.sender is not None
        if not self.report.keepalive_expired:
            self.sender.start_traffic(interval=self.send_interval)

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def reset_host(self, down_for: float) -> None:
        """Reset both directions of this host at once."""
        assert self.sender is not None and self.receiver is not None
        self.trace("host_reset")
        self.sender.stop_traffic()
        self.sender.reset(down_for=down_for)
        self.receiver.reset(down_for=down_for)

    def announce_recovery(self) -> None:
        """Section 6 step 3: send the secured resync message.

        Called when the sender's post-wake SAVE committed; the message is
        an ordinary protected message carrying the leaped sequence number.
        """
        assert self.sender is not None
        self.trace("resync_send", seq=self.sender.s)
        self.sender.send_one()
        # Resume steady traffic toward the peer as well.
        self.sender.start_traffic(interval=self.send_interval)


@dataclass
class SessionReport:
    """Outcome of a full prolonged-reset scenario."""

    host_a: HostReport
    host_b: HostReport
    replayed_into_live_host: int = 0
    replays_accepted_total: int = 0

    @property
    def recovered(self) -> bool:
        """Both sides believe each other up and no replay was accepted."""
        return (
            self.replays_accepted_total == 0
            and self.host_a.peer_back_up_at is not None
        )


class ProlongedResetSession:
    """Two hosts, four SAVE/FETCH endpoints, ICMP, keep-alives, resync.

    Args:
        k: SAVE interval for all four endpoints.
        w: window size for both receivers.
        costs: cost model.
        keep_alive_timeout: how long a live host keeps SAs for a down peer.
        rtt: round-trip time between the hosts.
        send_interval: steady-state send pacing per direction.
        seed: master seed.
        with_adversary: attach a replay adversary on the b -> a link that
            can inject old traffic into the live host during the outage.
    """

    def __init__(
        self,
        k: int = 25,
        w: int = 64,
        costs: CostModel = PAPER_COSTS,
        keep_alive_timeout: float = 1.0,
        rtt: float = 0.002,
        send_interval: float | None = None,
        seed: int = 0,
        with_adversary: bool = False,
        trace: TraceRecorder | None = None,
    ) -> None:
        check_positive("keep_alive_timeout", keep_alive_timeout)
        self.engine = Engine(trace=trace)
        self.costs = costs
        self.send_interval = (
            send_interval if send_interval is not None else costs.t_send * 10
        )
        self.sa_pair: SaPair = make_sa_pair("a", "b", seed_or_rng=seed)
        self.auditor_ab = DeliveryAuditor()  # a -> b direction
        self.auditor_ba = DeliveryAuditor()  # b -> a direction

        self.host_a = RecoveryHost(
            self.engine, "a", "b", k, w, costs, keep_alive_timeout, self.send_interval
        )
        self.host_b = RecoveryHost(
            self.engine, "b", "a", k, w, costs, keep_alive_timeout, self.send_interval
        )

        # Receivers first (links need their sinks).
        self.host_a.receiver = SaveFetchReceiver(
            self.engine,
            "a.rx",
            k=k,
            w=w,
            costs=costs,
            auditor=self.auditor_ba,
            sa=self.sa_pair.backward,
            encap="esp",
            on_deliver=self.host_a.on_deliver,
        )
        self.host_b.receiver = SaveFetchReceiver(
            self.engine,
            "b.rx",
            k=k,
            w=w,
            costs=costs,
            auditor=self.auditor_ab,
            sa=self.sa_pair.forward,
            encap="esp",
            on_deliver=self.host_b.on_deliver,
        )

        one_way = FixedDelay(rtt / 2.0)
        self.link_ab = Link(
            self.engine,
            "link:a->b",
            sink=self.host_b.receiver.on_receive,
            delay=one_way,
            fifo=True,
            availability=lambda: self.host_b.is_up,
            icmp_sink=self.host_a.on_icmp,
        )
        self.link_ba = Link(
            self.engine,
            "link:b->a",
            sink=self.host_a.receiver.on_receive,
            delay=one_way,
            fifo=True,
            availability=lambda: self.host_a.is_up,
            icmp_sink=self.host_b.on_icmp,
        )

        self.host_a.sender = SaveFetchSender(
            self.engine,
            "a.tx",
            self.link_ab,
            k=k,
            costs=costs,
            auditor=self.auditor_ab,
            sa=self.sa_pair.forward,
            encap="esp",
        )
        self.host_b.sender = SaveFetchSender(
            self.engine,
            "b.tx",
            self.link_ba,
            k=k,
            costs=costs,
            auditor=self.auditor_ba,
            sa=self.sa_pair.backward,
            encap="esp",
        )

        # Section 6 step 3: once a reset host's sender finishes its
        # post-wake SAVE, announce recovery with a secured message.
        self.host_a.sender.add_resume_listener(self.host_a.announce_recovery)
        self.host_b.sender.add_resume_listener(self.host_b.announce_recovery)

        self.adversary: ReplayAdversary | None = None
        if with_adversary:
            self.adversary = ReplayAdversary(
                self.engine, self.link_ba, name="adversary:b->a", seed=seed + 99
            )

    def start_traffic(self) -> None:
        """Begin steady bidirectional traffic."""
        assert self.host_a.sender is not None and self.host_b.sender is not None
        self.host_a.sender.start_traffic(interval=self.send_interval)
        self.host_b.sender.start_traffic(interval=self.send_interval)

    def stop_traffic(self) -> None:
        """Stop both traffic clocks (lets the engine drain)."""
        assert self.host_a.sender is not None and self.host_b.sender is not None
        self.host_a.sender.stop_traffic()
        self.host_b.sender.stop_traffic()

    def run(self, until: float) -> None:
        """Advance the simulation to ``until``."""
        self.engine.run(until=until)

    def report(self) -> SessionReport:
        """Score the scenario."""
        self.host_a.report.replays_accepted = self.auditor_ba.replays_accepted
        self.host_a.report.fresh_discarded = self.auditor_ba.fresh_discarded
        self.host_b.report.replays_accepted = self.auditor_ab.replays_accepted
        self.host_b.report.fresh_discarded = self.auditor_ab.fresh_discarded
        return SessionReport(
            host_a=self.host_a.report,
            host_b=self.host_b.report,
            replayed_into_live_host=(
                self.adversary.injections if self.adversary else 0
            ),
            replays_accepted_total=(
                self.auditor_ab.replays_accepted + self.auditor_ba.replays_accepted
            ),
        )


# ----------------------------------------------------------------------
# The strawman the paper rejects (for experiment E12)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ResetNotice:
    """The naive "I was reset; reset the sequence number" control message.

    It carries no usable freshness: by design it must be honoured when the
    sender has lost all state, so the receiver cannot tell an original
    from a replay — which is exactly the paper's objection.
    """

    origin: str
    sent_at: float

    def __repr__(self) -> str:
        return f"reset_notice(from={self.origin})"


class ResetNoticeReceiver(UnprotectedReceiver):
    """An unprotected receiver that honours :class:`ResetNotice` messages.

    On a (possibly replayed) notice it reinitialises its window to the
    cold-start state — after which the adversary may replay history.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.notices_honoured = 0

    def on_receive(self, packet: Any) -> None:
        if isinstance(packet, ResetNotice):
            if not self.is_up:
                self.dropped_while_down += 1
                return
            self.notices_honoured += 1
            self.window = make_window(self.w, self.window_impl)
            self.trace("notice_honoured", origin=packet.origin)
            return
        super().on_receive(packet)


def send_reset_notice(
    sender_name: str, link: Link, now: float
) -> ResetNotice:
    """Emit a reset notice on ``link`` (used by the E12 scenario)."""
    notice = ResetNotice(origin=sender_name, sent_at=now)
    link.send(notice)
    return notice


__all__ = [
    "HostReport",
    "ProlongedResetSession",
    "RecoveryHost",
    "ResetNotice",
    "ResetNoticeReceiver",
    "SessionReport",
    "send_reset_notice",
]
