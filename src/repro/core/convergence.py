"""Run scoring and convergence verdicts (system S14).

The paper's notion of convergence: after a reset, the pair (p, q) returns
to a state where fresh messages flow and no replayed message is accepted,
with bounded collateral (lost sequence numbers / discarded fresh
messages).  :func:`score_run` turns a finished simulation into a
:class:`ConvergenceReport` with exactly those quantities, and checks them
against the Section 5 bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.audit import AuditReport, DeliveryAuditor
from repro.core.bounds import discarded_fresh_bound, gap_bound, lost_seq_bound
from repro.core.receiver import BaseReceiver, SaveFetchReceiver
from repro.core.sender import BaseSender, SaveFetchSender


@dataclass
class ConvergenceReport:
    """The scored outcome of one simulation run.

    Attributes:
        audit: the raw :class:`AuditReport` (deliveries, duplicates, ...).
        sender_resets / receiver_resets: how many faults each side took.
        replays_accepted: duplicate deliveries (must be 0 for SAVE/FETCH).
        fresh_discarded: fresh messages that arrived but never delivered.
        lost_seqnums_per_reset: per sender reset, sequence numbers lost.
        gaps_sender / gaps_receiver: per reset, the Fig. 1/Fig. 2 gap.
        time_to_converge: per reset, wake -> first subsequent delivery.
        bound_violations: human-readable descriptions of any Section 5
            bound the run violated (empty = the theorems held).
    """

    audit: AuditReport
    sender_resets: int = 0
    receiver_resets: int = 0
    replays_accepted: int = 0
    fresh_discarded: int = 0
    lost_seqnums_per_reset: list[int] = field(default_factory=list)
    gaps_sender: list[int] = field(default_factory=list)
    gaps_receiver: list[int] = field(default_factory=list)
    time_to_converge: list[float] = field(default_factory=list)
    bound_violations: list[str] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        """No bound violated and no replay accepted."""
        return not self.bound_violations and self.replays_accepted == 0

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"resets: sender={self.sender_resets} receiver={self.receiver_resets}",
            f"fresh sent={self.audit.fresh_sent} delivered={self.audit.delivered_uids}",
            f"replays accepted={self.replays_accepted}",
            f"fresh discarded={self.fresh_discarded}",
        ]
        if self.lost_seqnums_per_reset:
            lines.append(f"lost seqnums per reset={self.lost_seqnums_per_reset}")
        if self.gaps_sender:
            lines.append(f"sender gaps={self.gaps_sender}")
        if self.gaps_receiver:
            lines.append(f"receiver gaps={self.gaps_receiver}")
        lines.append(
            "CONVERGED" if self.converged else f"VIOLATIONS: {self.bound_violations}"
        )
        return "\n".join(lines)


def report_metrics(report: ConvergenceReport) -> dict[str, Any]:
    """Flatten a :class:`ConvergenceReport` into JSON-safe metrics.

    The canonical flat form used by the fleet result store
    (:mod:`repro.fleet.results` re-exports this) and by gateway reports
    (one entry per SA in ``sa_reports``).
    """
    return {
        "converged": report.converged,
        "sender_resets": report.sender_resets,
        "receiver_resets": report.receiver_resets,
        "replays_accepted": report.replays_accepted,
        "fresh_discarded": report.fresh_discarded,
        "lost_seqnums_per_reset": list(report.lost_seqnums_per_reset),
        "gaps_sender": list(report.gaps_sender),
        "gaps_receiver": list(report.gaps_receiver),
        "time_to_converge": list(report.time_to_converge),
        "bound_violations": list(report.bound_violations),
        "fresh_sent": report.audit.fresh_sent,
        "delivered_uids": report.audit.delivered_uids,
        "never_arrived": report.audit.never_arrived,
    }


def _first_delivery_after(receiver: BaseReceiver, t: float) -> float | None:
    for time, _seq in receiver.delivered_log:
        if time >= t:
            return time
    return None


def score_run(
    auditor: DeliveryAuditor,
    sender: BaseSender | None = None,
    receiver: BaseReceiver | None = None,
    check_bounds: bool = True,
) -> ConvergenceReport:
    """Score a finished run against the paper's guarantees.

    Bound checks only apply where they are claimed: gaps and loss bounds
    for :class:`SaveFetchSender` / :class:`SaveFetchReceiver` resets;
    unprotected endpoints are scored but never "violate" (the paper makes
    no promise for them).
    """
    audit = auditor.report()
    report = ConvergenceReport(
        audit=audit,
        replays_accepted=audit.duplicate_deliveries,
        fresh_discarded=audit.fresh_discarded,
    )

    if sender is not None:
        report.sender_resets = len(sender.reset_records)
        protected = isinstance(sender, SaveFetchSender)
        for record in sender.reset_records:
            if record.gap is not None:
                report.gaps_sender.append(record.gap)
                if check_bounds and protected and record.gap > gap_bound(sender.k):
                    report.bound_violations.append(
                        f"sender gap {record.gap} > 2Kp={gap_bound(sender.k)}"
                    )
            if record.lost_seqnums is not None and protected:
                report.lost_seqnums_per_reset.append(record.lost_seqnums)
                if check_bounds and record.lost_seqnums > lost_seq_bound(sender.k):
                    report.bound_violations.append(
                        f"lost seqnums {record.lost_seqnums} > 2Kp="
                        f"{lost_seq_bound(sender.k)}"
                    )
                if check_bounds and record.lost_seqnums < 0:
                    report.bound_violations.append(
                        f"sequence numbers reused after reset "
                        f"(lost={record.lost_seqnums} < 0)"
                    )

    if receiver is not None:
        report.receiver_resets = len(receiver.reset_records)
        protected_receiver = isinstance(receiver, SaveFetchReceiver)
        for record in receiver.reset_records:
            if record.gap is not None:
                report.gaps_receiver.append(record.gap)
                if (
                    check_bounds
                    and protected_receiver
                    and record.gap > gap_bound(receiver.k)
                ):
                    report.bound_violations.append(
                        f"receiver gap {record.gap} > 2Kq={gap_bound(receiver.k)}"
                    )
            if record.wake_time is not None:
                first = _first_delivery_after(receiver, record.wake_time)
                if first is not None:
                    report.time_to_converge.append(first - record.wake_time)
        if (
            check_bounds
            and protected_receiver
            and report.receiver_resets > 0
            and report.sender_resets == 0
            and audit.never_arrived == 0
        ):
            # Claim (ii) applies per reset; conservatively check the total
            # against the summed bound.
            limit = report.receiver_resets * discarded_fresh_bound(receiver.k)
            if report.fresh_discarded > limit:
                report.bound_violations.append(
                    f"fresh discarded {report.fresh_discarded} > "
                    f"{report.receiver_resets} x 2Kq = {limit}"
                )

    if check_bounds and report.replays_accepted > 0:
        protected_pair = isinstance(sender, (SaveFetchSender, type(None))) and isinstance(
            receiver, (SaveFetchReceiver, type(None))
        )
        if protected_pair:
            report.bound_violations.append(
                f"{report.replays_accepted} replayed message(s) accepted"
            )
    return report
