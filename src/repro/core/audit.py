"""Omniscient run scoring (the experimenter's bird's-eye view).

The protocol endpoints can only see what arrives on the wire; whether a
delivered message was a *replay* or a discarded message was *fresh* is a
global fact involving the sender's history and the adversary's actions.
:class:`DeliveryAuditor` tracks that global view:

* the sender registers every **fresh** transmission with a unique uid
  (instrumentation only — uids never influence protocol decisions);
* the receiver reports every processed packet with its verdict;
* the auditor then scores the run:

  - ``duplicate_deliveries`` — deliveries of a uid already delivered.
    This is exactly a violation of the paper's *Discrimination* condition
    ("q delivers at most one copy of every message sent by p") and is the
    paper's meaning of "replayed messages accepted".
  - ``fresh_discarded`` — uids that reached the receiver at least once but
    were never delivered by the end of the run: the paper's "fresh
    messages discarded by q".
  - ``never_arrived`` — uids that were sent but never processed by the
    receiver (channel loss or host-down loss), excluded from the
    fresh-discard count by definition (claim (ii) bounds discards "if no
    message loss occurs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.ipsec.replay_window import Verdict


@dataclass
class AuditReport:
    """Aggregate scores computed by :meth:`DeliveryAuditor.report`."""

    fresh_sent: int
    delivered_uids: int
    duplicate_deliveries: int
    fresh_discarded: int
    never_arrived: int
    integrity_rejections: int
    deliveries_total: int

    @property
    def replays_accepted(self) -> int:
        """Paper terminology for :attr:`duplicate_deliveries`."""
        return self.duplicate_deliveries


class DeliveryAuditor:
    """Tracks fresh sends and receiver outcomes; see module docstring."""

    #: Verdict label used when integrity verification failed before the
    #: window was consulted (ESP/AH modes under the rekey baseline).
    INTEGRITY_FAIL = "integrity_fail"

    def __init__(self) -> None:
        self._uid_of_packet: dict[int, int] = {}
        self._packets: list[Any] = []  # keep packets alive so id() stays valid
        self._sent_uids: set[int] = set()
        self._delivery_counts: dict[int, int] = {}
        self._discard_counts: dict[int, int] = {}
        self._processed_uids: set[int] = set()
        self.integrity_rejections = 0
        self.deliveries_total = 0
        self.unknown_packets = 0

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def register_send(self, packet: Any, uid: int) -> None:
        """Record that ``packet`` is fresh transmission number ``uid``."""
        self._uid_of_packet[id(packet)] = uid
        self._packets.append(packet)
        self._sent_uids.add(uid)

    def uid_of(self, packet: Any) -> int | None:
        """The uid registered for ``packet`` (None for unknown packets)."""
        return self._uid_of_packet.get(id(packet))

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def note_processed(self, packet: Any, verdict: Verdict | str) -> None:
        """Record the receiver's verdict for one arriving packet.

        ``verdict`` is a window :class:`Verdict` or the string
        :data:`INTEGRITY_FAIL`.
        """
        uid = self.uid_of(packet)
        if uid is None:
            self.unknown_packets += 1
            return
        self._processed_uids.add(uid)
        if verdict == self.INTEGRITY_FAIL:
            self.integrity_rejections += 1
            self._discard_counts[uid] = self._discard_counts.get(uid, 0) + 1
            return
        assert isinstance(verdict, Verdict)
        if verdict.accepted:
            self.deliveries_total += 1
            self._delivery_counts[uid] = self._delivery_counts.get(uid, 0) + 1
        else:
            self._discard_counts[uid] = self._discard_counts.get(uid, 0) + 1

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def report(self) -> AuditReport:
        """Compute the aggregate scores for the run so far."""
        duplicate_deliveries = sum(
            count - 1 for count in self._delivery_counts.values() if count > 1
        )
        delivered = set(self._delivery_counts)
        fresh_discarded = sum(
            1
            for uid in self._sent_uids
            if uid in self._processed_uids and uid not in delivered
        )
        never_arrived = sum(
            1 for uid in self._sent_uids if uid not in self._processed_uids
        )
        return AuditReport(
            fresh_sent=len(self._sent_uids),
            delivered_uids=len(delivered),
            duplicate_deliveries=duplicate_deliveries,
            fresh_discarded=fresh_discarded,
            never_arrived=never_arrived,
            integrity_rejections=self.integrity_rejections,
            deliveries_total=self.deliveries_total,
        )

    # Convenience accessors used heavily by tests -----------------------
    @property
    def replays_accepted(self) -> int:
        """Duplicate deliveries so far (paper: replayed messages accepted)."""
        return self.report().duplicate_deliveries

    @property
    def fresh_discarded(self) -> int:
        """Fresh messages that arrived but were never delivered."""
        return self.report().fresh_discarded
